//! End-to-end integration tests: every headline claim of the paper, checked
//! across crate boundaries at CI-sized effort.
//!
//! These intentionally go through the same entry points a user would: the
//! `repro-bench` experiment runners and the public crate APIs.

#![forbid(unsafe_code)]

use low_latency_redundancy::queuesim::threshold::{threshold_load, ThresholdOptions};
use low_latency_redundancy::simcore::dist::{Deterministic, Exponential, Pareto, TwoPoint};
use repro_bench::{run_experiment, Effort};

/// §2.1: "there is strong evidence to suggest that no matter what the
/// service time distribution, the threshold load has to be more than 25%"
/// and cannot exceed 50%.
#[test]
fn threshold_band_holds_across_distributions() {
    let opts = ThresholdOptions::fast();
    for dist in [
        Box::new(Deterministic::unit()) as Box<dyn low_latency_redundancy::simcore::dist::Distribution>,
        Box::new(Exponential::unit()),
        Box::new(Pareto::unit_mean(2.5)),
        Box::new(TwoPoint::new(0.5)),
    ] {
        let t = threshold_load(&dist.as_ref(), &opts);
        assert!(
            (0.22..0.5).contains(&t),
            "{}: threshold {t} outside the paper's band",
            dist.label()
        );
    }
}

/// Theorem 1 through the full reproduction harness.
#[test]
fn thm1_report_consistent() {
    let out = run_experiment("thm1", Effort::Quick);
    let vals: Vec<f64> = out
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.split('\t').nth(1)?.parse().ok())
        .collect();
    assert_eq!(vals.len(), 3, "three methods expected:\n{out}");
    for v in vals {
        assert!((v - 1.0 / 3.0).abs() < 0.04, "{v} != 1/3\n{out}");
    }
}

/// §2.2 headline: the disk-backed store's threshold is ~30% and the tail
/// improvement at 20% load is large.
#[test]
fn disk_store_report_shape() {
    let out = run_experiment("fig5", Effort::Quick);
    let rows: Vec<Vec<f64>> = out
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| l.split('\t').filter_map(|c| c.parse().ok()).collect())
        .filter(|r: &Vec<f64>| r.len() == 5)
        .collect();
    let at = |load: f64| -> &Vec<f64> {
        rows.iter()
            .find(|r| (r[0] - load).abs() < 1e-9)
            .unwrap_or_else(|| panic!("missing load {load} in:\n{out}"))
    };
    // Replication wins at 0.1, loses by 0.4 (mean columns 1 vs 2).
    assert!(at(0.1)[2] < at(0.1)[1], "{:?}", at(0.1));
    assert!(at(0.4)[2] > at(0.4)[1], "{:?}", at(0.4));
    // Tail cut at 0.2 load (p999 columns 3 vs 4).
    assert!(at(0.2)[4] < at(0.2)[3], "{:?}", at(0.2));
}

/// §2.3 headline: memcached replication is not a win at the tested loads.
#[test]
fn memcached_report_shape() {
    let out = run_experiment("fig12", Effort::Quick);
    let rows: Vec<Vec<f64>> = out
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| l.split('\t').filter_map(|c| c.parse().ok()).collect())
        .filter(|r: &Vec<f64>| r.len() == 5)
        .collect();
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(
            r[2] > r[1] * 0.97,
            "memcached replication should not clearly win at load {}: {r:?}",
            r[0]
        );
    }
}

/// The service layer closes the loop the paper only sweeps offline: a
/// sharded store whose front-end consults the planner per request must
/// switch replication off, live, within ±0.05 of the offline §2.1
/// threshold for the exponential workload.
#[test]
fn service_layer_flips_at_the_offline_threshold() {
    let out = run_experiment("fig-service", Effort::Quick);
    let grab = |tag: &str| -> f64 {
        out.lines()
            .find_map(|l| l.strip_prefix(tag))
            .unwrap_or_else(|| panic!("missing '{tag}' in:\n{out}"))
            .trim()
            .parse()
            .expect("numeric headline")
    };
    let switch_off = grab("# planner switch-off load:");
    let threshold = grab("# offline threshold:");
    assert!(
        (threshold - 1.0 / 3.0).abs() < 0.01,
        "offline threshold {threshold} != 1/3"
    );
    assert!(
        (switch_off - threshold).abs() <= 0.05,
        "switch-off {switch_off} vs threshold {threshold}"
    );
}

/// Pulls the first numeric token after a `# tag:` headline line.
fn grab_headline(out: &str, tag: &str) -> f64 {
    out.lines()
        .find_map(|l| l.strip_prefix(tag))
        .unwrap_or_else(|| panic!("missing '{tag}' in:\n{out}"))
        .split_whitespace()
        .next()
        .expect("empty headline")
        .parse()
        .expect("numeric headline")
}

/// The self-calibrating planner: with *every* input measured — arrival
/// rate, mean service time, and SCV — the live switch-off must land within
/// ±0.08 of the offline §2.1 threshold, and within the same band of the
/// clairvoyant run it replaces.
#[test]
fn estimated_mode_switch_off_lands_in_band() {
    let out = run_experiment("fig-service-est", Effort::Quick);
    let est = grab_headline(&out, "# estimated switch-off load:");
    let clair = grab_headline(&out, "# clairvoyant switch-off load:");
    let threshold = grab_headline(&out, "# offline threshold:");
    assert!(
        (threshold - 1.0 / 3.0).abs() < 0.01,
        "offline threshold {threshold} != 1/3"
    );
    assert!(
        (est - threshold).abs() <= 0.08,
        "estimated switch-off {est} vs offline threshold {threshold}"
    );
    assert!(
        (est - clair).abs() <= 0.08,
        "estimated switch-off {est} vs clairvoyant {clair}"
    );
    // The calibration itself must have converged on the config truth.
    let mean = grab_headline(&out, "# estimated final mean service:");
    let scv = grab_headline(&out, "# estimated final scv:");
    assert!((mean - 1.0e-3).abs() / 1.0e-3 < 0.1, "est mean {mean}");
    assert!((scv - 1.0).abs() < 0.25, "est scv {scv}");
}

/// Service-shape ordering through the self-calibrating service: the
/// two-moment planner's threshold peaks at scv = 1 (its approximation is
/// exact for M/M/1 and degrades toward the deterministic floor on both
/// sides — the documented regime of the paper's own Myers–Vernon
/// stand-in), so the measured heavy-tail switch-off must sit *below* the
/// exponential one, and every workload's switch-off must land within
/// ±0.08 of its own offline threshold.
#[test]
fn heavy_tail_switch_off_sits_below_exponential() {
    let out = run_experiment("fig-service-tail", Effort::Quick);
    let heavy = grab_headline(&out, "# heavy-tail switch-off load:");
    let exp = grab_headline(&out, "# exponential switch-off load:");
    assert!(
        heavy < exp,
        "heavy-tail switch-off {heavy} not below exponential {exp}"
    );
    // Per-workload band: the table rows carry
    // (workload, scv_true, scv_est, offline, live, switch_off, diff).
    let mut rows = 0;
    for l in out.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let cells: Vec<&str> = l.split('\t').collect();
        if cells.len() != 7 {
            continue;
        }
        rows += 1;
        let diff: f64 = cells[6].parse().expect("diff cell");
        assert!(
            diff.abs() <= 0.08,
            "{}: switch-off off by {diff} from its own threshold",
            cells[0]
        );
        // Self-calibration sanity: the estimated SCV is on the right side
        // of 1 for every shape.
        let scv_true: f64 = cells[1].parse().unwrap();
        let scv_est: f64 = cells[2].parse().unwrap();
        if scv_true < 0.5 {
            assert!(scv_est < 0.7, "{}: est scv {scv_est}", cells[0]);
        }
        if scv_true > 2.0 {
            assert!(scv_est > 2.0, "{}: est scv {scv_est}", cells[0]);
        }
    }
    assert_eq!(rows, 3, "three workload rows expected:\n{out}");
}

/// Skew-aware planning: under a Zipf key mix the per-server planner
/// (`EstimatorBank` + `decide_for`) must cut the hot server's peak busy
/// fraction strictly below the global planner's, flatten the mid-ramp
/// p99 contention hump, and stagger the decision by temperature — hot
/// pairs off well below the balanced-load threshold, cold pairs
/// switching off markedly later (or never, inside the ramp).
#[test]
fn per_server_planner_cuts_the_hot_server_peak() {
    let out = run_experiment("fig-service-skew-aware", Effort::Quick);
    let global_peak = grab_headline(&out, "# global hot-server peak utilization:");
    let per_peak = grab_headline(&out, "# per-server hot-server peak utilization:");
    assert!(
        per_peak < global_peak - 0.05,
        "per-server peak {per_peak} not strictly below global {global_peak}"
    );
    let hump_ratio = grab_headline(&out, "# p99 hump ratio:");
    assert!(hump_ratio < 0.9, "p99 hump ratio {hump_ratio} not flattened");
    let hot_off = grab_headline(&out, "# per-server hot-pair switch-off load:");
    let threshold = grab_headline(&out, "# offline threshold:");
    assert!(
        hot_off < threshold - 0.05,
        "hot pairs must switch off well below the balanced threshold: \
         {hot_off} vs {threshold}"
    );
    let cold_off = grab_headline(&out, "# per-server cold-pair switch-off load:");
    assert!(
        cold_off.is_nan() || cold_off > hot_off + 0.10,
        "cold pairs must switch off markedly later than hot pairs: \
         cold {cold_off} vs hot {hot_off}"
    );
}

/// Censoring-free PS calibration: the previously rejected Estimated +
/// PS + cancellation combination, run through dispatch-time demand
/// reporting, must land its switch-off inside the same ±0.08 band as the
/// uncensored FIFO experiments, with unbiased moment estimates — the
/// exact outcome completion-based sampling could not deliver (it would
/// have measured min(demands) and roughly halved the mean).
#[test]
fn ps_estimated_switch_off_lands_in_band() {
    let out = run_experiment("fig-service-ps-est", Effort::Quick);
    let switch_off = grab_headline(&out, "# planner switch-off load:");
    let threshold = grab_headline(&out, "# offline threshold:");
    assert!(
        (threshold - 1.0 / 3.0).abs() < 0.01,
        "offline threshold {threshold} != 1/3"
    );
    assert!(
        (switch_off - threshold).abs() <= 0.08,
        "PS-estimated switch-off {switch_off} vs threshold {threshold}"
    );
    let mean = grab_headline(&out, "# estimated final mean service:");
    assert!(
        (mean - 1.0e-3).abs() / 1.0e-3 < 0.1,
        "dispatch-reported mean must be unbiased: {mean}"
    );
    let scv = grab_headline(&out, "# estimated final scv:");
    assert!((scv - 1.0).abs() < 0.25, "est scv {scv}");
    let cancel = grab_headline(&out, "# cancel fraction:");
    assert!(
        cancel > 0.05,
        "cancellation never fired meaningfully: {cancel}"
    );
}

/// §2.4 headline: replicating the first packets improves the small-flow
/// median at moderate load without hurting originals.
#[test]
fn network_replication_helps_small_flows() {
    use low_latency_redundancy::netsim::experiments::{run_pair, NetConfig};
    let cfg = NetConfig {
        flows: 4_000,
        load: 0.4,
        ..NetConfig::default()
    };
    let mut pair = run_pair(&cfg, 5);
    assert!(
        pair.median_improvement_pct() > 3.0,
        "improvement {:.1}%",
        pair.median_improvement_pct()
    );
}

/// §3.1 headline: handshake duplication saves ≥ an order of magnitude more
/// than the 16 ms/KB break-even.
#[test]
fn handshake_cost_effectiveness() {
    use low_latency_redundancy::wansim::costbench::savings_ms_per_kb;
    use low_latency_redundancy::wansim::handshake::HandshakeModel;
    let m = HandshakeModel::default();
    let rate = savings_ms_per_kb(m.expected_savings() * 1e3, m.extra_bytes());
    assert!(rate > 160.0, "{rate} ms/KB");
}

/// §3.2 headline: querying 10 DNS servers halves the latency metrics.
#[test]
fn dns_reduction_band() {
    use low_latency_redundancy::wansim::dns::{reduction_table, DnsExperiment, DnsPopulation};
    let exp = DnsExperiment::rank(DnsPopulation::paper_like(3), 3_000, 1);
    let rows = reduction_table(&exp, 60_000, 2);
    let last = rows.last().unwrap();
    assert!(
        (35.0..80.0).contains(&last.mean_pct),
        "10-server mean reduction {last:?}"
    );
}

/// The planner (library layer) and the simulator (model layer) agree on
/// the replicate/don't-replicate decision far from the threshold.
#[test]
fn planner_agrees_with_simulation() {
    use low_latency_redundancy::queuesim::model::{run, Config};
    use low_latency_redundancy::redundancy::prelude::*;
    let planner = Planner::new(WorkloadProfile {
        mean_service: 1.0,
        scv: 1.0,
        client_overhead: 0.0,
    });
    for (load, expect) in [(0.2, true), (0.45, false)] {
        let advice = planner.advise(load);
        assert_eq!(advice.replicate, expect, "planner at {load}");
        let base = Config::new(Exponential::unit(), load).with_requests(80_000, 8_000);
        let single = run(&base.clone().with_copies(1), 3).moments.mean();
        let double = run(&base.with_copies(2), 3).moments.mean();
        assert_eq!(double < single, expect, "simulator at {load}");
    }
}

/// The full experiment list dispatches (quick mode) for the cheap WAN and
/// queueing figures — a smoke net over the harness wiring.
#[test]
fn harness_dispatch_smoke() {
    for id in ["tcp", "fig16", "fig17"] {
        let out = run_experiment(id, Effort::Quick);
        assert!(out.contains("paper:"), "{id} report malformed");
    }
}

/// Sharded-engine headline: the §2.1 switch-off still lands on the
/// offline threshold when the adaptive ramp runs at cluster scale
/// (256 servers, 1M requests) on the parallel engine — and the run
/// completes, i.e. the conservative synchronization never deadlocks or
/// drops an event at this size.
#[test]
fn sharded_scale_switch_off_lands_in_band() {
    let out = run_experiment("fig-service-scale", Effort::Quick);
    let switch_off = grab_headline(&out, "# planner switch-off load:");
    let threshold = grab_headline(&out, "# offline threshold:");
    assert!(
        (threshold - 1.0 / 3.0).abs() < 0.01,
        "offline threshold {threshold} != 1/3"
    );
    assert!(
        (switch_off - threshold).abs() <= 0.05,
        "scale switch-off {switch_off} vs threshold {threshold}"
    );
    assert!(
        out.contains("# completed: 1000000 of 1000000"),
        "scale ramp must complete every request"
    );
}
