//! Property-based tests over the substrate invariants.
//!
//! Each property here is one the simulators rely on for *correctness of
//! the reproduction*, not just code health: event ordering is what makes
//! the FIFO queues exact; LRU equivalence is what makes the cache:disk
//! ratio meaningful; ring monotonicity is what the paper's n/n+1 placement
//! assumes; distribution normalization is what puts every Figure 2 family
//! on the same unit-mean axis.
//!
//! Cases are generated from the workspace's own deterministic
//! [`Rng`](low_latency_redundancy::simcore::rng::Rng) at fixed seeds (no
//! external property-testing dependency), so failures replay exactly.

#![forbid(unsafe_code)]

use low_latency_redundancy::netsim::tcp::{TcpConfig, TcpReceiver, TcpSender};
use low_latency_redundancy::netsim::topology::FatTree;
use low_latency_redundancy::simcore::dist::{
    DiscreteEmpirical, Distribution, LogNormal, Pareto, TwoPoint, Weibull,
};
use low_latency_redundancy::simcore::event::EventQueue;
use low_latency_redundancy::simcore::rng::Rng;
use low_latency_redundancy::simcore::stats::SampleSet;
use low_latency_redundancy::simcore::time::SimTime;
use low_latency_redundancy::storesim::hashring::HashRing;
use low_latency_redundancy::storesim::lru::LruCache;

/// Events pop sorted by time; ties pop in insertion order.
#[test]
fn event_queue_total_order() {
    let mut rng = Rng::seed_from(0xE7E27);
    for _case in 0..200 {
        let n = 1 + rng.index(200);
        let times: Vec<u32> = (0..n).map(|_| rng.u64_below(1000) as u32).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t as f64), i);
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_secs(), i));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }
}

/// LRU behaves exactly like a reference model (vector of (key,size),
/// most recent first, capacity-bounded).
#[test]
fn lru_matches_reference_model() {
    let mut rng = Rng::seed_from(0x14B);
    for _case in 0..60 {
        let cap = 50 + rng.u64_below(150);
        let ops = 1 + rng.index(300);
        let mut lru = LruCache::new(cap);
        let mut model: Vec<(u64, u64)> = Vec::new(); // MRU-first
        for _ in 0..ops {
            let key = rng.u64_below(20);
            let size = 1 + rng.u64_below(39);
            let is_insert = rng.chance(0.5);
            if is_insert && size <= cap {
                lru.insert(key, size);
                model.retain(|&(k, _)| k != key);
                model.insert(0, (key, size));
                let mut used: u64 = model.iter().map(|&(_, s)| s).sum();
                while used > cap {
                    let (_, s) = model.pop().unwrap();
                    used -= s;
                }
            } else if !is_insert {
                let hit = lru.access(key);
                let model_hit = model.iter().any(|&(k, _)| k == key);
                assert_eq!(hit, model_hit, "hit/miss diverged for {key}");
                if model_hit {
                    let pos = model.iter().position(|&(k, _)| k == key).unwrap();
                    let entry = model.remove(pos);
                    model.insert(0, entry);
                }
            }
            let used: u64 = model.iter().map(|&(_, s)| s).sum();
            assert_eq!(lru.used_bytes(), used);
            assert_eq!(lru.len(), model.len());
        }
    }
}

/// Consistent hashing: keys only move *to the new server* when the
/// cluster grows.
#[test]
fn ring_growth_is_monotone() {
    let mut rng = Rng::seed_from(0x21A6);
    for servers in 2usize..12 {
        let before = HashRing::new(servers, 64);
        let after = HashRing::new(servers + 1, 64);
        for _ in 0..50 {
            let k = rng.next_u64();
            let (b, a) = (before.primary(k), after.primary(k));
            if b != a {
                assert_eq!(a, servers, "key {k} moved to an old server");
            }
        }
    }
}

/// Unit-mean families really have unit mean, and samples are positive
/// and finite.
#[test]
fn unit_mean_families_normalized() {
    let mut rng = Rng::seed_from(0xD15F);
    for case in 0..120 {
        let seed = rng.next_u64();
        let dist: Box<dyn Distribution> = match case % 4 {
            0 => Box::new(Pareto::unit_mean(2.0 + (seed % 50) as f64 / 10.0)),
            1 => Box::new(Weibull::unit_mean(0.3 + (seed % 40) as f64 / 10.0)),
            2 => Box::new(TwoPoint::new((seed % 99) as f64 / 100.0)),
            _ => Box::new(LogNormal::unit_mean((seed % 20) as f64 / 10.0)),
        };
        assert!(
            (dist.mean() - 1.0).abs() < 1e-6,
            "{} mean {}",
            dist.label(),
            dist.mean()
        );
        let mut sample_rng = Rng::seed_from(seed);
        for _ in 0..200 {
            let x = dist.sample(&mut sample_rng);
            assert!(x > 0.0 && x.is_finite(), "{}: sample {x}", dist.label());
        }
    }
}

/// Alias-method sampling only produces support values with positive weight.
#[test]
fn alias_samples_in_support() {
    let mut rng = Rng::seed_from(0xA11A5);
    for _case in 0..100 {
        let n = 1 + rng.index(19);
        let weights: Vec<f64> = (0..n).map(|_| rng.f64() * 10.0).collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        let pairs: Vec<(f64, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as f64, w))
            .collect();
        let d = DiscreteEmpirical::new(&pairs);
        let mut sample_rng = Rng::seed_from(rng.next_u64());
        for _ in 0..200 {
            let x = d.sample(&mut sample_rng);
            let idx = x as usize;
            assert!(idx < weights.len());
            assert!(weights[idx] > 0.0, "sampled zero-weight value {x}");
        }
    }
}

/// Quantiles are monotone and bounded by min/max.
#[test]
fn quantiles_monotone() {
    let mut rng = Rng::seed_from(0x0A77);
    for _case in 0..100 {
        let n = 2 + rng.index(398);
        let xs: Vec<f64> = (0..n).map(|_| rng.f64_range(-1.0e6, 1.0e6)).collect();
        let mut s: SampleSet = xs.iter().copied().collect();
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| s.quantile(q)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((vals[0] - lo).abs() < 1e-9 && (vals[5] - hi).abs() < 1e-9);
    }
}

/// Fat-tree routing reaches every destination from every node along
/// every ECMP candidate, within the structural 6-hop bound.
#[test]
fn fat_tree_all_candidates_reach() {
    fn reaches(t: &FatTree, at: u32, dst: u32, depth: usize) -> bool {
        if at == dst {
            return true;
        }
        if depth == 0 {
            return false;
        }
        t.candidates(at, dst)
            .iter()
            .all(|&l| reaches(t, t.link(l).to, dst, depth - 1))
    }
    let mut rng = Rng::seed_from(0xFA7);
    for &k in &[2usize, 4, 6] {
        let t = FatTree::new(k);
        let hosts = t.hosts() as u32;
        for _ in 0..40 {
            let src = rng.u64_below(hosts as u64) as u32;
            let dst = rng.u64_below(hosts as u64) as u32;
            if src == dst {
                continue;
            }
            assert!(reaches(&t, src, dst, 6), "k={k} src={src} dst={dst}");
        }
    }
}

/// TCP delivers every packet exactly once to the application under an
/// arbitrary (finite) loss pattern with a lossless retransmission
/// fallback: the transfer always completes and the receiver's
/// cumulative counter equals the flow length.
#[test]
fn tcp_completes_under_random_loss() {
    let mut rng = Rng::seed_from(0x7C9);
    for _case in 0..80 {
        let total = 1 + rng.u64_below(59) as u32;
        let loss_len = rng.index(41);
        let loss_pattern: Vec<bool> = (0..loss_len).map(|_| rng.chance(0.5)).collect();

        let mut s = TcpSender::new(total, TcpConfig::default());
        let mut r = TcpReceiver::new(total);
        let mut now = 0.0f64;
        let mut wire = s.on_start(now).send;
        let mut drops = loss_pattern.into_iter();
        let mut completed = false;
        let mut guard = 0;
        while !completed && guard < 10_000 {
            guard += 1;
            now += 1e-4;
            let mut acks = Vec::new();
            for seq in wire.drain(..) {
                if drops.next() == Some(true) {
                    continue; // lost
                }
                if let Some(c) = r.on_data(seq, false) {
                    acks.push(c);
                }
            }
            let mut next = Vec::new();
            for c in acks {
                let a = s.on_ack(now, c);
                completed |= a.completed;
                next.extend(a.send);
            }
            if next.is_empty() && !completed {
                now += s.rto();
                let a = s.on_timeout(now, s.timer_epoch);
                next.extend(a.send);
            }
            wire = next;
        }
        assert!(completed, "transfer stalled (total={total})");
        assert_eq!(r.cum(), total);
    }
}

/// Distribution sampling is bit-reproducible: the same seed produces a
/// byte-identical stream through the facade, twice.
#[test]
fn sampling_is_deterministic_across_runs() {
    let dists: Vec<Box<dyn Distribution>> = vec![
        Box::new(Pareto::unit_mean(2.1)),
        Box::new(Weibull::unit_mean(0.5)),
        Box::new(LogNormal::unit_mean(1.0)),
        Box::new(TwoPoint::new(0.5)),
    ];
    for d in &dists {
        let mut a = Rng::seed_from(0xB17);
        let mut b = Rng::seed_from(0xB17);
        for _ in 0..1_000 {
            assert_eq!(
                d.sample(&mut a).to_bits(),
                d.sample(&mut b).to_bits(),
                "{} diverged",
                d.label()
            );
        }
    }
}

/// Parallel execution is invisible in the numbers: `threshold_load` and
/// `mean_vs_load` return bit-identical results at 1, 2, and 8 threads.
/// This is the runner layer's central contract — per-task randomness is
/// forked from task indices, never from execution order — checked across
/// several service distributions.
#[test]
fn parallel_sweeps_bit_identical_across_thread_counts() {
    use low_latency_redundancy::queuesim::sweeps::mean_vs_load_on;
    use low_latency_redundancy::queuesim::threshold::{threshold_load_on, ThresholdOptions};
    use low_latency_redundancy::simcore::runner::Runner;

    let mut opts = ThresholdOptions::fast();
    opts.requests = 6_000;
    opts.warmup = 600;
    opts.replications = 3;
    opts.max_replications = 6;
    opts.tolerance = 0.05;
    let loads = [0.12, 0.3, 0.44];

    let dists: Vec<Box<dyn Distribution>> = vec![
        Box::new(Pareto::unit_mean(2.2)),
        Box::new(Weibull::unit_mean(0.7)),
        Box::new(TwoPoint::new(0.4)),
    ];
    for dist in &dists {
        let thr_base = threshold_load_on(&Runner::new(1), &dist.as_ref(), &opts);
        let pts_base = mean_vs_load_on(&Runner::new(1), &dist.as_ref(), &loads, 5_000, 0xBEE);
        for threads in [2usize, 8] {
            let runner = Runner::new(threads);
            let thr = threshold_load_on(&runner, &dist.as_ref(), &opts);
            assert_eq!(
                thr_base.to_bits(),
                thr.to_bits(),
                "{}: threshold diverged at {threads} threads",
                dist.label()
            );
            let pts = mean_vs_load_on(&runner, &dist.as_ref(), &loads, 5_000, 0xBEE);
            for (a, b) in pts_base.iter().zip(&pts) {
                for (x, y) in [
                    (a.mean_single, b.mean_single),
                    (a.mean_double, b.mean_double),
                    (a.p999_single, b.p999_single),
                    (a.p999_double, b.p999_double),
                ] {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}: sweep diverged at {threads} threads",
                        dist.label()
                    );
                }
            }
        }
    }
}

/// The windowed Welford estimators (`RateEstimator`, `MomentEstimator`)
/// agree with a brute-force recompute over the retained window to 1e-9 at
/// every step of seeded random streams — growth, window eviction, and
/// post-reset refill alike. This is the foundation the self-calibrating
/// planner stands on: the O(1) sliding update must not drift from the
/// exact window moments no matter how the stream arrived.
#[test]
fn windowed_estimators_match_bruteforce_across_random_streams() {
    use low_latency_redundancy::redundancy::prelude::{MomentEstimator, RateEstimator};

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    let mut rng = Rng::seed_from(0xE571);
    for case in 0..30 {
        let window = 2 + rng.index(60);
        let n = window * 3 + rng.index(200);
        // Mix scales so the stream is not benignly homogeneous: rare
        // 100x spikes stress the sliding update's cancellation error.
        let xs: Vec<f64> = (0..n)
            .map(|_| {
                let base = rng.exponential(4.0);
                if rng.chance(0.05) {
                    base * 100.0
                } else {
                    base
                }
            })
            .collect();
        let mut rate = RateEstimator::new(window);
        let mut moments = MomentEstimator::new(window);
        // Exercise the reset path mid-stream on half the cases.
        let reset_at = if case % 2 == 0 { Some(n / 2) } else { None };
        let mut held: Vec<f64> = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            if reset_at == Some(i) {
                rate.reset();
                moments.reset();
                held.clear();
            }
            rate.push_gap(x);
            moments.observe(x);
            held.push(x);
            let lo = held.len().saturating_sub(window);
            let (mean, var) = naive(&held[lo..]);
            for (label, got_mean, got_var) in [
                ("rate", rate.mean_gap(), rate.gap_variance()),
                ("moments", moments.mean(), moments.variance()),
            ] {
                assert!(
                    (got_mean - mean).abs() < 1e-9,
                    "case {case} step {i} {label}: mean {got_mean} vs {mean}"
                );
                let got_var_ok = if held.len() - lo < 2 {
                    got_var == 0.0
                } else {
                    (got_var - var).abs() < 1e-9 * var.max(1.0)
                };
                assert!(
                    got_var_ok,
                    "case {case} step {i} {label}: var {got_var} vs {var}"
                );
            }
            if held.len() - lo >= 2 && moments.mean() > 0.0 {
                let (mean, var) = naive(&held[lo..]);
                assert!(
                    (moments.scv() - var / (mean * mean)).abs() < 1e-9 * (var / (mean * mean)).max(1.0),
                    "case {case} step {i}: scv"
                );
            }
        }
    }
}

/// `EstimatorBank` per-index streams agree with a brute-force recompute
/// over each index's retained window to 1e-9 at every step of seeded
/// random streams whose observations interleave across servers in random
/// order — growth, window eviction, per-index `reset`, and the
/// all-servers-idle edge alike. This is what lets the per-server planner
/// trust that feeding server A's arrivals can never perturb server B's
/// estimate, no matter how the two streams interleave.
#[test]
fn estimator_bank_matches_bruteforce_across_interleaved_streams() {
    use low_latency_redundancy::redundancy::prelude::EstimatorBank;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    let mut rng = Rng::seed_from(0xBA9C);
    for case in 0..20 {
        let servers = 2 + rng.index(6);
        let window = 2 + rng.index(40);
        let n = window * servers * 3 + rng.index(300);
        let mut bank = EstimatorBank::new(servers, window);
        let mut held: Vec<Vec<f64>> = vec![Vec::new(); servers];
        // The all-servers-idle edge: a cold bank reports zero everywhere.
        for s in 0..servers {
            assert!(bank.get(s).is_empty());
            assert_eq!(bank.rate(s), 0.0);
            assert_eq!(bank.utilization(s, 1.0e-3, 2), 0.0);
        }
        // Exercise a per-index reset mid-stream on half the cases.
        let reset_at = if case % 2 == 0 {
            Some((n / 2, rng.index(servers)))
        } else {
            None
        };
        for i in 0..n {
            if let Some((at, idx)) = reset_at {
                if i == at {
                    bank.reset(idx);
                    held[idx].clear();
                }
            }
            let idx = rng.index(servers);
            // Mixed scales: rare 100x spikes stress the sliding update.
            let gap = {
                let base = rng.exponential(4.0);
                if rng.chance(0.05) {
                    base * 100.0
                } else {
                    base
                }
            };
            bank.push_gap(idx, gap);
            held[idx].push(gap);
            // Check the touched index plus one random bystander — the
            // bystander's estimate must be exactly its own stream's.
            for s in [idx, rng.index(servers)] {
                let h = &held[s];
                if h.is_empty() {
                    assert!(bank.get(s).is_empty(), "case {case} step {i} idle {s}");
                    assert_eq!(bank.rate(s), 0.0);
                    continue;
                }
                let lo = h.len().saturating_sub(window);
                let w = &h[lo..];
                let (mean, var) = naive(w);
                let est = bank.get(s);
                assert!(
                    (est.mean_gap() - mean).abs() < 1e-9,
                    "case {case} step {i} server {s}: mean {} vs {mean}",
                    est.mean_gap()
                );
                let var_ok = if w.len() < 2 {
                    est.gap_variance() == 0.0
                } else {
                    (est.gap_variance() - var).abs() < 1e-9 * var.max(1.0)
                };
                assert!(var_ok, "case {case} step {i} server {s}: variance");
                if w.len() >= 2 {
                    assert!(
                        (bank.rate(s) - 1.0 / mean).abs() < 1e-9 * (1.0 / mean).max(1.0),
                        "case {case} step {i} server {s}: rate"
                    );
                    // utilization = rate * mean_service / split, exactly.
                    assert_eq!(
                        bank.utilization(s, 2.0e-3, 2).to_bits(),
                        (bank.rate(s) * 2.0e-3 / 2.0).to_bits()
                    );
                } else {
                    assert_eq!(bank.rate(s), 0.0, "one gap is not a rate");
                }
            }
        }
    }
}

/// `LoadModel::Global` **is** the PR 4 code path, bit for bit: the two
/// quick-mode estimated-planner experiments that existed before the
/// per-server planner landed must reproduce their PR 4 reports exactly
/// (FNV-1a-64 over the report bytes, captured from the pre-refactor
/// binary). Any drift here means the refactor silently changed the
/// global-model semantics — RNG draw order, estimator feeding, decision
/// arithmetic — rather than purely adding the per-server path.
///
/// Platform note: like CI's serial-vs-parallel byte-diff, this pin
/// assumes the platform's libm (`ln`, `powf` feed the samplers and Zipf
/// weights). A failure on a *new* target or after a libm update — with
/// the headline numbers still inside their EXPERIMENTS.md bands — is
/// last-bit float drift, not semantic drift: re-pin the hashes from the
/// unmodified global path on that platform. A failure on a platform
/// where it previously passed is real drift.
///
/// Re-pinned in PR 10: the consistent-hash replica fix (ring-order
/// successor walk replacing the `(primary + i) % servers` index rule)
/// intentionally moved stored replica sets, so both reports changed;
/// the hashes below are the post-fix outputs, and the pin again guards
/// the global path against *unintended* drift from here on.
#[test]
fn load_model_global_reproduces_pr4_reports_byte_for_byte() {
    use repro_bench::{run_experiment, Effort};

    fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    for (id, pinned) in [
        ("fig-service-est", 0x67fc1498f8471d01u64),
        ("fig-service-skew", 0xf94272a2216c3cf8u64),
    ] {
        let out = run_experiment(id, Effort::Quick);
        assert_eq!(
            fnv1a64(out.as_bytes()),
            pinned,
            "{id} drifted from its PR 4 pinned output:\n{out}"
        );
    }
}

/// Every new service-layer scenario — estimated-moment calibration,
/// heavy-tailed service, skewed keys, and a hedged ramp — produces
/// bit-identical aggregate outcomes at 1 and 8 runner threads, matching
/// the PR 2 engine contract (per-task randomness forked by index, never
/// execution order). The full `repro` reports are additionally byte-diffed
/// serial-vs-parallel in CI for all registered ids, the three new service
/// experiments included.
#[test]
fn service_scenarios_bit_identical_across_thread_counts() {
    use low_latency_redundancy::redundancy::policy::Policy;
    use low_latency_redundancy::simcore::dist::Exponential;
    use low_latency_redundancy::simcore::runner::Runner;
    use low_latency_redundancy::storesim::experiments::run_service_ramp_on;
    use low_latency_redundancy::storesim::service::{
        bounded_pareto_with_mean, zipf_popularity, DemandReport, Discipline, Frontend, LoadModel,
        MomentSource, ServiceConfig,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let small = |mut cfg: ServiceConfig| {
        cfg.requests = 8_000;
        cfg.warmup = 800;
        cfg.buckets = 8;
        cfg
    };
    let estimated = Frontend::Adaptive {
        window: 512,
        moments: MomentSource::Estimated {
            window: 2048,
            min_samples: 128,
            recalibrate: 256,
        },
        load_model: LoadModel::Global,
    };

    let mut scenarios: Vec<(&str, ServiceConfig)> = Vec::new();
    let mut est = small(ServiceConfig::ramp(
        Arc::new(Exponential::with_mean(1.0e-3)),
        0.05,
        0.55,
    ));
    est.frontend = estimated.clone();
    scenarios.push(("estimated", est));
    let mut tail = small(ServiceConfig::ramp(
        Arc::new(bounded_pareto_with_mean(1.4, 1000.0, 1.0e-3)),
        0.05,
        0.5,
    ));
    tail.frontend = estimated.clone();
    scenarios.push(("heavy-tail", tail));
    let mut skew = small(ServiceConfig::ramp(
        Arc::new(Exponential::with_mean(1.0e-3)),
        0.05,
        0.45,
    ));
    skew.frontend = estimated.clone();
    skew.popularity = Some(zipf_popularity(skew.shards, 0.6));
    scenarios.push(("skewed", skew));
    let mut hedged = small(ServiceConfig::ramp(
        Arc::new(Exponential::with_mean(1.0e-3)),
        0.05,
        0.45,
    ));
    hedged.frontend = Frontend::Fixed(Policy::Hedged {
        copies: 2,
        after: Duration::from_micros(8_000),
    });
    hedged.cancellation = true;
    scenarios.push(("hedged", hedged));
    // The PR 5 additions: the per-server planner on a Zipf mix, and the
    // previously rejected Estimated + PS + cancellation combination made
    // legal by dispatch-time demand reporting.
    let mut skew_aware = small(ServiceConfig::ramp(
        Arc::new(Exponential::with_mean(1.0e-3)),
        0.05,
        0.45,
    ));
    skew_aware.frontend = Frontend::Adaptive {
        window: 256,
        moments: MomentSource::Estimated {
            window: 2048,
            min_samples: 128,
            recalibrate: 256,
        },
        load_model: LoadModel::PerServer,
    };
    skew_aware.popularity = Some(zipf_popularity(skew_aware.shards, 0.6));
    scenarios.push(("skew-aware", skew_aware));
    let mut ps_est = small(ServiceConfig::ramp(
        Arc::new(Exponential::with_mean(1.0e-3)),
        0.05,
        0.55,
    ));
    ps_est.frontend = estimated;
    ps_est.discipline = Discipline::Ps;
    ps_est.cancellation = true;
    ps_est.demand_report = DemandReport::Dispatch;
    scenarios.push(("ps-est", ps_est));

    for (name, cfg) in &scenarios {
        let serial = run_service_ramp_on(&Runner::new(1), cfg, 2);
        let parallel = run_service_ramp_on(&Runner::new(8), cfg, 2);
        assert_eq!(
            serial.switch_off.to_bits(),
            parallel.switch_off.to_bits(),
            "{name}: switch-off diverged"
        );
        for (field, a, b) in [
            ("live_threshold", serial.live_threshold, parallel.live_threshold),
            ("est_mean", serial.est_mean_service, parallel.est_mean_service),
            ("est_scv", serial.est_scv, parallel.est_scv),
            ("cancel", serial.cancel_fraction, parallel.cancel_fraction),
            ("peak_util", serial.peak_utilization, parallel.peak_utilization),
            ("switch_off_hot", serial.switch_off_hot, parallel.switch_off_hot),
            (
                "switch_off_cold",
                serial.switch_off_cold,
                parallel.switch_off_cold,
            ),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: {field} diverged");
        }
        for (i, (a, b)) in serial.rows.iter().zip(&parallel.rows).enumerate() {
            assert_eq!(a.requests, b.requests, "{name} row {i}");
            assert_eq!(a.frac_k2.to_bits(), b.frac_k2.to_bits(), "{name} row {i}");
            assert_eq!(
                a.mean_response.to_bits(),
                b.mean_response.to_bits(),
                "{name} row {i}"
            );
            assert_eq!(a.p99.to_bits(), b.p99.to_bits(), "{name} row {i}");
            assert_eq!(
                a.peak_utilization.to_bits(),
                b.peak_utilization.to_bits(),
                "{name} row {i}"
            );
            assert_eq!(
                a.frac_k2_hot.to_bits(),
                b.frac_k2_hot.to_bits(),
                "{name} row {i}"
            );
            assert_eq!(
                a.frac_k2_cold.to_bits(),
                b.frac_k2_cold.to_bits(),
                "{name} row {i}"
            );
        }
    }
}

/// Deterministic cross-crate check: racing thread replicas through the
/// real library returns the known-fastest one.
#[test]
fn library_race_end_to_end() {
    use low_latency_redundancy::redundancy::prelude::*;
    use std::time::Duration;
    let out = race(vec![
        replica(|_t: &CancelToken| {
            std::thread::sleep(Duration::from_millis(30));
            "slow"
        }),
        replica(|_t: &CancelToken| {
            std::thread::sleep(Duration::from_millis(2));
            "fast"
        }),
    ])
    .unwrap();
    assert_eq!(out.value, "fast");
}

/// A single [`ShardQueue`] pops in exactly the order of the sequential
/// [`EventQueue`] on randomized schedules — including heavy simultaneous-
/// event ties, which must break FIFO by insertion order on both. This is
/// the base case of the sharded engine's determinism guarantee: with one
/// shard there is no merge rule left, only the queue.
#[test]
fn shard_queue_pop_order_matches_event_queue() {
    use low_latency_redundancy::simcore::shard::ShardQueue;
    let mut rng = Rng::seed_from(0x5AA2D);
    for case in 0..100 {
        let n = 1 + rng.index(300);
        // Few distinct times => many exact ties.
        let span = 1 + rng.index(8) as u64;
        let mut eq = EventQueue::new();
        let mut sq = ShardQueue::new(0);
        for i in 0..n {
            let t = SimTime::from_secs(rng.u64_below(span) as f64);
            eq.push(t, i);
            sq.push(t, i);
        }
        loop {
            match (eq.pop(), sq.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b, "case {case}: pop order diverged"),
            }
        }
    }
}

/// The sharded engine delivers a bit-identical event trace at every
/// worker count, on randomized schedules that exercise the hard cases:
/// same-timestamp ties within a shard and cross-shard messages landing
/// *exactly* on the synchronization-horizon boundary (`delay ==
/// lookahead`, the smallest legal delay, which places the arrival at the
/// first instant of a later window).
#[test]
fn sharded_engine_trace_identical_across_worker_counts() {
    use low_latency_redundancy::simcore::shard::{ShardCtx, ShardEngine, ShardLogic};

    const LOOKAHEAD: f64 = 1.0e-3;

    struct Rec {
        shards: usize,
        budget: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl ShardLogic for Rec {
        type Event = u32;
        fn handle(&mut self, now: SimTime, id: u32, ctx: &mut ShardCtx<'_, u32>) {
            self.log.push((now, id));
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let h = id.wrapping_mul(2_654_435_761);
            match h % 4 {
                // A tie: same timestamp, must pop after everything already
                // queued at `now`.
                0 => ctx.schedule_after(SimTime::ZERO, id + 1),
                1 => ctx.schedule_after(SimTime::from_secs((h % 7 + 1) as f64 * 1e-4), id + 1),
                // Message arriving exactly on the horizon boundary.
                2 if self.shards > 1 => {
                    let to = (ctx.shard() + 1 + (h as usize % (self.shards - 1))) % self.shards;
                    ctx.send(to, SimTime::from_secs(LOOKAHEAD), id + 1);
                }
                _ => {}
            }
        }
    }

    let mut rng = Rng::seed_from(0xC0DE5);
    for &shards in &[1usize, 2, 5] {
        let run = |workers: usize, seeds: &[(usize, u64)]| {
            let states = (0..shards)
                .map(|_| Rec {
                    shards,
                    budget: 400,
                    log: Vec::new(),
                })
                .collect();
            let mut engine = ShardEngine::new(states, SimTime::from_secs(LOOKAHEAD));
            for &(s, t) in seeds {
                engine.schedule(s, SimTime::from_secs(t as f64 * 1e-4), t as u32);
            }
            let stats = engine.run_with(workers);
            (stats, engine.into_states())
        };
        let seeds: Vec<(usize, u64)> = (0..40)
            .map(|_| (rng.index(shards), rng.u64_below(20)))
            .collect();
        let (base_stats, base_states) = run(1, &seeds);
        for workers in [2usize, 3, 8] {
            let (stats, states) = run(workers, &seeds);
            assert_eq!(stats.events, base_stats.events, "{shards} shards @ {workers} workers");
            assert_eq!(stats.rounds, base_stats.rounds, "{shards} shards @ {workers} workers");
            assert_eq!(stats.end_time, base_stats.end_time);
            for (s, (a, b)) in base_states.iter().zip(&states).enumerate() {
                assert_eq!(
                    a.log, b.log,
                    "shard {s} trace diverged at {workers} workers ({shards} shards)"
                );
            }
        }
    }
}

/// The sharded *service* produces bit-identical measurements at every
/// thread count — the workspace's signature invariant carried onto the
/// parallel engine (CI additionally byte-diffs whole `repro` result trees
/// at `--threads 1/3/8`).
#[test]
fn sharded_service_bit_identical_across_thread_counts() {
    use low_latency_redundancy::simcore::dist::Exponential;
    use low_latency_redundancy::storesim::service::{Frontend, ServiceConfig};
    use low_latency_redundancy::storesim::sharded::run_sharded;
    use std::sync::Arc;

    let mut cfg = ServiceConfig::ramp(Arc::new(Exponential::with_mean(1.0e-3)), 0.1, 0.5);
    cfg.servers = 24;
    cfg.shards = 1536;
    cfg.cancellation = true;
    cfg.propagation = 200.0e-6;
    cfg.requests = 12_000;
    cfg.warmup = 1_000;
    if let Frontend::Adaptive { window, .. } = &mut cfg.frontend {
        *window = 512;
    }

    let base = run_sharded(&cfg, 6, 1);
    for threads in [3usize, 8] {
        let out = run_sharded(&cfg, 6, threads);
        assert_eq!(out.engine.events, base.engine.events, "{threads} threads");
        assert_eq!(out.engine.rounds, base.engine.rounds, "{threads} threads");
        assert_eq!(out.result.completed, base.result.completed);
        assert_eq!(out.result.copies_issued, base.result.copies_issued);
        assert_eq!(out.result.copies_cancelled, base.result.copies_cancelled);
        assert_eq!(
            out.result.switch_off.to_bits(),
            base.result.switch_off.to_bits()
        );
        assert_eq!(
            out.result.mean_utilization.to_bits(),
            base.result.mean_utilization.to_bits()
        );
        for (i, (a, b)) in base.result.buckets.iter().zip(&out.result.buckets).enumerate() {
            assert_eq!(a.requests, b.requests, "bucket {i} @ {threads} threads");
            assert_eq!(a.k2_requests, b.k2_requests, "bucket {i} @ {threads} threads");
            assert_eq!(
                a.mean_response.to_bits(),
                b.mean_response.to_bits(),
                "bucket {i} @ {threads} threads"
            );
            assert_eq!(a.p99.to_bits(), b.p99.to_bits(), "bucket {i} @ {threads} threads");
        }
    }
}

/// The partitioned frontend is pure placement: with 4 logical frontend
/// lanes, every (frontend shards, workers) combination in {1,2,4} ×
/// {1,3,8} produces bit-identical outcomes on a deliberately hostile
/// workload — a *discrete* two-point service distribution (so departures
/// collide in exact ties constantly) with cancellation on, and a summary
/// period of zero, which the engine floors to the propagation delay so
/// every cross-lane load summary lands exactly on a synchronization-
/// horizon boundary (the smallest legal delay, the first instant of a
/// later window). Ties and boundary events are where a placement- or
/// schedule-dependent merge would first diverge.
#[test]
fn partitioned_frontend_trace_identical_across_placements_and_workers() {
    use low_latency_redundancy::storesim::service::{
        Frontend, LoadModel, MomentSource, ServiceConfig,
    };
    use low_latency_redundancy::storesim::sharded::{run_sharded_placed, ShardedOutcome};
    use std::sync::Arc;

    // Two service values at 10:1 odds, mean 1 ms: heavy exact ties.
    let service = Arc::new(DiscreteEmpirical::new(&[(0.5e-3, 0.9), (5.5e-3, 0.1)]));
    let mut cfg = ServiceConfig::ramp(service, 0.08, 0.5);
    cfg.servers = 24;
    cfg.shards = 1536;
    cfg.requests = 12_000;
    cfg.warmup = 1_000;
    cfg.cancellation = true;
    cfg.propagation = 200.0e-6;
    cfg.frontend_lanes = 4;
    cfg.summary_period = 0.0; // floored to the lookahead => boundary hits
    cfg.frontend = Frontend::Adaptive {
        window: 512,
        moments: MomentSource::Estimated {
            window: 2048,
            min_samples: 128,
            recalibrate: 256,
        },
        load_model: LoadModel::Global,
    };

    fn fingerprint(out: &ShardedOutcome) -> Vec<u64> {
        let mut v = vec![
            out.engine.events,
            out.engine.rounds,
            out.summaries,
            out.result.completed as u64,
            out.result.copies_issued,
            out.result.copies_cancelled,
            out.result.switch_off.to_bits(),
            out.result.live_threshold.to_bits(),
            out.result.mean_utilization.to_bits(),
            out.result.response.mean().to_bits(),
        ];
        for b in &out.result.buckets {
            v.push(b.requests as u64);
            v.push(b.k2_requests as u64);
            v.push(b.mean_response.to_bits());
            v.push(b.p99.to_bits());
        }
        v
    }

    let reference = run_sharded_placed(&cfg, 6, 1, 1);
    assert!(
        reference.summaries > 0,
        "the hostile workload must actually exchange summaries"
    );
    let want = fingerprint(&reference);
    for frontends in [1usize, 2, 4] {
        for workers in [1usize, 3, 8] {
            let got = fingerprint(&run_sharded_placed(&cfg, 6, workers, frontends));
            assert_eq!(
                want, got,
                "trace diverged at frontends={frontends} workers={workers}"
            );
        }
    }
}

/// The partitioned-frontend refactor left the single-lane path untouched,
/// bit for bit: quick-mode `fig-service-scale` — the PR 6 sharded-engine
/// scale headline, which runs with one frontend lane — must reproduce its
/// pre-refactor report exactly (FNV-1a-64 over the report bytes, captured
/// from the PR 6 binary). Any drift means the lane decomposition leaked
/// into the F=1 code path — RNG forking, estimator feeding, or event-key
/// assignment — rather than being pure placement.
///
/// Platform note: same libm caveat as
/// [`load_model_global_reproduces_pr4_reports_byte_for_byte`] — and same
/// PR 10 re-pin: the ring-order replica fix moved stored placement, so
/// the hash below is the post-fix F=1 output.
#[test]
fn partitioned_frontend_reproduces_pr6_scale_report_byte_for_byte() {
    use repro_bench::{run_experiment, Effort};

    fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    let out = run_experiment("fig-service-scale", Effort::Quick);
    assert_eq!(
        fnv1a64(out.as_bytes()),
        0x64c485f0964afb4bu64,
        "fig-service-scale drifted from its PR 6 pinned output:\n{out}"
    );
}

/// One process-wide thread budget composes across nested spawners: a
/// saturated outer lease forces inner spawners serial instead of
/// multiplying `tasks × shards` threads, slots return on drop, and an
/// engine nested inside `Runner` tasks still produces the serial-identical
/// result (no deadlock, no divergence).
#[test]
fn nested_thread_budget_composes_without_oversubscription() {
    use low_latency_redundancy::simcore::dist::Exponential;
    use low_latency_redundancy::simcore::runner::{Runner, ThreadBudget};
    use low_latency_redundancy::storesim::service::ServiceConfig;
    use low_latency_redundancy::storesim::sharded::run_sharded;
    use std::sync::Arc;

    // Instance-level accounting (exact, free of cross-test races on the
    // process-wide budget): capacity 4 = caller + 3 extra.
    let budget = ThreadBudget::new(4);
    let outer = budget.lease(4);
    assert_eq!(outer.threads(), 4);
    assert_eq!(budget.in_use(), 3);
    let inner = budget.lease(8);
    assert_eq!(inner.threads(), 1, "saturated budget must degrade to serial");
    drop(inner);
    drop(outer);
    assert_eq!(budget.in_use(), 0, "slots must return on drop");
    let again = budget.lease(2);
    assert_eq!(again.threads(), 2);
    drop(again);

    // Integration: engines nested inside Runner tasks lease from the same
    // global budget, so however the grant lands, every nested run must
    // match the serial reference bit-for-bit and the budget must drain.
    let mut cfg = ServiceConfig::ramp(Arc::new(Exponential::with_mean(1.0e-3)), 0.1, 0.4);
    cfg.servers = 8;
    cfg.shards = 512;
    cfg.requests = 4_000;
    cfg.warmup = 400;
    let reference = run_sharded(&cfg, 4, 1);
    let nested = Runner::new(8).run(3, |_| run_sharded(&cfg, 4, 8));
    for out in &nested {
        assert_eq!(out.engine.events, reference.engine.events);
        assert_eq!(
            out.result.switch_off.to_bits(),
            reference.result.switch_off.to_bits()
        );
        assert_eq!(out.result.completed, reference.result.completed);
    }
}
