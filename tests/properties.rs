//! Property-based tests over the substrate invariants (proptest).
//!
//! Each property here is one the simulators rely on for *correctness of
//! the reproduction*, not just code health: event ordering is what makes
//! the FIFO queues exact; LRU equivalence is what makes the cache:disk
//! ratio meaningful; ring monotonicity is what the paper's n/n+1 placement
//! assumes; distribution normalization is what puts every Figure 2 family
//! on the same unit-mean axis.

use low_latency_redundancy::netsim::tcp::{TcpConfig, TcpReceiver, TcpSender};
use low_latency_redundancy::netsim::topology::FatTree;
use low_latency_redundancy::simcore::dist::{
    DiscreteEmpirical, Distribution, LogNormal, Pareto, TwoPoint, Weibull,
};
use low_latency_redundancy::simcore::event::EventQueue;
use low_latency_redundancy::simcore::rng::Rng;
use low_latency_redundancy::simcore::stats::SampleSet;
use low_latency_redundancy::simcore::time::SimTime;
use low_latency_redundancy::storesim::hashring::HashRing;
use low_latency_redundancy::storesim::lru::LruCache;
use proptest::prelude::*;

proptest! {
    /// Events pop sorted by time; ties pop in insertion order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u32..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t as f64), i);
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_secs(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// LRU behaves exactly like a reference model (vector of (key,size),
    /// most recent first, capacity-bounded).
    #[test]
    fn lru_matches_reference_model(
        ops in prop::collection::vec((0u64..20, 1u64..40, prop::bool::ANY), 1..300),
        cap in 50u64..200,
    ) {
        let mut lru = LruCache::new(cap);
        let mut model: Vec<(u64, u64)> = Vec::new(); // MRU-first
        for (key, size, is_insert) in ops {
            if is_insert && size <= cap {
                lru.insert(key, size);
                model.retain(|&(k, _)| k != key);
                model.insert(0, (key, size));
                let mut used: u64 = model.iter().map(|&(_, s)| s).sum();
                while used > cap {
                    let (_, s) = model.pop().unwrap();
                    used -= s;
                }
            } else if !is_insert {
                let hit = lru.access(key);
                let model_hit = model.iter().any(|&(k, _)| k == key);
                prop_assert_eq!(hit, model_hit, "hit/miss diverged for {}", key);
                if model_hit {
                    let pos = model.iter().position(|&(k, _)| k == key).unwrap();
                    let entry = model.remove(pos);
                    model.insert(0, entry);
                }
            }
            let used: u64 = model.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(lru.used_bytes(), used);
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    /// Consistent hashing: keys only move *to the new server* when the
    /// cluster grows.
    #[test]
    fn ring_growth_is_monotone(servers in 2usize..12, keys in prop::collection::vec(any::<u64>(), 50)) {
        let before = HashRing::new(servers, 64);
        let after = HashRing::new(servers + 1, 64);
        for k in keys {
            let (b, a) = (before.primary(k), after.primary(k));
            if b != a {
                prop_assert_eq!(a, servers, "key {} moved to an old server", k);
            }
        }
    }

    /// Unit-mean families really have unit mean, and samples are positive
    /// and finite.
    #[test]
    fn unit_mean_families_normalized(seed in any::<u64>(), shape_sel in 0usize..4) {
        let dist: Box<dyn Distribution> = match shape_sel {
            0 => Box::new(Pareto::unit_mean(2.0 + (seed % 50) as f64 / 10.0)),
            1 => Box::new(Weibull::unit_mean(0.3 + (seed % 40) as f64 / 10.0)),
            2 => Box::new(TwoPoint::new((seed % 99) as f64 / 100.0)),
            _ => Box::new(LogNormal::unit_mean((seed % 20) as f64 / 10.0)),
        };
        prop_assert!((dist.mean() - 1.0).abs() < 1e-6, "{} mean {}", dist.label(), dist.mean());
        let mut rng = Rng::seed_from(seed);
        for _ in 0..200 {
            let x = dist.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// Alias-method sampling only produces support values.
    #[test]
    fn alias_samples_in_support(weights in prop::collection::vec(0.0f64..10.0, 1..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let pairs: Vec<(f64, f64)> = weights.iter().enumerate().map(|(i, &w)| (i as f64, w)).collect();
        let d = DiscreteEmpirical::new(&pairs);
        let mut rng = Rng::seed_from(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            let idx = x as usize;
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight value {}", x);
        }
    }

    /// Quantiles are monotone and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-1.0e6f64..1.0e6, 2..400)) {
        let mut s: SampleSet = xs.iter().copied().collect();
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| s.quantile(q)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((vals[0] - lo).abs() < 1e-9 && (vals[5] - hi).abs() < 1e-9);
    }

    /// Fat-tree routing reaches every destination from every node along
    /// every ECMP candidate, within the structural 6-hop bound.
    #[test]
    fn fat_tree_all_candidates_reach(k in prop::sample::select(vec![2usize, 4, 6]), src_sel in any::<u32>(), dst_sel in any::<u32>()) {
        let t = FatTree::new(k);
        let hosts = t.hosts() as u32;
        let src = src_sel % hosts;
        let dst = dst_sel % hosts;
        prop_assume!(src != dst);
        fn reaches(t: &FatTree, at: u32, dst: u32, depth: usize) -> bool {
            if at == dst { return true; }
            if depth == 0 { return false; }
            t.candidates(at, dst).iter().all(|&l| reaches(t, t.link(l).to, dst, depth - 1))
        }
        prop_assert!(reaches(&t, src, dst, 6));
    }

    /// TCP delivers every packet exactly once to the application under an
    /// arbitrary (finite) loss pattern with a lossless retransmission
    /// fallback: the transfer always completes and the receiver's
    /// cumulative counter equals the flow length.
    #[test]
    fn tcp_completes_under_random_loss(
        total in 1u32..60,
        loss_pattern in prop::collection::vec(prop::bool::ANY, 0..40),
    ) {
        let mut s = TcpSender::new(total, TcpConfig::default());
        let mut r = TcpReceiver::new(total);
        let mut now = 0.0f64;
        let mut wire = s.on_start(now).send;
        let mut drops = loss_pattern.into_iter();
        let mut completed = false;
        let mut guard = 0;
        while !completed && guard < 10_000 {
            guard += 1;
            now += 1e-4;
            let mut acks = Vec::new();
            for seq in wire.drain(..) {
                if drops.next() == Some(true) {
                    continue; // lost
                }
                if let Some(c) = r.on_data(seq, false) {
                    acks.push(c);
                }
            }
            let mut next = Vec::new();
            for c in acks {
                let a = s.on_ack(now, c);
                completed |= a.completed;
                next.extend(a.send);
            }
            if next.is_empty() && !completed {
                now += s.rto();
                let a = s.on_timeout(now, s.timer_epoch);
                next.extend(a.send);
            }
            wire = next;
        }
        prop_assert!(completed, "transfer stalled");
        prop_assert_eq!(r.cum(), total);
    }
}

/// Deterministic cross-crate check (not a proptest): racing thread
/// replicas through the real library returns the known-fastest one.
#[test]
fn library_race_end_to_end() {
    use low_latency_redundancy::redundancy::prelude::*;
    use std::time::Duration;
    let out = race(vec![
        replica(|_t: &CancelToken| {
            std::thread::sleep(Duration::from_millis(30));
            "slow"
        }),
        replica(|_t: &CancelToken| {
            std::thread::sleep(Duration::from_millis(2));
            "fast"
        }),
    ])
    .unwrap();
    assert_eq!(out.value, "fast");
}
