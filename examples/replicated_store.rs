//! A miniature of the paper's §2.2 disk-backed store experiment: sweep the
//! load, watch replication help below ~30 % and hurt above it.
//!
//! ```text
//! cargo run --release --example replicated_store
//! ```

#![forbid(unsafe_code)]

use low_latency_redundancy::storesim::experiments::{run_load_sweep, ExperimentSpec};

fn main() {
    let spec = ExperimentSpec::fig5_base();
    println!("disk-backed store, 4 servers / 10 clients, 4 KB files, cache:disk 0.1\n");
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12} | verdict",
        "load", "mean 1x (ms)", "mean 2x (ms)", "p999 1x", "p999 2x"
    );
    let loads = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45];
    for row in run_load_sweep(&spec, &loads, 60_000, 7) {
        let verdict = if row.mean_double < row.mean_single {
            "replicate"
        } else {
            "don't"
        };
        println!(
            "{:>6.2} | {:>12.3} {:>12.3} | {:>12.1} {:>12.1} | {verdict}",
            row.load,
            row.mean_single * 1e3,
            row.mean_double * 1e3,
            row.p999_single * 1e3,
            row.p999_double * 1e3,
        );
    }
    println!("\nthe crossover near 0.3 load is the paper's Figure 5 threshold");
}
