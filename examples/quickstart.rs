//! Quickstart: race two replicas, hedge a third, and ask the planner
//! whether always-on replication is worth it for your workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use low_latency_redundancy::redundancy::prelude::*;
use low_latency_redundancy::simcore::dist::{Distribution, LogNormal};
use low_latency_redundancy::simcore::rng::Rng;
use std::time::Duration;

/// A fake backend replica: log-normal "service time" slept on a thread.
fn backend(name: &'static str, mean_ms: f64, seed: u64) -> impl FnOnce(&CancelToken) -> &'static str {
    move |token: &CancelToken| {
        let dist = LogNormal::with_mean_sigma(mean_ms, 0.8);
        let mut rng = Rng::seed_from(seed);
        let total = dist.sample(&mut rng);
        // Sleep in 1 ms slices so cancellation is honored promptly.
        let mut slept = 0.0;
        while slept < total {
            if token.is_cancelled() {
                return name; // cancelled mid-flight
            }
            std::thread::sleep(Duration::from_millis(1));
            slept += 1.0;
        }
        name
    }
}

fn main() {
    println!("== 1. Race two replicas (the paper's always-replicate) ==");
    let out = race(vec![
        replica(backend("replica-A", 20.0, 1)),
        replica(backend("replica-B", 20.0, 2)),
    ])
    .expect("some replica answers");
    println!(
        "   winner: {} (index {}) in {:?}; {} copies launched\n",
        out.value, out.winner, out.latency, out.launched
    );

    println!("== 2. Hedged request (duplicate only the slow tail) ==");
    let out = hedged(
        vec![
            replica(backend("primary", 60.0, 3)),
            replica(backend("hedge", 10.0, 4)),
        ],
        Duration::from_millis(25),
    )
    .expect("some replica answers");
    println!(
        "   winner: {} in {:?}; launched {} of 2 copies\n",
        out.value, out.latency, out.launched
    );

    println!("== 3. Should you replicate? (paper section 2.1 as an API) ==");
    // Describe the workload: 4 ms mean service, exponential-ish variability,
    // 50 us client-side cost per extra copy.
    let profile = WorkloadProfile {
        mean_service: 4.0e-3,
        scv: 1.0,
        client_overhead: 50.0e-6,
    };
    let planner = Planner::new(profile);
    println!(
        "   threshold load for this workload: {:.1}% utilization",
        planner.threshold_load() * 100.0
    );
    for load in [0.10, 0.25, 0.40] {
        let advice = planner.advise(load);
        println!(
            "   at {:>3.0}% load: replicate={} (predicted {:.2} ms -> {:.2} ms, speedup {:.2}x)",
            load * 100.0,
            advice.replicate,
            advice.mean_single * 1e3,
            advice.mean_replicated * 1e3,
            advice.speedup()
        );
    }
}
