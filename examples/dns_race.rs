//! Race DNS resolvers with async futures — the paper's §3.2 as async code.
//!
//! Ten simulated resolvers with the heterogeneous latency profiles of
//! `wansim::dns`; each "query" is a future sleeping for a sampled response
//! time. We race the k best and report the latency distribution against
//! the single best server, k = 1, 2, 5, 10 — a live, async miniature of
//! Figure 16. The race uses `redundancy::tokio_exec`, whose futures are
//! runtime-agnostic; here they run on the crate's built-in `block_on`.
//!
//! ```text
//! cargo run --release --features tokio-exec --example dns_race
//! ```

#![forbid(unsafe_code)]

use low_latency_redundancy::redundancy::tokio_exec::{block_on, race_async, sleep};
use low_latency_redundancy::simcore::rng::Rng;
use low_latency_redundancy::simcore::stats::SampleSet;
use low_latency_redundancy::wansim::dns::{DnsExperiment, DnsPopulation};
use std::future::Future;
use std::pin::Pin;
use std::time::Duration;

fn main() {
    // Stage 1: rank the resolvers by mean (offline, from the model).
    let exp = DnsExperiment::rank(DnsPopulation::paper_like(7), 5_000, 42);
    println!("stage 1 ranking (best first): {:?}", exp.ranking);

    // Stage 2, but *live*: every trial races k sleeping futures; first
    // answer wins, stragglers are dropped mid-sleep.
    let trials = 200;
    let mut rng = Rng::seed_from(99);
    for k in [1usize, 2, 5, 10] {
        let mut lat = SampleSet::new();
        for _t in 0..trials {
            // Pre-sample the k response times from the models (determinism),
            // then race real sleeping futures.
            let delays: Vec<f64> = exp.ranking[..k]
                .iter()
                .map(|&i| exp.population.servers[i].sample(&mut rng))
                .collect();
            let futs: Vec<Pin<Box<dyn Future<Output = usize> + Send>>> = delays
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    // Scale 1000x down so the demo finishes quickly: model
                    // milliseconds become microseconds of real sleeping.
                    let dur = Duration::from_micros((d * 1e3) as u64);
                    Box::pin(async move {
                        sleep(dur).await;
                        i
                    }) as Pin<Box<dyn Future<Output = usize> + Send>>
                })
                .collect();
            let (_winner, _idx) = block_on(race_async(futs)).expect("someone answers");
            // Record the *model* latency of the winner (min of samples):
            // wall clock would add scheduler noise to the demo.
            lat.push(delays.iter().fold(f64::INFINITY, |a, &b| a.min(b)));
        }
        println!(
            "k={k:>2}: mean {:>7.2} ms   p95 {:>7.2} ms   (over {trials} live races)",
            lat.mean() * 1e3,
            lat.quantile(0.95) * 1e3,
        );
    }
    println!("\ncompare with Figure 16: racing 10 servers roughly halves every metric");
}
