//! In-network replication on the paper's 54-host fat-tree (§2.4): replicate
//! the first 8 packets of every flow on an alternate ECMP path at low
//! priority, and compare short-flow completion times.
//!
//! ```text
//! cargo run --release --example fat_tree_flows [load] [flows]
//! ```

#![forbid(unsafe_code)]

use low_latency_redundancy::netsim::experiments::{run_pair, NetConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let load: f64 = args
        .next()
        .map(|s| s.parse().expect("load must be a number in (0,1)"))
        .unwrap_or(0.4);
    let flows: usize = args
        .next()
        .map(|s| s.parse().expect("flows must be an integer"))
        .unwrap_or(10_000);

    println!("fat-tree k=6 (54 hosts, 45 switches), 5 Gbps links, 2 us/hop");
    println!("load {load}, {flows} flows, replicating first 8 packets\n");

    let cfg = NetConfig {
        load,
        flows,
        ..NetConfig::default()
    };
    let mut pair = run_pair(&cfg, 1);

    println!("flows < 10 KB:");
    println!(
        "  median FCT: {:>8.1} us -> {:>8.1} us   ({:+.1}%)",
        pair.baseline.small_median() * 1e6,
        pair.replicated.small_median() * 1e6,
        -pair.median_improvement_pct(),
    );
    println!(
        "  p99 FCT:    {:>8.1} us -> {:>8.1} us",
        pair.baseline.small_p99() * 1e6,
        pair.replicated.small_p99() * 1e6,
    );
    println!(
        "  timeouts:   {:>8} -> {:>8}",
        pair.baseline.timeouts, pair.replicated.timeouts
    );
    println!(
        "  drops (original class): {} -> {}   (replica class: {})",
        pair.baseline.drops_high, pair.replicated.drops_high, pair.replicated.drops_low
    );
    println!(
        "\nelephants (>= 1 MB): mean change {:+.2}% (paper: statistically insignificant)",
        -pair.elephant_mean_change_pct()
    );
}
