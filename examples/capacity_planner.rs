//! Capacity planning with the threshold rule: for your measured workload,
//! at which utilizations does always-on replication pay, and how does the
//! answer move with service variability and client-side cost?
//!
//! The planner's predictions are then *checked against the paper's §2.1
//! simulator* at a few points — the same validation loop a cautious
//! operator would run before enabling hedging in production.
//!
//! ```text
//! cargo run --release --example capacity_planner
//! ```

#![forbid(unsafe_code)]

use low_latency_redundancy::queuesim::model::{run, Config};
use low_latency_redundancy::redundancy::prelude::*;
use low_latency_redundancy::simcore::dist::{Exponential, HyperExponential};

fn main() {
    println!("threshold load by workload shape (client overhead as % of mean service):\n");
    println!(
        "{:>24} | {:>7} {:>7} {:>7} {:>7}",
        "service variability", "0%", "10%", "25%", "50%"
    );
    for (label, scv) in [
        ("deterministic (scv 0)", 0.0),
        ("Erlang-4 (scv 0.25)", 0.25),
        ("exponential (scv 1)", 1.0),
    ] {
        let mut cells = Vec::new();
        for frac in [0.0, 0.1, 0.25, 0.5] {
            let planner = Planner::new(WorkloadProfile {
                mean_service: 1.0,
                scv,
                client_overhead: frac,
            });
            cells.push(format!("{:>6.1}%", planner.threshold_load() * 100.0));
        }
        println!("{label:>24} | {}", cells.join(" "));
    }

    println!("\nvalidating the exponential column against the queueing simulator:");
    let planner = Planner::new(WorkloadProfile {
        mean_service: 1.0,
        scv: 1.0,
        client_overhead: 0.0,
    });
    for load in [0.25, 0.40] {
        let advice = planner.advise(load);
        let base = Config::new(Exponential::unit(), load).with_requests(120_000, 12_000);
        let single = run(&base.clone().with_copies(1), 9).moments.mean();
        let double = run(&base.with_copies(2), 9).moments.mean();
        println!(
            "  load {load:.2}: planner says replicate={}, predicts {:.3} vs {:.3}; \
             simulator measures {:.3} vs {:.3}",
            advice.replicate, advice.mean_single, advice.mean_replicated, single, double
        );
    }

    println!("\nand a heavy-tailed workload for contrast (H2, scv 8):");
    let heavy = HyperExponential::unit_mean_with_scv(8.0);
    for load in [0.25, 0.40] {
        let base = Config::new(heavy, load).with_requests(120_000, 12_000);
        let single = run(&base.clone().with_copies(1), 9).moments.mean();
        let double = run(&base.with_copies(2), 9).moments.mean();
        println!(
            "  load {load:.2}: simulator measures mean {single:.3} (1 copy) vs {double:.3} (2 copies)"
        );
    }
    println!("\nheavier tails keep replication profitable deeper into the load range —");
    println!("the paper's Figure 2 in one terminal screen.");
}
