//! Packets and wire constants.

use crate::topology::NodeId;

/// Maximum segment size for data packets (bytes of payload).
pub const MSS: u32 = 1460;
/// Header overhead per packet (Ethernet + IP + TCP), bytes.
pub const HEADER_BYTES: u32 = 40;
/// ACK packet size on the wire.
pub const ACK_BYTES: u32 = HEADER_BYTES;

/// Scheduling class at switch ports: the paper's replicas are strictly
/// lower priority than all original traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Original data and ACKs.
    High,
    /// Replicated copies.
    Low,
}

/// What the packet carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment: `seq` is the packet index within the flow.
    Data {
        /// Packet index within the flow (0-based).
        seq: u32,
        /// `true` for in-network replicas (low priority, deduped at the
        /// receiver, never re-replicated).
        replica: bool,
    },
    /// A cumulative acknowledgment: `cum` is the next expected packet.
    Ack {
        /// Next expected packet index.
        cum: u32,
    },
}

/// A packet in flight.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: u32,
    /// Payload + kind.
    pub kind: PacketKind,
    /// Total wire size in bytes (payload + headers).
    pub bytes: u32,
    /// Destination host.
    pub dst: NodeId,
}

impl Packet {
    /// Scheduling class.
    pub fn priority(&self) -> Priority {
        match self.kind {
            PacketKind::Data { replica: true, .. } => Priority::Low,
            _ => Priority::High,
        }
    }

    /// `true` for data packets (original or replica).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

/// Number of full-or-partial data packets needed for `bytes` of payload.
pub fn packets_for(bytes: u64) -> u32 {
    (bytes.max(1)).div_ceil(MSS as u64) as u32
}

/// Wire size of data packet `seq` of a flow with `total_bytes` payload.
pub fn data_packet_bytes(total_bytes: u64, seq: u32) -> u32 {
    let total = packets_for(total_bytes);
    debug_assert!(seq < total);
    let payload = if seq + 1 == total {
        let rem = (total_bytes - (total as u64 - 1) * MSS as u64) as u32;
        rem.max(1)
    } else {
        MSS
    };
    payload + HEADER_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_rounds_up() {
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(1460), 1);
        assert_eq!(packets_for(1461), 2);
        assert_eq!(packets_for(10_000), 7);
        assert_eq!(packets_for(3 * 1024 * 1024), 2155);
    }

    #[test]
    fn last_packet_carries_remainder() {
        let total = 10_000u64; // 6*1460 + 1240
        assert_eq!(data_packet_bytes(total, 0), 1460 + 40);
        assert_eq!(data_packet_bytes(total, 6), 1240 + 40);
    }

    #[test]
    fn priorities() {
        let d = Packet {
            flow: 0,
            kind: PacketKind::Data { seq: 0, replica: false },
            bytes: 1500,
            dst: 1,
        };
        let r = Packet {
            kind: PacketKind::Data { seq: 0, replica: true },
            ..d
        };
        let a = Packet {
            kind: PacketKind::Ack { cum: 1 },
            bytes: ACK_BYTES,
            ..d
        };
        assert_eq!(d.priority(), Priority::High);
        assert_eq!(r.priority(), Priority::Low);
        assert_eq!(a.priority(), Priority::High);
        assert!(d.is_data() && r.is_data() && !a.is_data());
    }
}
