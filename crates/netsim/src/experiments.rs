//! The Figure 14 sweeps.
//!
//! Fig 14(a): % improvement in median small-flow FCT vs load for three
//! (bandwidth, per-hop-delay) combinations — 5 Gbps/2 µs, 10 Gbps/2 µs,
//! 10 Gbps/6 µs. The paper's shape: small at low load (little congestion to
//! dodge), peaking near 40 %, falling at high load (every path congested),
//! and shrinking as the delay-bandwidth product grows (queueing is a
//! smaller share of FCT).
//!
//! Fig 14(b): 99th-percentile small-flow FCT vs load, with and without
//! replication — the spike past 70 % load is unreplicated flows eating
//! 10 ms minRTO timeouts.
//!
//! Fig 14(c): the small-flow FCT CDF at 40 % load.

use crate::sim::{run, FctStats, SimConfig};
use crate::tcp::TcpConfig;
use simcore::runner::Runner;
use simcore::stats::Ccdf;

/// User-facing knobs for one Figure 14 data point.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Link rate, bytes/second.
    pub link_rate_bytes_per_sec: f64,
    /// Per-hop delay, seconds.
    pub per_hop_delay: f64,
    /// Offered load fraction.
    pub load: f64,
    /// Flows to simulate.
    pub flows: usize,
    /// Packets of each flow to replicate when replication is on.
    pub replicate_first: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link_rate_bytes_per_sec: 625.0e6, // 5 Gbps
            per_hop_delay: 2.0e-6,
            load: 0.4,
            flows: 20_000,
            replicate_first: 8,
        }
    }
}

impl NetConfig {
    /// The paper's three delay/bandwidth combinations for Fig 14(a).
    pub fn paper_combos() -> Vec<(&'static str, f64, f64)> {
        vec![
            ("5 Gbps, 2 us per hop", 625.0e6, 2.0e-6),
            ("10 Gbps, 2 us per hop", 1250.0e6, 2.0e-6),
            ("10 Gbps, 6 us per hop", 1250.0e6, 6.0e-6),
        ]
    }

    fn to_sim(&self, replicate: bool, seed: u64) -> SimConfig {
        SimConfig {
            k: 6,
            link_rate_bytes_per_sec: self.link_rate_bytes_per_sec,
            per_hop_delay: self.per_hop_delay,
            buffer_bytes: crate::port::DEFAULT_BUFFER_BYTES,
            replicate_first: if replicate { self.replicate_first } else { 0 },
            tcp: TcpConfig::default(),
            load: self.load,
            flows: self.flows,
            seed,
        }
    }
}

/// A paired (baseline, replicated) run over identical flows.
#[derive(Debug)]
pub struct PairOutput {
    /// Without replication.
    pub baseline: FctStats,
    /// With first-J-packet replication.
    pub replicated: FctStats,
}

impl PairOutput {
    /// Percent improvement in median small-flow FCT.
    pub fn median_improvement_pct(&mut self) -> f64 {
        let b = self.baseline.small_median();
        let r = self.replicated.small_median();
        100.0 * (1.0 - r / b)
    }

    /// Percent improvement in mean FCT for elephant flows (≥ 1 MB) — the
    /// paper reports this as statistically insignificant (~0.1 %).
    pub fn elephant_mean_change_pct(&self) -> f64 {
        if self.baseline.large.is_empty() || self.replicated.large.is_empty() {
            return 0.0;
        }
        let b = self.baseline.large.mean();
        let r = self.replicated.large.mean();
        100.0 * (1.0 - r / b)
    }
}

/// Runs the baseline and the replicated fabric on identical flows. The two
/// packet-level runs execute in parallel on the global [`Runner`].
pub fn run_pair(cfg: &NetConfig, seed: u64) -> PairOutput {
    let (baseline, replicated) = Runner::global().pair(
        || run(&cfg.to_sim(false, seed)),
        || run(&cfg.to_sim(true, seed)),
    );
    PairOutput {
        baseline,
        replicated,
    }
}

/// One Fig 14(a) row.
#[derive(Clone, Debug)]
pub struct Fig14aRow {
    /// Which (bandwidth, delay) combo.
    pub combo: &'static str,
    /// Offered load.
    pub load: f64,
    /// Median small-flow FCT without replication (seconds).
    pub median_baseline: f64,
    /// Median small-flow FCT with replication (seconds).
    pub median_replicated: f64,
    /// Percent improvement.
    pub improvement_pct: f64,
}

/// Sweeps Fig 14(a): all three combos across `loads`. All
/// `combos × loads × {baseline, replicated}` packet-level runs execute in
/// parallel, with per-task configuration derived from the task index, so
/// rows are bit-identical at any thread count.
pub fn fig14a(loads: &[f64], flows: usize, seed: u64) -> Vec<Fig14aRow> {
    let combos = NetConfig::paper_combos();
    let points: Vec<(&'static str, f64, f64, f64)> = combos
        .iter()
        .flat_map(|&(combo, rate, delay)| {
            loads.iter().map(move |&load| (combo, rate, delay, load))
        })
        .collect();
    Runner::global().map(&points, |_i, &(combo, rate, delay, load)| {
        let cfg = NetConfig {
            link_rate_bytes_per_sec: rate,
            per_hop_delay: delay,
            load,
            flows,
            ..NetConfig::default()
        };
        let mut pair = run_pair(&cfg, seed);
        Fig14aRow {
            combo,
            load,
            median_baseline: pair.baseline.small_median(),
            median_replicated: pair.replicated.small_median(),
            improvement_pct: pair.median_improvement_pct(),
        }
    })
}

/// One Fig 14(b) row: 99th-percentile small-flow FCT.
#[derive(Clone, Debug)]
pub struct Fig14bRow {
    /// Offered load.
    pub load: f64,
    /// p99 without replication, seconds.
    pub p99_baseline: f64,
    /// p99 with replication, seconds.
    pub p99_replicated: f64,
    /// Timeout counts (baseline, replicated) — the paper's explanation for
    /// the 70-80 % spike.
    pub timeouts: (u64, u64),
}

/// Sweeps Fig 14(b) on the 5 Gbps / 2 µs fabric. Load points run in
/// parallel on the global [`Runner`].
pub fn fig14b(loads: &[f64], flows: usize, seed: u64) -> Vec<Fig14bRow> {
    Runner::global().map(loads, |_i, &load| {
        let cfg = NetConfig {
            load,
            flows,
            ..NetConfig::default()
        };
        let mut pair = run_pair(&cfg, seed);
        Fig14bRow {
            load,
            p99_baseline: pair.baseline.small_p99(),
            p99_replicated: pair.replicated.small_p99(),
            timeouts: (pair.baseline.timeouts, pair.replicated.timeouts),
        }
    })
}

/// Fig 14(c): small-flow FCT CCDFs at one load (baseline, replicated).
pub fn fig14c(load: f64, flows: usize, points: usize, seed: u64) -> (Ccdf, Ccdf) {
    let cfg = NetConfig {
        load,
        flows,
        ..NetConfig::default()
    };
    let mut pair = run_pair(&cfg, seed);
    (
        pair.baseline.small.ccdf(points),
        pair.replicated.small.ccdf(points),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_peaks_at_intermediate_load() {
        // Fig 14(a) shape: low < mid (the falling right edge needs
        // near-saturation runs that belong in the full harness).
        let cfg_low = NetConfig {
            load: 0.1,
            flows: 4_000,
            ..NetConfig::default()
        };
        let cfg_mid = NetConfig {
            load: 0.4,
            flows: 4_000,
            ..NetConfig::default()
        };
        let mut low = run_pair(&cfg_low, 3);
        let mut mid = run_pair(&cfg_mid, 3);
        assert!(
            mid.median_improvement_pct() > low.median_improvement_pct(),
            "low {:.1}% vs mid {:.1}%",
            low.median_improvement_pct(),
            mid.median_improvement_pct()
        );
    }

    #[test]
    fn elephants_unaffected() {
        // The paper reports a statistically-insignificant change for flows
        // over 1 MB. With test-sized runs (~100 elephants) the mean is
        // dominated by a handful of timeout-bearing giants, so compare the
        // median, which is stable at this sample size.
        let cfg = NetConfig {
            load: 0.25,
            flows: 6_000,
            ..NetConfig::default()
        };
        let mut pair = run_pair(&cfg, 7);
        let b = pair.baseline.large.median();
        let r = pair.replicated.large.median();
        let change = (1.0 - r / b).abs() * 100.0;
        assert!(
            change < 15.0,
            "elephant median FCT should be essentially unchanged, got {change:.2}%"
        );
    }

    #[test]
    fn higher_delay_bandwidth_product_shrinks_gain() {
        // Fig 14(a): the 10 Gbps / 6 us combo should gain less than
        // 5 Gbps / 2 us at the same load.
        let base = NetConfig {
            load: 0.4,
            flows: 5_000,
            ..NetConfig::default()
        };
        let big_dbp = NetConfig {
            link_rate_bytes_per_sec: 1250.0e6,
            per_hop_delay: 6.0e-6,
            ..base.clone()
        };
        let mut small = run_pair(&base, 11);
        let mut large = run_pair(&big_dbp, 11);
        assert!(
            small.median_improvement_pct() > large.median_improvement_pct() - 3.0,
            "5G/2us {:.1}% should beat 10G/6us {:.1}%",
            small.median_improvement_pct(),
            large.median_improvement_pct()
        );
    }
}
