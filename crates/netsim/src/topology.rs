//! k-ary fat-tree topology and routing.
//!
//! The paper's fabric: "a common 54-server three-layered fat-tree topology,
//! with a full bisection-bandwidth fabric consisting of 45 6-port switches
//! organized in 6 pods" — the textbook k = 6 fat-tree:
//!
//! * k pods, each with k/2 edge switches and k/2 aggregation switches;
//! * each edge switch serves k/2 hosts → k³/4 = 54 hosts;
//! * (k/2)² = 9 core switches, core *group* j connecting to aggregation
//!   switch j of every pod;
//! * 45 switches total (36 pod + 9 core), every switch with 6 ports.
//!
//! Routing is the standard two-level scheme: *upward* hops have several
//! equal-cost candidates (ECMP chooses by flow hash; the replication scheme
//! uses a different candidate), *downward* hops are unique. [`FatTree`]
//! precomputes, for every (switch, destination host) pair, the egress
//! candidate set, so the inner simulation loop is just an array lookup.

/// Identifies a node (host or switch).
pub type NodeId = u32;
/// Identifies a unidirectional link (an egress port of its source node).
pub type LinkId = u32;

/// What a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// End host (index within the topology's host range).
    Host,
    /// Top-of-rack/edge switch.
    Edge,
    /// Aggregation switch.
    Agg,
    /// Core switch.
    Core,
}

/// One unidirectional link.
#[derive(Clone, Copy, Debug)]
pub struct LinkDef {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

/// A built fat-tree with routing tables.
#[derive(Clone, Debug)]
pub struct FatTree {
    k: usize,
    hosts: usize,
    nodes: Vec<NodeKind>,
    links: Vec<LinkDef>,
    /// For each node, the candidate egress links *toward* each destination
    /// host: `route[node][dst]` is a slice into `route_pool`.
    route_index: Vec<(u32, u8)>, // (offset into pool, count), indexed node*hosts + dst
    route_pool: Vec<LinkId>,
}

impl FatTree {
    /// Builds a k-ary fat-tree (`k` even, ≥ 2).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree needs even k >= 2");
        let half = k / 2;
        let hosts = k * half * half; // k pods * k/2 edges * k/2 hosts
        let edges = k * half;
        let aggs = k * half;
        let cores = half * half;
        let n_nodes = hosts + edges + aggs + cores;

        // Node id layout: [hosts][edges][aggs][cores].
        let host_id = |p: usize, e: usize, h: usize| (p * half * half + e * half + h) as NodeId;
        let edge_id = |p: usize, e: usize| (hosts + p * half + e) as NodeId;
        let agg_id = |p: usize, a: usize| (hosts + edges + p * half + a) as NodeId;
        let core_id = |g: usize, m: usize| (hosts + edges + aggs + g * half + m) as NodeId;

        let mut nodes = vec![NodeKind::Host; hosts];
        nodes.extend(std::iter::repeat_n(NodeKind::Edge, edges));
        nodes.extend(std::iter::repeat_n(NodeKind::Agg, aggs));
        nodes.extend(std::iter::repeat_n(NodeKind::Core, cores));

        let mut links: Vec<LinkDef> = Vec::new();
        let mut link_of = std::collections::HashMap::<(NodeId, NodeId), LinkId>::new();
        let mut add_bidir = |a: NodeId, b: NodeId, links: &mut Vec<LinkDef>| {
            for (x, y) in [(a, b), (b, a)] {
                let id = links.len() as LinkId;
                links.push(LinkDef { from: x, to: y });
                link_of.insert((x, y), id);
            }
        };

        for p in 0..k {
            for e in 0..half {
                for h in 0..half {
                    add_bidir(host_id(p, e, h), edge_id(p, e), &mut links);
                }
                for a in 0..half {
                    add_bidir(edge_id(p, e), agg_id(p, a), &mut links);
                }
            }
            for a in 0..half {
                for m in 0..half {
                    add_bidir(agg_id(p, a), core_id(a, m), &mut links);
                }
            }
        }

        // Routing tables.
        let link = |from: NodeId, to: NodeId| -> LinkId {
            links
                .iter()
                .position(|l| l.from == from && l.to == to)
                .expect("link must exist") as LinkId
        };
        // The closure-based lookup above is O(E); with k = 6 (180 links)
        // and 54*99 route entries this stays trivial, but reuse the map for
        // larger k.
        let link = |from: NodeId, to: NodeId| -> LinkId {
            match link_of.get(&(from, to)) {
                Some(&id) => id,
                None => link(from, to),
            }
        };

        let pod_of_host = |d: usize| d / (half * half);
        let edge_of_host = |d: usize| (d / half) % half;

        let mut route_index = vec![(0u32, 0u8); n_nodes * hosts];
        let mut route_pool: Vec<LinkId> = Vec::new();
        let set_route = |node: NodeId, dst: usize, cands: Vec<LinkId>,
                             route_index: &mut Vec<(u32, u8)>,
                             route_pool: &mut Vec<LinkId>| {
            let off = route_pool.len() as u32;
            let cnt = cands.len() as u8;
            route_pool.extend(cands);
            route_index[node as usize * hosts + dst] = (off, cnt);
        };

        for dst in 0..hosts {
            let dp = pod_of_host(dst);
            let de = edge_of_host(dst);
            // Hosts: single uplink to their edge switch.
            for p in 0..k {
                for e in 0..half {
                    for h in 0..half {
                        let hid = host_id(p, e, h);
                        if hid as usize != dst {
                            set_route(
                                hid,
                                dst,
                                vec![link(hid, edge_id(p, e))],
                                &mut route_index,
                                &mut route_pool,
                            );
                        }
                    }
                }
            }
            // Edge switches.
            for p in 0..k {
                for e in 0..half {
                    let eid = edge_id(p, e);
                    let cands = if p == dp && e == de {
                        vec![link(eid, dst as NodeId)]
                    } else {
                        (0..half).map(|a| link(eid, agg_id(p, a))).collect()
                    };
                    set_route(eid, dst, cands, &mut route_index, &mut route_pool);
                }
            }
            // Aggregation switches.
            for p in 0..k {
                for a in 0..half {
                    let aid = agg_id(p, a);
                    let cands = if p == dp {
                        vec![link(aid, edge_id(p, de))]
                    } else {
                        (0..half).map(|m| link(aid, core_id(a, m))).collect()
                    };
                    set_route(aid, dst, cands, &mut route_index, &mut route_pool);
                }
            }
            // Core switches: unique downlink to the destination pod.
            for g in 0..half {
                for m in 0..half {
                    let cid = core_id(g, m);
                    set_route(
                        cid,
                        dst,
                        vec![link(cid, agg_id(dp, g))],
                        &mut route_index,
                        &mut route_pool,
                    );
                }
            }
        }

        FatTree {
            k,
            hosts,
            nodes,
            links,
            route_index,
            route_pool,
        }
    }

    /// The arity this tree was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of hosts (k³/4).
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Number of switches (5k²/4).
    pub fn switches(&self) -> usize {
        self.nodes.len() - self.hosts
    }

    /// Number of unidirectional links.
    pub fn links(&self) -> usize {
        self.links.len()
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n as usize]
    }

    /// Link endpoints.
    pub fn link(&self, l: LinkId) -> LinkDef {
        self.links[l as usize]
    }

    /// Equal-cost egress candidates at `node` toward host `dst`.
    /// Upward hops return several links; downward hops exactly one; a
    /// host's own id returns the empty slice.
    pub fn candidates(&self, node: NodeId, dst: NodeId) -> &[LinkId] {
        let (off, cnt) = self.route_index[node as usize * self.hosts + dst as usize];
        &self.route_pool[off as usize..off as usize + cnt as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_counts() {
        let t = FatTree::new(6);
        assert_eq!(t.hosts(), 54, "54 servers");
        assert_eq!(t.switches(), 45, "45 switches");
        // Every switch has exactly 6 ports (k). Count egress links per node.
        let mut egress = vec![0usize; t.hosts() + t.switches()];
        for l in 0..t.links() {
            egress[t.link(l as LinkId).from as usize] += 1;
        }
        for (n, &e) in egress.iter().enumerate().skip(t.hosts()) {
            assert_eq!(e, 6, "switch {n} has {e} ports");
        }
        for (n, &e) in egress.iter().enumerate().take(t.hosts()) {
            assert_eq!(e, 1, "host {n} must have exactly one uplink");
        }
    }

    #[test]
    fn routing_reaches_every_pair() {
        let t = FatTree::new(4);
        for src in 0..t.hosts() as NodeId {
            for dst in 0..t.hosts() as NodeId {
                if src == dst {
                    continue;
                }
                // Walk the first candidate at each hop; must reach dst
                // within 6 hops (host-edge-agg-core-agg-edge-host).
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let cands = t.candidates(at, dst);
                    assert!(!cands.is_empty(), "no route {at}->{dst}");
                    at = t.link(cands[0]).to;
                    hops += 1;
                    assert!(hops <= 6, "path {src}->{dst} too long");
                }
            }
        }
    }

    #[test]
    fn path_lengths_match_fat_tree_structure() {
        let t = FatTree::new(6);
        let hops = |src: NodeId, dst: NodeId| -> usize {
            let mut at = src;
            let mut h = 0;
            while at != dst {
                at = t.link(t.candidates(at, dst)[0]).to;
                h += 1;
            }
            h
        };
        // Same edge switch: host-edge-host = 2 hops.
        assert_eq!(hops(0, 1), 2);
        // Same pod, different edge: 4 hops.
        assert_eq!(hops(0, 3), 4);
        // Different pod: 6 hops.
        assert_eq!(hops(0, 53), 6);
    }

    #[test]
    fn upward_hops_have_ecmp_choice() {
        let t = FatTree::new(6);
        // Host 0's edge switch, toward a different pod: 3 agg choices.
        let edge = t.link(t.candidates(0, 53)[0]).to;
        assert_eq!(t.kind(edge), NodeKind::Edge);
        assert_eq!(t.candidates(edge, 53).len(), 3);
        // The aggregation hop: 3 core choices.
        let agg = t.link(t.candidates(edge, 53)[0]).to;
        assert_eq!(t.kind(agg), NodeKind::Agg);
        assert_eq!(t.candidates(agg, 53).len(), 3);
        // Core: single downlink.
        let core = t.link(t.candidates(agg, 53)[0]).to;
        assert_eq!(t.kind(core), NodeKind::Core);
        assert_eq!(t.candidates(core, 53).len(), 1);
    }

    #[test]
    fn all_ecmp_paths_are_valid() {
        // Every candidate at every hop must still reach the destination.
        let t = FatTree::new(4);
        fn reaches(t: &FatTree, at: NodeId, dst: NodeId, depth: usize) -> bool {
            if at == dst {
                return true;
            }
            if depth == 0 {
                return false;
            }
            t.candidates(at, dst)
                .iter()
                .all(|&l| reaches(t, t.link(l).to, dst, depth - 1))
        }
        for src in [0u32, 1, 5] {
            for dst in 0..t.hosts() as NodeId {
                if src != dst {
                    assert!(reaches(&t, src, dst, 6), "{src}->{dst}");
                }
            }
        }
    }
}
