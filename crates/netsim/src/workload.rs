//! Datacenter flow workload: Poisson arrivals, skewed empirical sizes.
//!
//! The paper: "Flow arrivals are Poisson, and flow sizes are distributed
//! according to a standard data center workload [Benson et al., IMC 2010],
//! with flow sizes varying from 1 KB to 3 MB and with more than 80 % of
//! the flows being less than 10 KB" — while "the majority of the traffic
//! volume … comes from a small number of large elephant flows".
//!
//! [`FlowSizeDist`] is a piecewise log-linear fit to that description: the
//! CDF is linear in log-size between anchor points, which is how such
//! traces are usually redistributed. The anchors below give 82 % of flows
//! under 10 KB while elephants (≥ 1 MB, ~1.6 % of flows) carry roughly half
//! the bytes.

use simcore::rng::Rng;

/// Piecewise log-linear flow-size distribution on [1 KB, 3 MB].
#[derive(Clone, Debug)]
pub struct FlowSizeDist {
    /// `(size_bytes, cumulative_probability)` anchors, strictly increasing
    /// in both coordinates, first probability 0, last 1.
    anchors: Vec<(f64, f64)>,
}

impl Default for FlowSizeDist {
    fn default() -> Self {
        FlowSizeDist::new(vec![
            (1.0e3, 0.00),
            (2.0e3, 0.30),
            (4.0e3, 0.53),
            (7.0e3, 0.72),
            (10.0e3, 0.82),
            (20.0e3, 0.875),
            (50.0e3, 0.92),
            (100.0e3, 0.95),
            (300.0e3, 0.973),
            (1.0e6, 0.984),
            (3.0e6, 1.00),
        ])
    }
}

impl FlowSizeDist {
    /// Builds from explicit anchors.
    ///
    /// # Panics
    /// Panics unless sizes and probabilities are strictly increasing, the
    /// first probability is 0 and the last is 1.
    pub fn new(anchors: Vec<(f64, f64)>) -> Self {
        assert!(anchors.len() >= 2);
        assert_eq!(anchors.first().unwrap().1, 0.0);
        assert_eq!(anchors.last().unwrap().1, 1.0);
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1, "anchors must increase");
        }
        FlowSizeDist { anchors }
    }

    /// Draws one flow size in bytes (inverse-CDF, log-linear interpolation).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        let i = self
            .anchors
            .partition_point(|&(_, p)| p <= u)
            .clamp(1, self.anchors.len() - 1);
        let (s0, p0) = self.anchors[i - 1];
        let (s1, p1) = self.anchors[i];
        let frac = (u - p0) / (p1 - p0);
        let ln = s0.ln() + frac * (s1.ln() - s0.ln());
        ln.exp().round().max(1.0) as u64
    }

    /// Mean flow size in bytes (numerically, from the closed-form segment
    /// means of the log-linear CDF).
    pub fn mean_bytes(&self) -> f64 {
        // Within a segment, size = s0 * (s1/s0)^((u-p0)/(p1-p0)) for
        // uniform u: mean contribution = (p1-p0) * (s1-s0)/ln(s1/s0)
        // (log-mean of the endpoints).
        self.anchors
            .windows(2)
            .map(|w| {
                let (s0, p0) = w[0];
                let (s1, p1) = w[1];
                (p1 - p0) * (s1 - s0) / (s1 / s0).ln()
            })
            .sum()
    }

    /// Fraction of flows strictly smaller than `bytes`.
    pub fn fraction_below(&self, bytes: f64) -> f64 {
        if bytes <= self.anchors[0].0 {
            return 0.0;
        }
        if bytes >= self.anchors.last().unwrap().0 {
            return 1.0;
        }
        let i = self
            .anchors
            .partition_point(|&(s, _)| s < bytes)
            .clamp(1, self.anchors.len() - 1);
        let (s0, p0) = self.anchors[i - 1];
        let (s1, p1) = self.anchors[i];
        p0 + (p1 - p0) * (bytes.ln() - s0.ln()) / (s1.ln() - s0.ln())
    }
}

/// A generated flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Arrival time, seconds.
    pub start: f64,
    /// Source host.
    pub src: u32,
    /// Destination host (≠ src).
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u64,
}

/// Generates `n` Poisson flow arrivals at total rate `lambda`, with
/// uniformly random distinct (src, dst) pairs over `hosts` and sizes from
/// `dist`.
pub fn generate_flows(
    n: usize,
    lambda: f64,
    hosts: usize,
    dist: &FlowSizeDist,
    rng: &mut Rng,
) -> Vec<FlowSpec> {
    assert!(hosts >= 2 && lambda > 0.0);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += rng.exponential(lambda);
            let src = rng.index(hosts) as u32;
            let mut dst = rng.index(hosts - 1) as u32;
            if dst >= src {
                dst += 1;
            }
            FlowSpec {
                start: t,
                src,
                dst,
                bytes: dist.sample(rng),
            }
        })
        .collect()
}

/// Arrival rate (flows/second, whole fabric) that offers `load` fraction of
/// every host's access-link capacity on average.
pub fn arrival_rate_for_load(
    load: f64,
    hosts: usize,
    link_rate_bytes_per_sec: f64,
    dist: &FlowSizeDist,
) -> f64 {
    assert!(load > 0.0);
    load * hosts as f64 * link_rate_bytes_per_sec / dist.mean_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_constraints() {
        let d = FlowSizeDist::default();
        // >80% of flows below 10 KB.
        assert!(d.fraction_below(10.0e3) >= 0.80);
        // Sizes span 1 KB .. 3 MB.
        let mut rng = Rng::seed_from(1);
        for _ in 0..100_000 {
            let s = d.sample(&mut rng);
            assert!((1000..=3_000_000).contains(&s), "size {s} out of range");
        }
    }

    #[test]
    fn elephants_carry_most_bytes() {
        let d = FlowSizeDist::default();
        let mut rng = Rng::seed_from(2);
        let mut total = 0u64;
        let mut elephant = 0u64;
        for _ in 0..200_000 {
            let s = d.sample(&mut rng);
            total += s;
            if s >= 1_000_000 {
                elephant += s;
            }
        }
        let frac = elephant as f64 / total as f64;
        assert!(
            frac > 0.35,
            "elephants should dominate bytes, got {frac:.2}"
        );
    }

    #[test]
    fn mean_matches_samples() {
        let d = FlowSizeDist::default();
        let mut rng = Rng::seed_from(3);
        let n = 400_000;
        let avg = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        let mean = d.mean_bytes();
        assert!(
            (avg - mean).abs() / mean < 0.03,
            "sampled {avg} vs analytic {mean}"
        );
    }

    #[test]
    fn flow_generation_is_poisson_and_valid() {
        let d = FlowSizeDist::default();
        let mut rng = Rng::seed_from(4);
        let flows = generate_flows(50_000, 1000.0, 54, &d, &mut rng);
        // Interarrival mean ~ 1/lambda.
        let span = flows.last().unwrap().start - flows[0].start;
        let mean_gap = span / (flows.len() - 1) as f64;
        assert!((mean_gap - 1e-3).abs() < 5e-5, "gap {mean_gap}");
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.src < 54 && f.dst < 54);
        }
    }

    #[test]
    fn load_calibration() {
        let d = FlowSizeDist::default();
        // At load 0.4 on 54 hosts with 625 MB/s links, offered bytes/s
        // should equal 0.4 * 54 * 625e6.
        let lambda = arrival_rate_for_load(0.4, 54, 625e6, &d);
        let offered = lambda * d.mean_bytes();
        assert!((offered - 0.4 * 54.0 * 625e6).abs() / offered < 1e-9);
    }

    #[test]
    #[should_panic(expected = "increase")]
    fn bad_anchors_panic() {
        let _ = FlowSizeDist::new(vec![(1e3, 0.0), (1e3, 1.0)]);
    }
}
