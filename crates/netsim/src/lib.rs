//! # netsim — packet-level fat-tree simulation of in-network replication
//!
//! §2.4 of *Low Latency via Redundancy* proposes that switches replicate
//! the **first few packets of every flow along an alternate ECMP path at
//! strictly lower priority**: short flows dodge elephant collisions, and
//! because replicas are served only when no original traffic is waiting,
//! the scheme "can never delay the original, unreplicated traffic". The
//! paper evaluates this in ns-3 on a 54-host, 45-switch, 3-tier fat-tree
//! (k = 6) with 225 KB port buffers, a skewed datacenter flow mix
//! (1 KB–3 MB, >80 % of flows under 10 KB), and TCP with a 10 ms minRTO.
//!
//! This crate rebuilds that stack from scratch:
//!
//! * [`topology`] — k-ary fat-tree construction and two-level routing with
//!   per-hop ECMP candidate sets;
//! * [`port`] — output ports with 2-level strict priority, drop-tail
//!   buffers, and store-and-forward transmission;
//! * [`tcp`] — a NewReno-style transport: slow start, AIMD, 3-dupack fast
//!   retransmit, RFC 6298 RTO estimation clamped at the paper's 10 ms
//!   minimum, exponential backoff;
//! * [`workload`] — Poisson flow arrivals with the empirical datacenter
//!   size mix the paper takes from Benson et al.;
//! * [`sim`] — the event loop tying hosts, switches and flows together,
//!   including per-switch replication of the first J packets onto an
//!   alternate uplink at low priority and receiver-side dedup;
//! * [`experiments`] — the Figure 14 sweeps.
//!
//! ## Quick example
//!
//! ```
//! use netsim::experiments::{run_pair, NetConfig};
//!
//! let cfg = NetConfig { flows: 2_000, load: 0.4, ..NetConfig::default() };
//! let mut out = run_pair(&cfg, 1);
//! // Short flows should complete faster with replication at moderate load.
//! assert!(out.replicated.small_median() <= out.baseline.small_median() * 1.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod packet;
pub mod port;
pub mod sim;
pub mod tcp;
pub mod topology;
pub mod workload;

pub use experiments::{run_pair, NetConfig};
pub use sim::{FctStats, SimOutput};
