//! Output ports: strict priority, drop-tail, store-and-forward.
//!
//! Each unidirectional link is an output port of its transmitting node. A
//! port has two FIFO queues — high (original traffic) and low (replicas) —
//! served with **strict priority**: a low-priority packet is dequeued only
//! when the high queue is empty. Each class has its own 225 KB drop-tail
//! buffer; giving replicas a separate (rather than shared) allocation is
//! what lets the implementation honor the paper's guarantee that replicas
//! "can never delay the original, unreplicated traffic" — a shared buffer
//! would let queued replicas force drops of originals.

use crate::packet::{Packet, Priority};
use std::collections::VecDeque;

/// Default per-class buffer: the paper's 225 KB.
pub const DEFAULT_BUFFER_BYTES: u32 = 225 * 1024;

/// One output port.
#[derive(Clone, Debug)]
pub struct Port {
    /// Line rate, bytes/second.
    pub rate_bytes_per_sec: f64,
    /// Propagation delay to the far end, seconds.
    pub propagation: f64,
    hi: VecDeque<Packet>,
    lo: VecDeque<Packet>,
    hi_bytes: u32,
    lo_bytes: u32,
    cap_bytes: u32,
    /// `true` while a packet is on the wire.
    pub busy: bool,
    /// Drop counters (diagnostics).
    pub dropped_hi: u64,
    /// Dropped low-priority (replica) packets.
    pub dropped_lo: u64,
}

impl Port {
    /// Creates a port with the given rate/delay and per-class buffer cap.
    pub fn new(rate_bytes_per_sec: f64, propagation: f64, cap_bytes: u32) -> Self {
        assert!(rate_bytes_per_sec > 0.0 && propagation >= 0.0);
        Port {
            rate_bytes_per_sec,
            propagation,
            hi: VecDeque::new(),
            lo: VecDeque::new(),
            hi_bytes: 0,
            lo_bytes: 0,
            cap_bytes,
            busy: false,
            dropped_hi: 0,
            dropped_lo: 0,
        }
    }

    /// Attempts to enqueue; returns `false` (and counts the drop) if the
    /// packet's class buffer is full.
    pub fn enqueue(&mut self, pkt: Packet) -> bool {
        match pkt.priority() {
            Priority::High => {
                if self.hi_bytes + pkt.bytes > self.cap_bytes {
                    self.dropped_hi += 1;
                    false
                } else {
                    self.hi_bytes += pkt.bytes;
                    self.hi.push_back(pkt);
                    true
                }
            }
            Priority::Low => {
                if self.lo_bytes + pkt.bytes > self.cap_bytes {
                    self.dropped_lo += 1;
                    false
                } else {
                    self.lo_bytes += pkt.bytes;
                    self.lo.push_back(pkt);
                    true
                }
            }
        }
    }

    /// Dequeues the next packet under strict priority.
    pub fn dequeue(&mut self) -> Option<Packet> {
        if let Some(p) = self.hi.pop_front() {
            self.hi_bytes -= p.bytes;
            Some(p)
        } else if let Some(p) = self.lo.pop_front() {
            self.lo_bytes -= p.bytes;
            Some(p)
        } else {
            None
        }
    }

    /// Bytes queued (both classes).
    pub fn queued_bytes(&self) -> u32 {
        self.hi_bytes + self.lo_bytes
    }

    /// `true` when both queues are empty.
    pub fn is_empty(&self) -> bool {
        self.hi.is_empty() && self.lo.is_empty()
    }

    /// Serialization time for a packet of `bytes`.
    pub fn tx_time(&self, bytes: u32) -> f64 {
        bytes as f64 / self.rate_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn data(seq: u32, replica: bool, bytes: u32) -> Packet {
        Packet {
            flow: 0,
            kind: PacketKind::Data { seq, replica },
            bytes,
            dst: 1,
        }
    }

    #[test]
    fn strict_priority_serves_high_first() {
        let mut p = Port::new(1e9, 1e-6, DEFAULT_BUFFER_BYTES);
        p.enqueue(data(0, true, 100));
        p.enqueue(data(1, false, 100));
        p.enqueue(data(2, true, 100));
        p.enqueue(data(3, false, 100));
        let order: Vec<u32> = std::iter::from_fn(|| p.dequeue())
            .map(|pkt| match pkt.kind {
                PacketKind::Data { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn fifo_within_class() {
        let mut p = Port::new(1e9, 1e-6, DEFAULT_BUFFER_BYTES);
        for s in 0..10 {
            p.enqueue(data(s, false, 100));
        }
        for s in 0..10 {
            let got = p.dequeue().unwrap();
            assert!(matches!(got.kind, PacketKind::Data { seq, .. } if seq == s));
        }
    }

    #[test]
    fn droptail_per_class() {
        let mut p = Port::new(1e9, 1e-6, 1000);
        // Fill the low class; the high class must be unaffected.
        assert!(p.enqueue(data(0, true, 600)));
        assert!(p.enqueue(data(1, true, 400)));
        assert!(!p.enqueue(data(2, true, 1)));
        assert_eq!(p.dropped_lo, 1);
        assert!(p.enqueue(data(3, false, 1000)));
        assert_eq!(p.dropped_hi, 0);
    }

    #[test]
    fn byte_accounting() {
        let mut p = Port::new(1e9, 1e-6, 10_000);
        p.enqueue(data(0, false, 1500));
        p.enqueue(data(1, true, 500));
        assert_eq!(p.queued_bytes(), 2000);
        p.dequeue();
        assert_eq!(p.queued_bytes(), 500);
        p.dequeue();
        assert_eq!(p.queued_bytes(), 0);
        assert!(p.dequeue().is_none());
    }

    #[test]
    fn tx_time_is_bytes_over_rate() {
        let p = Port::new(625e6, 2e-6, DEFAULT_BUFFER_BYTES); // 5 Gbps
        let t = p.tx_time(1500);
        assert!((t - 2.4e-6).abs() < 1e-12, "t = {t}");
    }
}
