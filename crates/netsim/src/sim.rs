//! The fabric event loop: hosts, switches, TCP flows, and replication.
//!
//! One simulation = one fat-tree + one generated flow set, run twice by the
//! experiments (with and without replication) on identical flows so the
//! comparison is paired.
//!
//! ## Replication mechanics (§2.4)
//!
//! When `replicate_first > 0`, every *switch* that has more than one
//! equal-cost egress candidate for an original data packet with
//! `seq < replicate_first` emits a **low-priority copy on the next ECMP
//! candidate**. Replicas are forwarded like normal packets (at their own
//! alternate ECMP choice downstream) but are never themselves re-replicated
//! and never generate copies of ACKs. The receiving host dedups below TCP:
//! whichever copy arrives first delivers the payload; later copies vanish
//! silently ([`crate::tcp::TcpReceiver::on_data`] returns `None`).
//!
//! Because replicas ride a strictly lower priority class with their own
//! drop-tail allocation, the original traffic's queues and drops are
//! *identical* to the baseline modulo TCP feedback effects — the paper's
//! "can never delay the original traffic" property.

use crate::packet::{data_packet_bytes, packets_for, Packet, PacketKind, ACK_BYTES};
use crate::port::Port;
use crate::tcp::{TcpActions, TcpConfig, TcpReceiver, TcpSender};
use crate::topology::{FatTree, LinkId, NodeId};
use crate::workload::{arrival_rate_for_load, generate_flows, FlowSizeDist, FlowSpec};
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::stats::SampleSet;
use simcore::time::SimTime;

/// Everything one fabric run needs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Fat-tree arity (6 = the paper's 54-host fabric).
    pub k: usize,
    /// Link rate in bytes/second (all links; full bisection).
    pub link_rate_bytes_per_sec: f64,
    /// Per-hop propagation delay, seconds.
    pub per_hop_delay: f64,
    /// Per-class port buffer, bytes (the paper's 225 KB).
    pub buffer_bytes: u32,
    /// Replicate the first J packets of each flow (0 disables).
    pub replicate_first: u32,
    /// Transport constants.
    pub tcp: TcpConfig,
    /// Offered load as a fraction of aggregate host-link capacity.
    pub load: f64,
    /// Flows to generate.
    pub flows: usize,
    /// RNG seed (drives arrivals, sizes, and ECMP salts identically across
    /// the replicated/baseline pair).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            k: 6,
            link_rate_bytes_per_sec: 625.0e6, // 5 Gbps
            per_hop_delay: 2.0e-6,
            buffer_bytes: crate::port::DEFAULT_BUFFER_BYTES,
            replicate_first: 0,
            tcp: TcpConfig::default(),
            load: 0.4,
            flows: 20_000,
            seed: 0xFA7,
        }
    }
}

/// Flow-completion-time statistics for one run.
#[derive(Debug)]
pub struct FctStats {
    /// FCTs of measured flows smaller than 10 KB.
    pub small: SampleSet,
    /// FCTs of measured flows of at least 1 MB.
    pub large: SampleSet,
    /// FCTs of all measured flows.
    pub all: SampleSet,
    /// Total RTO events across all flows.
    pub timeouts: u64,
    /// Original-class packets dropped at ports.
    pub drops_high: u64,
    /// Replica-class packets dropped at ports.
    pub drops_low: u64,
    /// Flows that failed to complete before the safety cutoff.
    pub incomplete: usize,
}

impl FctStats {
    /// Median FCT of small flows, seconds.
    pub fn small_median(&mut self) -> f64 {
        self.small.quantile(0.5)
    }

    /// 99th percentile FCT of small flows, seconds.
    pub fn small_p99(&mut self) -> f64 {
        self.small.quantile(0.99)
    }
}

/// Output alias used by the experiments layer.
pub type SimOutput = FctStats;

#[derive(Clone, Copy, Debug)]
enum Ev {
    FlowStart(u32),
    Recv { node: NodeId, pkt: Packet },
    PortDone(LinkId),
    Rto { flow: u32, epoch: u64 },
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    topo: FatTree,
    ports: Vec<Port>,
    in_flight: Vec<Option<Packet>>,
    senders: Vec<TcpSender>,
    receivers: Vec<TcpReceiver>,
    specs: Vec<FlowSpec>,
    fct: Vec<Option<f64>>,
    q: EventQueue<Ev>,
    ecmp_salt: u64,
}

impl Engine<'_> {
    /// Per-switch, per-flow ECMP choice among `n` candidates.
    fn ecmp_index(&self, flow: u32, is_ack: bool, node: NodeId, n: usize) -> usize {
        let h = mix64(
            self.ecmp_salt
                ^ (flow as u64)
                ^ ((is_ack as u64) << 40)
                ^ ((node as u64) << 42),
        );
        (h % n as u64) as usize
    }

    fn kick(&mut self, l: LinkId) {
        let now = self.q.now();
        let port = &mut self.ports[l as usize];
        if port.busy {
            return;
        }
        if let Some(pkt) = port.dequeue() {
            port.busy = true;
            let tx = port.tx_time(pkt.bytes);
            self.in_flight[l as usize] = Some(pkt);
            self.q.push(now + SimTime::from_secs(tx), Ev::PortDone(l));
        }
    }

    fn enqueue_on(&mut self, l: LinkId, pkt: Packet) {
        // Drops are counted inside the port.
        let _ = self.ports[l as usize].enqueue(pkt);
        self.kick(l);
    }

    /// Emits a data packet from the flow's source host.
    fn send_data(&mut self, flow: u32, seq: u32) {
        let spec = self.specs[flow as usize];
        let pkt = Packet {
            flow,
            kind: PacketKind::Data {
                seq,
                replica: false,
            },
            bytes: data_packet_bytes(spec.bytes, seq),
            dst: spec.dst,
        };
        let up = self.topo.candidates(spec.src, spec.dst)[0];
        self.enqueue_on(up, pkt);
    }

    /// Emits an ACK from the flow's destination host back to the source.
    fn send_ack(&mut self, flow: u32, cum: u32) {
        let spec = self.specs[flow as usize];
        let pkt = Packet {
            flow,
            kind: PacketKind::Ack { cum },
            bytes: ACK_BYTES,
            dst: spec.src,
        };
        let up = self.topo.candidates(spec.dst, spec.src)[0];
        self.enqueue_on(up, pkt);
    }

    fn apply(&mut self, flow: u32, actions: TcpActions) {
        let now = self.q.now();
        for seq in &actions.send {
            self.send_data(flow, *seq);
        }
        if let Some(delay) = actions.arm_timer {
            let epoch = self.senders[flow as usize].timer_epoch;
            self.q
                .push(now + SimTime::from_secs(delay), Ev::Rto { flow, epoch });
        }
        if actions.completed {
            let start = self.specs[flow as usize].start;
            self.fct[flow as usize] = Some(now.as_secs() - start);
        }
    }

    fn on_recv(&mut self, node: NodeId, pkt: Packet) {
        if node == pkt.dst {
            match pkt.kind {
                PacketKind::Data { seq, replica } => {
                    if let Some(cum) = self.receivers[pkt.flow as usize].on_data(seq, replica) {
                        self.send_ack(pkt.flow, cum);
                    }
                }
                PacketKind::Ack { cum } => {
                    let now = self.q.now().as_secs();
                    let actions = self.senders[pkt.flow as usize].on_ack(now, cum);
                    self.apply(pkt.flow, actions);
                }
            }
            return;
        }
        // Switch: route by ECMP; maybe replicate.
        let cands = self.topo.candidates(node, pkt.dst);
        let n = cands.len();
        debug_assert!(n >= 1, "switch {node} has no route to {}", pkt.dst);
        let (is_ack, seq, is_replica) = match pkt.kind {
            PacketKind::Ack { .. } => (true, 0, false),
            PacketKind::Data { seq, replica } => (false, seq, replica),
        };
        let idx = self.ecmp_index(pkt.flow, is_ack, node, n);
        let primary = cands[idx];
        let alternate = cands[(idx + 1) % n];
        if is_replica {
            // Replicas keep to the road less traveled where one exists.
            let l = if n > 1 { alternate } else { primary };
            self.enqueue_on(l, pkt);
            return;
        }
        self.enqueue_on(primary, pkt);
        if !is_ack && n > 1 && seq < self.cfg.replicate_first {
            let mut copy = pkt;
            copy.kind = PacketKind::Data { seq, replica: true };
            self.enqueue_on(alternate, copy);
        }
    }
}

/// SplitMix64 finalizer — the per-switch ECMP hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one fabric simulation and returns flow-completion statistics over
/// the measured window (the middle 90 % of flows, excluding warm-up and
/// cool-down edges).
pub fn run(cfg: &SimConfig) -> FctStats {
    let topo = FatTree::new(cfg.k);
    let hosts = topo.hosts();
    let mut rng = Rng::seed_from(cfg.seed);
    let dist = FlowSizeDist::default();
    let lambda = arrival_rate_for_load(cfg.load, hosts, cfg.link_rate_bytes_per_sec, &dist);
    let specs = generate_flows(cfg.flows, lambda, hosts, &dist, &mut rng.fork(1));
    let ecmp_salt = rng.fork(2).next_u64();

    let ports: Vec<Port> = (0..topo.links())
        .map(|_| {
            Port::new(
                cfg.link_rate_bytes_per_sec,
                cfg.per_hop_delay,
                cfg.buffer_bytes,
            )
        })
        .collect();
    let senders: Vec<TcpSender> = specs
        .iter()
        .map(|s| TcpSender::new(packets_for(s.bytes), cfg.tcp))
        .collect();
    let receivers: Vec<TcpReceiver> = specs
        .iter()
        .map(|s| TcpReceiver::new(packets_for(s.bytes)))
        .collect();

    let n_links = topo.links();
    // A few events per flow plus one per link covers the steady-state
    // population; pre-size so the heap never reallocates mid-run.
    let queue_cap = (4 * specs.len() + n_links).max(4096);
    let mut eng = Engine {
        cfg,
        topo,
        ports,
        in_flight: vec![None; n_links],
        fct: vec![None; specs.len()],
        senders,
        receivers,
        specs,
        q: EventQueue::with_capacity(queue_cap),
        ecmp_salt,
    };

    for (i, s) in eng.specs.iter().enumerate() {
        eng.q
            .push(SimTime::from_secs(s.start), Ev::FlowStart(i as u32));
    }

    // Safety cutoffs: a stuck simulation is a bug, but an experiment sweep
    // should degrade (report incompletes) rather than hang.
    let max_events: u64 = 300_000_000;
    while let Some((_, ev)) = eng.q.pop() {
        match ev {
            Ev::FlowStart(f) => {
                let now = eng.q.now().as_secs();
                let actions = eng.senders[f as usize].on_start(now);
                eng.apply(f, actions);
            }
            Ev::Recv { node, pkt } => eng.on_recv(node, pkt),
            Ev::PortDone(l) => {
                let pkt = eng.in_flight[l as usize]
                    .take()
                    .expect("PortDone without a packet in flight");
                let port = &mut eng.ports[l as usize];
                port.busy = false;
                let to = eng.topo.link(l).to;
                let prop = port.propagation;
                eng.q
                    .push_after(SimTime::from_secs(prop), Ev::Recv { node: to, pkt });
                eng.kick(l);
            }
            Ev::Rto { flow, epoch } => {
                let now = eng.q.now().as_secs();
                let actions = eng.senders[flow as usize].on_timeout(now, epoch);
                eng.apply(flow, actions);
            }
        }
        if eng.q.events_processed() > max_events {
            break;
        }
    }

    // Measured window: drop the first 5% (cold network) and last 5%
    // (draining network) of flows.
    let lo = eng.specs.len() / 20;
    let hi = eng.specs.len() - eng.specs.len() / 20;
    let mut small = SampleSet::new();
    let mut large = SampleSet::new();
    let mut all = SampleSet::new();
    let mut incomplete = 0;
    for i in lo..hi {
        match eng.fct[i] {
            Some(fct) => {
                all.push(fct);
                if eng.specs[i].bytes < 10_000 {
                    small.push(fct);
                } else if eng.specs[i].bytes >= 1_000_000 {
                    large.push(fct);
                }
            }
            None => incomplete += 1,
        }
    }
    let timeouts = eng.senders.iter().map(|s| s.timeouts).sum();
    let drops_high = eng.ports.iter().map(|p| p.dropped_hi).sum();
    let drops_low = eng.ports.iter().map(|p| p.dropped_lo).sum();
    FctStats {
        small,
        large,
        all,
        timeouts,
        drops_high,
        drops_low,
        incomplete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(load: f64, replicate: bool) -> SimConfig {
        SimConfig {
            flows: 4_000,
            load,
            replicate_first: if replicate { 8 } else { 0 },
            ..SimConfig::default()
        }
    }

    #[test]
    fn low_load_flows_all_complete_fast() {
        let mut out = run(&quick_cfg(0.1, false));
        assert_eq!(out.incomplete, 0, "every flow must finish at 10% load");
        // Small flows: a couple of ~50 us RTTs.
        let med = out.small_median();
        assert!(
            med > 20e-6 && med < 2e-3,
            "median small FCT {med} implausible"
        );
    }

    #[test]
    fn fct_has_physical_floor() {
        let mut out = run(&quick_cfg(0.05, false));
        let min = out.all.quantile(0.0);
        // At least one RTT-ish: 2 hops of prop + serialization each way.
        assert!(min > 8.0e-6, "FCT {min} beats physics");
    }

    #[test]
    fn replication_does_not_hurt_small_flows_at_moderate_load() {
        let mut base = run(&quick_cfg(0.4, false));
        let mut repl = run(&quick_cfg(0.4, true));
        assert!(
            repl.small_median() <= base.small_median() * 1.02,
            "replication should not worsen the median: {} vs {}",
            repl.small_median(),
            base.small_median()
        );
    }

    #[test]
    fn replication_improves_median_at_moderate_load() {
        // The paper's headline: tens of percent improvement near 40% load.
        let mut base = run(&quick_cfg(0.4, false));
        let mut repl = run(&quick_cfg(0.4, true));
        let gain = 1.0 - repl.small_median() / base.small_median();
        assert!(
            gain > 0.05,
            "expected a real median win at 40% load, got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn originals_never_dropped_because_of_replicas() {
        // Same seed, same flows: the high-class drop count with replication
        // must not exceed baseline by more than TCP feedback jitter.
        let base = run(&quick_cfg(0.6, false));
        let repl = run(&quick_cfg(0.6, true));
        assert!(
            repl.drops_high <= base.drops_high.max(10) * 3,
            "replica traffic should not displace originals: {} vs {}",
            repl.drops_high,
            base.drops_high
        );
    }

    #[test]
    fn higher_load_means_higher_fct() {
        let mut lo = run(&quick_cfg(0.1, false));
        let mut hi = run(&quick_cfg(0.6, false));
        assert!(hi.small_median() > lo.small_median());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = run(&quick_cfg(0.3, true));
        let mut b = run(&quick_cfg(0.3, true));
        assert_eq!(a.small_median(), b.small_median());
        assert_eq!(a.timeouts, b.timeouts);
    }
}
