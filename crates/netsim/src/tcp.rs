//! A NewReno-style TCP, packet-granular, for flow transport in the fabric.
//!
//! The paper's §2.4 results hinge on three transport behaviours:
//!
//! 1. **Self-clocked windows** — short flows finish in a couple of RTTs
//!    unless queueing or loss intervenes;
//! 2. **Fast retransmit** on three duplicate ACKs — recovery without
//!    stalling when a single packet dies;
//! 3. **The retransmission timeout with a 10 ms floor** — the paper's
//!    Fig 14(b) spike is explicitly attributed to flows avoiding
//!    `minRTO = 10 ms` timeouts when replicas slip a copy through.
//!
//! Sequence numbers are in *packets*, not bytes (every data packet is a
//! full MSS except the last); this keeps the bookkeeping exact while
//! halving the state. The sender is a pure state machine: every input
//! (`on_start`, `on_ack`, `on_timeout`) returns the [`TcpActions`] the
//! simulator must perform — segments to emit and timer (re)arming — so the
//! logic is directly unit-testable without an event loop.

/// Transport constants.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Initial congestion window, packets.
    pub init_cwnd: f64,
    /// Initial slow-start threshold, packets.
    pub init_ssthresh: f64,
    /// Minimum (and initial) retransmission timeout — the paper's 10 ms.
    pub min_rto: f64,
    /// Upper clamp on the backed-off RTO.
    pub max_rto: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            init_cwnd: 4.0,
            init_ssthresh: 64.0,
            min_rto: 10.0e-3,
            max_rto: 2.0,
        }
    }
}

/// What the simulator must do after feeding the sender an input.
#[derive(Debug, Default)]
pub struct TcpActions {
    /// Packet sequence numbers to transmit (in order).
    pub send: Vec<u32>,
    /// `Some(delay)`: (re)arm the retransmission timer `delay` seconds from
    /// now, superseding any earlier timer (the sender's `timer_epoch` has
    /// been bumped accordingly).
    pub arm_timer: Option<f64>,
    /// The flow just completed.
    pub completed: bool,
}

/// Sender-side state for one flow.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    /// Total data packets in the flow.
    pub total_pkts: u32,
    snd_una: u32,
    next_seq: u32,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover: u32,
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    /// Monotonic epoch; timers scheduled with an older epoch are stale.
    pub timer_epoch: u64,
    send_time: Vec<f64>,
    retransmitted: Vec<bool>,
    /// Completed flag (all packets cumulatively acked).
    pub completed: bool,
    /// Number of RTO events taken (Fig 14(b)'s diagnostic).
    pub timeouts: u64,
}

impl TcpSender {
    /// New sender for a flow of `total_pkts` packets.
    pub fn new(total_pkts: u32, cfg: TcpConfig) -> Self {
        assert!(total_pkts >= 1);
        TcpSender {
            cfg,
            total_pkts,
            snd_una: 0,
            next_seq: 0,
            cwnd: cfg.init_cwnd,
            ssthresh: cfg.init_ssthresh,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: cfg.min_rto,
            timer_epoch: 0,
            send_time: vec![f64::NAN; total_pkts as usize],
            retransmitted: vec![false; total_pkts as usize],
            completed: false,
            timeouts: 0,
        }
    }

    /// Current congestion window (packets).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current smoothed RTT estimate, if any.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// Current RTO.
    pub fn rto(&self) -> f64 {
        self.rto
    }

    /// First unacknowledged packet.
    pub fn snd_una(&self) -> u32 {
        self.snd_una
    }

    fn flight(&self) -> u32 {
        self.next_seq - self.snd_una
    }

    fn fill_window(&mut self, now: f64, out: &mut Vec<u32>) {
        while self.next_seq < self.total_pkts && (self.flight() as f64) < self.cwnd.floor() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.send_time[seq as usize] = now;
            out.push(seq);
        }
    }

    fn arm(&mut self) -> Option<f64> {
        self.timer_epoch += 1;
        Some(self.rto)
    }

    /// Opens the flow: emits the initial window and arms the timer.
    pub fn on_start(&mut self, now: f64) -> TcpActions {
        let mut act = TcpActions::default();
        self.fill_window(now, &mut act.send);
        act.arm_timer = self.arm();
        act
    }

    /// Processes a cumulative ACK for "next expected packet" `cum`.
    pub fn on_ack(&mut self, now: f64, cum: u32) -> TcpActions {
        let mut act = TcpActions::default();
        if self.completed {
            return act;
        }
        if cum > self.snd_una {
            let newly = cum - self.snd_una;
            // RTT sample from the highest newly-acked packet, Karn's rule.
            let idx = (cum - 1) as usize;
            if !self.retransmitted[idx] && self.send_time[idx].is_finite() {
                self.rtt_sample(now - self.send_time[idx]);
            }
            self.snd_una = cum;
            self.dupacks = 0;

            if self.in_recovery {
                if cum >= self.recover {
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: retransmit the next hole.
                    self.retransmit(self.snd_una, now, &mut act.send);
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += newly as f64; // slow start
            } else {
                self.cwnd += newly as f64 / self.cwnd; // congestion avoidance
            }

            if self.snd_una >= self.total_pkts {
                self.completed = true;
                self.timer_epoch += 1; // cancel outstanding timer
                act.completed = true;
                return act;
            }
            self.fill_window(now, &mut act.send);
            act.arm_timer = self.arm();
        } else {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.dupacks == 3 && !self.in_recovery {
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.in_recovery = true;
                self.recover = self.next_seq;
                self.retransmit(self.snd_una, now, &mut act.send);
                act.arm_timer = self.arm();
            }
        }
        act
    }

    /// Fires the retransmission timer scheduled at `epoch`. Stale or
    /// post-completion timers are ignored.
    pub fn on_timeout(&mut self, now: f64, epoch: u64) -> TcpActions {
        let mut act = TcpActions::default();
        if self.completed || epoch != self.timer_epoch {
            return act;
        }
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.in_recovery = false;
        self.dupacks = 0;
        // Exponential backoff, clamped.
        self.rto = (self.rto * 2.0).min(self.cfg.max_rto);
        self.retransmit(self.snd_una, now, &mut act.send);
        act.arm_timer = self.arm();
        act
    }

    fn retransmit(&mut self, seq: u32, now: f64, out: &mut Vec<u32>) {
        let idx = seq as usize;
        self.retransmitted[idx] = true;
        self.send_time[idx] = now;
        out.push(seq);
    }

    fn rtt_sample(&mut self, rtt: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                let err = (srtt - rtt).abs();
                self.rttvar = 0.75 * self.rttvar + 0.25 * err;
                self.srtt = Some(0.875 * srtt + 0.125 * rtt);
            }
        }
        let base = self.srtt.unwrap() + (4.0 * self.rttvar).max(1.0e-6);
        self.rto = base.clamp(self.cfg.min_rto, self.cfg.max_rto);
    }
}

/// Receiver-side state: packet-granular cumulative ACKs with
/// replica-aware duplicate handling.
///
/// Two different kinds of "duplicate" must be treated differently:
///
/// * a duplicate **replica** (the original or another copy already
///   delivered this seq) is deduped *silently* — the replication shim sits
///   below TCP, and replicas must never manufacture ACK traffic;
/// * a duplicate **original** (a spurious retransmission) is ACKed with the
///   current cumulative value, exactly like real TCP — this is what lets a
///   sender whose ACK was lost learn that its data actually arrived.
///   Swallowing these would livelock such flows in an RTO loop.
#[derive(Debug)]
pub struct TcpReceiver {
    received: Vec<bool>,
    cum: u32,
}

impl TcpReceiver {
    /// New receiver expecting `total_pkts`.
    pub fn new(total_pkts: u32) -> Self {
        TcpReceiver {
            received: vec![false; total_pkts as usize],
            cum: 0,
        }
    }

    /// Next expected packet.
    pub fn cum(&self) -> u32 {
        self.cum
    }

    /// Handles an arriving data packet (`replica` = in-network copy);
    /// returns the cumulative ACK to send, or `None` when the packet is
    /// suppressed by the dedup shim.
    pub fn on_data(&mut self, seq: u32, replica: bool) -> Option<u32> {
        let idx = seq as usize;
        if idx >= self.received.len() {
            return None;
        }
        if self.received[idx] {
            // Duplicate: replicas vanish below TCP; duplicate originals
            // still elicit an ACK (lost-ACK recovery).
            return if replica { None } else { Some(self.cum) };
        }
        self.received[idx] = true;
        while (self.cum as usize) < self.received.len() && self.received[self.cum as usize] {
            self.cum += 1;
        }
        Some(self.cum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    #[test]
    fn short_flow_completes_in_order() {
        let mut s = TcpSender::new(3, cfg());
        let mut r = TcpReceiver::new(3);
        let act = s.on_start(0.0);
        assert_eq!(act.send, vec![0, 1, 2]);
        let mut done = false;
        for seq in act.send {
            if let Some(cum) = r.on_data(seq, false) {
                let a = s.on_ack(0.001, cum);
                done |= a.completed;
            }
        }
        assert!(done && s.completed);
    }

    #[test]
    fn initial_window_respects_cwnd() {
        let mut s = TcpSender::new(100, cfg());
        let act = s.on_start(0.0);
        assert_eq!(act.send.len(), 4, "IW = 4");
        assert!(act.arm_timer.is_some());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(1000, cfg());
        let w0 = s.on_start(0.0).send.len();
        // Ack the whole first window: cwnd should double.
        let a = s.on_ack(0.001, w0 as u32);
        assert_eq!(a.send.len(), 2 * w0, "slow start should double the window");
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = TcpSender::new(100, cfg());
        let _ = s.on_start(0.0);
        // Grow the window a bit.
        let mut acts = s.on_ack(0.001, 2);
        assert!(!acts.send.is_empty());
        let cwnd_before = s.cwnd();
        // Packet 2 lost: dupacks for cum=2.
        for i in 0..2 {
            let a = s.on_ack(0.002 + i as f64 * 1e-4, 2);
            assert!(a.send.is_empty(), "no retransmit before 3rd dupack");
        }
        acts = s.on_ack(0.003, 2);
        assert_eq!(acts.send, vec![2], "fast retransmit of the hole");
        assert!(s.cwnd() < cwnd_before, "window must shrink");
    }

    #[test]
    fn timeout_collapses_window_and_backs_off() {
        let mut s = TcpSender::new(100, cfg());
        let act = s.on_start(0.0);
        let epoch = s.timer_epoch;
        let rto0 = s.rto();
        assert!((rto0 - 0.010).abs() < 1e-12, "initial RTO at the 10 ms floor");
        drop(act);
        let a = s.on_timeout(0.010, epoch);
        assert_eq!(a.send, vec![0], "retransmit from snd_una");
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.timeouts, 1);
        assert!((s.rto() - 0.020).abs() < 1e-12, "RTO doubled");
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut s = TcpSender::new(10, cfg());
        let _ = s.on_start(0.0);
        let old_epoch = s.timer_epoch;
        let _ = s.on_ack(0.001, 1); // re-arms, bumping the epoch
        let a = s.on_timeout(0.010, old_epoch);
        assert!(a.send.is_empty());
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn rtt_sampling_sets_rto_with_floor() {
        let mut s = TcpSender::new(100, cfg());
        let _ = s.on_start(0.0);
        let _ = s.on_ack(100e-6, 1); // 100 us RTT
        assert!(s.srtt().is_some());
        assert!((s.srtt().unwrap() - 100e-6).abs() < 1e-9);
        assert_eq!(s.rto(), 0.010, "RTO clamps at the 10 ms floor");
    }

    #[test]
    fn karns_rule_skips_retransmitted_samples() {
        let mut s = TcpSender::new(10, cfg());
        let _ = s.on_start(0.0);
        let epoch = s.timer_epoch;
        let _ = s.on_timeout(0.010, epoch); // retransmits packet 0
        let _ = s.on_ack(5.0, 1); // absurd RTT that must NOT be sampled
        assert!(s.srtt().is_none(), "retransmitted packet must not be sampled");
    }

    #[test]
    fn receiver_dedups_replicas_but_acks_duplicate_originals() {
        let mut r = TcpReceiver::new(4);
        assert_eq!(r.on_data(0, false), Some(1));
        assert_eq!(r.on_data(2, true), Some(1), "replica delivering first counts");
        assert_eq!(r.on_data(2, true), None, "duplicate replica suppressed");
        assert_eq!(
            r.on_data(2, false),
            Some(1),
            "duplicate original must be ACKed (lost-ACK recovery)"
        );
        assert_eq!(r.on_data(1, false), Some(3), "hole filled: cum jumps");
        assert_eq!(r.on_data(3, false), Some(4));
        assert_eq!(r.on_data(9, false), None, "out-of-range ignored");
    }

    #[test]
    fn full_transfer_with_loss_recovers() {
        // Deterministic mini-harness: direct wire with one lost packet.
        let mut s = TcpSender::new(20, cfg());
        let mut r = TcpReceiver::new(20);
        let mut now = 0.0;
        let mut wire: Vec<u32> = s.on_start(now).send;
        let mut lost_once = false;
        let mut completed = false;
        let mut guard = 0;
        while !completed && guard < 1000 {
            guard += 1;
            now += 1e-4;
            let mut acks = Vec::new();
            for seq in wire.drain(..) {
                if seq == 5 && !lost_once {
                    lost_once = true; // drop exactly once
                    continue;
                }
                if let Some(c) = r.on_data(seq, false) {
                    acks.push(c);
                }
            }
            let mut next_wire = Vec::new();
            for c in acks {
                let a = s.on_ack(now, c);
                completed |= a.completed;
                next_wire.extend(a.send);
            }
            if next_wire.is_empty() && !completed {
                // Drive the timer if everything stalls.
                let a = s.on_timeout(now + s.rto(), s.timer_epoch);
                next_wire.extend(a.send);
            }
            wire = next_wire;
        }
        assert!(completed, "transfer must finish despite the loss");
    }
}
