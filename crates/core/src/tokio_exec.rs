//! Async race-to-first-response on tokio.
//!
//! `tokio::select!` is the natural way to express "first answer wins" for
//! two futures; for *k* copies we spawn tasks feeding an mpsc channel and
//! abort the stragglers — equivalent semantics, any k, and the losers'
//! cancellation is tokio-native (dropping/aborting a future cancels it at
//! its next await point, no token plumbing required).

use std::future::Future;
use std::time::Duration;
use tokio::sync::mpsc;
use tokio::task::JoinSet;

/// Races futures; resolves to `(value, winner_index)` of the first to
/// complete. Remaining copies are aborted. Returns `None` on empty input
/// or if every copy panics.
pub async fn race_async<T, F>(futs: Vec<F>) -> Option<(T, usize)>
where
    T: Send + 'static,
    F: Future<Output = T> + Send + 'static,
{
    if futs.is_empty() {
        return None;
    }
    let (tx, mut rx) = mpsc::channel::<(usize, T)>(futs.len());
    let mut set = JoinSet::new();
    for (i, f) in futs.into_iter().enumerate() {
        let tx = tx.clone();
        set.spawn(async move {
            let v = f.await;
            let _ = tx.send((i, v)).await;
        });
    }
    drop(tx);
    let (winner, value) = rx.recv().await?;
    set.abort_all();
    Some((value, winner))
}

/// Hedged async execution: polls `make(0)` immediately and releases
/// `make(i)` after `i × delay` of continued silence; first completion wins
/// and stragglers are aborted.
///
/// `copies` must be ≥ 1. Returns `(value, winner_index, launched)`.
pub async fn hedged_async<T, F, M>(
    make: M,
    copies: usize,
    delay: Duration,
) -> Option<(T, usize, usize)>
where
    T: Send + 'static,
    F: Future<Output = T> + Send + 'static,
    M: Fn(usize) -> F,
{
    if copies == 0 {
        return None;
    }
    let (tx, mut rx) = mpsc::channel::<(usize, T)>(copies);
    let mut set = JoinSet::new();
    let mut launched = 0usize;

    let launch = |set: &mut JoinSet<()>, launched: &mut usize| {
        let i = *launched;
        let f = make(i);
        let tx = tx.clone();
        set.spawn(async move {
            let v = f.await;
            let _ = tx.send((i, v)).await;
        });
        *launched += 1;
    };

    launch(&mut set, &mut launched);
    loop {
        if launched < copies {
            match tokio::time::timeout(delay, rx.recv()).await {
                Ok(Some((winner, value))) => {
                    set.abort_all();
                    return Some((value, winner, launched));
                }
                Ok(None) => return None,
                Err(_) => launch(&mut set, &mut launched),
            }
        } else {
            let out = rx.recv().await;
            set.abort_all();
            return out.map(|(winner, value)| (value, winner, launched));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[tokio::test]
    async fn fastest_future_wins() {
        let (v, winner) = race_async(vec![
            Box::pin(async {
                tokio::time::sleep(Duration::from_millis(50)).await;
                "slow"
            }) as std::pin::Pin<Box<dyn Future<Output = &'static str> + Send>>,
            Box::pin(async {
                tokio::time::sleep(Duration::from_millis(1)).await;
                "fast"
            }),
        ])
        .await
        .unwrap();
        assert_eq!(v, "fast");
        assert_eq!(winner, 1);
    }

    #[tokio::test]
    async fn empty_race_is_none() {
        let out: Option<(u8, usize)> =
            race_async(Vec::<std::pin::Pin<Box<dyn Future<Output = u8> + Send>>>::new()).await;
        assert!(out.is_none());
    }

    #[tokio::test(start_paused = true)]
    async fn hedge_skips_when_primary_fast() {
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        let out = hedged_async(
            move |i| {
                let fired = f2.clone();
                async move {
                    fired.fetch_max(i + 1, Ordering::SeqCst);
                    tokio::time::sleep(Duration::from_millis(1)).await;
                    i
                }
            },
            3,
            Duration::from_millis(100),
        )
        .await
        .unwrap();
        assert_eq!(out.0, 0, "primary should win");
        assert_eq!(out.2, 1, "no hedges launched");
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[tokio::test(start_paused = true)]
    async fn hedge_fires_for_slow_primary() {
        let out = hedged_async(
            |i| async move {
                // Copy 0 is pathologically slow; copy 1 is instant.
                let ms = if i == 0 { 10_000 } else { 1 };
                tokio::time::sleep(Duration::from_millis(ms)).await;
                i
            },
            2,
            Duration::from_millis(5),
        )
        .await
        .unwrap();
        assert_eq!(out.0, 1, "hedge should win");
        assert_eq!(out.2, 2);
    }

    #[tokio::test]
    async fn losers_are_aborted() {
        let completions = Arc::new(AtomicUsize::new(0));
        let c = completions.clone();
        let futs: Vec<_> = (0..4usize)
            .map(|i| {
                let c = c.clone();
                Box::pin(async move {
                    tokio::time::sleep(Duration::from_millis(if i == 0 { 1 } else { 200 })).await;
                    c.fetch_add(1, Ordering::SeqCst);
                    i
                }) as std::pin::Pin<Box<dyn Future<Output = usize> + Send>>
            })
            .collect();
        let (v, _) = race_async(futs).await.unwrap();
        assert_eq!(v, 0);
        // Give aborted tasks a moment; they must not complete.
        tokio::time::sleep(Duration::from_millis(300)).await;
        assert_eq!(
            completions.load(Ordering::SeqCst),
            1,
            "losers should have been aborted"
        );
    }
}
