//! Async race-to-first-response (the `tokio-exec` feature).
//!
//! The API mirrors what a `tokio::select!`/`JoinSet` implementation would
//! expose — race k futures, first completion wins, stragglers are
//! cancelled — but the implementation is **executor-agnostic and
//! dependency-free** so the workspace builds offline: [`race_async`] and
//! [`hedged_async`] are ordinary `Future`s that run unchanged on any
//! executor (tokio included). Cancellation is the async-native kind: the
//! losing futures are *dropped* at their next suspension point, no token
//! plumbing required.
//!
//! Because some callers (tests, examples, synchronous binaries) have no
//! runtime at hand, the module ships a micro executor: [`block_on`] drives
//! a future on the current thread with a park/unpark waker, and [`sleep`]
//! is a timer future backed by a helper thread. Replace both freely with a
//! real runtime's equivalents in production code.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread;
use std::time::{Duration, Instant};

type BoxFut<T> = Pin<Box<dyn Future<Output = T> + Send>>;

struct ThreadWaker(thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives `fut` to completion on the current thread — the minimal
/// executor used by this crate's tests and examples.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = Box::pin(fut);
    let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => thread::park(),
        }
    }
}

struct TimerState {
    done: bool,
    waker: Option<Waker>,
}

/// A timer future: completes `duration` after creation. Works under any
/// executor (a helper thread wakes the task at the deadline).
pub struct Sleep {
    deadline: Instant,
    shared: Option<Arc<Mutex<TimerState>>>,
}

/// Sleeps for `duration` (see [`Sleep`]).
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
        shared: None,
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if Instant::now() >= this.deadline {
            return Poll::Ready(());
        }
        match &this.shared {
            Some(shared) => {
                let mut st = shared.lock().unwrap();
                if st.done {
                    return Poll::Ready(());
                }
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
            None => {
                let shared = Arc::new(Mutex::new(TimerState {
                    done: false,
                    waker: Some(cx.waker().clone()),
                }));
                let deadline = this.deadline;
                let for_timer = Arc::clone(&shared);
                thread::spawn(move || {
                    loop {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        thread::sleep(deadline - now);
                    }
                    let mut st = for_timer.lock().unwrap();
                    st.done = true;
                    if let Some(w) = st.waker.take() {
                        w.wake();
                    }
                });
                this.shared = Some(shared);
                Poll::Pending
            }
        }
    }
}

/// Polls a set of indexed futures plus an optional timeout; resolves to
/// `Some((value, index))` on the first completion or `None` on timeout.
struct RaceStep<'a, T> {
    entries: &'a mut Vec<(usize, BoxFut<T>)>,
    timeout: Option<Sleep>,
}

impl<T> Future for RaceStep<'_, T> {
    type Output = Option<(T, usize)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        for (idx, fut) in this.entries.iter_mut() {
            if let Poll::Ready(v) = fut.as_mut().poll(cx) {
                return Poll::Ready(Some((v, *idx)));
            }
        }
        if let Some(t) = &mut this.timeout {
            if Pin::new(t).poll(cx).is_ready() {
                return Poll::Ready(None);
            }
        }
        Poll::Pending
    }
}

/// Races futures; resolves to `(value, winner_index)` of the first to
/// complete. Remaining copies are dropped (async cancellation) before the
/// result is returned. Returns `None` on empty input.
pub async fn race_async<T, F>(futs: Vec<F>) -> Option<(T, usize)>
where
    T: Send + 'static,
    F: Future<Output = T> + Send + 'static,
{
    if futs.is_empty() {
        return None;
    }
    let mut entries: Vec<(usize, BoxFut<T>)> = futs
        .into_iter()
        .enumerate()
        .map(|(i, f)| (i, Box::pin(f) as BoxFut<T>))
        .collect();
    RaceStep {
        entries: &mut entries,
        timeout: None,
    }
    .await
}

/// Hedged async execution: polls `make(0)` immediately and releases
/// `make(i)` after `i × delay` of continued silence; first completion wins
/// and stragglers are dropped.
///
/// `copies` must be ≥ 1. Returns `(value, winner_index, launched)`.
pub async fn hedged_async<T, F, M>(
    make: M,
    copies: usize,
    delay: Duration,
) -> Option<(T, usize, usize)>
where
    T: Send + 'static,
    F: Future<Output = T> + Send + 'static,
    M: Fn(usize) -> F,
{
    if copies == 0 {
        return None;
    }
    let mut entries: Vec<(usize, BoxFut<T>)> = vec![(0, Box::pin(make(0)) as BoxFut<T>)];
    let mut launched = 1usize;
    while launched < copies {
        let step = RaceStep {
            entries: &mut entries,
            timeout: Some(sleep(delay)),
        }
        .await;
        match step {
            Some((value, winner)) => return Some((value, winner, launched)),
            None => {
                entries.push((launched, Box::pin(make(launched)) as BoxFut<T>));
                launched += 1;
            }
        }
    }
    RaceStep {
        entries: &mut entries,
        timeout: None,
    }
    .await
    .map(|(value, winner)| (value, winner, launched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fastest_future_wins() {
        let (v, winner) = block_on(race_async(vec![
            Box::pin(async {
                sleep(Duration::from_millis(50)).await;
                "slow"
            }) as BoxFut<&'static str>,
            Box::pin(async {
                sleep(Duration::from_millis(1)).await;
                "fast"
            }),
        ]))
        .unwrap();
        assert_eq!(v, "fast");
        assert_eq!(winner, 1);
    }

    #[test]
    fn empty_race_is_none() {
        let out: Option<(u8, usize)> = block_on(race_async(Vec::<BoxFut<u8>>::new()));
        assert!(out.is_none());
    }

    #[test]
    fn hedge_skips_when_primary_fast() {
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        let out = block_on(hedged_async(
            move |i| {
                let fired = f2.clone();
                async move {
                    fired.fetch_max(i + 1, Ordering::SeqCst);
                    sleep(Duration::from_millis(1)).await;
                    i
                }
            },
            3,
            // Generous hedge delay: the primary finishes in ~1 ms, so only
            // a multi-second scheduler stall could flake this.
            Duration::from_secs(5),
        ))
        .unwrap();
        assert_eq!(out.0, 0, "primary should win");
        assert_eq!(out.2, 1, "no hedges launched");
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hedge_fires_for_slow_primary() {
        let out = block_on(hedged_async(
            |i| async move {
                // Copy 0 is pathologically slow; copy 1 is fast.
                let ms = if i == 0 { 2_000 } else { 1 };
                sleep(Duration::from_millis(ms)).await;
                i
            },
            2,
            Duration::from_millis(5),
        ))
        .unwrap();
        assert_eq!(out.0, 1, "hedge should win");
        assert_eq!(out.2, 2);
    }

    #[test]
    fn losers_are_cancelled() {
        let completions = Arc::new(AtomicUsize::new(0));
        let c = completions.clone();
        let futs: Vec<BoxFut<usize>> = (0..4usize)
            .map(|i| {
                let c = c.clone();
                Box::pin(async move {
                    sleep(Duration::from_millis(if i == 0 { 1 } else { 100 })).await;
                    c.fetch_add(1, Ordering::SeqCst);
                    i
                }) as BoxFut<usize>
            })
            .collect();
        let (v, _) = block_on(race_async(futs)).unwrap();
        assert_eq!(v, 0);
        // Losers were dropped at the race's end; give their timers time to
        // fire anyway — the future bodies must never resume.
        thread::sleep(Duration::from_millis(200));
        assert_eq!(
            completions.load(Ordering::SeqCst),
            1,
            "losers should have been cancelled"
        );
    }

    #[test]
    fn sleep_is_roughly_accurate() {
        let t0 = Instant::now();
        block_on(sleep(Duration::from_millis(20)));
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(18), "{dt:?}");
        assert!(dt < Duration::from_secs(2), "{dt:?}");
    }
}
