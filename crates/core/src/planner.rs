//! Should you replicate? The paper's answer, as an API.
//!
//! §2.1 of the paper characterizes when always-on replication lowers mean
//! latency in a fixed-capacity system: below a **threshold load** that
//! (absent client-side cost) always lies between ~26 % and 50 % of
//! utilization, higher for more variable service times, and degraded
//! toward zero as the client-side cost of an extra copy approaches the
//! mean service time (Fig 4). [`Planner`] packages those results:
//! describe your workload ([`WorkloadProfile`]) and current utilization,
//! get back an [`Advice`] with the predicted speedup.
//!
//! The analytics are the `queuesim::analytic` two-moment model — exact for
//! M/M/1 (Theorem 1's 1/3), closed-form ≈ 0.293 for deterministic service
//! — with the client overhead applied exactly as the paper's Fig 4 does
//! (a constant added to every replicated request).

use queuesim::analytic::pk::{self, ServiceMoments};
use queuesim::analytic::two_moment;
use simcore::stats::Welford;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// First and second moments of the backend service time, plus what an
/// extra copy costs the client.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadProfile {
    /// Mean backend service time, seconds.
    pub mean_service: f64,
    /// Squared coefficient of variation of the service time
    /// (0 = deterministic, 1 = exponential, > 1 = heavy).
    pub scv: f64,
    /// Client-side latency cost added to a request by each extra copy,
    /// seconds (network + CPU + kernel; §2.3 measured ≥ 9 % of the mean
    /// for memcached, which is what killed replication there).
    pub client_overhead: f64,
}

impl WorkloadProfile {
    /// Builds a profile from observed latency samples at *low load* (so
    /// the samples approximate service time rather than queueing) plus a
    /// measured per-copy overhead.
    pub fn from_samples(samples: &Welford, client_overhead: f64) -> Self {
        assert!(samples.count() >= 2, "need at least two samples");
        let mean = samples.mean();
        WorkloadProfile {
            mean_service: mean,
            scv: samples.variance() / (mean * mean),
            client_overhead,
        }
    }

    fn moments(&self) -> ServiceMoments {
        ServiceMoments::new(self.mean_service, self.scv * self.mean_service * self.mean_service)
    }
}

/// What the planner recommends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Advice {
    /// `true` when 2-way replication is predicted to lower mean latency.
    pub replicate: bool,
    /// The threshold load below which replication helps this workload.
    pub threshold_load: f64,
    /// Predicted mean response time without replication, seconds.
    pub mean_single: f64,
    /// Predicted mean response time with 2 copies, seconds.
    pub mean_replicated: f64,
}

impl Advice {
    /// Predicted speedup factor (`> 1` means replication wins).
    pub fn speedup(&self) -> f64 {
        self.mean_single / self.mean_replicated
    }
}

/// A per-request replication decision against the *load shape* — the
/// output of [`Planner::decide_for`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairDecision {
    /// `true` when every candidate server sits below the threshold.
    pub replicate: bool,
    /// The §2.1 threshold load the candidates were compared against
    /// (resolved through the [`ThresholdCache`] grid).
    pub threshold_load: f64,
    /// The binding utilization: the maximum over the candidate servers.
    pub max_load: f64,
}

/// The replication planner for 2-way replication in a fixed-size cluster.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    profile: WorkloadProfile,
}

impl Planner {
    /// Creates a planner for a workload.
    pub fn new(profile: WorkloadProfile) -> Self {
        assert!(profile.mean_service > 0.0 && profile.scv >= 0.0);
        assert!(profile.client_overhead >= 0.0);
        Planner { profile }
    }

    /// The workload profile this planner was built from.
    pub fn profile(&self) -> WorkloadProfile {
        self.profile
    }

    /// A planner with the same client overhead but re-measured service
    /// moments — the self-calibration path: feed it the live mean/SCV from
    /// a [`crate::estimator::MomentEstimator`] and the returned planner's
    /// [`threshold_load`](Self::threshold_load) is the §2.1 threshold for
    /// the service law actually being observed, not the configured one.
    ///
    /// # Panics
    /// Panics like [`new`](Self::new) on a non-positive mean or negative
    /// SCV — callers should hold back until their estimator is warm.
    pub fn recalibrated(&self, mean_service: f64, scv: f64) -> Planner {
        Planner::new(WorkloadProfile {
            mean_service,
            scv,
            client_overhead: self.profile.client_overhead,
        })
    }

    /// The threshold load for this workload: the largest utilization below
    /// which 2-way replication still lowers the mean (0 when the client
    /// overhead already exceeds any possible gain).
    pub fn threshold_load(&self) -> f64 {
        let s = self.profile.moments();
        let over = self.profile.client_overhead;
        // Bisect mean2(rho) + overhead = mean1(rho) on (0, 0.5).
        let gain = |rho: f64| {
            two_moment::mean_response_replicated(s, rho, 2) + over - pk::mean_response(s, rho)
        };
        let mut lo = 1e-4;
        let mut hi = 0.5 - 1e-6;
        if gain(lo) > 0.0 {
            return 0.0;
        }
        if gain(hi) < 0.0 {
            return hi;
        }
        while hi - lo > 1e-4 {
            let mid = 0.5 * (lo + hi);
            if gain(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Per-request decision for one request's candidate servers: replicate
    /// exactly when the **maximum** estimated utilization among
    /// `pair_loads` (typically the two stored replicas of the requested
    /// shard, from an [`crate::estimator::EstimatorBank`]) sits below this
    /// workload's §2.1 threshold.
    ///
    /// This is the skew-aware refinement of [`advise`](Self::advise): a
    /// *global* load estimate flips every request at once, while comparing
    /// each request's own candidate pair lets requests whose servers are
    /// cold keep replicating after requests landing on hot servers have
    /// switched off. The max is the right aggregate because a duplicated
    /// request adds a copy to *both* candidates — the §2.1 trade is only
    /// safe if the busier of the two can still absorb it.
    ///
    /// The threshold is resolved through `cache` (the quantized
    /// dimensionless grid), so the per-request cost is a hash lookup, not
    /// a bisection.
    ///
    /// # Panics
    /// Panics on an empty candidate slice; debug-panics on non-finite or
    /// negative loads.
    pub fn decide_for(&self, cache: &mut ThresholdCache, pair_loads: &[f64]) -> PairDecision {
        assert!(
            !pair_loads.is_empty(),
            "decide_for needs at least one candidate load"
        );
        let max_load = pair_loads.iter().fold(f64::NEG_INFINITY, |a, &b| {
            debug_assert!(b.is_finite() && b >= 0.0, "bad candidate load {b}");
            a.max(b)
        });
        let threshold_load = cache.threshold(
            self.profile.mean_service,
            self.profile.scv,
            self.profile.client_overhead,
        );
        PairDecision {
            replicate: max_load < threshold_load,
            threshold_load,
            max_load,
        }
    }

    /// Advice at the given per-server utilization.
    pub fn advise(&self, load: f64) -> Advice {
        assert!((0.0..1.0).contains(&load), "load out of range: {load}");
        let s = self.profile.moments();
        let mean_single = pk::mean_response(s, load);
        let mean_replicated = if 2.0 * load < 1.0 {
            two_moment::mean_response_replicated(s, load, 2) + self.profile.client_overhead
        } else {
            f64::INFINITY
        };
        Advice {
            replicate: mean_replicated < mean_single,
            threshold_load: self.threshold_load(),
            mean_single,
            mean_replicated,
        }
    }
}

/// Memoized threshold lookup for **live recalibration**.
///
/// The threshold load is dimensionless: rescaling time scales every mean in
/// `gain(ρ)` by the same factor, so the root depends only on the service
/// SCV and the overhead-to-mean ratio. A self-calibrating front-end
/// re-deriving the threshold as its moment estimates drift would otherwise
/// pay the full bisection (tens of milliseconds of CCDF quadrature) on
/// every recalibration; this cache snaps the two dimensionless inputs onto
/// a ~2 %-relative grid and bisects once per grid point, so a converging
/// estimator quickly stops paying anything at all.
///
/// Quantization error is bounded by the grid, per axis: along the SCV
/// axis the threshold moves by less than ~0.002 load across one step
/// anywhere on the curve; along the overhead axis the curve has a cliff
/// (Fig 4 collapses the threshold as overhead approaches the mean —
/// slope ~30 load per unit ratio right before extinction), so that axis
/// uses a finer 5e-4 step, bounding the error there by ~0.01 load — well
/// inside the ±0.05–0.08 bands the experiments enforce. Both bounds are
/// pinned in the tests below.
///
/// Every handle also consults a **process-wide** store on a local miss:
/// a grid point's threshold is a pure function of its key, so replications
/// of the same workload (and parallel runner threads) share each other's
/// bisections instead of re-paying them. The store is an `RwLock`: the
/// steady state is all reads, so F sharded frontends (or N runner threads)
/// resolve warm grid points concurrently instead of serializing behind one
/// mutex — and each handle's private memo means a warm frontend stops
/// touching the shared store at all. The bisection itself runs outside
/// any lock — two threads racing on a fresh key may both compute it, but
/// they compute the identical value, so results stay bit-reproducible at
/// any thread count.
#[derive(Clone, Debug, Default)]
pub struct ThresholdCache {
    // Determinism audit (lint rule map-iteration): HashMap is safe here
    // because every access is a keyed get/insert on the quantized grid
    // point — the map is never traversed, so iteration order can't leak
    // into results. Keep it that way; a traversal must move to BTreeMap.
    map: HashMap<(i64, i64), f64>,
}

/// Process-wide grid-point store backing every [`ThresholdCache`] handle.
/// Read-mostly: warm lookups take the shared read lock; only the first
/// resolution of a grid point takes the write lock.
static SHARED_THRESHOLDS: OnceLock<RwLock<HashMap<(i64, i64), f64>>> = OnceLock::new();

impl ThresholdCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct grid points resolved through this handle (diagnostic).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no grid point has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Absolute grid below 2 (step 0.02), log grid above (5 % relative,
    /// where the threshold curve is nearly flat) — continuous at the seam.
    fn quantize_scv(scv: f64) -> i64 {
        if scv <= 2.0 {
            (scv / 0.02).round() as i64
        } else {
            100 + ((scv / 2.0).ln() / 0.05).round() as i64
        }
    }

    fn dequantize_scv(key: i64) -> f64 {
        if key <= 100 {
            key as f64 * 0.02
        } else {
            2.0 * ((key - 100) as f64 * 0.05).exp()
        }
    }

    /// The §2.1 threshold load for live moments `(mean_service, scv)` and
    /// per-copy `client_overhead`, memoized on the quantized
    /// `(scv, overhead/mean)` grid.
    ///
    /// # Panics
    /// Panics on a non-positive mean, negative SCV, or negative overhead.
    pub fn threshold(&mut self, mean_service: f64, scv: f64, client_overhead: f64) -> f64 {
        assert!(mean_service > 0.0, "mean must be positive: {mean_service}");
        assert!(scv >= 0.0 && client_overhead >= 0.0);
        let key = (
            Self::quantize_scv(scv),
            (client_overhead / mean_service / 5.0e-4).round() as i64,
        );
        if let Some(&t) = self.map.get(&key) {
            return t;
        }
        let shared = SHARED_THRESHOLDS.get_or_init(Default::default);
        if let Some(&t) = shared.read().expect("threshold store poisoned").get(&key) {
            self.map.insert(key, t);
            return t;
        }
        // Bisect at the grid representative in unit-mean time, so every
        // (mean, overhead) pair mapping to the same key agrees exactly.
        let t = Planner::new(WorkloadProfile {
            mean_service: 1.0,
            scv: Self::dequantize_scv(key.0),
            client_overhead: key.1 as f64 * 5.0e-4,
        })
        .threshold_load();
        self.map.insert(key, t);
        shared
            .write()
            .expect("threshold store poisoned")
            .insert(key, t);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_profile(overhead: f64) -> WorkloadProfile {
        WorkloadProfile {
            mean_service: 1.0,
            scv: 1.0,
            client_overhead: overhead,
        }
    }

    #[test]
    fn exponential_threshold_is_theorem_1() {
        let p = Planner::new(exp_profile(0.0));
        let t = p.threshold_load();
        assert!((t - 1.0 / 3.0).abs() < 3e-3, "threshold {t}");
    }

    #[test]
    fn advice_flips_at_threshold() {
        let p = Planner::new(exp_profile(0.0));
        assert!(p.advise(0.25).replicate);
        assert!(!p.advise(0.45).replicate);
        // Speedup sensible below threshold.
        let a = p.advise(0.2);
        assert!(a.speedup() > 1.2, "speedup {}", a.speedup());
    }

    #[test]
    fn overhead_shrinks_threshold_like_fig4() {
        let thresholds: Vec<f64> = [0.0, 0.2, 0.5, 1.0]
            .iter()
            .map(|&o| Planner::new(exp_profile(o)).threshold_load())
            .collect();
        for w in thresholds.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "not decreasing: {thresholds:?}");
        }
        assert!(thresholds[3] < 0.02, "mean-sized overhead kills it");
    }

    #[test]
    fn deterministic_floor_matches_closed_form() {
        let p = Planner::new(WorkloadProfile {
            mean_service: 5.0e-3,
            scv: 0.0,
            client_overhead: 0.0,
        });
        let t = p.threshold_load();
        let expect = two_moment::deterministic_threshold_closed_form();
        assert!((t - expect).abs() < 2e-3, "{t} vs {expect}");
    }

    #[test]
    fn profile_from_samples() {
        let mut w = Welford::new();
        // Synthetic low-load latency samples, mean ~2ms, scv ~1.
        let mut rng = simcore::rng::Rng::seed_from(5);
        for _ in 0..50_000 {
            w.push(rng.exponential(500.0));
        }
        let prof = WorkloadProfile::from_samples(&w, 0.0);
        assert!((prof.mean_service - 2e-3).abs() < 1e-4);
        assert!((prof.scv - 1.0).abs() < 0.05);
        let planner = Planner::new(prof);
        assert!((planner.threshold_load() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn threshold_cache_matches_direct_bisection_and_memoizes() {
        let mut cache = ThresholdCache::new();
        // On-grid inputs reproduce the direct bisection exactly.
        let direct = Planner::new(exp_profile(0.0)).threshold_load();
        let cached = cache.threshold(1.0, 1.0, 0.0);
        assert_eq!(cached.to_bits(), direct.to_bits());
        assert_eq!(cache.len(), 1);
        // Nearby inputs snap to the same grid point: no new bisection and
        // the identical value back.
        let near = cache.threshold(2.5e-3, 1.004, 0.0);
        assert_eq!(near.to_bits(), cached.to_bits());
        assert_eq!(cache.len(), 1);
        // Off-grid inputs land within the documented quantization error.
        for scv in [0.27, 3.3, 12.47] {
            let exact = Planner::new(WorkloadProfile {
                mean_service: 1.0,
                scv,
                client_overhead: 0.0,
            })
            .threshold_load();
            let approx = cache.threshold(1.0e-3, scv, 0.0);
            assert!(
                (approx - exact).abs() < 2.5e-3,
                "scv {scv}: cached {approx} vs exact {exact}"
            );
        }
        // The overhead ratio is part of the key.
        let with_over = cache.threshold(1.0, 1.0, 0.5);
        assert!(with_over < cached, "overhead must shrink the threshold");
    }

    #[test]
    fn threshold_cache_overhead_axis_stays_in_documented_bound() {
        // The overhead axis has a cliff (Fig 4): verify the quantized
        // lookup tracks the exact bisection to the documented ~0.02 bound
        // across it, including off-grid ratios right at the steep part.
        let mut cache = ThresholdCache::new();
        for &ratio in &[0.049, 0.2513, 0.499, 0.5021, 0.601, 0.75] {
            let exact = Planner::new(WorkloadProfile {
                mean_service: 1.0,
                scv: 1.0,
                client_overhead: ratio,
            })
            .threshold_load();
            let approx = cache.threshold(2.0e-3, 1.0, ratio * 2.0e-3);
            assert!(
                (approx - exact).abs() < 0.02,
                "ratio {ratio}: cached {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn recalibration_swaps_moments_and_keeps_overhead() {
        let p = Planner::new(WorkloadProfile {
            mean_service: 1.0e-3,
            scv: 1.0,
            client_overhead: 0.5e-3,
        });
        let r = p.recalibrated(2.0e-3, 0.0);
        assert_eq!(r.profile().mean_service, 2.0e-3);
        assert_eq!(r.profile().scv, 0.0);
        assert_eq!(r.profile().client_overhead, 0.5e-3);
        // Same moments back in => identical threshold.
        let same = p.recalibrated(1.0e-3, 1.0);
        assert_eq!(
            same.threshold_load().to_bits(),
            p.threshold_load().to_bits()
        );
    }

    #[test]
    fn two_moment_threshold_peaks_at_exponential() {
        // The approximation the planner is built on (a Myers–Vernon
        // stand-in; see queuesim::analytic::two_moment) is exact at
        // scv = 1 and *degrades toward its deterministic floor* on either
        // side — the ordering the self-calibrating service experiments
        // (`fig-service-tail`) pin end-to-end.
        let at = |scv: f64| {
            Planner::new(WorkloadProfile {
                mean_service: 1.0,
                scv,
                client_overhead: 0.0,
            })
            .threshold_load()
        };
        let exp = at(1.0);
        assert!((exp - 1.0 / 3.0).abs() < 3e-3);
        assert!(at(0.27) < exp, "light tail must sit below exponential");
        assert!(at(12.0) < exp, "heavy tail must sit below exponential");
        assert!(at(12.0) > at(0.0), "heavy stays above the deterministic floor");
    }

    #[test]
    fn decide_for_binds_on_the_hottest_candidate() {
        let p = Planner::new(exp_profile(0.0));
        let mut cache = ThresholdCache::new();
        let threshold = cache.threshold(1.0, 1.0, 0.0);
        // Both candidates cold: replicate, and the reported threshold is
        // exactly the cached grid value.
        let d = p.decide_for(&mut cache, &[0.1, 0.2]);
        assert!(d.replicate);
        assert_eq!(d.threshold_load.to_bits(), threshold.to_bits());
        assert!((d.max_load - 0.2).abs() < 1e-12);
        // One hot candidate vetoes replication even when the other is
        // nearly idle — the skew-aware point of the entry point.
        let d = p.decide_for(&mut cache, &[0.02, 0.45]);
        assert!(!d.replicate, "hot partner must veto: {d:?}");
        assert!((d.max_load - 0.45).abs() < 1e-12);
        // Just below / just above the threshold flips the decision.
        assert!(p.decide_for(&mut cache, &[threshold - 1e-6]).replicate);
        assert!(!p.decide_for(&mut cache, &[threshold]).replicate);
        // A single-candidate slice is legal (degenerate "pair").
        assert!(p.decide_for(&mut cache, &[0.0]).replicate);
    }

    #[test]
    fn decide_for_tracks_recalibrated_moments() {
        // A deterministic workload's threshold (~0.293) is lower than the
        // exponential 1/3: a pair load between the two must replicate
        // under the exponential planner and not under the recalibrated
        // deterministic one, through the same cache.
        let mut cache = ThresholdCache::new();
        let exp = Planner::new(exp_profile(0.0));
        let det = exp.recalibrated(1.0, 0.0);
        let loads = [0.30, 0.31];
        assert!(exp.decide_for(&mut cache, &loads).replicate);
        assert!(!det.decide_for(&mut cache, &loads).replicate);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn decide_for_rejects_empty_candidates() {
        let p = Planner::new(exp_profile(0.0));
        let mut cache = ThresholdCache::new();
        let _ = p.decide_for(&mut cache, &[]);
    }

    #[test]
    fn never_replicate_above_half() {
        let p = Planner::new(exp_profile(0.0));
        let a = p.advise(0.6);
        assert!(!a.replicate);
        assert!(a.mean_replicated.is_infinite());
    }
}
