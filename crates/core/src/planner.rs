//! Should you replicate? The paper's answer, as an API.
//!
//! §2.1 of the paper characterizes when always-on replication lowers mean
//! latency in a fixed-capacity system: below a **threshold load** that
//! (absent client-side cost) always lies between ~26 % and 50 % of
//! utilization, higher for more variable service times, and degraded
//! toward zero as the client-side cost of an extra copy approaches the
//! mean service time (Fig 4). [`Planner`] packages those results:
//! describe your workload ([`WorkloadProfile`]) and current utilization,
//! get back an [`Advice`] with the predicted speedup.
//!
//! The analytics are the `queuesim::analytic` two-moment model — exact for
//! M/M/1 (Theorem 1's 1/3), closed-form ≈ 0.293 for deterministic service
//! — with the client overhead applied exactly as the paper's Fig 4 does
//! (a constant added to every replicated request).

use queuesim::analytic::pk::{self, ServiceMoments};
use queuesim::analytic::two_moment;
use simcore::stats::Welford;

/// First and second moments of the backend service time, plus what an
/// extra copy costs the client.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadProfile {
    /// Mean backend service time, seconds.
    pub mean_service: f64,
    /// Squared coefficient of variation of the service time
    /// (0 = deterministic, 1 = exponential, > 1 = heavy).
    pub scv: f64,
    /// Client-side latency cost added to a request by each extra copy,
    /// seconds (network + CPU + kernel; §2.3 measured ≥ 9 % of the mean
    /// for memcached, which is what killed replication there).
    pub client_overhead: f64,
}

impl WorkloadProfile {
    /// Builds a profile from observed latency samples at *low load* (so
    /// the samples approximate service time rather than queueing) plus a
    /// measured per-copy overhead.
    pub fn from_samples(samples: &Welford, client_overhead: f64) -> Self {
        assert!(samples.count() >= 2, "need at least two samples");
        let mean = samples.mean();
        WorkloadProfile {
            mean_service: mean,
            scv: samples.variance() / (mean * mean),
            client_overhead,
        }
    }

    fn moments(&self) -> ServiceMoments {
        ServiceMoments::new(self.mean_service, self.scv * self.mean_service * self.mean_service)
    }
}

/// What the planner recommends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Advice {
    /// `true` when 2-way replication is predicted to lower mean latency.
    pub replicate: bool,
    /// The threshold load below which replication helps this workload.
    pub threshold_load: f64,
    /// Predicted mean response time without replication, seconds.
    pub mean_single: f64,
    /// Predicted mean response time with 2 copies, seconds.
    pub mean_replicated: f64,
}

impl Advice {
    /// Predicted speedup factor (`> 1` means replication wins).
    pub fn speedup(&self) -> f64 {
        self.mean_single / self.mean_replicated
    }
}

/// The replication planner for 2-way replication in a fixed-size cluster.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    profile: WorkloadProfile,
}

impl Planner {
    /// Creates a planner for a workload.
    pub fn new(profile: WorkloadProfile) -> Self {
        assert!(profile.mean_service > 0.0 && profile.scv >= 0.0);
        assert!(profile.client_overhead >= 0.0);
        Planner { profile }
    }

    /// The threshold load for this workload: the largest utilization below
    /// which 2-way replication still lowers the mean (0 when the client
    /// overhead already exceeds any possible gain).
    pub fn threshold_load(&self) -> f64 {
        let s = self.profile.moments();
        let over = self.profile.client_overhead;
        // Bisect mean2(rho) + overhead = mean1(rho) on (0, 0.5).
        let gain = |rho: f64| {
            two_moment::mean_response_replicated(s, rho, 2) + over - pk::mean_response(s, rho)
        };
        let mut lo = 1e-4;
        let mut hi = 0.5 - 1e-6;
        if gain(lo) > 0.0 {
            return 0.0;
        }
        if gain(hi) < 0.0 {
            return hi;
        }
        while hi - lo > 1e-4 {
            let mid = 0.5 * (lo + hi);
            if gain(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Advice at the given per-server utilization.
    pub fn advise(&self, load: f64) -> Advice {
        assert!((0.0..1.0).contains(&load), "load out of range: {load}");
        let s = self.profile.moments();
        let mean_single = pk::mean_response(s, load);
        let mean_replicated = if 2.0 * load < 1.0 {
            two_moment::mean_response_replicated(s, load, 2) + self.profile.client_overhead
        } else {
            f64::INFINITY
        };
        Advice {
            replicate: mean_replicated < mean_single,
            threshold_load: self.threshold_load(),
            mean_single,
            mean_replicated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_profile(overhead: f64) -> WorkloadProfile {
        WorkloadProfile {
            mean_service: 1.0,
            scv: 1.0,
            client_overhead: overhead,
        }
    }

    #[test]
    fn exponential_threshold_is_theorem_1() {
        let p = Planner::new(exp_profile(0.0));
        let t = p.threshold_load();
        assert!((t - 1.0 / 3.0).abs() < 3e-3, "threshold {t}");
    }

    #[test]
    fn advice_flips_at_threshold() {
        let p = Planner::new(exp_profile(0.0));
        assert!(p.advise(0.25).replicate);
        assert!(!p.advise(0.45).replicate);
        // Speedup sensible below threshold.
        let a = p.advise(0.2);
        assert!(a.speedup() > 1.2, "speedup {}", a.speedup());
    }

    #[test]
    fn overhead_shrinks_threshold_like_fig4() {
        let thresholds: Vec<f64> = [0.0, 0.2, 0.5, 1.0]
            .iter()
            .map(|&o| Planner::new(exp_profile(o)).threshold_load())
            .collect();
        for w in thresholds.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "not decreasing: {thresholds:?}");
        }
        assert!(thresholds[3] < 0.02, "mean-sized overhead kills it");
    }

    #[test]
    fn deterministic_floor_matches_closed_form() {
        let p = Planner::new(WorkloadProfile {
            mean_service: 5.0e-3,
            scv: 0.0,
            client_overhead: 0.0,
        });
        let t = p.threshold_load();
        let expect = two_moment::deterministic_threshold_closed_form();
        assert!((t - expect).abs() < 2e-3, "{t} vs {expect}");
    }

    #[test]
    fn profile_from_samples() {
        let mut w = Welford::new();
        // Synthetic low-load latency samples, mean ~2ms, scv ~1.
        let mut rng = simcore::rng::Rng::seed_from(5);
        for _ in 0..50_000 {
            w.push(rng.exponential(500.0));
        }
        let prof = WorkloadProfile::from_samples(&w, 0.0);
        assert!((prof.mean_service - 2e-3).abs() < 1e-4);
        assert!((prof.scv - 1.0).abs() < 0.05);
        let planner = Planner::new(prof);
        assert!((planner.threshold_load() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn never_replicate_above_half() {
        let p = Planner::new(exp_profile(0.0));
        let a = p.advise(0.6);
        assert!(!a.replicate);
        assert!(a.mean_replicated.is_infinite());
    }
}
