//! Thread-based race-to-first-response.
//!
//! [`race`] runs every copy immediately (the paper's scheme); [`hedged`]
//! releases additional copies only after a delay (tied/hedged requests).
//! Losers are signalled through a [`CancelToken`]; whether they honor it is
//! up to the closure — exactly the spectrum between the paper's
//! no-cancellation model and Dean & Barroso's tied requests.

use crate::cancel::CancelToken;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// A replica operation: runs with a cancellation token, produces a value.
pub type Replica<T> = Box<dyn FnOnce(&CancelToken) -> T + Send>;

/// Wraps a closure as a [`Replica`] (helps type inference at call sites).
pub fn replica<T, F>(f: F) -> Replica<T>
where
    F: FnOnce(&CancelToken) -> T + Send + 'static,
{
    Box::new(f)
}

/// The winning response plus bookkeeping.
#[derive(Debug)]
pub struct RaceOutcome<T> {
    /// The first value produced.
    pub value: T,
    /// Index of the winning replica.
    pub winner: usize,
    /// Wall-clock latency from race start to first response.
    pub latency: Duration,
    /// Copies actually launched (equals the input length for [`race`];
    /// may be smaller for [`hedged`] when the primary answered quickly).
    pub launched: usize,
}

/// Races all copies at once; returns the first response, cancelling the
/// rest. Returns `None` on an empty input.
///
/// Loser threads are detached: they continue until they observe the token
/// (or finish), mirroring the paper's both-copies-do-work accounting.
pub fn race<T: Send + 'static>(ops: Vec<Replica<T>>) -> Option<RaceOutcome<T>> {
    if ops.is_empty() {
        return None;
    }
    let start = Instant::now();
    let token = CancelToken::new();
    let n = ops.len();
    let (tx, rx) = mpsc::sync_channel::<(usize, T)>(n);
    for (i, op) in ops.into_iter().enumerate() {
        let tx = tx.clone();
        let token = token.clone();
        thread::spawn(move || {
            let out = op(&token);
            let _ = tx.send((i, out));
        });
    }
    drop(tx);
    let (winner, value) = rx.recv().ok()?;
    token.cancel();
    Some(RaceOutcome {
        value,
        winner,
        latency: start.elapsed(),
        launched: n,
    })
}

/// Hedged execution: launch copy 0 immediately and each subsequent copy
/// only after `delay` more of silence. First response wins; stragglers are
/// cancelled.
///
/// Returns `None` on an empty input.
pub fn hedged<T: Send + 'static>(ops: Vec<Replica<T>>, delay: Duration) -> Option<RaceOutcome<T>> {
    if ops.is_empty() {
        return None;
    }
    let start = Instant::now();
    let token = CancelToken::new();
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut launched = 0usize;
    let mut pending = ops.into_iter().enumerate();

    let mut launch_next = |launched: &mut usize| -> bool {
        match pending.next() {
            Some((i, op)) => {
                let tx = tx.clone();
                let token = token.clone();
                thread::spawn(move || {
                    let out = op(&token);
                    let _ = tx.send((i, out));
                });
                *launched += 1;
                true
            }
            None => false,
        }
    };

    launch_next(&mut launched);
    loop {
        match rx.recv_timeout(delay) {
            Ok((winner, value)) => {
                token.cancel();
                return Some(RaceOutcome {
                    value,
                    winner,
                    latency: start.elapsed(),
                    launched,
                });
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Silence: release the next hedge (if any remain, else keep
                // waiting for whatever is in flight).
                if !launch_next(&mut launched) {
                    match rx.recv() {
                        Ok((winner, value)) => {
                            token.cancel();
                            return Some(RaceOutcome {
                                value,
                                winner,
                                latency: start.elapsed(),
                                launched,
                            });
                        }
                        Err(_) => return None,
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sleeper(ms: u64, tag: &'static str) -> Replica<&'static str> {
        replica(move |_t: &CancelToken| {
            thread::sleep(Duration::from_millis(ms));
            tag
        })
    }

    #[test]
    fn fastest_replica_wins() {
        let out = race(vec![sleeper(50, "slow"), sleeper(1, "fast"), sleeper(80, "slower")])
            .unwrap();
        assert_eq!(out.value, "fast");
        assert_eq!(out.winner, 1);
        assert!(out.latency < Duration::from_millis(45));
        assert_eq!(out.launched, 3);
    }

    #[test]
    fn empty_race_is_none() {
        assert!(race::<()>(vec![]).is_none());
        assert!(hedged::<()>(vec![], Duration::from_millis(1)).is_none());
    }

    #[test]
    fn losers_observe_cancellation() {
        let (done_tx, done_rx) = mpsc::sync_channel(1);
        let out = race(vec![
            replica(move |t: &CancelToken| {
                // Poll until cancelled, then report how we exited.
                for _ in 0..2_000 {
                    if t.is_cancelled() {
                        let _ = done_tx.send("cancelled");
                        return 0u32;
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                let _ = done_tx.send("ran to completion");
                0u32
            }),
            replica(|_t: &CancelToken| {
                thread::sleep(Duration::from_millis(5));
                42u32
            }),
        ])
        .unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "cancelled"
        );
    }

    #[test]
    fn hedge_skips_second_copy_when_primary_is_fast() {
        let out = hedged(
            vec![sleeper(1, "primary"), sleeper(1, "hedge")],
            Duration::from_millis(200),
        )
        .unwrap();
        assert_eq!(out.value, "primary");
        assert_eq!(out.launched, 1, "hedge must not fire for a fast primary");
    }

    #[test]
    fn hedge_fires_and_wins_when_primary_stalls() {
        let out = hedged(
            vec![sleeper(500, "primary"), sleeper(1, "hedge")],
            Duration::from_millis(10),
        )
        .unwrap();
        assert_eq!(out.value, "hedge");
        assert_eq!(out.winner, 1);
        assert_eq!(out.launched, 2);
        assert!(out.latency < Duration::from_millis(400));
    }

    #[test]
    fn hedge_waits_out_the_primary_when_no_hedges_remain() {
        let out = hedged(vec![sleeper(50, "only")], Duration::from_millis(5)).unwrap();
        assert_eq!(out.value, "only");
        assert_eq!(out.launched, 1);
    }

    #[test]
    fn race_latency_close_to_minimum() {
        let out = race(vec![sleeper(40, "a"), sleeper(40, "b")]).unwrap();
        // Either may win, but the race cost ~ one replica, not two.
        assert!(out.latency < Duration::from_millis(200));
    }
}
