//! Cooperative cancellation for losing replicas.
//!
//! The paper's model never cancels the sibling copy (that is what doubles
//! utilization), and [`crate::sync_exec::race`] faithfully lets losers run
//! to completion *unless* they observe the token. Real deployments (Dean &
//! Barroso's tied requests) do cancel; exposing the token lets callers pick
//! their point on that spectrum.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cheaply-cloneable cancellation flag shared by the copies of one
/// logical operation.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals every holder to stop.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any holder has called [`cancel`](Self::cancel).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            while !c.is_cancelled() {
                std::hint::spin_loop();
            }
            true
        });
        t.cancel();
        assert!(h.join().unwrap());
    }
}
