//! Redundancy policies: how many copies, and when.

use std::time::Duration;

/// How a logical operation is fanned out to replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// No redundancy: one copy.
    Single,
    /// The paper's scheme: issue `copies` immediately, first answer wins.
    Always {
        /// Total copies (≥ 2).
        copies: usize,
    },
    /// Dean & Barroso's hedged request: issue one copy, and launch up to
    /// `copies − 1` more only if no answer arrives within `after` —
    /// near-tail-only duplication cost.
    Hedged {
        /// Total copies including the primary (≥ 2).
        copies: usize,
        /// Delay before each additional copy is released.
        after: Duration,
    },
}

impl Policy {
    /// Total copies this policy may issue.
    pub fn max_copies(&self) -> usize {
        match *self {
            Policy::Single => 1,
            Policy::Always { copies } | Policy::Hedged { copies, .. } => copies,
        }
    }

    /// Expected *extra* load multiplier relative to `Single`, given the
    /// probability `p_slow` that an operation outlives the hedging delay.
    /// `Always(k)` always costs k×; a hedge costs `1 + (k−1)·p_slow`.
    pub fn expected_load_factor(&self, p_slow: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_slow));
        match *self {
            Policy::Single => 1.0,
            Policy::Always { copies } => copies as f64,
            Policy::Hedged { copies, .. } => 1.0 + (copies as f64 - 1.0) * p_slow,
        }
    }

    /// Validates structural invariants (copies ≥ 2 for redundant modes).
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            Policy::Single => Ok(()),
            Policy::Always { copies } | Policy::Hedged { copies, .. } => {
                if copies >= 2 {
                    Ok(())
                } else {
                    Err("redundant policies need at least 2 copies")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_factors() {
        assert_eq!(Policy::Single.expected_load_factor(0.5), 1.0);
        assert_eq!(Policy::Always { copies: 2 }.expected_load_factor(0.5), 2.0);
        let hedge = Policy::Hedged {
            copies: 2,
            after: Duration::from_millis(5),
        };
        // Hedging at the 95th percentile costs ~5% extra load.
        assert!((hedge.expected_load_factor(0.05) - 1.05).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(Policy::Single.validate().is_ok());
        assert!(Policy::Always { copies: 1 }.validate().is_err());
        assert!(Policy::Always { copies: 3 }.validate().is_ok());
    }

    #[test]
    fn max_copies() {
        assert_eq!(Policy::Single.max_copies(), 1);
        assert_eq!(
            Policy::Hedged {
                copies: 4,
                after: Duration::ZERO
            }
            .max_copies(),
            4
        );
    }
}
