//! # redundancy — race-to-first-response as a reusable library
//!
//! The deployable artifact of *Low Latency via Redundancy* (Vulimiri et
//! al., CoNEXT 2013): issue an operation against several diverse replicas,
//! use whichever answer arrives first, and know *when that trade is
//! worth it*.
//!
//! Four layers:
//!
//! * **Executors** — [`sync_exec`] races closures on threads (one per
//!   copy, losers cancelled cooperatively via [`cancel::CancelToken`]);
//!   with the `tokio-exec` feature, `tokio_exec` races futures
//!   (`select!`-style: first completion wins, siblings are dropped). The
//!   async executors are runtime-agnostic plain futures — they run on any
//!   executor, tokio included, and ship a built-in `block_on` for callers
//!   without one. Both layers also provide *hedged* variants — the Dean &
//!   Barroso refinement where the second copy is sent only after a delay,
//!   paying the duplication cost only in the slow tail.
//! * **Policies** — [`policy::Policy`] captures the paper's design space:
//!   `Always(k)` replication vs `Hedged { copies, after }`.
//! * **Planner** — [`planner`] answers the paper's central question
//!   ("will replication *help* here?") from three numbers you can measure:
//!   per-server utilization, the service-time coefficient of variation,
//!   and the client-side cost of an extra copy. The thresholds come from
//!   the same analytics validated against the paper's §2.1 model in the
//!   `queuesim` crate: never replicate above 50 % utilization, always
//!   below ~26 % (absent client cost), with the exact crossover computed
//!   from the two-moment response model.
//! * **Estimators** — [`estimator::RateEstimator`] turns a live arrival
//!   stream into the utilization estimate the planner consumes, and
//!   [`estimator::MomentEstimator`] turns observed per-copy service
//!   durations into the live mean and SCV the threshold depends on (both
//!   windowed Welford accumulators), while
//!   [`estimator::EstimatorBank`] keeps one rate estimator *per server*
//!   so [`planner::Planner::decide_for`] can make skew-aware per-request
//!   decisions against the hottest candidate instead of the cluster
//!   average. Together with [`planner::Planner::recalibrated`] they make
//!   a front-end fully self-calibrating: rate, mean, and variability are
//!   all measured, none assumed — see `storesim::service` for the full
//!   loop running on simulated traffic.
//!
//! ## Quick start (threads)
//!
//! ```
//! use redundancy::prelude::*;
//! use std::time::Duration;
//!
//! // Race two "replicas" with very different latencies.
//! let winner = race(vec![
//!     replica(|token: &CancelToken| {
//!         // a slow replica that politely checks for cancellation
//!         for _ in 0..100 {
//!             if token.is_cancelled() { return None; }
//!             std::thread::sleep(Duration::from_millis(2));
//!         }
//!         Some("slow")
//!     }),
//!     replica(|_: &CancelToken| {
//!         std::thread::sleep(Duration::from_millis(1));
//!         Some("fast")
//!     }),
//! ])
//! .expect("at least one replica answers");
//! assert_eq!(winner.value, Some("fast"));
//! assert_eq!(winner.winner, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod estimator;
pub mod planner;
pub mod policy;
pub mod sync_exec;
#[cfg(feature = "tokio-exec")]
pub mod tokio_exec;

/// One-stop imports.
pub mod prelude {
    pub use crate::cancel::CancelToken;
    pub use crate::estimator::{EstimatorBank, MomentEstimator, RateEstimator};
    pub use crate::planner::{Advice, PairDecision, Planner, ThresholdCache, WorkloadProfile};
    pub use crate::policy::Policy;
    pub use crate::sync_exec::{hedged, race, replica, RaceOutcome};
    #[cfg(feature = "tokio-exec")]
    pub use crate::tokio_exec::{hedged_async, race_async};
}
