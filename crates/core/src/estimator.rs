//! Live workload estimation: the inputs the [`crate::planner::Planner`]
//! needs to drive per-request replication decisions on real traffic.
//!
//! The planner's advice is a function of the current per-server utilization
//! *and* the first two moments of the service time, but a front-end never
//! observes either directly — it observes an arrival stream and a stream of
//! per-copy service durations. Two estimators close that gap:
//!
//! * [`RateEstimator`] turns the arrival stream into a utilization estimate
//!   with a **windowed Welford accumulator** over inter-arrival gaps.
//! * [`MomentEstimator`] turns observed per-copy response/service times
//!   into the live mean and squared coefficient of variation the §2.1
//!   threshold depends on — the piece that makes the planner fully
//!   self-calibrating instead of trusting configured moments.
//!
//! Both share the same core: the window makes the estimates track *shifts*
//! (the whole point of switching replication off as load climbs, or
//! re-deriving the threshold when the backend's service law drifts), and
//! the Welford-style incremental update keeps mean and variance numerically
//! stable at O(1) per observation with no rescan of the window.
//!
//! The variance is exposed because it is the natural confidence signal: a
//! Poisson stream at rate λ has gap CV ≈ 1, so a window whose gap variance
//! is wildly larger than `mean²` indicates a mixed/bursty stream whose
//! rate estimate deserves less trust — and for service times the variance
//! *is* the signal (the SCV axis of the paper's Figure 2).

use std::collections::VecDeque;

/// Windowed mean/variance over the last `window` observations: classic
/// Welford while growing, single-update evict-and-admit once full. The
/// shared core of both public estimators.
#[derive(Clone, Debug)]
struct WindowedWelford {
    window: usize,
    xs: VecDeque<f64>,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2),
    /// maintained under both growth and sliding replacement.
    m2: f64,
}

impl WindowedWelford {
    fn new(window: usize) -> Self {
        assert!(window >= 2, "estimator window must be >= 2, got {window}");
        WindowedWelford {
            window,
            xs: VecDeque::with_capacity(window),
            mean: 0.0,
            m2: 0.0,
        }
    }

    fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        if self.xs.len() == self.window {
            // Sliding replacement: evict the oldest observation and admit
            // the new one in a single windowed-Welford update.
            let old = self.xs.pop_front().expect("window nonempty");
            self.xs.push_back(x);
            let n = self.xs.len() as f64;
            let old_mean = self.mean;
            let delta = x - old;
            self.mean += delta / n;
            self.m2 += delta * (x - self.mean + old - old_mean);
            // Replacement arithmetic can leave a tiny negative residue.
            if self.m2 < 0.0 {
                self.m2 = 0.0;
            }
        } else {
            // Growth phase: classic Welford.
            self.xs.push_back(x);
            let n = self.xs.len() as f64;
            let delta = x - self.mean;
            self.mean += delta / n;
            self.m2 += delta * (x - self.mean);
        }
    }

    fn len(&self) -> usize {
        self.xs.len()
    }

    fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the windowed observations (0 with < 2).
    fn variance(&self) -> f64 {
        if self.xs.len() < 2 {
            0.0
        } else {
            self.m2 / self.xs.len() as f64
        }
    }

    /// Discards every held observation, returning to the cold state. The
    /// configured window length is kept.
    fn reset(&mut self) {
        self.xs.clear();
        self.mean = 0.0;
        self.m2 = 0.0;
    }
}

/// Windowed mean/variance of inter-arrival gaps, with rate and utilization
/// views. All state is O(window) and every update is O(1).
#[derive(Clone, Debug)]
pub struct RateEstimator {
    gaps: WindowedWelford,
    last_arrival: Option<f64>,
}

impl RateEstimator {
    /// An estimator averaging over the last `window` inter-arrival gaps.
    ///
    /// # Panics
    /// Panics if `window < 2` — a rate cannot be estimated from fewer than
    /// two gaps without collapsing to a single-sample guess.
    pub fn new(window: usize) -> Self {
        RateEstimator {
            gaps: WindowedWelford::new(window),
            last_arrival: None,
        }
    }

    /// The configured window length (gaps).
    pub fn window(&self) -> usize {
        self.gaps.window
    }

    /// Number of gaps currently held (saturates at the window length).
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// `true` when no gap has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.gaps.len() == 0
    }

    /// `true` once at least two gaps are held — the earliest point at
    /// which [`rate`](Self::rate) returns a meaningful value.
    pub fn is_warm(&self) -> bool {
        self.gaps.len() >= 2
    }

    /// Records an arrival at absolute time `now` (same clock for every
    /// call; must be nondecreasing). The first call only anchors the
    /// clock; each subsequent call pushes one gap into the window.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous arrival.
    pub fn observe_arrival(&mut self, now: f64) {
        if let Some(last) = self.last_arrival {
            assert!(now >= last, "arrivals must be nondecreasing: {now} < {last}");
            self.push_gap(now - last);
        }
        self.last_arrival = Some(now);
    }

    /// Records one inter-arrival gap directly (for callers that already
    /// difference their clock).
    pub fn push_gap(&mut self, gap: f64) {
        debug_assert!(gap >= 0.0);
        self.gaps.push(gap);
    }

    /// Forgets every held gap *and* the clock anchor, returning to the
    /// cold state (e.g. after a traffic discontinuity that would otherwise
    /// poison the window with one giant gap). The window length is kept.
    pub fn reset(&mut self) {
        self.gaps.reset();
        self.last_arrival = None;
    }

    /// Mean inter-arrival gap over the window (0 if empty).
    pub fn mean_gap(&self) -> f64 {
        self.gaps.mean()
    }

    /// Population variance of the windowed gaps (0 with < 2 gaps).
    pub fn gap_variance(&self) -> f64 {
        self.gaps.variance()
    }

    /// Estimated arrival rate, 1 / mean gap (0 until warm).
    pub fn rate(&self) -> f64 {
        if !self.is_warm() || self.gaps.mean() <= 0.0 {
            0.0
        } else {
            1.0 / self.gaps.mean()
        }
    }

    /// Estimated **baseline** per-server utilization for a cluster of
    /// `servers` identical servers with mean service time `mean_service`:
    /// `rate · E[S] / servers` — the ρ axis every threshold in the paper
    /// is defined against (what the load *would* be at k = 1, regardless
    /// of how many copies are actually being issued).
    ///
    /// A degenerate cluster (`servers == 0`) or a non-positive mean
    /// service time describes zero serviceable load, so both return 0.0
    /// — previously these were only `debug_assert`ed, which let release
    /// builds hand `inf`/NaN to the planner during topology churn.
    pub fn utilization(&self, mean_service: f64, servers: usize) -> f64 {
        if servers == 0 || mean_service.is_nan() || mean_service <= 0.0 {
            return 0.0;
        }
        self.rate() * mean_service / servers as f64
    }
}

/// An indexed array of resettable [`RateEstimator`]s — one per server —
/// turning a *routed* arrival stream into the **per-server load shape**
/// that per-request replication decisions need.
///
/// A single [`RateEstimator`] measures the front-end's aggregate rate,
/// which is the right input only when load is balanced; under a skewed
/// key mix the hottest server can run far above the cluster mean while
/// the global estimate never moves (the load-shape blindness Sparrow's
/// batch-sampling argument is about). The bank keeps one windowed gap
/// estimator per server: the caller reports each arrival *to the servers
/// it concerns* (e.g. every stored replica of the requested shard, at
/// dispatch time), and reads back per-server rates and utilizations that
/// a planner can compare against the §2.1 threshold *per request* — so
/// requests whose candidate servers are cold keep replicating after
/// requests landing on hot servers have switched off.
///
/// Every observation is O(1) (the shared [`WindowedWelford`] core), state
/// is O(servers × window), and each index can be [`reset`](Self::reset)
/// independently (a server that failed over should not poison its
/// successor's window with the discontinuity gap).
#[derive(Clone, Debug)]
pub struct EstimatorBank {
    estimators: Vec<RateEstimator>,
}

impl EstimatorBank {
    /// A bank of `n` independent estimators, each averaging over the last
    /// `window` inter-arrival gaps.
    ///
    /// # Panics
    /// Panics if `n == 0` or `window < 2`.
    pub fn new(n: usize, window: usize) -> Self {
        assert!(n >= 1, "estimator bank needs at least one index");
        EstimatorBank {
            estimators: (0..n).map(|_| RateEstimator::new(window)).collect(),
        }
    }

    /// Number of indexed estimators (servers).
    pub fn len(&self) -> usize {
        self.estimators.len()
    }

    /// `true` when the bank holds no estimators (never, post-construction;
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.estimators.is_empty()
    }

    /// The configured per-index window length (gaps).
    pub fn window(&self) -> usize {
        self.estimators[0].window()
    }

    /// Read access to one index's estimator (warmth, gap variance, …).
    ///
    /// # Panics
    /// Panics on an out-of-range index.
    pub fn get(&self, idx: usize) -> &RateEstimator {
        &self.estimators[idx]
    }

    /// Records an arrival concerning server `idx` at absolute time `now`.
    /// Clocks are per-index: only arrivals reported to the same index form
    /// gaps, so interleaving observations across servers in any order
    /// leaves each index's stream exactly as if it were fed alone.
    ///
    /// # Panics
    /// Panics on an out-of-range index or a time preceding that index's
    /// previous arrival.
    pub fn observe_arrival(&mut self, idx: usize, now: f64) {
        self.estimators[idx].observe_arrival(now);
    }

    /// Records one inter-arrival gap directly at index `idx`.
    pub fn push_gap(&mut self, idx: usize, gap: f64) {
        self.estimators[idx].push_gap(gap);
    }

    /// Resets one index to the cold state (window and clock anchor both
    /// forgotten); every other index is untouched.
    pub fn reset(&mut self, idx: usize) {
        self.estimators[idx].reset();
    }

    /// Resets every index to the cold state.
    pub fn reset_all(&mut self) {
        for e in &mut self.estimators {
            e.reset();
        }
    }

    /// Estimated arrival rate of the stream reported to index `idx`
    /// (0 until that index is warm).
    pub fn rate(&self, idx: usize) -> f64 {
        self.estimators[idx].rate()
    }

    /// Estimated **baseline** utilization of server `idx` when each
    /// reported arrival would actually be dispatched to it with
    /// probability `1/split`: `rate(idx) · mean_service / split`.
    ///
    /// The intended feeding scheme reports every request to *all* `split`
    /// stored replicas of its shard (the candidates a k = 1 read
    /// load-balances across), so the measured per-index rate overcounts
    /// the true baseline arrival rate by exactly that factor — and, unlike
    /// counting actually-dispatched copies, is independent of the current
    /// replication decision (no feedback loop between the decision and the
    /// estimate it reads).
    ///
    /// Like [`RateEstimator::utilization`], a zero `split` or a
    /// non-positive `mean_service` describes zero serviceable load and
    /// returns 0.0 rather than `inf`/NaN.
    pub fn utilization(&self, idx: usize, mean_service: f64, split: usize) -> f64 {
        if split == 0 || mean_service.is_nan() || mean_service <= 0.0 {
            return 0.0;
        }
        self.rate(idx) * mean_service / split as f64
    }

    /// Grows the bank to `n` indices, appending cold estimators with the
    /// bank's configured window. Existing indices are untouched — a
    /// scale-out must not disturb the surviving servers' windows. No-op
    /// when the bank already holds `n` or more indices (banks never
    /// shrink: on scale-in the departed indices are [`reset`](Self::reset)
    /// and left dormant, so a later re-add starts cold).
    pub fn grow_to(&mut self, n: usize) {
        let window = self.window();
        while self.estimators.len() < n {
            self.estimators.push(RateEstimator::new(window));
        }
    }
}

/// One frontend's broadcastable contribution to the cluster-wide load
/// picture: the current rate estimate per tracked index (one entry for a
/// global estimator, one per server for an [`EstimatorBank`]).
///
/// A sharded frontend only observes the arrivals for *its own* slice of
/// the key space, so its local estimators systematically under-count
/// every server's true arrival rate. Summaries close the gap without
/// shared memory: each frontend periodically snapshots its rates, sends
/// the summary to its peers (over the engine's cross-shard wires, floored
/// at the lookahead), and combines whatever it last heard from each peer
/// with its own live estimate through [`PeerLoads`]. Rates are additive —
/// superposing the per-frontend arrival streams sums their rates — which
/// is what makes this exchange exact in steady state rather than a
/// heuristic.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSummary {
    rates: Box<[f64]>,
}

impl LoadSummary {
    /// A single-rate summary (the [`RateEstimator`] / global-load case).
    pub fn global(rate: f64) -> Self {
        LoadSummary {
            rates: Box::new([rate]),
        }
    }

    /// A per-index summary (the [`EstimatorBank`] / per-server case).
    pub fn per_index(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "summary needs at least one rate");
        LoadSummary {
            rates: rates.into_boxed_slice(),
        }
    }

    /// Number of indexed rates carried.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when the summary carries no rates (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rate reported for index `idx`.
    pub fn rate(&self, idx: usize) -> f64 {
        self.rates[idx]
    }
}

/// The receive side of the load-summary exchange: the latest
/// [`LoadSummary`] heard from each peer frontend, combinable with the
/// local estimate by rate addition.
///
/// Missing peers (nothing heard yet) contribute zero — exactly how a cold
/// local [`RateEstimator`] reports itself — so the combined estimate warms
/// up the same way a single frontend's does.
#[derive(Clone, Debug)]
pub struct PeerLoads {
    summaries: Vec<Option<LoadSummary>>,
    indices: usize,
}

impl PeerLoads {
    /// A board for `peers` peer frontends, each summarizing `indices`
    /// rates (1 for global estimators, `servers` for a bank).
    ///
    /// # Panics
    /// Panics if `indices == 0`.
    pub fn new(peers: usize, indices: usize) -> Self {
        assert!(indices >= 1, "peer board needs at least one index");
        PeerLoads {
            summaries: vec![None; peers],
            indices,
        }
    }

    /// Number of peer slots.
    pub fn peers(&self) -> usize {
        self.summaries.len()
    }

    /// Widens the board to `indices` rates per peer (no-op when already
    /// at least that wide). Summaries on file keep their original width
    /// — they are simply short for the new indices until the peer's
    /// next broadcast — so a scale-out never invalidates what was heard.
    pub fn grow_to(&mut self, indices: usize) {
        self.indices = self.indices.max(indices);
    }

    /// Stores the latest summary from `peer`, replacing any previous one.
    ///
    /// A summary *narrower* than the board is accepted: during elastic
    /// scale-out a peer's bank may lag a topology change by one exchange
    /// period, and its stale-width rates are still the best estimate for
    /// the indices it does carry (the missing tail reads as zero). A
    /// summary *wider* than the board still panics — that is a protocol
    /// error, not a lag.
    ///
    /// # Panics
    /// Panics on an out-of-range peer or a summary wider than the board.
    pub fn apply(&mut self, peer: usize, summary: LoadSummary) {
        assert!(
            summary.len() <= self.indices,
            "summary width mismatch: got {}, expected at most {}",
            summary.len(),
            self.indices
        );
        self.summaries[peer] = Some(summary);
    }

    /// Sum of the peers' last-reported rates for index `idx` (peers not
    /// heard from — or whose last summary predates that index existing —
    /// contribute zero).
    pub fn peer_rate(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.indices);
        self.summaries
            .iter()
            .flatten()
            .filter(|s| idx < s.len())
            .map(|s| s.rate(idx))
            .sum()
    }

    /// The cluster-wide rate for index `idx`: the caller's own live
    /// estimate plus every peer's last summary.
    pub fn total_rate(&self, idx: usize, own_rate: f64) -> f64 {
        own_rate + self.peer_rate(idx)
    }
}

impl RateEstimator {
    /// Snapshot of this estimator's current rate as a broadcastable
    /// [`LoadSummary`] (width 1).
    pub fn summary(&self) -> LoadSummary {
        LoadSummary::global(self.rate())
    }
}

impl EstimatorBank {
    /// Snapshot of every index's current rate as a broadcastable
    /// [`LoadSummary`] (width `len()`).
    pub fn summary(&self) -> LoadSummary {
        LoadSummary::per_index(self.estimators.iter().map(|e| e.rate()).collect())
    }
}

/// A mergeable snapshot of windowed service-time moments — `(count, mean,
/// M2)` in Welford form, combinable across estimators with Chan et al.'s
/// parallel update. Lets F sharded frontends each run a private
/// [`MomentEstimator`] and still observe the *cluster-wide* service law
/// (for recalibration or reporting) by merging snapshots, without sharing
/// any mutable state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MomentSnapshot {
    /// Number of samples summarized.
    pub count: u64,
    /// Mean of the summarized samples (0 when `count == 0`).
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford's M2).
    pub m2: f64,
}

impl MomentSnapshot {
    /// The zero-sample snapshot: the identity of [`merge`](Self::merge).
    pub const EMPTY: MomentSnapshot = MomentSnapshot {
        count: 0,
        mean: 0.0,
        m2: 0.0,
    };

    /// Combines two snapshots as if their sample sets were pooled
    /// (Chan et al.'s parallel Welford update — exact, not approximate).
    pub fn merge(self, other: MomentSnapshot) -> MomentSnapshot {
        if self.count == 0 {
            return other;
        }
        if other.count == 0 {
            return self;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        MomentSnapshot {
            count: self.count + other.count,
            mean: self.mean + delta * nb / n,
            m2: self.m2 + other.m2 + delta * delta * na * nb / n,
        }
    }

    /// Population variance of the pooled samples (0 with < 2).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Squared coefficient of variation of the pooled samples (0 until
    /// two samples with positive mean).
    pub fn scv(&self) -> f64 {
        if self.count < 2 || self.mean <= 0.0 {
            0.0
        } else {
            self.variance() / (self.mean * self.mean)
        }
    }
}

/// Windowed Welford estimator of the first two **service-time moments** —
/// the other half of the §2.1 threshold's inputs, measured online.
///
/// Feed it every per-copy service (or low-load response) duration the
/// front-end learns about; read back the live mean and SCV and hand them to
/// [`Planner::recalibrated`](crate::planner::Planner::recalibrated). Until
/// the window holds enough samples ([`len`](Self::len) against a caller-
/// chosen warm-up count, or the built-in two-sample
/// [`is_warm`](Self::is_warm) floor) a caller should fall back to its
/// configured moments — the estimator reports exactly what it holds and
/// never extrapolates.
#[derive(Clone, Debug)]
pub struct MomentEstimator {
    samples: WindowedWelford,
}

impl MomentEstimator {
    /// An estimator over the last `window` observed durations.
    ///
    /// # Panics
    /// Panics if `window < 2` — an SCV cannot be estimated from fewer than
    /// two samples.
    pub fn new(window: usize) -> Self {
        MomentEstimator {
            samples: WindowedWelford::new(window),
        }
    }

    /// The configured window length (samples).
    pub fn window(&self) -> usize {
        self.samples.window
    }

    /// Number of samples currently held (saturates at the window length).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no duration has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.len() == 0
    }

    /// `true` once at least two samples are held — the structural floor
    /// below which [`scv`](Self::scv) is meaningless. Callers calibrating a
    /// planner should usually demand far more (hundreds) before trusting
    /// the SCV of anything heavy-tailed.
    pub fn is_warm(&self) -> bool {
        self.samples.len() >= 2
    }

    /// Records one observed duration.
    ///
    /// # Panics
    /// Debug-panics on negative or non-finite durations.
    pub fn observe(&mut self, duration: f64) {
        debug_assert!(
            duration >= 0.0 && duration.is_finite(),
            "bad duration {duration}"
        );
        self.samples.push(duration);
    }

    /// Discards every held sample, returning to the cold state (e.g. after
    /// a backend failover invalidates the measured service law). The
    /// window length is kept.
    pub fn reset(&mut self) {
        self.samples.reset();
    }

    /// Mean duration over the window (0 if empty).
    pub fn mean(&self) -> f64 {
        self.samples.mean()
    }

    /// Population variance over the window (0 with < 2 samples).
    pub fn variance(&self) -> f64 {
        self.samples.variance()
    }

    /// Squared coefficient of variation over the window — the paper's
    /// service-variability axis (0 = deterministic, 1 = exponential,
    /// > 1 = heavy). 0 until warm.
    pub fn scv(&self) -> f64 {
        let m = self.samples.mean();
        if !self.is_warm() || m <= 0.0 {
            0.0
        } else {
            self.samples.variance() / (m * m)
        }
    }

    /// A mergeable [`MomentSnapshot`] of the currently held window.
    pub fn snapshot(&self) -> MomentSnapshot {
        MomentSnapshot {
            count: self.samples.len() as u64,
            mean: self.samples.mean(),
            m2: self.samples.m2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn matches_naive_moments_while_growing_and_sliding() {
        let gaps: Vec<f64> = (0..200)
            .map(|i| 0.5 + ((i * 37) % 101) as f64 * 0.01)
            .collect();
        let w = 32;
        let mut est = RateEstimator::new(w);
        for (i, &g) in gaps.iter().enumerate() {
            est.push_gap(g);
            let lo = (i + 1).saturating_sub(w);
            let window = &gaps[lo..=i];
            let (mean, var) = naive_mean_var(window);
            assert!((est.mean_gap() - mean).abs() < 1e-12, "mean at {i}");
            assert!((est.gap_variance() - var).abs() < 1e-9, "var at {i}");
            assert_eq!(est.len(), window.len());
        }
    }

    #[test]
    fn rate_and_utilization_from_deterministic_gaps() {
        let mut est = RateEstimator::new(8);
        let mut t = 0.0;
        for _ in 0..20 {
            est.observe_arrival(t);
            t += 0.25; // 4 arrivals/sec
        }
        assert!((est.rate() - 4.0).abs() < 1e-12);
        // 4/sec * 0.5s mean service over 4 servers = 50% baseline load.
        assert!((est.utilization(0.5, 4) - 0.5).abs() < 1e-12);
        assert!(est.gap_variance() < 1e-12);
    }

    #[test]
    fn tracks_a_rate_shift_within_a_window() {
        let mut est = RateEstimator::new(16);
        let mut t = 0.0;
        for _ in 0..32 {
            est.observe_arrival(t);
            t += 1.0;
        }
        assert!((est.rate() - 1.0).abs() < 1e-12);
        // Rate doubles; once a full window of new gaps has been pushed the
        // estimate must have converged to the new rate. (The first phase
        // left the clock half a gap ahead, so the first new gap is a
        // transition artifact — push window + 1 gaps to flush it.)
        for _ in 0..17 {
            t += 0.5;
            est.observe_arrival(t);
        }
        assert!((est.rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cold_estimator_reports_zero() {
        let mut est = RateEstimator::new(4);
        assert!(est.is_empty());
        assert_eq!(est.rate(), 0.0);
        assert_eq!(est.utilization(1.0, 4), 0.0);
        est.observe_arrival(1.0);
        assert!(!est.is_warm(), "one arrival anchors the clock only");
        est.observe_arrival(2.0);
        assert!(!est.is_warm(), "one gap is not enough");
        est.observe_arrival(3.0);
        assert!(est.is_warm());
        assert!((est.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_to_cold_and_forgets_the_clock() {
        let mut est = RateEstimator::new(4);
        for t in 0..6 {
            est.observe_arrival(t as f64);
        }
        assert!(est.is_warm());
        est.reset();
        assert!(est.is_empty());
        assert_eq!(est.rate(), 0.0);
        assert_eq!(est.window(), 4);
        // The clock anchor is gone too: the next arrival must not create a
        // gap spanning the discontinuity.
        est.observe_arrival(1_000.0);
        assert!(est.is_empty(), "first post-reset arrival only anchors");
        est.observe_arrival(1_000.5);
        est.observe_arrival(1_001.0);
        assert!((est.rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = RateEstimator::new(1);
    }

    #[test]
    fn moment_estimator_matches_naive_windowed_moments() {
        let xs: Vec<f64> = (0..150)
            .map(|i| 0.1 + ((i * 53) % 89) as f64 * 0.02)
            .collect();
        let w = 24;
        let mut est = MomentEstimator::new(w);
        for (i, &x) in xs.iter().enumerate() {
            est.observe(x);
            let lo = (i + 1).saturating_sub(w);
            let window = &xs[lo..=i];
            let (mean, var) = naive_mean_var(window);
            assert!((est.mean() - mean).abs() < 1e-12, "mean at {i}");
            assert!((est.variance() - var).abs() < 1e-9, "var at {i}");
            if window.len() >= 2 {
                assert!((est.scv() - var / (mean * mean)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn moment_estimator_learns_known_scv() {
        // Exponential(mean 2) has scv 1; the windowed estimate over a full
        // window of draws should land near it.
        let mut rng = simcore::rng::Rng::seed_from(0x5C4);
        let mut est = MomentEstimator::new(4096);
        for _ in 0..4096 {
            est.observe(rng.exponential(0.5));
        }
        assert!((est.mean() - 2.0).abs() < 0.15, "mean {}", est.mean());
        assert!((est.scv() - 1.0).abs() < 0.15, "scv {}", est.scv());
        // Deterministic samples: scv collapses to ~0.
        est.reset();
        assert!(est.is_empty() && est.scv() == 0.0);
        for _ in 0..100 {
            est.observe(3.0);
        }
        assert!(est.scv() < 1e-12);
    }

    #[test]
    fn moment_estimator_cold_and_floor() {
        let mut est = MomentEstimator::new(8);
        assert_eq!(est.mean(), 0.0);
        assert_eq!(est.scv(), 0.0);
        est.observe(5.0);
        assert!(!est.is_warm(), "one sample is not enough for an SCV");
        assert_eq!(est.scv(), 0.0);
        est.observe(5.0);
        assert!(est.is_warm());
        assert_eq!(est.window(), 8);
        assert_eq!(est.len(), 2);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn moment_tiny_window_rejected() {
        let _ = MomentEstimator::new(1);
    }

    #[test]
    fn bank_indices_are_independent_streams() {
        // Feed two interleaved deterministic streams; each index must
        // report exactly what a standalone estimator fed the same stream
        // would, untouched by the other's observations.
        let mut bank = EstimatorBank::new(3, 8);
        let mut solo0 = RateEstimator::new(8);
        let mut solo2 = RateEstimator::new(8);
        let mut t = 0.0;
        for i in 0..40 {
            t += 0.1;
            if i % 2 == 0 {
                bank.observe_arrival(0, t);
                solo0.observe_arrival(t);
            } else {
                bank.observe_arrival(2, t);
                solo2.observe_arrival(t);
            }
        }
        assert_eq!(bank.rate(0).to_bits(), solo0.rate().to_bits());
        assert_eq!(bank.rate(2).to_bits(), solo2.rate().to_bits());
        // Index 1 never saw anything: the all-idle edge reports zero.
        assert!(bank.get(1).is_empty());
        assert_eq!(bank.rate(1), 0.0);
        assert_eq!(bank.utilization(1, 1.0e-3, 2), 0.0);
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.window(), 8);
    }

    #[test]
    fn bank_utilization_divides_by_the_split_factor() {
        // 4 arrivals/sec reported to the index, each of which a k = 1 read
        // would route here with probability 1/2: baseline utilization is
        // rate * mean / 2.
        let mut bank = EstimatorBank::new(2, 8);
        let mut t = 0.0;
        for _ in 0..20 {
            bank.observe_arrival(0, t);
            t += 0.25;
        }
        assert!((bank.rate(0) - 4.0).abs() < 1e-12);
        assert!((bank.utilization(0, 0.5, 2) - 1.0).abs() < 1e-12);
        assert!((bank.utilization(0, 0.5, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bank_reset_is_per_index() {
        let mut bank = EstimatorBank::new(2, 4);
        for i in 0..6 {
            bank.observe_arrival(0, i as f64);
            bank.observe_arrival(1, i as f64 * 0.5);
        }
        assert!(bank.get(0).is_warm() && bank.get(1).is_warm());
        bank.reset(0);
        assert!(bank.get(0).is_empty(), "reset index must go cold");
        assert!(bank.get(1).is_warm(), "other index must be untouched");
        assert!((bank.rate(1) - 2.0).abs() < 1e-12);
        // The reset index's clock anchor is gone: a late re-anchor must
        // not create a discontinuity gap.
        bank.observe_arrival(0, 1_000.0);
        assert!(bank.get(0).is_empty());
        bank.observe_arrival(0, 1_000.25);
        bank.observe_arrival(0, 1_000.5);
        assert!((bank.rate(0) - 4.0).abs() < 1e-12);
        bank.reset_all();
        assert!(bank.get(0).is_empty() && bank.get(1).is_empty());
    }

    #[test]
    fn moment_snapshots_merge_like_pooled_samples() {
        // Two disjoint sample sets: merging their snapshots must agree
        // with one estimator fed the concatenation (windows large enough
        // that nothing slides out).
        let xs: Vec<f64> = (0..60).map(|i| 0.2 + ((i * 31) % 47) as f64 * 0.03).collect();
        let (a_half, b_half) = xs.split_at(23);
        let mut a = MomentEstimator::new(128);
        let mut b = MomentEstimator::new(128);
        let mut all = MomentEstimator::new(128);
        for &x in a_half {
            a.observe(x);
            all.observe(x);
        }
        for &x in b_half {
            b.observe(x);
            all.observe(x);
        }
        let merged = a.snapshot().merge(b.snapshot());
        assert_eq!(merged.count, 60);
        assert!((merged.mean - all.mean()).abs() < 1e-12);
        assert!((merged.variance() - all.variance()).abs() < 1e-9);
        assert!((merged.scv() - all.scv()).abs() < 1e-9);
        // EMPTY is the merge identity on both sides.
        assert_eq!(merged.merge(MomentSnapshot::EMPTY), merged);
        assert_eq!(MomentSnapshot::EMPTY.merge(merged), merged);
        // Degenerate snapshots report zeros, not NaNs.
        assert_eq!(MomentSnapshot::EMPTY.variance(), 0.0);
        assert_eq!(MomentSnapshot::EMPTY.scv(), 0.0);
    }

    #[test]
    fn load_summaries_add_rates_across_peers() {
        // Two "frontends" each seeing half of a 4/sec stream routed to the
        // same server: each local estimate is 2/sec, and the peer exchange
        // must reconstruct the superposed 4/sec.
        let mut bank_a = EstimatorBank::new(2, 8);
        let mut bank_b = EstimatorBank::new(2, 8);
        let mut t = 0.0;
        for _ in 0..20 {
            bank_a.observe_arrival(0, t);
            bank_b.observe_arrival(0, t + 0.25);
            t += 0.5;
        }
        assert!((bank_a.rate(0) - 2.0).abs() < 1e-12);
        let mut peers = PeerLoads::new(1, 2);
        // Nothing heard yet: peers contribute zero, like a cold estimator.
        assert_eq!(peers.peer_rate(0), 0.0);
        assert!((peers.total_rate(0, bank_a.rate(0)) - 2.0).abs() < 1e-12);
        peers.apply(0, bank_b.summary());
        assert!((peers.peer_rate(0) - 2.0).abs() < 1e-12);
        assert!((peers.total_rate(0, bank_a.rate(0)) - 4.0).abs() < 1e-12);
        // The never-fed index stays zero through the exchange.
        assert_eq!(peers.total_rate(1, bank_a.rate(1)), 0.0);
        // A newer summary replaces the old one instead of accumulating.
        peers.apply(0, LoadSummary::per_index(vec![1.0, 0.5]));
        assert!((peers.peer_rate(0) - 1.0).abs() < 1e-12);
        assert_eq!(peers.peers(), 1);
        // The single-rate view mirrors RateEstimator::rate.
        let mut solo = RateEstimator::new(8);
        for i in 0..10 {
            solo.observe_arrival(i as f64 * 0.25);
        }
        let s = solo.summary();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.rate(0).to_bits(), solo.rate().to_bits());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn peer_board_rejects_too_wide_summary() {
        // Narrower summaries are tolerated (a peer lagging a scale-out),
        // but wider-than-board is a protocol error and still panics.
        let mut peers = PeerLoads::new(2, 2);
        peers.apply(0, LoadSummary::per_index(vec![1.0, 2.0, 3.0]));
    }

    #[test]
    fn peer_board_tolerates_stale_width_during_churn() {
        // A 2-index board hears a width-2 summary, then the cluster
        // scales out to 4 indices: the stale summary keeps contributing
        // its known rates, and the indices it predates read as zero.
        let mut peers = PeerLoads::new(2, 2);
        peers.apply(0, LoadSummary::per_index(vec![3.0, 1.0]));
        peers.grow_to(4);
        assert!((peers.peer_rate(0) - 3.0).abs() < 1e-12);
        assert!((peers.peer_rate(1) - 1.0).abs() < 1e-12);
        assert_eq!(peers.peer_rate(2), 0.0);
        assert_eq!(peers.peer_rate(3), 0.0);
        // The peer's next broadcast carries the full width and lands.
        peers.apply(0, LoadSummary::per_index(vec![3.0, 1.0, 0.5, 0.25]));
        assert!((peers.peer_rate(2) - 0.5).abs() < 1e-12);
        // grow_to never narrows.
        peers.grow_to(1);
        assert!((peers.peer_rate(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utilization_guards_degenerate_inputs() {
        // Promoted from debug_assert: a zero-server cluster or a
        // non-positive mean service time must read as zero load in every
        // build profile, never inf/NaN handed to the planner.
        let mut est = RateEstimator::new(4);
        for i in 0..8 {
            est.observe_arrival(i as f64 * 0.25);
        }
        assert!(est.rate() > 0.0);
        assert_eq!(est.utilization(1.0, 0), 0.0);
        assert_eq!(est.utilization(0.0, 4), 0.0);
        assert_eq!(est.utilization(-1.0, 4), 0.0);
        assert_eq!(est.utilization(f64::NAN, 4), 0.0);
        assert!(est.utilization(1.0, 4).is_finite());

        let mut bank = EstimatorBank::new(2, 4);
        for i in 0..8 {
            bank.observe_arrival(1, i as f64 * 0.5);
        }
        assert_eq!(bank.utilization(1, 1.0, 0), 0.0);
        assert_eq!(bank.utilization(1, 0.0, 2), 0.0);
        assert_eq!(bank.utilization(1, f64::NAN, 2), 0.0);
        assert!(bank.utilization(1, 1.0, 2) > 0.0);
    }

    #[test]
    fn bank_survives_topology_churn() {
        // The elastic contract: growth appends cold estimators, removal
        // resets exactly the departed index, and surviving indices carry
        // bitwise-identical state through both events.
        let window = 8;
        let mut bank = EstimatorBank::new(2, window);
        let mut control = EstimatorBank::new(2, window);
        for i in 0..12 {
            bank.observe_arrival(0, i as f64 * 0.125);
            control.observe_arrival(0, i as f64 * 0.125);
            bank.observe_arrival(1, i as f64 * 0.5);
            control.observe_arrival(1, i as f64 * 0.5);
        }
        // Scale out 2 -> 4: new indices cold, with the bank's window.
        bank.grow_to(4);
        assert_eq!(bank.len(), 4);
        assert_eq!(bank.window(), window);
        assert!(bank.get(2).is_empty() && bank.get(3).is_empty());
        assert_eq!(bank.rate(2), 0.0);
        assert_eq!(
            bank.rate(0).to_bits(),
            control.rate(0).to_bits(),
            "growth disturbed a surviving index"
        );
        // grow_to is monotone: shrinking requests are no-ops.
        bank.grow_to(1);
        assert_eq!(bank.len(), 4);
        // Feed the new indices, then "remove" one server (reset index 3).
        for i in 0..12 {
            bank.observe_arrival(2, i as f64 * 0.25);
            bank.observe_arrival(3, 100.0 + i as f64);
        }
        bank.reset(3);
        assert!(bank.get(3).is_empty(), "departed index must go cold");
        // No cross-contamination mid-migration: indices fed identically
        // to the control (which never churned) still agree bitwise.
        for i in 12..20 {
            bank.observe_arrival(0, i as f64 * 0.125);
            control.observe_arrival(0, i as f64 * 0.125);
        }
        assert_eq!(bank.rate(0).to_bits(), control.rate(0).to_bits());
        assert_eq!(bank.rate(1).to_bits(), control.rate(1).to_bits());
        assert!((bank.rate(2) - 4.0).abs() < 1e-12, "survivor lost its window");
        // A re-added server starts cold and warms like a fresh one.
        bank.observe_arrival(3, 200.0);
        assert!(bank.get(3).is_empty());
        // Summaries carry the grown width.
        assert_eq!(bank.summary().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one index")]
    fn empty_bank_rejected() {
        let _ = EstimatorBank::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn bank_tiny_window_rejected() {
        let _ = EstimatorBank::new(4, 1);
    }
}
