//! Live load estimation: the input the [`crate::planner::Planner`] needs
//! to drive per-request replication decisions on real traffic.
//!
//! The planner's advice is a function of the current per-server
//! utilization, but a front-end never observes utilization directly — it
//! observes an arrival stream. [`RateEstimator`] turns that stream into a
//! utilization estimate with a **windowed Welford accumulator** over
//! inter-arrival gaps: the window makes the estimate track load *shifts*
//! (the whole point of switching replication off as load climbs), and the
//! Welford-style incremental update keeps mean and variance numerically
//! stable at O(1) per arrival with no rescan of the window.
//!
//! The variance is exposed because it is the natural confidence signal: a
//! Poisson stream at rate λ has gap CV ≈ 1, so a window whose gap variance
//! is wildly larger than `mean²` indicates a mixed/bursty stream whose
//! rate estimate deserves less trust.

use std::collections::VecDeque;

/// Windowed mean/variance of inter-arrival gaps, with rate and utilization
/// views. All state is O(window) and every update is O(1).
#[derive(Clone, Debug)]
pub struct RateEstimator {
    window: usize,
    gaps: VecDeque<f64>,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2),
    /// maintained under both growth and sliding replacement.
    m2: f64,
    last_arrival: Option<f64>,
}

impl RateEstimator {
    /// An estimator averaging over the last `window` inter-arrival gaps.
    ///
    /// # Panics
    /// Panics if `window < 2` — a rate cannot be estimated from fewer than
    /// two gaps without collapsing to a single-sample guess.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "rate window must be >= 2, got {window}");
        RateEstimator {
            window,
            gaps: VecDeque::with_capacity(window),
            mean: 0.0,
            m2: 0.0,
            last_arrival: None,
        }
    }

    /// The configured window length (gaps).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of gaps currently held (saturates at the window length).
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// `true` when no gap has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// `true` once at least two gaps are held — the earliest point at
    /// which [`rate`](Self::rate) returns a meaningful value.
    pub fn is_warm(&self) -> bool {
        self.gaps.len() >= 2
    }

    /// Records an arrival at absolute time `now` (same clock for every
    /// call; must be nondecreasing). The first call only anchors the
    /// clock; each subsequent call pushes one gap into the window.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous arrival.
    pub fn observe_arrival(&mut self, now: f64) {
        if let Some(last) = self.last_arrival {
            assert!(now >= last, "arrivals must be nondecreasing: {now} < {last}");
            self.push_gap(now - last);
        }
        self.last_arrival = Some(now);
    }

    /// Records one inter-arrival gap directly (for callers that already
    /// difference their clock).
    pub fn push_gap(&mut self, gap: f64) {
        debug_assert!(gap >= 0.0 && gap.is_finite());
        if self.gaps.len() == self.window {
            // Sliding replacement: evict the oldest gap and admit the new
            // one in a single windowed-Welford update.
            let old = self.gaps.pop_front().expect("window nonempty");
            self.gaps.push_back(gap);
            let n = self.gaps.len() as f64;
            let old_mean = self.mean;
            let delta = gap - old;
            self.mean += delta / n;
            self.m2 += delta * (gap - self.mean + old - old_mean);
            // Replacement arithmetic can leave a tiny negative residue.
            if self.m2 < 0.0 {
                self.m2 = 0.0;
            }
        } else {
            // Growth phase: classic Welford.
            self.gaps.push_back(gap);
            let n = self.gaps.len() as f64;
            let delta = gap - self.mean;
            self.mean += delta / n;
            self.m2 += delta * (gap - self.mean);
        }
    }

    /// Mean inter-arrival gap over the window (0 if empty).
    pub fn mean_gap(&self) -> f64 {
        if self.gaps.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the windowed gaps (0 with < 2 gaps).
    pub fn gap_variance(&self) -> f64 {
        if self.gaps.len() < 2 {
            0.0
        } else {
            self.m2 / self.gaps.len() as f64
        }
    }

    /// Estimated arrival rate, 1 / mean gap (0 until warm).
    pub fn rate(&self) -> f64 {
        if !self.is_warm() || self.mean <= 0.0 {
            0.0
        } else {
            1.0 / self.mean
        }
    }

    /// Estimated **baseline** per-server utilization for a cluster of
    /// `servers` identical servers with mean service time `mean_service`:
    /// `rate · E[S] / servers` — the ρ axis every threshold in the paper
    /// is defined against (what the load *would* be at k = 1, regardless
    /// of how many copies are actually being issued).
    pub fn utilization(&self, mean_service: f64, servers: usize) -> f64 {
        debug_assert!(mean_service > 0.0 && servers > 0);
        self.rate() * mean_service / servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn matches_naive_moments_while_growing_and_sliding() {
        let gaps: Vec<f64> = (0..200)
            .map(|i| 0.5 + ((i * 37) % 101) as f64 * 0.01)
            .collect();
        let w = 32;
        let mut est = RateEstimator::new(w);
        for (i, &g) in gaps.iter().enumerate() {
            est.push_gap(g);
            let lo = (i + 1).saturating_sub(w);
            let window = &gaps[lo..=i];
            let (mean, var) = naive_mean_var(window);
            assert!((est.mean_gap() - mean).abs() < 1e-12, "mean at {i}");
            assert!((est.gap_variance() - var).abs() < 1e-9, "var at {i}");
            assert_eq!(est.len(), window.len());
        }
    }

    #[test]
    fn rate_and_utilization_from_deterministic_gaps() {
        let mut est = RateEstimator::new(8);
        let mut t = 0.0;
        for _ in 0..20 {
            est.observe_arrival(t);
            t += 0.25; // 4 arrivals/sec
        }
        assert!((est.rate() - 4.0).abs() < 1e-12);
        // 4/sec * 0.5s mean service over 4 servers = 50% baseline load.
        assert!((est.utilization(0.5, 4) - 0.5).abs() < 1e-12);
        assert!(est.gap_variance() < 1e-12);
    }

    #[test]
    fn tracks_a_rate_shift_within_a_window() {
        let mut est = RateEstimator::new(16);
        let mut t = 0.0;
        for _ in 0..32 {
            est.observe_arrival(t);
            t += 1.0;
        }
        assert!((est.rate() - 1.0).abs() < 1e-12);
        // Rate doubles; once a full window of new gaps has been pushed the
        // estimate must have converged to the new rate. (The first phase
        // left the clock half a gap ahead, so the first new gap is a
        // transition artifact — push window + 1 gaps to flush it.)
        for _ in 0..17 {
            t += 0.5;
            est.observe_arrival(t);
        }
        assert!((est.rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cold_estimator_reports_zero() {
        let mut est = RateEstimator::new(4);
        assert!(est.is_empty());
        assert_eq!(est.rate(), 0.0);
        assert_eq!(est.utilization(1.0, 4), 0.0);
        est.observe_arrival(1.0);
        assert!(!est.is_warm(), "one arrival anchors the clock only");
        est.observe_arrival(2.0);
        assert!(!est.is_warm(), "one gap is not enough");
        est.observe_arrival(3.0);
        assert!(est.is_warm());
        assert!((est.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = RateEstimator::new(1);
    }
}
