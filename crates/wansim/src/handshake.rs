//! TCP connection establishment under packet duplication (§3.1).
//!
//! The paper's idealized model: every transmission is delivered after
//! `RTT/2` with probability `1 − p`, lost otherwise, independently.
//! Sending one copy of each packet, `p = 0.0048`; sending two back-to-back
//! copies, `p = 0.0007` (the measured *correlated* pair-loss rate of Chan
//! et al. — much worse than the 2.3·10⁻⁵ independence would give, but
//! still 7× better than a single copy). TCP behaves like the Linux kernel:
//! 3 s initial timeout for SYN and SYN-ACK, `3·RTT` for the final ACK,
//! exponential backoff on every retry.
//!
//! Both an exact expectation (geometric-backoff series per packet) and a
//! Monte-Carlo percentile engine are provided; the paper's headline numbers
//! — ≈ 25 ms expected savings and ~170 ms saved per KB of extra traffic —
//! fall straight out (see tests).

use simcore::rng::Rng;
use simcore::stats::SampleSet;

/// Loss constants from the paper (per transmission *event*).
#[derive(Clone, Copy, Debug)]
pub struct LossModel {
    /// Probability a single copy is lost.
    pub p_single: f64,
    /// Probability both copies of a back-to-back pair are lost.
    pub p_pair: f64,
}

impl Default for LossModel {
    fn default() -> Self {
        LossModel {
            p_single: 0.0048,
            p_pair: 0.0007,
        }
    }
}

/// The three-packet handshake model.
#[derive(Clone, Copy, Debug)]
pub struct HandshakeModel {
    /// Round-trip time, seconds.
    pub rtt: f64,
    /// Initial retransmission timeout for SYN and SYN-ACK (Linux: 3 s).
    pub syn_timeout: f64,
    /// Initial timeout for the final ACK, as a multiple of RTT (Linux: 3).
    pub ack_timeout_rtts: f64,
    /// Loss constants.
    pub loss: LossModel,
    /// Extra bytes on the wire per duplicated packet (the paper assumes
    /// 50-byte handshake packets).
    pub packet_bytes: f64,
}

impl Default for HandshakeModel {
    fn default() -> Self {
        HandshakeModel {
            rtt: 0.1,
            syn_timeout: 3.0,
            ack_timeout_rtts: 3.0,
            loss: LossModel::default(),
            packet_bytes: 50.0,
        }
    }
}

/// Results of evaluating the model at one duplication setting.
#[derive(Clone, Debug)]
pub struct HandshakeOutcome {
    /// Exact expected completion time, seconds.
    pub mean: f64,
    /// Monte-Carlo samples of the completion time.
    pub samples: SampleSet,
}

impl HandshakeModel {
    /// Exact expected extra delay from retransmissions of one packet with
    /// initial timeout `t0`, doubling per retry, per-attempt loss `p`:
    /// `E = Σₙ pⁿ(1−p)·t0·(2ⁿ−1) = t0·(1−p)·[2p/(1−2p) − p/(1−p)]`.
    fn expected_retrans_delay(t0: f64, p: f64) -> f64 {
        assert!(p < 0.5, "geometric backoff series diverges at p >= 1/2");
        t0 * (1.0 - p) * (2.0 * p / (1.0 - 2.0 * p) - p / (1.0 - p))
    }

    /// Exact expected handshake completion time (client sends SYN at t = 0;
    /// completion when the server receives the final ACK).
    pub fn expected_completion(&self, duplicated: bool) -> f64 {
        let p = if duplicated {
            self.loss.p_pair
        } else {
            self.loss.p_single
        };
        let base = 1.5 * self.rtt; // three one-way trips
        base + Self::expected_retrans_delay(self.syn_timeout, p)
            + Self::expected_retrans_delay(self.syn_timeout, p)
            + Self::expected_retrans_delay(self.ack_timeout_rtts * self.rtt, p)
    }

    /// Paper's headline: expected savings from duplicating all three
    /// packets. First-order this is `(3 + 3 + 3·RTT)·(p₁ − p₂)` seconds.
    pub fn expected_savings(&self) -> f64 {
        self.expected_completion(false) - self.expected_completion(true)
    }

    /// Extra traffic for a fully-duplicated handshake, bytes.
    pub fn extra_bytes(&self) -> f64 {
        3.0 * self.packet_bytes
    }

    /// Simulates one handshake; returns its completion time.
    fn simulate_once(&self, p: f64, rng: &mut Rng) -> f64 {
        let mut t = 0.0;
        // SYN, SYN-ACK, ACK in sequence; each is a geometric retry ladder.
        for (idx, t0) in [
            self.syn_timeout,
            self.syn_timeout,
            self.ack_timeout_rtts * self.rtt,
        ]
        .into_iter()
        .enumerate()
        {
            let _ = idx;
            let mut timeout = t0;
            while rng.chance(p) {
                t += timeout;
                timeout *= 2.0;
                assert!(t < 3600.0, "handshake runaway");
            }
            t += self.rtt / 2.0;
        }
        t
    }

    /// Evaluates the model: exact mean + `n` Monte-Carlo samples.
    pub fn evaluate(&self, duplicated: bool, n: usize, seed: u64) -> HandshakeOutcome {
        let p = if duplicated {
            self.loss.p_pair
        } else {
            self.loss.p_single
        };
        let mut rng = Rng::seed_from(seed);
        let mut samples = SampleSet::with_capacity(n);
        for _ in 0..n {
            samples.push(self.simulate_once(p, &mut rng));
        }
        HandshakeOutcome {
            mean: self.expected_completion(duplicated),
            samples,
        }
    }

    /// The load fraction at which the completion-time CCDF crosses the
    /// "at least one 3 s timeout" cliff — duplication pushes this cliff an
    /// order of magnitude deeper into the tail, which is the substance of
    /// the paper's tail claim.
    pub fn timeout_cliff_probability(&self, duplicated: bool) -> f64 {
        let p = if duplicated {
            self.loss.p_pair
        } else {
            self.loss.p_single
        };
        // P(at least one of the three packets needs a retransmission).
        1.0 - (1.0 - p).powi(3)
    }

    /// **Footnote 3 extension** — "It might be possible to do even better
    /// by spacing the transmissions of the two packets in the pair a few
    /// milliseconds apart to reduce the correlation."
    ///
    /// Model: loss bursts decorrelate on a timescale `burst_tau`; spacing
    /// the pair by `delta` moves the pair-loss probability from the
    /// measured back-to-back value toward independence:
    ///
    /// ```text
    /// p_pair(δ) = p² + (p_pair − p²)·exp(−δ/τ)
    /// ```
    ///
    /// The cost is that when the first copy is lost, the rescue copy
    /// arrives `delta` later, adding (p − p_pair(δ))·δ of expected delay
    /// per packet. Both effects are tiny compared to dodged 3 s timeouts,
    /// so modest spacing is a strict improvement — quantified in
    /// [`expected_completion_spaced`](Self::expected_completion_spaced).
    pub fn pair_loss_with_spacing(&self, delta: f64, burst_tau: f64) -> f64 {
        assert!(delta >= 0.0 && burst_tau > 0.0);
        let p_ind = self.loss.p_single * self.loss.p_single;
        p_ind + (self.loss.p_pair - p_ind) * (-delta / burst_tau).exp()
    }

    /// Expected completion with duplicated packets spaced `delta` apart
    /// (burst decorrelation time `burst_tau`).
    pub fn expected_completion_spaced(&self, delta: f64, burst_tau: f64) -> f64 {
        let p = self.pair_loss_with_spacing(delta, burst_tau);
        let base = 1.5 * self.rtt;
        // Rescue-copy delay: first copy lost but pair survives.
        let rescue = (self.loss.p_single - p).max(0.0) * delta;
        base + 3.0 * rescue
            + Self::expected_retrans_delay(self.syn_timeout, p)
            + Self::expected_retrans_delay(self.syn_timeout, p)
            + Self::expected_retrans_delay(self.ack_timeout_rtts * self.rtt, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costbench::savings_ms_per_kb;

    #[test]
    fn expected_savings_matches_paper_first_order() {
        // (3 + 3 + 0.3) s * (0.0048 - 0.0007) = 25.8 ms at RTT = 100 ms;
        // the exact series adds a whisker.
        let m = HandshakeModel::default();
        let s = m.expected_savings();
        assert!(
            (0.024..0.032).contains(&s),
            "expected ~26 ms savings, got {}",
            s * 1e3
        );
    }

    #[test]
    fn savings_grow_with_rtt() {
        let slow = HandshakeModel {
            rtt: 0.3,
            ..Default::default()
        };
        let fast = HandshakeModel {
            rtt: 0.03,
            ..Default::default()
        };
        assert!(slow.expected_savings() > fast.expected_savings());
    }

    #[test]
    fn per_kb_savings_beat_the_benchmark_by_10x() {
        // Paper: ">= 170 ms/KB in the mean", an order of magnitude beyond
        // the 16 ms/KB break-even.
        let m = HandshakeModel::default();
        let rate = savings_ms_per_kb(m.expected_savings() * 1e3, m.extra_bytes());
        assert!(rate > 160.0, "got {rate} ms/KB");
        assert!(rate > 10.0 * crate::costbench::BREAK_EVEN_MS_PER_KB);
    }

    #[test]
    fn monte_carlo_matches_exact_mean() {
        let m = HandshakeModel::default();
        for dup in [false, true] {
            let out = m.evaluate(dup, 400_000, 7);
            let mc = out.samples.mean();
            assert!(
                (mc - out.mean).abs() < 0.15 * out.mean.max(0.01),
                "dup={dup}: MC {mc} vs exact {}",
                out.mean
            );
        }
    }

    #[test]
    fn duplication_pushes_timeout_cliff_deeper() {
        let m = HandshakeModel::default();
        let single = m.timeout_cliff_probability(false);
        let dup = m.timeout_cliff_probability(true);
        // ~1.43% vs ~0.21%: order of magnitude.
        assert!((single - 0.0143).abs() < 0.001, "{single}");
        assert!((dup - 0.0021).abs() < 0.0003, "{dup}");
        assert!(single / dup > 6.0);
    }

    #[test]
    fn tail_improvement_in_high_percentiles() {
        // At the 98.6th-99.8th percentile band the single-copy handshake
        // has eaten a 3 s timeout while the duplicated one has not: the
        // paper's ">= 880 ms in the tail" claim lives here.
        let m = HandshakeModel::default();
        let mut single = m.evaluate(false, 300_000, 11).samples;
        let mut dup = m.evaluate(true, 300_000, 11).samples;
        let q = 0.995;
        let improvement = single.quantile(q) - dup.quantile(q);
        assert!(
            improvement > 0.88,
            "p99.5 improvement {improvement}s below the paper's 880 ms"
        );
    }

    #[test]
    fn correlated_pair_loss_beats_single_but_not_independence() {
        let l = LossModel::default();
        assert!(l.p_pair < l.p_single / 6.0, "7x reduction");
        assert!(
            l.p_pair > l.p_single * l.p_single * 10.0,
            "correlation keeps it far above p^2"
        );
    }

    #[test]
    fn footnote3_spacing_interpolates_to_independence() {
        let m = HandshakeModel::default();
        let tau = 10.0e-3;
        // Zero spacing = the measured back-to-back pair loss.
        assert!((m.pair_loss_with_spacing(0.0, tau) - 0.0007).abs() < 1e-12);
        // Wide spacing converges to p^2.
        let wide = m.pair_loss_with_spacing(1.0, tau);
        assert!((wide - 0.0048f64 * 0.0048).abs() < 1e-9, "{wide}");
        // Monotone in between.
        let mid = m.pair_loss_with_spacing(5.0e-3, tau);
        assert!(0.0048 * 0.0048 < mid && mid < 0.0007);
    }

    #[test]
    fn footnote3_modest_spacing_strictly_helps() {
        let m = HandshakeModel::default();
        let tau = 10.0e-3;
        let back_to_back = m.expected_completion(true);
        let spaced = m.expected_completion_spaced(5.0e-3, tau);
        assert!(
            spaced < back_to_back,
            "5 ms spacing should win: {spaced} vs {back_to_back}"
        );
        // But absurd spacing stops paying (rescue delay dominates once the
        // correlation is gone).
        let excessive = m.expected_completion_spaced(3.0, tau);
        assert!(excessive > spaced);
    }
}
