//! The cost-effectiveness benchmark of Vulimiri et al. [28, 29].
//!
//! The paper judges every wide-area use of redundancy against one number:
//! replication is worthwhile when it saves at least **16 ms of latency per
//! KB of extra traffic** — a threshold derived from cloud-service pricing
//! (which bundles bandwidth, CPU, and the economic value of human latency).
//! Fig 17 plots incremental DNS savings against this line; §3.1 reports
//! the handshake's ~170 ms/KB as an order of magnitude above it.

/// Break-even latency savings per extra traffic, ms/KB.
pub const BREAK_EVEN_MS_PER_KB: f64 = 16.0;

/// Latency savings rate in ms/KB given absolute savings and extra bytes.
///
/// # Panics
/// Panics if `extra_bytes` is not positive.
pub fn savings_ms_per_kb(saved_ms: f64, extra_bytes: f64) -> f64 {
    assert!(extra_bytes > 0.0, "no extra traffic, rate undefined");
    saved_ms / (extra_bytes / 1024.0)
}

/// `true` when a savings rate clears the benchmark.
pub fn is_cost_effective(saved_ms: f64, extra_bytes: f64) -> bool {
    savings_ms_per_kb(saved_ms, extra_bytes) >= BREAK_EVEN_MS_PER_KB
}

/// Incremental ms/KB of going from `k−1` to `k` copies, given the latency
/// metric at each copy count (`metric[i]` = latency in ms with `i+1`
/// copies) and the extra bytes each additional copy costs.
pub fn incremental_rates(metric: &[f64], bytes_per_copy: f64) -> Vec<f64> {
    assert!(metric.len() >= 2);
    metric
        .windows(2)
        .map(|w| savings_ms_per_kb(w[0] - w[1], bytes_per_copy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_arithmetic() {
        // 32 ms saved for 2 KB = 16 ms/KB: exactly break-even.
        assert!((savings_ms_per_kb(32.0, 2048.0) - 16.0).abs() < 1e-12);
        assert!(is_cost_effective(32.0, 2048.0));
        assert!(!is_cost_effective(31.9, 2048.0));
    }

    #[test]
    fn incremental_rates_flag_diminishing_returns() {
        // Mean latency (ms) with 1..=4 copies: big win first, then little.
        let metric = [100.0, 60.0, 50.0, 48.0];
        let rates = incremental_rates(&metric, 500.0);
        assert_eq!(rates.len(), 3);
        assert!(rates[0] > rates[1] && rates[1] > rates[2]);
        // First copy is worth it, the fourth is not.
        assert!(rates[0] > BREAK_EVEN_MS_PER_KB);
        assert!(rates[2] < BREAK_EVEN_MS_PER_KB);
    }

    #[test]
    #[should_panic(expected = "extra traffic")]
    fn zero_bytes_panics() {
        let _ = savings_ms_per_kb(10.0, 0.0);
    }
}
