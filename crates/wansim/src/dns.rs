//! Replicated DNS queries (§3.2): race the k best of 10 resolvers.
//!
//! The paper's methodology on each of 15 PlanetLab nodes:
//!
//! 1. **Stage 1** — rank the 10 DNS servers by mean response time, probing
//!    a random name at a random server every 5 s for a week.
//! 2. **Stage 2** — repeatedly either query one individual server or the
//!    top k (k = 1…10) in parallel, taking the first answer. Queries
//!    slower than 2 s count as lost and are scored as 2 s.
//!
//! Results: 50–62 % reduction in mean/median/95th/99th latency with 10
//! servers vs the best single server (44–57 % vs the best server *in
//! retrospect*), a 6.5× cut in the fraction of responses later than 500 ms
//! and 50× later than 1.5 s (Fig 15/16), and incremental per-server value
//! that stays above the 16 ms/KB benchmark for the 99th percentile but not
//! the mean beyond ~5 servers (Fig 17).
//!
//! Our stand-in for PlanetLab + public resolvers: each server is a shifted
//! heavy-tailed mixture (anycast RTT + cache hit/miss at the resolver) with
//! an independent loss probability; the 2 s cap is applied exactly as in
//! the paper. Server heterogeneity (one clearly-best resolver, a mid pack,
//! two poor ones) mirrors the measured reality that makes ranking matter.

use simcore::dist::{Distribution, LogNormal};
use simcore::rng::Rng;
use simcore::runner::Runner;
use simcore::stats::SampleSet;

/// Trials per parallel work unit in the stage-2 experiments. Fixed (never
/// derived from the thread count) so chunk boundaries — and therefore the
/// exact random streams — are identical at any parallelism level.
const TRIAL_CHUNK: usize = 8192;

/// Splits `trials` into fixed-size chunks with per-chunk seeds forked from
/// `seed`, runs `per_chunk` over them in parallel, and returns the partial
/// results in chunk order.
fn chunked_trials<R: Send>(
    trials: usize,
    seed: u64,
    per_chunk: impl Fn(&mut Rng, usize) -> R + Sync,
) -> Vec<R> {
    let chunks = trials.div_ceil(TRIAL_CHUNK);
    let mut root = Rng::seed_from(seed);
    let chunk_seeds: Vec<u64> = (0..chunks).map(|c| root.fork(c as u64).next_u64()).collect();
    Runner::global().run(chunks, |c| {
        let mut rng = Rng::seed_from(chunk_seeds[c]);
        let count = TRIAL_CHUNK.min(trials - c * TRIAL_CHUNK);
        per_chunk(&mut rng, count)
    })
}

/// The paper's loss convention: queries slower than this count as lost and
/// are scored at exactly this value.
pub const CAP_SECONDS: f64 = 2.0;

/// Wire cost per additional replicated query (request + response), bytes.
/// The paper's accounting: 10 copies of every query ≈ 4500 extra bytes.
pub const BYTES_PER_COPY: f64 = 500.0;

/// One resolver's response-time model.
#[derive(Clone, Debug)]
pub struct DnsServerModel {
    /// Network round trip to the resolver, seconds.
    pub base_rtt: f64,
    /// Probability the name is in the resolver's cache.
    pub hit_prob: f64,
    /// Server-side processing jitter on a hit.
    pub hit_jitter: LogNormal,
    /// Extra time for upstream resolution on a miss.
    pub miss_extra: LogNormal,
    /// Probability the query or response is lost (scored as the 2 s cap).
    pub loss_prob: f64,
}

impl DnsServerModel {
    /// Draws one response time, applying the 2 s loss cap.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.loss_prob) {
            return CAP_SECONDS;
        }
        let t = if rng.chance(self.hit_prob) {
            self.base_rtt + self.hit_jitter.sample(rng)
        } else {
            self.base_rtt + self.miss_extra.sample(rng)
        };
        t.min(CAP_SECONDS)
    }

    /// Analytic-ish mean (ignoring the cap's truncation, which is small).
    pub fn approx_mean(&self) -> f64 {
        self.loss_prob * CAP_SECONDS
            + (1.0 - self.loss_prob)
                * (self.base_rtt
                    + self.hit_prob * self.hit_jitter.mean()
                    + (1.0 - self.hit_prob) * self.miss_extra.mean())
    }
}

/// Client-side congestion shared by every resolver in a trial (the access
/// link and first-hop path are common to all copies from one vantage
/// point). This is what keeps deep replication from erasing the tail
/// entirely: the min over k servers cannot dodge a stall they all share.
#[derive(Clone, Debug)]
pub struct CommonNoise {
    /// Probability a trial is affected.
    pub prob: f64,
    /// Extra delay added to every server's response in an affected trial.
    pub extra: LogNormal,
}

impl CommonNoise {
    /// Samples the shared extra delay for one trial (0 when unaffected).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.prob) {
            self.extra.sample(rng)
        } else {
            0.0
        }
    }
}

/// The set of resolvers visible from one vantage point.
#[derive(Clone, Debug)]
pub struct DnsPopulation {
    /// The servers, in arbitrary (unranked) order.
    pub servers: Vec<DnsServerModel>,
    /// Shared access-link noise.
    pub common: CommonNoise,
}

impl DnsPopulation {
    /// A 10-server population shaped like the paper's (default local
    /// resolver + 9 public services): one excellent local server, a pack of
    /// decent anycast services, and a couple of slow or lossy ones. `seed`
    /// perturbs the constants so different "vantage points" (the paper's 15
    /// PlanetLab nodes) see different rankings.
    pub fn paper_like(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed ^ 0xD25);
        let mut jig = |x: f64| x * rng.f64_range(0.85, 1.15);
        // (base_rtt ms, hit prob, miss mean ms, loss prob). Hit rates are
        // modest across the board: the paper queries *random* names from
        // the Alexa top-1M, most of which sit cold in any resolver's cache
        // — this thick independent miss mass is exactly what keeps the
        // 99th percentile improving all the way to 10-way replication
        // (Fig 17). The local resolver is closest and (having resolved this
        // vantage point's tail before) warmest.
        let raw: [(f64, f64, f64, f64); 10] = [
            (9.0, 0.45, 110.0, 0.004),  // default local resolver
            (14.0, 0.45, 130.0, 0.005), // big anycast #1
            (18.0, 0.42, 140.0, 0.005), // big anycast #2
            (24.0, 0.40, 160.0, 0.006),
            (30.0, 0.38, 180.0, 0.008),
            (38.0, 0.36, 200.0, 0.008),
            (48.0, 0.33, 230.0, 0.010),
            (60.0, 0.30, 270.0, 0.012),
            (75.0, 0.28, 310.0, 0.015),
            (95.0, 0.25, 350.0, 0.020), // distant, cold, lossy
        ];
        let servers = raw
            .into_iter()
            .map(|(rtt, hit, miss, loss)| DnsServerModel {
                base_rtt: jig(rtt) * 1e-3,
                hit_prob: (hit * jig(1.0)).min(0.95),
                hit_jitter: LogNormal::with_mean_sigma(jig(4.0) * 1e-3, 0.6),
                miss_extra: LogNormal::with_mean_sigma(jig(miss) * 1e-3, 1.2),
                loss_prob: jig(loss),
            })
            .collect();
        DnsPopulation {
            servers,
            common: CommonNoise {
                prob: 0.012,
                extra: LogNormal::with_mean_sigma(250.0e-3, 0.8),
            },
        }
    }
}

/// The two-stage experiment at one vantage point.
#[derive(Clone, Debug)]
pub struct DnsExperiment {
    /// The resolver population.
    pub population: DnsPopulation,
    /// Server indices sorted best-first by the stage-1 mean estimate.
    pub ranking: Vec<usize>,
}

impl DnsExperiment {
    /// Runs stage 1: estimates each server's mean from `probes_per_server`
    /// queries and ranks them. Servers probe in parallel, each on a stream
    /// forked per server index, so the ranking is independent of thread
    /// count.
    pub fn rank(population: DnsPopulation, probes_per_server: usize, seed: u64) -> Self {
        let mut root = Rng::seed_from(seed ^ 0x57A6E1);
        let probe_seeds: Vec<u64> = (0..population.servers.len())
            .map(|i| root.fork(i as u64).next_u64())
            .collect();
        let mut means: Vec<(usize, f64)> =
            Runner::global().map(&population.servers, |i, s| {
                let mut rng = Rng::seed_from(probe_seeds[i]);
                let total: f64 = (0..probes_per_server).map(|_| s.sample(&mut rng)).sum();
                (i, total / probes_per_server as f64)
            });
        means.sort_by(|a, b| a.1.total_cmp(&b.1));
        DnsExperiment {
            population,
            ranking: means.into_iter().map(|(i, _)| i).collect(),
        }
    }

    /// One stage-2 replicated trial: query the top `k` servers in parallel
    /// and take the first answer (losses everywhere score the 2 s cap).
    /// Access-link noise is shared by all copies within the trial.
    pub fn race(&self, k: usize, rng: &mut Rng) -> f64 {
        assert!(k >= 1 && k <= self.ranking.len());
        let common = self.population.common.sample(rng);
        self.ranking[..k]
            .iter()
            .map(|&i| {
                let t = self.population.servers[i].sample(rng);
                if t >= CAP_SECONDS { t } else { (t + common).min(CAP_SECONDS) }
            })
            .fold(CAP_SECONDS, f64::min)
    }

    /// Runs `trials` stage-2 trials at replication `k`, in fixed-size
    /// parallel chunks (bit-identical at any thread count).
    pub fn run_trials(&self, k: usize, trials: usize, seed: u64) -> SampleSet {
        let chunks = chunked_trials(trials, seed ^ (k as u64) << 32 ^ 0xFACE, |rng, count| {
            (0..count).map(|_| self.race(k, rng)).collect::<Vec<f64>>()
        });
        let mut out = SampleSet::with_capacity(trials);
        for chunk in chunks {
            for t in chunk {
                out.push(t);
            }
        }
        out
    }

    /// Runs `trials` stage-2 trials for *every* k simultaneously with
    /// common random numbers: each trial draws one response per server and
    /// scores k as the min over the top-k draws. `out[k-1]` is the sample
    /// set for k copies. This is how Fig 16/17's small inter-k differences
    /// stay noise-free (and it guarantees the k+1 curve dominates the k
    /// curve pointwise, as it must).
    pub fn run_all_k(&self, trials: usize, seed: u64) -> Vec<SampleSet> {
        let n = self.ranking.len();
        let partials = chunked_trials(trials, seed ^ 0xA11, |rng, count| {
            let mut out: Vec<Vec<f64>> = (0..n).map(|_| Vec::with_capacity(count)).collect();
            for _ in 0..count {
                let common = self.population.common.sample(rng);
                let mut best = CAP_SECONDS;
                for (j, &srv) in self.ranking.iter().enumerate() {
                    let raw = self.population.servers[srv].sample(rng);
                    let t = if raw >= CAP_SECONDS {
                        raw
                    } else {
                        (raw + common).min(CAP_SECONDS)
                    };
                    best = best.min(t);
                    out[j].push(best);
                }
            }
            out
        });
        let mut out: Vec<SampleSet> = (0..n).map(|_| SampleSet::with_capacity(trials)).collect();
        for chunk in partials {
            for (j, samples) in chunk.into_iter().enumerate() {
                for t in samples {
                    out[j].push(t);
                }
            }
        }
        out
    }

    /// Samples each *individual* server (the paper's stage-2 singleton
    /// trials), returning per-server sample sets — the basis for the
    /// best-in-retrospect baseline. Servers run in parallel on per-server
    /// forked streams.
    pub fn individual_trials(&self, trials: usize, seed: u64) -> Vec<SampleSet> {
        let mut root = Rng::seed_from(seed ^ 0xBEEF);
        let seeds: Vec<u64> = (0..self.population.servers.len())
            .map(|i| root.fork(i as u64).next_u64())
            .collect();
        Runner::global().map(&self.population.servers, |i, s| {
            let mut rng = Rng::seed_from(seeds[i]);
            (0..trials).map(|_| s.sample(&mut rng)).collect()
        })
    }
}

/// One row of the Fig 16 table: percentage reduction vs the best single
/// server, by metric.
#[derive(Clone, Copy, Debug)]
pub struct ReductionRow {
    /// Number of parallel copies.
    pub k: usize,
    /// Percent reduction in the mean.
    pub mean_pct: f64,
    /// Percent reduction in the median.
    pub median_pct: f64,
    /// Percent reduction in the 95th percentile.
    pub p95_pct: f64,
    /// Percent reduction in the 99th percentile.
    pub p99_pct: f64,
}

/// Builds the Fig 16 reduction table against the stage-1 best server
/// (k = 1 of the ranking), with common random numbers across k.
pub fn reduction_table(exp: &DnsExperiment, trials: usize, seed: u64) -> Vec<ReductionRow> {
    let mut sets = exp.run_all_k(trials, seed);
    let b_mean = sets[0].mean();
    let b_med = sets[0].median();
    let b_p95 = sets[0].quantile(0.95);
    let b_p99 = sets[0].quantile(0.99);
    sets.iter_mut()
        .enumerate()
        .map(|(i, s)| ReductionRow {
            k: i + 1,
            mean_pct: 100.0 * (1.0 - s.mean() / b_mean),
            median_pct: 100.0 * (1.0 - s.median() / b_med),
            p95_pct: 100.0 * (1.0 - s.quantile(0.95) / b_p95),
            p99_pct: 100.0 * (1.0 - s.quantile(0.99) / b_p99),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> DnsExperiment {
        DnsExperiment::rank(DnsPopulation::paper_like(1), 4_000, 99)
    }

    #[test]
    fn stage1_ranking_orders_by_true_mean() {
        let exp = experiment();
        let truth: Vec<f64> = exp
            .population
            .servers
            .iter()
            .map(|s| s.approx_mean())
            .collect();
        // The best-ranked server should be among the true top 2, the
        // worst-ranked among the true bottom 2 (sampling noise allowed).
        let mut order: Vec<usize> = (0..truth.len()).collect();
        order.sort_by(|&a, &b| truth[a].total_cmp(&truth[b]));
        assert!(order[..2].contains(&exp.ranking[0]), "{:?}", exp.ranking);
        assert!(order[8..].contains(&exp.ranking[9]), "{:?}", exp.ranking);
    }

    #[test]
    fn racing_more_servers_reduces_mean_monotonically() {
        // CRN across k: the k+1 minimum dominates the k minimum pointwise,
        // so the means must be exactly nonincreasing.
        let exp = experiment();
        let sets = exp.run_all_k(60_000, 5);
        let means: Vec<f64> = sets.iter().map(|s| s.mean()).collect();
        for w in means.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "mean should not increase with k: {means:?}"
            );
        }
        // And the independent-draw API agrees within Monte-Carlo noise.
        let indep = exp.run_trials(10, 60_000, 5).mean();
        assert!((indep - means[9]).abs() < 0.15 * means[9]);
    }

    #[test]
    fn fig16_reduction_bands() {
        // Paper: substantial reduction already at 2 servers; 50-62% at 10.
        let exp = experiment();
        let rows = reduction_table(&exp, 80_000, 17);
        let k2 = &rows[1];
        let k10 = &rows[9];
        assert!(
            k2.mean_pct > 10.0,
            "2-server mean reduction too small: {k2:?}"
        );
        assert!(
            (35.0..80.0).contains(&k10.mean_pct),
            "10-server mean reduction off-band: {k10:?}"
        );
        assert!(
            k10.median_pct > 15.0,
            "median must move once the best server's misses dominate it: {k10:?}"
        );
        assert!(k10.p99_pct > 30.0, "tail should improve strongly: {k10:?}");
    }

    #[test]
    fn fig15_tail_fractions() {
        // Paper: fraction later than 500 ms cut ~6.5x with 10 servers;
        // fraction later than 1.5 s cut ~50x.
        let exp = experiment();
        let mut single = exp.run_trials(1, 200_000, 23);
        let mut ten = exp.run_trials(10, 200_000, 23);
        let f500 = (single.tail_fraction(0.5), ten.tail_fraction(0.5));
        let f1500 = (single.tail_fraction(1.5), ten.tail_fraction(1.5));
        assert!(
            f500.0 > 3.0 * f500.1,
            "500 ms tail should shrink severalfold: {f500:?}"
        );
        assert!(
            f1500.1 < f1500.0 / 8.0 + 1e-4,
            "1.5 s tail should shrink by an order of magnitude: {f1500:?}"
        );
        // But the shared access-link noise keeps it from vanishing outright
        // (the paper measured 50x, not infinity).
        assert!(
            f500.1 > 0.0,
            "common noise should leave a residual 500 ms tail"
        );
    }

    #[test]
    fn best_in_retrospect_is_a_stricter_baseline() {
        let exp = experiment();
        let singles = exp.individual_trials(30_000, 31);
        let retrospect_mean = singles
            .iter()
            .map(|s| s.mean())
            .fold(f64::INFINITY, f64::min);
        let ranked_best_mean = exp.run_trials(1, 30_000, 31).mean();
        // Retrospect picks the minimum over *measured* means, so it can
        // only be <= the stage-1 best (within noise).
        assert!(retrospect_mean <= ranked_best_mean * 1.05);
        // And racing all ten still beats even that baseline (the paper's
        // 44-57% claim).
        let ten_mean = exp.run_trials(10, 30_000, 37).mean();
        assert!(
            ten_mean < retrospect_mean * 0.70,
            "10-way race {ten_mean} vs retrospect {retrospect_mean}"
        );
    }

    #[test]
    fn fig17_mean_stops_paying_but_tail_keeps_paying() {
        use crate::costbench::{incremental_rates, BREAK_EVEN_MS_PER_KB};
        let exp = experiment();
        let mut sets = exp.run_all_k(200_000, 41);
        let means: Vec<f64> = sets.iter().map(|s| s.mean() * 1e3).collect();
        let p99s: Vec<f64> = sets.iter_mut().map(|s| s.quantile(0.99) * 1e3).collect();
        let mean_rates = incremental_rates(&means, BYTES_PER_COPY);
        let p99_rates = incremental_rates(&p99s, BYTES_PER_COPY);
        // CRN guarantees nonnegative increments.
        assert!(mean_rates.iter().all(|&r| r >= -1e-9), "{mean_rates:?}");
        // Early copies clear the bar on the mean...
        assert!(mean_rates[0] > BREAK_EVEN_MS_PER_KB, "{mean_rates:?}");
        // ...but the marginal mean value decays below it by k = 10.
        assert!(
            mean_rates[8] < BREAK_EVEN_MS_PER_KB,
            "late copies should stop paying on the mean: {mean_rates:?}"
        );
        // The tail keeps extracting more value per copy than the mean does
        // deep into the server list (the paper's Fig 17 message).
        let late_tail: f64 = p99_rates[4..].iter().sum();
        let late_mean: f64 = mean_rates[4..].iter().sum();
        assert!(
            late_tail >= late_mean - 1e-9,
            "tail {late_tail} vs mean {late_mean}"
        );
    }

    #[test]
    fn cap_is_respected() {
        let exp = experiment();
        let mut rng = Rng::seed_from(3);
        for _ in 0..20_000 {
            let t = exp.race(3, &mut rng);
            assert!(t > 0.0 && t <= CAP_SECONDS);
        }
    }
}
