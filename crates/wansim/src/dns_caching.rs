//! The caching side-benefit of replicated DNS queries (§3.2's closing
//! remark, quantified).
//!
//! > "Querying multiple servers also increases caching, a side-benefit
//! > which would be interesting to quantify."
//!
//! This module quantifies it: a stream of queries with Zipf-distributed
//! name popularity races the k best resolvers; **every** queried resolver
//! caches the name afterward, so replication keeps k caches warm instead
//! of one — a feedback loop the static model of [`crate::dns`] cannot
//! show. Two findings fall out:
//!
//! * **The side-benefit is real**: under 2-way replication the
//!   second-ranked resolver's hit rate climbs from its cold baseline to
//!   essentially the popular-mass of the workload — replication is free
//!   failover warm-up.
//! * **But hits become correlated**: both caches hold the *same* popular
//!   names, so a miss at one server usually means a miss at the other —
//!   racing dodges fewer misses than the static independent-hit model
//!   predicts. The race still wins on RTT and loss diversity; it just
//!   stops being a cache lottery. This correlation is exactly why the
//!   paper's measured DNS gains (independent resolvers with *different*
//!   query populations) exceed what a shared-workload deployment would
//!   see.

use crate::dns::{DnsExperiment, CAP_SECONDS};
use simcore::dist::Distribution;
use simcore::rng::Rng;
use simcore::stats::SampleSet;
use std::collections::{HashMap, VecDeque};

/// A capacity-bounded FIFO name cache (a deliberately simple stand-in for
/// a resolver's cache; FIFO vs LRU changes nothing for Zipf popularity at
/// these sizes).
#[derive(Clone, Debug)]
pub struct NameCache {
    capacity: usize,
    order: VecDeque<u64>,
    // Determinism audit (lint rule map-iteration): keyed-only refcounts
    // (entry/get_mut/remove); eviction order comes from `order`, never
    // from map traversal, so HashMap's random iteration order is unused.
    counts: HashMap<u64, u32>,
}

impl NameCache {
    /// A cache holding at most `capacity` names.
    pub fn new(capacity: usize) -> Self {
        NameCache {
            capacity,
            order: VecDeque::with_capacity(capacity + 1),
            counts: HashMap::new(),
        }
    }

    /// Is the name resident?
    pub fn contains(&self, name: u64) -> bool {
        self.counts.contains_key(&name)
    }

    /// Inserts a name (duplicates allowed; eviction is FIFO over insert
    /// events, with refcounts so a re-inserted name survives one eviction).
    ///
    /// A capacity of 0 means "cache disabled": the insert is a no-op, so
    /// nothing is ever resident and the eviction path (which would
    /// otherwise insert-then-immediately-evict every name, churning the
    /// queue and relying on `pop_front` succeeding) is never entered.
    pub fn insert(&mut self, name: u64) {
        if self.capacity == 0 {
            return;
        }
        *self.counts.entry(name).or_insert(0) += 1;
        self.order.push_back(name);
        while self.order.len() > self.capacity {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            match self.counts.get_mut(&victim) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.counts.remove(&victim);
                }
            }
        }
    }

    /// Number of distinct resident names.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Zipf(s) sampler over `{0, …, n−1}` by precomputed inverse CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler (`n ≥ 1`, exponent `s ≥ 0`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1 && s >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Configuration for the cache-warming study.
#[derive(Clone, Debug)]
pub struct WarmingConfig {
    /// Name universe size.
    pub names: usize,
    /// Zipf popularity exponent (≈ 0.9–1.0 for web names).
    pub zipf_s: f64,
    /// Per-resolver cache capacity (names).
    pub cache_capacity: usize,
    /// Queries to run (after cold start).
    pub queries: usize,
    /// Parallel copies per query.
    pub copies: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WarmingConfig {
    fn default() -> Self {
        WarmingConfig {
            names: 50_000,
            zipf_s: 0.95,
            cache_capacity: 5_000,
            queries: 150_000,
            copies: 2,
            seed: 0xCACE,
        }
    }
}

/// Outcome of the warming study at one replication level.
#[derive(Debug)]
pub struct WarmingResult {
    /// Response times (first answer per query).
    pub response: SampleSet,
    /// Fraction of per-server lookups that hit a warm cache.
    pub hit_rate: f64,
    /// Hit rate per ranking slot (slot 0 = best server).
    pub per_slot_hit_rate: Vec<f64>,
}

/// Runs the warming simulation: resolvers share no state, but every copy of
/// every query warms its server's cache.
pub fn run_warming(exp: &DnsExperiment, cfg: &WarmingConfig) -> WarmingResult {
    assert!(cfg.copies >= 1 && cfg.copies <= exp.ranking.len());
    let mut rng = Rng::seed_from(cfg.seed);
    let zipf = Zipf::new(cfg.names, cfg.zipf_s);
    let mut caches: Vec<NameCache> = (0..exp.ranking.len())
        .map(|_| NameCache::new(cfg.cache_capacity))
        .collect();
    let mut response = SampleSet::with_capacity(cfg.queries);
    let mut hits = 0u64;
    let mut lookups = 0u64;
    let mut slot_hits = vec![0u64; cfg.copies];
    let mut slot_lookups = vec![0u64; cfg.copies];
    for q in 0..cfg.queries {
        let name = zipf.sample(&mut rng);
        let mut best = CAP_SECONDS;
        for slot in 0..cfg.copies {
            let srv_idx = exp.ranking[slot];
            let server = &exp.population.servers[srv_idx];
            let warm = caches[srv_idx].contains(name);
            lookups += 1;
            slot_lookups[slot] += 1;
            if warm {
                hits += 1;
                slot_hits[slot] += 1;
            }
            // Sample the response with the cache decision pinned by *our*
            // cache state rather than the static hit probability.
            let t = if rng.chance(server.loss_prob) {
                CAP_SECONDS
            } else if warm {
                server.base_rtt + server.hit_jitter.sample(&mut rng)
            } else {
                server.base_rtt + server.miss_extra.sample(&mut rng)
            };
            best = best.min(t.min(CAP_SECONDS));
            caches[srv_idx].insert(name);
        }
        // Skip the cold start in the measurements.
        if q >= cfg.queries / 10 {
            response.push(best);
        }
    }
    WarmingResult {
        response,
        hit_rate: hits as f64 / lookups.max(1) as f64,
        per_slot_hit_rate: slot_hits
            .iter()
            .zip(&slot_lookups)
            .map(|(&h, &l)| h as f64 / l.max(1) as f64)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::DnsPopulation;

    fn experiment() -> DnsExperiment {
        DnsExperiment::rank(DnsPopulation::paper_like(1), 2_000, 9)
    }

    #[test]
    fn name_cache_fifo_semantics() {
        let mut c = NameCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.contains(1) && c.contains(2));
        c.insert(3);
        assert!(!c.contains(1), "oldest evicted");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_is_disabled() {
        // Regression: capacity 0 used to drive the insert-then-evict path
        // on every insert; it must instead behave as "no cache at all".
        let mut c = NameCache::new(0);
        for name in 0..1_000u64 {
            c.insert(name);
            assert!(!c.contains(name));
        }
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        // Capacity 1 still caches (exactly one name).
        let mut c = NameCache::new(1);
        c.insert(7);
        assert!(c.contains(7));
        c.insert(8);
        assert!(!c.contains(7) && c.contains(8));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = Rng::seed_from(3);
        let mut top10 = 0;
        let n = 50_000;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                top10 += 1;
            }
        }
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.3, "top-10 should dominate a Zipf(1): {frac}");
    }

    #[test]
    fn replication_warms_more_caches() {
        let exp = experiment();
        let mut cfg = WarmingConfig {
            queries: 60_000,
            ..Default::default()
        };
        cfg.copies = 1;
        let one = run_warming(&exp, &cfg);
        cfg.copies = 2;
        cfg.seed = 0xCACE; // same stream
        let two = run_warming(&exp, &cfg);
        // The second server's cache is now warm too, so per-lookup hit
        // rates hold up (and the race gains compound).
        assert!(
            two.hit_rate > one.hit_rate - 0.05,
            "hit rates: k=1 {} vs k=2 {}",
            one.hit_rate,
            two.hit_rate
        );
        assert!(
            two.response.mean() < one.response.mean() * 0.85,
            "warm replicated mean {} vs single {}",
            two.response.mean(),
            one.response.mean()
        );
    }

    #[test]
    fn warming_raises_the_secondary_hit_rate() {
        // The quantified side-benefit: under replication the second-ranked
        // resolver's cache reaches the same warmth as the primary's, far
        // above its static (cold-for-this-workload) hit probability.
        let exp = experiment();
        let cfg = WarmingConfig {
            queries: 120_000,
            copies: 2,
            ..Default::default()
        };
        let warm = run_warming(&exp, &cfg);
        assert_eq!(warm.per_slot_hit_rate.len(), 2);
        let (primary, secondary) = (warm.per_slot_hit_rate[0], warm.per_slot_hit_rate[1]);
        assert!(
            (primary - secondary).abs() < 0.05,
            "both caches equally warm: {primary} vs {secondary}"
        );
        assert!(
            secondary > 0.5,
            "secondary hit rate {secondary} should exceed any static resolver's"
        );
    }

    #[test]
    fn warmed_hits_are_correlated_across_servers() {
        // The second finding: with a shared query stream, the two caches
        // hold the same names, so the race dodges fewer misses than the
        // static independent-hit model would predict (its k=2 mean is an
        // optimistic bound here).
        let exp = experiment();
        let cfg = WarmingConfig {
            queries: 120_000,
            copies: 2,
            ..Default::default()
        };
        let warm = run_warming(&exp, &cfg);
        let static_mean = exp.run_trials(2, 60_000, 5).mean();
        assert!(
            warm.response.mean() > static_mean * 0.8,
            "correlated caches shouldn't massively beat the independent model: {} vs {}",
            warm.response.mean(),
            static_mean
        );
    }

    #[test]
    fn small_cache_limits_the_benefit() {
        let exp = experiment();
        let big = run_warming(
            &exp,
            &WarmingConfig {
                queries: 60_000,
                cache_capacity: 20_000,
                ..Default::default()
            },
        );
        let tiny = run_warming(
            &exp,
            &WarmingConfig {
                queries: 60_000,
                cache_capacity: 50,
                ..Default::default()
            },
        );
        assert!(big.hit_rate > tiny.hit_rate + 0.1);
    }
}
