//! # wansim — wide-area replication models (§3 of the paper)
//!
//! §3 moves from fixed resources to the *individual view*: a client decides
//! whether replicating an operation is worth the extra traffic it pays for.
//! Two applications are studied, judged against the 16 ms/KB cost-
//! effectiveness benchmark of Vulimiri et al.:
//!
//! * [`handshake`] — duplicating the three TCP handshake packets on one
//!   path. Loss constants come straight from the paper's citation of Chan
//!   et al.: single-packet loss 0.0048, back-to-back pair loss 0.0007
//!   (correlated — 7× better, not the p² of independence). Linux timeout
//!   ladder: 3 s initial RTO for SYN/SYN-ACK with exponential backoff,
//!   3·RTT for the final ACK.
//! * [`dns`] — replicating a DNS query to the k best of 10 resolvers and
//!   taking the first answer, reproducing the paper's two-stage PlanetLab
//!   methodology (rank by mean, then race the top k) including the
//!   2-second loss-equals-cap convention (Figs 15–17).
//! * [`costbench`] — the 16 ms/KB break-even line and ms-per-KB accounting
//!   used by both applications (Fig 17's y-axis).
//!
//! Two of the paper's forward-looking remarks are implemented as
//! extensions: [`handshake::HandshakeModel::expected_completion_spaced`]
//! (footnote 3's spaced packet pairs) and [`dns_caching`] (the
//! "caching side-benefit" of racing several resolvers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costbench;
pub mod dns;
pub mod dns_caching;
pub mod handshake;

pub use costbench::{savings_ms_per_kb, BREAK_EVEN_MS_PER_KB};
pub use dns::{DnsExperiment, DnsPopulation};
pub use handshake::{HandshakeModel, HandshakeOutcome};
