//! The threshold load: the paper's §2.1 metric of interest.
//!
//! > "The threshold load, defined formally as the largest utilization below
//! > which replication always helps mean response time."
//!
//! We locate it as the root of `g(ρ) = mean(k=2, ρ) − mean(k=1, ρ)`, which
//! is negative below the threshold (replication wins) and positive above.
//! Because `g` is a small difference of two noisy estimates, each evaluation
//! uses paired runs (common random numbers — see [`crate::model`]) averaged
//! over several independent seeds, and the bisection treats an evaluation as
//! decisive only relative to its standard error: when `|g| < 2·se` the
//! search widens the replication count (up to
//! [`ThresholdOptions::max_replications`]) before trusting the sign.
//!
//! ## Common random numbers across bisection midpoints
//!
//! Every midpoint evaluation re-uses the *same* per-replication random
//! draws ([`CrnCache`]): arrival increments are stored at unit rate and
//! rescaled by the load under test, and service times / server placements
//! do not depend on load at all. Two consequences:
//!
//! * **speed** — a midpoint evaluation is a pure arithmetic queue pass
//!   (no RNG, no transcendental sampling), so the bisection no longer
//!   re-simulates from scratch at every step;
//! * **stability** — `g(ρ)` becomes a deterministic function of ρ for a
//!   fixed draw set, so bisection steps cannot contradict each other due
//!   to fresh sampling noise.
//!
//! The client overhead enters only the response-time *accumulation*, never
//! the draws, so one cache also serves every point of a Fig 4 overhead
//! sweep ([`overhead_thresholds`]) — bit-identical to running a fresh
//! search per point, without regenerating the draw streams.
//!
//! ## Draw precision tiers
//!
//! Short searches cache draws at full precision. Past
//! [`CRN_CACHE_MAX_DRAWS`] (the variance-scaled full-effort heavy-tail
//! points — millions of draws per replication) the search switches to a
//! **compressed encoding**: arrival increments and service times are
//! rounded through `f32` and stored structure-of-arrays at 18 B/draw
//! ([`PackedDraws`]), cutting the heaviest Fig 2(b)/2(c) points from
//! ~500 MB to well inside the process budget instead of silently
//! regenerating every draw at every bisection midpoint. Two invariants
//! keep this deterministic:
//!
//! * the precision tier is a **pure function of the search
//!   configuration** (run length × replication ceiling) — never of how
//!   much budget other concurrent searches hold;
//! * within a tier, caching is best-effort: the streaming fallback
//!   rounds its draws through the *same* `f32` squash, so cached and
//!   streamed evaluations stay bit-identical (the tests force both
//!   paths and compare thresholds bitwise).
//!
//! ## Parallelism and determinism
//!
//! Replications are independent and run on a [`Runner`] (all public entry
//! points have `*_on` variants taking an explicit runner; the plain
//! versions use [`Runner::global`]). Per-replication seeds are derived
//! from explicit [`Rng::fork`] streams of the options' base seed — never
//! from loop order — so results are **bit-identical at any thread count**.

use simcore::dist::Distribution;
use simcore::rng::{Rng, SplitMix64};
use simcore::runner::Runner;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Above this many draws per search (run length × the replication
/// ceiling, 32 bytes each at full precision — ~100 MB) the search
/// switches from full-precision [`Draw`] storage to the compressed
/// [`PackedDraws`] encoding. The boundary is a pure function of the
/// search configuration, so a given configuration always computes with
/// the same precision regardless of what else is running.
const CRN_CACHE_MAX_DRAWS: usize = 3_200_000;

/// Per-search ceiling in the compressed tier (18 B/draw — ~430 MB).
/// The variance-scaled full-effort Fig 2(b)/2(c) heavy points need
/// ~15.8 M draws (~285 MB packed), comfortably inside; past this the
/// cache streams (still squashed through `f32`, so bits don't change).
const CRN_CACHE_MAX_PACKED_DRAWS: usize = 24_000_000;

/// Process-wide ceiling on simultaneously materialized CRN draw
/// **bytes** (~512 MB): the Fig 2/3 family sweeps run up to
/// thread-count searches concurrently, so a per-search bound alone would
/// scale resident memory with cores. Searches that cannot reserve budget
/// stream their draws instead — results are identical either way,
/// because the budget never influences the precision tier.
const CRN_CACHE_GLOBAL_BUDGET_BYTES: usize = 512 << 20;
static CRN_CACHE_RESERVED_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Reserves `n` bytes from the process-wide budget; `false` when the
/// budget is exhausted (caller streams instead).
fn try_reserve_bytes(n: usize) -> bool {
    CRN_CACHE_RESERVED_BYTES
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            (cur + n <= CRN_CACHE_GLOBAL_BUDGET_BYTES).then_some(cur + n)
        })
        .is_ok()
}

/// Tuning for the threshold search. Defaults are figure-quality; tests use
/// [`ThresholdOptions::fast`].
#[derive(Clone, Debug)]
pub struct ThresholdOptions {
    /// Servers in the simulated cluster.
    pub servers: usize,
    /// Measured requests per run.
    pub requests: usize,
    /// Warm-up requests per run.
    pub warmup: usize,
    /// Independent seed pairs averaged per evaluation of `g`.
    pub replications: usize,
    /// Ceiling on replications when an evaluation is indecisive
    /// (`|g| < 2·se`): the search doubles the replication count up to this
    /// value before trusting the sign of `g`.
    pub max_replications: usize,
    /// Bisection terminates when the bracket is narrower than this.
    pub tolerance: f64,
    /// Client-side overhead added per replicated request (Fig 4's x-axis).
    pub replication_overhead: f64,
    /// Scale run length with the service distribution's variance: the mean
    /// of a heavy-tailed response converges slowly, and under-sampling the
    /// tail biases the k = 1 mean down more than the k = 2 mean (the min of
    /// two is lighter), dragging the estimated threshold below truth. With
    /// scaling, the Figure 2 families keep climbing toward the 50 % ceiling
    /// as the paper's do.
    pub scale_with_variance: bool,
    /// Base RNG seed; per-replication streams are forked from it
    /// deterministically (never from loop order).
    pub seed: u64,
}

impl Default for ThresholdOptions {
    fn default() -> Self {
        ThresholdOptions {
            servers: 20,
            requests: 150_000,
            warmup: 15_000,
            replications: 6,
            max_replications: 12,
            tolerance: 0.004,
            replication_overhead: 0.0,
            scale_with_variance: true,
            seed: 0x7357_0001,
        }
    }
}

impl ThresholdOptions {
    /// A much cheaper configuration for unit/integration tests: wider
    /// tolerance, fewer requests.
    pub fn fast() -> Self {
        ThresholdOptions {
            servers: 20,
            requests: 40_000,
            warmup: 4_000,
            replications: 4,
            max_replications: 8,
            tolerance: 0.01,
            ..Default::default()
        }
    }

    /// Sets the client-side replication overhead.
    pub fn with_overhead(mut self, overhead: f64) -> Self {
        self.replication_overhead = overhead;
        self
    }
}

/// One request's worth of random draws, shared by the paired k = 1 / k = 2
/// runs: a unit-rate arrival increment (rescaled by the load under test),
/// both copies' service times, and the server placements each replication
/// factor would choose.
#[derive(Clone, Copy, Debug)]
struct Draw {
    /// Unit-rate exponential arrival increment (`−ln u`); divided by the
    /// total arrival rate at evaluation time.
    arrival: f64,
    /// Service times for copy 0 and copy 1. Copy 0 is shared between the
    /// paired runs, exactly as in [`crate::model::run`].
    svc: [f64; 2],
    /// Server chosen by the k = 1 run.
    place_single: u16,
    /// Distinct servers chosen by the k = 2 run.
    place_pair: [u16; 2],
}

/// The draw precision a search computes with — a pure function of the
/// search configuration (see [`CrnCache::new`]), so that concurrent
/// budget pressure can change *speed* but never *bits*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DrawPrecision {
    /// Full-precision draws, stored as [`Draw`] (32 B each).
    Full,
    /// Compressed: every float rounded through `f32`, stored
    /// structure-of-arrays in [`PackedDraws`] (18 B per draw).
    Packed,
}

/// Rounds a draw's floats through `f32` — the compressed tier's only
/// arithmetic change. Applied identically on the cached path (by
/// storage) and the streaming path (explicitly), so the two agree
/// bitwise within the tier.
fn squash(d: Draw) -> Draw {
    Draw {
        arrival: d.arrival as f32 as f64,
        svc: [d.svc[0] as f32 as f64, d.svc[1] as f32 as f64],
        ..d
    }
}

/// One replication's draw stream in the compressed encoding:
/// structure-of-arrays `f32`/`u16` columns, 18 bytes per draw vs the 32
/// of `Vec<Draw>` — the full-effort heavy-tail points fit the process
/// budget in this form.
struct PackedDraws {
    arrival: Vec<f32>,
    svc: Vec<[f32; 2]>,
    place_single: Vec<u16>,
    place_pair: Vec<[u16; 2]>,
}

impl PackedDraws {
    /// Bytes a draw occupies in this encoding (4 + 8 + 2 + 4).
    const BYTES_PER_DRAW: usize = 18;

    fn with_capacity(n: usize) -> Self {
        PackedDraws {
            arrival: Vec::with_capacity(n),
            svc: Vec::with_capacity(n),
            place_single: Vec::with_capacity(n),
            place_pair: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, d: Draw) {
        self.arrival.push(d.arrival as f32);
        self.svc.push([d.svc[0] as f32, d.svc[1] as f32]);
        self.place_single.push(d.place_single);
        self.place_pair.push(d.place_pair);
    }

    /// Widens draw `i` back to the working representation. `f32 → f64`
    /// is exact, so this equals [`squash`] of the original draw.
    fn get(&self, i: usize) -> Draw {
        Draw {
            arrival: f64::from(self.arrival[i]),
            svc: [f64::from(self.svc[i][0]), f64::from(self.svc[i][1])],
            place_single: self.place_single[i],
            place_pair: self.place_pair[i],
        }
    }
}

/// Generates the draw stream for one replication. Mirrors the draw order
/// of [`crate::model::run`]: a sequential arrival stream plus per-request
/// substreams keyed on `(salt, request index)`, with the k = 1 placement
/// taken from a clone of the substream so both replication factors consume
/// the same prefix (CRN pairing).
struct DrawGen<'a, D: ?Sized> {
    arrival_rng: Rng,
    salt: u64,
    dist: &'a D,
    servers: usize,
    next_index: usize,
}

impl<'a, D: Distribution + ?Sized> DrawGen<'a, D> {
    fn new(dist: &'a D, servers: usize, seed: u64) -> Self {
        assert!(servers <= u16::MAX as usize, "too many servers for the CRN cache");
        DrawGen {
            arrival_rng: Rng::seed_from(seed).fork(0),
            salt: SplitMix64::new(seed ^ 0x5EED_CAFE).next_u64(),
            dist,
            servers,
            next_index: 0,
        }
    }

    fn next(&mut self) -> Draw {
        let i = self.next_index;
        self.next_index += 1;
        let arrival = -self.arrival_rng.f64_open().ln();
        let mut req_rng =
            Rng::seed_from(self.salt ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let svc0 = self.dist.sample(&mut req_rng);
        // The k = 1 run continues the substream right after copy 0's
        // service draw; the k = 2 run draws its second service time first.
        let mut single_rng = req_rng.clone();
        let place_single = single_rng.index(self.servers) as u16;
        let svc1 = self.dist.sample(&mut req_rng);
        let pair = req_rng.distinct_indices(self.servers, 2);
        Draw {
            arrival,
            svc: [svc0, svc1],
            place_single,
            place_pair: [pair[0] as u16, pair[1] as u16],
        }
    }
}

/// Per-replication paired draw streams persisted across bisection
/// midpoints, so re-evaluating `g` at a new load reuses arrival patterns
/// and service draws instead of re-simulating from scratch.
struct CrnCache<'a, D: ?Sized> {
    dist: &'a D,
    servers: usize,
    /// Warm-up + measured requests (after variance scaling).
    total: usize,
    warmup: usize,
    mean_service: f64,
    max_replications: usize,
    /// Per-replication seeds, forked from the base seed upfront so a
    /// replication's stream is a pure function of its index.
    seeds: Vec<u64>,
    /// The precision tier — fixed at construction from the configuration
    /// alone (never from budget state).
    precision: DrawPrecision,
    /// Materialized full-precision streams (grown lazily, in replication
    /// order). Used only in the [`DrawPrecision::Full`] tier.
    cached: Vec<Vec<Draw>>,
    /// Materialized compressed streams ([`DrawPrecision::Packed`] tier).
    packed: Vec<PackedDraws>,
    cacheable: bool,
    /// Bytes reserved from the process-wide budget (released on drop).
    reserved_bytes: usize,
}

impl<D: ?Sized> Drop for CrnCache<'_, D> {
    fn drop(&mut self) {
        if self.reserved_bytes > 0 {
            CRN_CACHE_RESERVED_BYTES.fetch_sub(self.reserved_bytes, Ordering::Relaxed);
        }
    }
}

impl<'a, D: Distribution + ?Sized> CrnCache<'a, D> {
    fn new(dist: &'a D, opts: &ThresholdOptions) -> Self {
        let factor = if opts.scale_with_variance {
            let scv = dist.scv();
            if scv.is_finite() { (1.0 + scv / 2.0).clamp(1.0, 8.0) } else { 8.0 }
        } else {
            1.0
        };
        let requests = (opts.requests as f64 * factor) as usize;
        let warmup = (opts.warmup as f64 * factor) as usize;
        let total = requests + warmup;
        let max_replications = opts.max_replications.max(opts.replications);
        let mut root = Rng::seed_from(opts.seed);
        let seeds = (0..max_replications)
            .map(|r| root.fork(r as u64).next_u64())
            .collect();
        let needed = total.saturating_mul(max_replications);
        // The tier is decided by `needed` alone: a configuration that
        // outgrows full-precision storage computes in the compressed
        // encoding whether or not its draws end up cached.
        let precision = if needed <= CRN_CACHE_MAX_DRAWS {
            DrawPrecision::Full
        } else {
            DrawPrecision::Packed
        };
        let (fits, bytes) = match precision {
            DrawPrecision::Full => (true, needed.saturating_mul(std::mem::size_of::<Draw>())),
            DrawPrecision::Packed => (
                needed <= CRN_CACHE_MAX_PACKED_DRAWS,
                needed.saturating_mul(PackedDraws::BYTES_PER_DRAW),
            ),
        };
        let cacheable = fits && try_reserve_bytes(bytes);
        CrnCache {
            dist,
            servers: opts.servers,
            total,
            warmup,
            mean_service: dist.mean(),
            max_replications,
            seeds,
            precision,
            cached: Vec::new(),
            packed: Vec::new(),
            cacheable,
            reserved_bytes: if cacheable { bytes } else { 0 },
        }
    }

    /// Materializes draw streams for replications `0..reps` (no-op when
    /// already present or when this search streams instead of caching).
    fn ensure(&mut self, reps: usize, runner: &Runner) {
        if !self.cacheable {
            return;
        }
        let dist = self.dist;
        let servers = self.servers;
        let total = self.total;
        let seeds = &self.seeds;
        match self.precision {
            DrawPrecision::Full => {
                let have = self.cached.len();
                if have >= reps {
                    return;
                }
                let new = runner.run(reps - have, |j| {
                    let mut gen = DrawGen::new(dist, servers, seeds[have + j]);
                    (0..total).map(|_| gen.next()).collect::<Vec<Draw>>()
                });
                self.cached.extend(new);
            }
            DrawPrecision::Packed => {
                let have = self.packed.len();
                if have >= reps {
                    return;
                }
                let new = runner.run(reps - have, |j| {
                    let mut gen = DrawGen::new(dist, servers, seeds[have + j]);
                    let mut p = PackedDraws::with_capacity(total);
                    for _ in 0..total {
                        p.push(gen.next());
                    }
                    p
                });
                self.packed.extend(new);
            }
        }
    }

    /// Runs the paired k = 1 / k = 2 queues over replication `r`'s draws at
    /// base load `rho` with a per-replicated-request client `overhead`,
    /// returning `mean(k=2) − mean(k=1)`. The overhead is an *evaluation*
    /// parameter (not baked into the cache) precisely so one cache can
    /// serve every point of an overhead sweep — the draws do not depend on
    /// it.
    fn paired_diff(&self, r: usize, rho: f64, overhead: f64) -> f64 {
        let lambda = self.servers as f64 * rho / self.mean_service;
        match (self.cacheable, self.precision) {
            (true, DrawPrecision::Full) => {
                let mut it = self.cached[r].iter();
                self.paired_pass(lambda, overhead, move || {
                    *it.next().expect("draw stream exhausted")
                })
            }
            (true, DrawPrecision::Packed) => {
                let p = &self.packed[r];
                let mut i = 0usize;
                self.paired_pass(lambda, overhead, move || {
                    let d = p.get(i);
                    i += 1;
                    d
                })
            }
            (false, DrawPrecision::Full) => {
                let mut gen = DrawGen::new(self.dist, self.servers, self.seeds[r]);
                self.paired_pass(lambda, overhead, move || gen.next())
            }
            // Streaming in the compressed tier rounds through the same
            // squash the cache stores, keeping both paths bit-identical.
            (false, DrawPrecision::Packed) => {
                let mut gen = DrawGen::new(self.dist, self.servers, self.seeds[r]);
                self.paired_pass(lambda, overhead, move || squash(gen.next()))
            }
        }
    }

    /// The shared queue pass: both replication factors advance through the
    /// same arrival sequence, each with its own server state, exactly as
    /// two paired [`crate::model::run`] calls would — but in one sweep with
    /// no RNG on the hot path.
    fn paired_pass(&self, lambda: f64, overhead: f64, mut next_draw: impl FnMut() -> Draw) -> f64 {
        let mut free_single = vec![0.0f64; self.servers];
        let mut free_double = vec![0.0f64; self.servers];
        let mut now = 0.0f64;
        let mut sum_single = 0.0f64;
        let mut sum_double = 0.0f64;
        for i in 0..self.total {
            let d = next_draw();
            now += d.arrival / lambda;
            let s = d.place_single as usize;
            let done_single = now.max(free_single[s]) + d.svc[0];
            free_single[s] = done_single;
            let mut best = f64::INFINITY;
            for j in 0..2 {
                let s = d.place_pair[j] as usize;
                let done = now.max(free_double[s]) + d.svc[j];
                free_double[s] = done;
                if done < best {
                    best = done;
                }
            }
            if i >= self.warmup {
                sum_single += done_single - now;
                sum_double += (best - now) + overhead;
            }
        }
        let measured = (self.total - self.warmup) as f64;
        (sum_double - sum_single) / measured
    }

    /// Paired estimate of `g(rho)` over `reps` replications, with the
    /// standard error of the paired differences.
    ///
    /// # Panics
    /// Panics when the replicated system has no steady state (`2·rho ≥ 1`)
    /// or the load is not positive — the same guards [`crate::model::run`]
    /// enforces.
    fn gain_at(&mut self, rho: f64, reps: usize, overhead: f64, runner: &Runner) -> (f64, f64) {
        assert!(
            rho > 0.0 && 2.0 * rho < 1.0,
            "k*rho = {} >= 1 has no steady state",
            2.0 * rho
        );
        self.ensure(reps, runner);
        let diffs = runner.run(reps, |r| self.paired_diff(r, rho, overhead));
        mean_and_se(&diffs)
    }

    /// Adaptive evaluation: widens the replication count (doubling, up to
    /// the cap) while the estimate is indecisive relative to its standard
    /// error. Diffs are a pure function of `(replication, rho, overhead)`,
    /// so each widening step only evaluates the *new* replications.
    fn decisive_gain(
        &mut self,
        rho: f64,
        base_reps: usize,
        overhead: f64,
        runner: &Runner,
    ) -> (f64, f64) {
        assert!(
            rho > 0.0 && 2.0 * rho < 1.0,
            "k*rho = {} >= 1 has no steady state",
            2.0 * rho
        );
        let mut diffs: Vec<f64> = Vec::new();
        let mut reps = base_reps.min(self.max_replications);
        loop {
            self.ensure(reps, runner);
            let have = diffs.len();
            diffs.extend(runner.run(reps - have, |j| self.paired_diff(have + j, rho, overhead)));
            let (g, se) = mean_and_se(&diffs);
            if g.abs() >= 2.0 * se || reps >= self.max_replications {
                return (g, se);
            }
            reps = (reps * 2).min(self.max_replications);
        }
    }
}

/// The bisection over one `CrnCache` at a fixed client overhead. Shared by
/// [`threshold_load_on`] (one overhead) and [`overhead_thresholds_on`]
/// (many overheads, one cache).
fn bisect<D: Distribution + ?Sized>(
    cache: &mut CrnCache<'_, D>,
    overhead: f64,
    opts: &ThresholdOptions,
    runner: &Runner,
) -> f64 {
    let mut lo = 0.01f64;
    let mut hi = 0.495f64;

    // If replication already hurts at the lowest load we test, the
    // threshold is effectively zero.
    let (g_lo, se_lo) = cache.decisive_gain(lo, opts.replications, overhead, runner);
    if g_lo > 2.0 * se_lo {
        return 0.0;
    }
    // If replication still helps just under saturation, the threshold is at
    // its ceiling.
    let (g_hi, se_hi) = cache.decisive_gain(hi, opts.replications, overhead, runner);
    if g_hi < -2.0 * se_hi {
        return hi;
    }

    while hi - lo > opts.tolerance {
        let mid = 0.5 * (lo + hi);
        let (g, _se) = cache.decisive_gain(mid, opts.replications, overhead, runner);
        if g < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn mean_and_se(diffs: &[f64]) -> (f64, f64) {
    let n = diffs.len() as f64;
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    (mean, (var / n).sqrt())
}

/// Paired estimate of `mean(k=2) − mean(k=1)` at base load `rho`, together
/// with the standard error of the paired differences across replications.
pub fn replication_gain<D: Distribution + Clone>(
    dist: &D,
    rho: f64,
    opts: &ThresholdOptions,
) -> (f64, f64) {
    replication_gain_on(&Runner::global(), dist, rho, opts)
}

/// [`replication_gain`] on an explicit [`Runner`]. Results are
/// bit-identical at any thread count.
pub fn replication_gain_on<D: Distribution + Clone>(
    runner: &Runner,
    dist: &D,
    rho: f64,
    opts: &ThresholdOptions,
) -> (f64, f64) {
    let mut cache = CrnCache::new(dist, opts);
    cache.gain_at(rho, opts.replications, opts.replication_overhead, runner)
}

/// Finds the threshold load for 2-way replication of `dist`.
///
/// Returns a value in `[0, 0.5)`. By construction the threshold cannot reach
/// 0.5 (the replicated system would saturate); it returns ~0 when
/// replication never helps (e.g. overwhelming client-side overhead, Fig 4's
/// right edge).
pub fn threshold_load<D: Distribution + Clone>(dist: &D, opts: &ThresholdOptions) -> f64 {
    threshold_load_on(&Runner::global(), dist, opts)
}

/// [`threshold_load`] on an explicit [`Runner`]. Results are bit-identical
/// at any thread count (replication seeds are forked from the base seed by
/// index, and the CRN cache makes every midpoint a deterministic function
/// of the load).
pub fn threshold_load_on<D: Distribution + Clone>(
    runner: &Runner,
    dist: &D,
    opts: &ThresholdOptions,
) -> f64 {
    let mut cache = CrnCache::new(dist, opts);
    bisect(&mut cache, opts.replication_overhead, opts, runner)
}

/// Threshold loads for several client overheads of **one** service
/// distribution (the Fig 4 x-axis), sharing a single CRN cache across all
/// points: the draws depend only on `(seed, replication index)`, never on
/// the overhead, so rebuilding them per point — as calling
/// [`threshold_load`] in a loop would — is pure waste. Each returned value
/// is bit-identical to the per-point path (`threshold_load` with
/// [`ThresholdOptions::with_overhead`]).
///
/// `opts.replication_overhead` is ignored; each element of `overheads` is
/// used instead.
pub fn overhead_thresholds<D: Distribution + Clone>(
    dist: &D,
    overheads: &[f64],
    opts: &ThresholdOptions,
) -> Vec<f64> {
    overhead_thresholds_on(&Runner::global(), dist, overheads, opts)
}

/// [`overhead_thresholds`] on an explicit [`Runner`]. Points run in
/// sequence (they share the mutable cache); the replications inside each
/// bisection step still fan out on the runner, and results are
/// bit-identical at any thread count.
pub fn overhead_thresholds_on<D: Distribution + Clone>(
    runner: &Runner,
    dist: &D,
    overheads: &[f64],
    opts: &ThresholdOptions,
) -> Vec<f64> {
    let mut cache = CrnCache::new(dist, opts);
    overheads
        .iter()
        .map(|&o| bisect(&mut cache, o, opts, runner))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Deterministic, Exponential, Pareto};

    #[test]
    fn exponential_threshold_is_one_third() {
        // Theorem 1. Fast options give +-0.02 accuracy, plenty to separate
        // 1/3 from the deterministic ~0.26 and the Pareto ~0.4+.
        let thr = threshold_load(&Exponential::unit(), &ThresholdOptions::fast());
        assert!(
            (thr - 1.0 / 3.0).abs() < 0.035,
            "exponential threshold {thr} != 1/3"
        );
    }

    #[test]
    fn deterministic_threshold_near_quarter() {
        // Paper: ~25.82%, the conjectured worst case.
        let thr = threshold_load(&Deterministic::unit(), &ThresholdOptions::fast());
        assert!(
            (0.22..0.31).contains(&thr),
            "deterministic threshold {thr} not near 0.26"
        );
    }

    #[test]
    fn heavy_tail_threshold_exceeds_exponential() {
        let fast = ThresholdOptions::fast();
        let heavy = threshold_load(&Pareto::unit_mean(2.1), &fast);
        let exp = threshold_load(&Exponential::unit(), &fast);
        assert!(
            heavy > exp,
            "expected heavier tail to raise threshold: pareto={heavy} exp={exp}"
        );
        // Fig 2(b): visibly above the exponential 1/3 at this tail weight.
        // (Short fast-mode runs under-sample the heavy tail, so the sim
        // estimate sits below the asymptotic ~0.45; the full-length figure
        // harness recovers it.)
        assert!(heavy > 0.345, "pareto threshold {heavy}");
    }

    #[test]
    fn thresholds_live_in_the_conjectured_band() {
        // The paper's central claim: 25% <= threshold < 50% for any service
        // distribution when client cost is zero.
        let fast = ThresholdOptions::fast();
        for dist in [
            Box::new(Exponential::unit()) as Box<dyn Distribution>,
            Box::new(Deterministic::unit()),
            Box::new(Pareto::unit_mean(3.0)),
        ] {
            let thr = threshold_load(&dist.as_ref(), &fast);
            assert!(
                (0.22..0.5).contains(&thr),
                "{} threshold {thr} outside band",
                dist.label()
            );
        }
    }

    #[test]
    fn large_overhead_kills_threshold() {
        // Fig 4: once the client-side penalty reaches the mean service time,
        // replication cannot help the mean at any load.
        let opts = ThresholdOptions::fast().with_overhead(1.0);
        let thr = threshold_load(&Exponential::unit(), &opts);
        assert!(thr < 0.05, "threshold {thr} should collapse");
    }

    #[test]
    fn gain_sign_flips_across_threshold() {
        let opts = ThresholdOptions::fast();
        let (g_low, _) = replication_gain(&Exponential::unit(), 0.15, &opts);
        let (g_high, _) = replication_gain(&Exponential::unit(), 0.45, &opts);
        assert!(g_low < 0.0, "replication should help at 0.15: {g_low}");
        assert!(g_high > 0.0, "replication should hurt at 0.45: {g_high}");
    }

    #[test]
    fn threshold_bit_identical_across_thread_counts() {
        // The runner contract end-to-end: same bits at 1, 2, and 8 threads.
        let mut opts = ThresholdOptions::fast();
        opts.requests = 8_000;
        opts.warmup = 800;
        opts.replications = 3;
        opts.max_replications = 6;
        opts.tolerance = 0.05;
        let base = threshold_load_on(&Runner::serial(), &Exponential::unit(), &opts);
        for threads in [2, 8] {
            let thr = threshold_load_on(&Runner::new(threads), &Exponential::unit(), &opts);
            assert_eq!(base.to_bits(), thr.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn cached_and_streamed_draws_agree_bitwise() {
        // The memory-bounded fallback must be arithmetically identical to
        // the cached path: compare a cacheable run against the same run
        // forced through the streaming branch.
        let opts = ThresholdOptions::fast();
        let dist = Exponential::unit();
        let mut cached = CrnCache::new(&dist, &opts);
        cached.ensure(2, &Runner::serial());
        assert!(cached.cacheable && cached.cached.len() == 2);
        let mut streamed = CrnCache::new(&dist, &opts);
        streamed.cacheable = false;
        for r in 0..2 {
            for rho in [0.1, 0.3, 0.45] {
                assert_eq!(
                    cached.paired_diff(r, rho, 0.0).to_bits(),
                    streamed.paired_diff(r, rho, 0.0).to_bits(),
                    "r={r} rho={rho}"
                );
            }
        }
    }

    /// A configuration that lands in the compressed tier while keeping
    /// test runtime small: the tier is decided by run length × the
    /// replication *ceiling*, so a tall ceiling forces `Packed` without
    /// ever materializing more than a couple of replications.
    fn packed_tier_opts() -> ThresholdOptions {
        let mut opts = ThresholdOptions::fast();
        opts.requests = 25_000;
        opts.warmup = 3_000;
        opts.scale_with_variance = false; // total = 28_000 exactly
        opts.replications = 2;
        opts.max_replications = 128; // 28_000 × 128 = 3.584 M > CRN_CACHE_MAX_DRAWS
        opts.tolerance = 0.05;
        opts
    }

    #[test]
    fn packed_and_streamed_draws_agree_bitwise() {
        // The compressed tier's memory-bounded fallback must match its
        // cached path bit for bit — both round draws through the same
        // f32 squash, one at storage time, one at generation time.
        let opts = packed_tier_opts();
        let dist = Exponential::unit();
        let mut cached = CrnCache::new(&dist, &opts);
        assert_eq!(cached.precision, DrawPrecision::Packed);
        assert!(cached.cacheable, "packed tier should fit the budget");
        cached.ensure(2, &Runner::serial());
        assert_eq!(cached.packed.len(), 2);
        assert!(cached.cached.is_empty(), "full-precision store unused");
        let mut streamed = CrnCache::new(&dist, &opts);
        streamed.cacheable = false;
        for r in 0..2 {
            for rho in [0.1, 0.3, 0.45] {
                assert_eq!(
                    cached.paired_diff(r, rho, 0.0).to_bits(),
                    streamed.paired_diff(r, rho, 0.0).to_bits(),
                    "r={r} rho={rho}"
                );
            }
        }
    }

    #[test]
    fn packed_threshold_bit_identical_cached_vs_streamed() {
        // The whole bisection, compressed-cached vs forced-streaming:
        // the threshold a full-effort heavy point reports cannot depend
        // on whether its draws were materialized.
        let opts = packed_tier_opts();
        let dist = Exponential::unit();
        let runner = Runner::serial();
        let mut cached = CrnCache::new(&dist, &opts);
        assert_eq!(cached.precision, DrawPrecision::Packed);
        let thr_cached = bisect(&mut cached, 0.0, &opts, &runner);
        assert!(!cached.packed.is_empty(), "bisection used the cache");
        let mut streamed = CrnCache::new(&dist, &opts);
        streamed.cacheable = false;
        let thr_streamed = bisect(&mut streamed, 0.0, &opts, &runner);
        assert_eq!(thr_cached.to_bits(), thr_streamed.to_bits());
        // And the compressed tier still lands on the right physics.
        assert!(
            (thr_cached - 1.0 / 3.0).abs() < 0.06,
            "packed-tier exponential threshold {thr_cached} strayed from 1/3"
        );
    }

    #[test]
    fn full_effort_heavy_point_fits_the_cache_budget() {
        // The carried-over defect: at default (full-effort) options a
        // heavy-tailed Fig 2(b) point scales to 1.32 M requests × 12
        // replications = 15.84 M draws, which overflowed the old 3.2 M
        // full-precision bound and silently streamed every bisection
        // midpoint. Compressed, it reserves ~285 MB and caches. (No
        // draws are materialized here — construction only.)
        let opts = ThresholdOptions::default();
        let dist = Pareto::unit_mean_inverse_scale(0.98); // fig2b's heaviest axis point
        let cache = CrnCache::new(&dist, &opts);
        assert_eq!(
            cache.total * cache.max_replications,
            15_840_000,
            "full-effort heavy point draw count moved; re-check the tier caps"
        );
        assert_eq!(cache.precision, DrawPrecision::Packed);
        assert!(
            cache.cacheable,
            "full-effort heavy point must fit the compressed budget"
        );
        assert_eq!(
            cache.reserved_bytes,
            15_840_000 * PackedDraws::BYTES_PER_DRAW
        );
    }

    #[test]
    fn crn_paired_diff_matches_model_run() {
        // The CRN cache re-implements model::run's draw scheme and queue
        // arithmetic for speed; this pins the two against each other so a
        // future edit to either cannot silently decorrelate them. The only
        // permitted difference is mean-accumulation rounding (Welford vs.
        // plain sum), hence the tight-but-not-bitwise tolerance.
        use crate::model::{run, Config};
        let mut opts = ThresholdOptions::fast();
        opts.requests = 12_000;
        opts.warmup = 1_200;
        opts.scale_with_variance = false; // keep run lengths comparable
        let dist = Exponential::unit();
        let mut cache = CrnCache::new(&dist, &opts);
        cache.ensure(2, &Runner::serial());
        for r in 0..2 {
            for rho in [0.15, 0.3, 0.45] {
                let g_cache = cache.paired_diff(r, rho, 0.0);
                let seed = cache.seeds[r];
                let base = Config::new(dist, rho)
                    .with_servers(opts.servers)
                    .with_requests(opts.requests, opts.warmup);
                let single = run(&base.clone().with_copies(1), seed);
                let double = run(&base.with_copies(2), seed);
                let g_model = double.moments.mean() - single.moments.mean();
                assert!(
                    (g_cache - g_model).abs() <= 1e-9 * (1.0 + g_model.abs()),
                    "r={r} rho={rho}: cache {g_cache} vs model {g_model}"
                );
            }
        }
    }

    #[test]
    fn overhead_family_bit_identical_to_per_point_path() {
        // The shared-cache overhead sweep must reproduce, bit for bit, what
        // a fresh threshold search per overhead point produces — the draws
        // are a pure function of (seed, replication index), not of the
        // overhead, so sharing the cache cannot change any result.
        let mut opts = ThresholdOptions::fast();
        opts.requests = 6_000;
        opts.warmup = 600;
        opts.replications = 3;
        opts.max_replications = 6;
        opts.tolerance = 0.02;
        let dist = Exponential::unit();
        let overheads = [0.0, 0.3, 1.0];
        for threads in [1usize, 4] {
            let runner = Runner::new(threads);
            let shared = overhead_thresholds_on(&runner, &dist, &overheads, &opts);
            for (i, &o) in overheads.iter().enumerate() {
                let per_point =
                    threshold_load_on(&runner, &dist, &opts.clone().with_overhead(o));
                assert_eq!(
                    shared[i].to_bits(),
                    per_point.to_bits(),
                    "overhead {o} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn indecisive_evaluations_widen_replications() {
        // Right at the threshold g ~ 0, so the adaptive pass must widen to
        // the cap rather than settle at the base count.
        let mut opts = ThresholdOptions::fast();
        opts.requests = 6_000;
        opts.warmup = 600;
        opts.replications = 2;
        opts.max_replications = 8;
        let dist = Exponential::unit();
        let mut cache = CrnCache::new(&dist, &opts);
        let runner = Runner::serial();
        let (_g, _se) = cache.decisive_gain(1.0 / 3.0, opts.replications, 0.0, &runner);
        assert!(
            cache.cached.len() > opts.replications,
            "expected widening beyond {} replications, cached {}",
            opts.replications,
            cache.cached.len()
        );
    }
}
