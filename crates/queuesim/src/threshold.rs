//! The threshold load: the paper's §2.1 metric of interest.
//!
//! > "The threshold load, defined formally as the largest utilization below
//! > which replication always helps mean response time."
//!
//! We locate it as the root of `g(ρ) = mean(k=2, ρ) − mean(k=1, ρ)`, which
//! is negative below the threshold (replication wins) and positive above.
//! Because `g` is a small difference of two noisy estimates, each evaluation
//! uses paired runs (common random numbers — see [`crate::model`]) averaged
//! over several independent seeds, and the bisection treats an evaluation as
//! decisive only relative to its standard error.

use crate::model::{run, Config};
use simcore::dist::Distribution;

/// Tuning for the threshold search. Defaults are figure-quality; tests use
/// [`ThresholdOptions::fast`].
#[derive(Clone, Debug)]
pub struct ThresholdOptions {
    /// Servers in the simulated cluster.
    pub servers: usize,
    /// Measured requests per run.
    pub requests: usize,
    /// Warm-up requests per run.
    pub warmup: usize,
    /// Independent seed pairs averaged per evaluation of `g`.
    pub replications: usize,
    /// Bisection terminates when the bracket is narrower than this.
    pub tolerance: f64,
    /// Client-side overhead added per replicated request (Fig 4's x-axis).
    pub replication_overhead: f64,
    /// Scale run length with the service distribution's variance: the mean
    /// of a heavy-tailed response converges slowly, and under-sampling the
    /// tail biases the k = 1 mean down more than the k = 2 mean (the min of
    /// two is lighter), dragging the estimated threshold below truth. With
    /// scaling, the Figure 2 families keep climbing toward the 50 % ceiling
    /// as the paper's do.
    pub scale_with_variance: bool,
    /// Base RNG seed; distinct evaluations derive from it deterministically.
    pub seed: u64,
}

impl Default for ThresholdOptions {
    fn default() -> Self {
        ThresholdOptions {
            servers: 20,
            requests: 150_000,
            warmup: 15_000,
            replications: 6,
            tolerance: 0.004,
            replication_overhead: 0.0,
            scale_with_variance: true,
            seed: 0x7357_0001,
        }
    }
}

impl ThresholdOptions {
    /// A much cheaper configuration for unit/integration tests: wider
    /// tolerance, fewer requests.
    pub fn fast() -> Self {
        ThresholdOptions {
            servers: 20,
            requests: 40_000,
            warmup: 4_000,
            replications: 4,
            tolerance: 0.01,
            ..Default::default()
        }
    }

    /// Sets the client-side replication overhead.
    pub fn with_overhead(mut self, overhead: f64) -> Self {
        self.replication_overhead = overhead;
        self
    }
}

/// Paired estimate of `mean(k=2) − mean(k=1)` at base load `rho`, together
/// with the standard error of the paired differences across replications.
pub fn replication_gain<D: Distribution + Clone>(
    dist: &D,
    rho: f64,
    opts: &ThresholdOptions,
) -> (f64, f64) {
    let mut diffs = Vec::with_capacity(opts.replications);
    let factor = if opts.scale_with_variance {
        let scv = dist.scv();
        if scv.is_finite() { (1.0 + scv / 2.0).clamp(1.0, 8.0) } else { 8.0 }
    } else {
        1.0
    };
    let requests = (opts.requests as f64 * factor) as usize;
    let warmup = (opts.warmup as f64 * factor) as usize;
    for r in 0..opts.replications {
        let seed = opts
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r as u64 + 1));
        let base = Config::new(dist.clone(), rho)
            .with_servers(opts.servers)
            .with_requests(requests, warmup)
            .with_replication_overhead(opts.replication_overhead);
        let single = run(&base.clone().with_copies(1), seed);
        let double = run(&base.with_copies(2), seed);
        diffs.push(double.moments.mean() - single.moments.mean());
    }
    let n = diffs.len() as f64;
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    (mean, (var / n).sqrt())
}

/// Finds the threshold load for 2-way replication of `dist`.
///
/// Returns a value in `[0, 0.5)`. By construction the threshold cannot reach
/// 0.5 (the replicated system would saturate); it returns ~0 when
/// replication never helps (e.g. overwhelming client-side overhead, Fig 4's
/// right edge).
pub fn threshold_load<D: Distribution + Clone>(dist: &D, opts: &ThresholdOptions) -> f64 {
    let mut lo = 0.01f64;
    let mut hi = 0.495f64;

    // If replication already hurts at the lowest load we test, the
    // threshold is effectively zero.
    let (g_lo, se_lo) = replication_gain(dist, lo, opts);
    if g_lo > 2.0 * se_lo {
        return 0.0;
    }
    // If replication still helps just under saturation, the threshold is at
    // its ceiling.
    let (g_hi, se_hi) = replication_gain(dist, hi, opts);
    if g_hi < -2.0 * se_hi {
        return hi;
    }

    while hi - lo > opts.tolerance {
        let mid = 0.5 * (lo + hi);
        let (g, _se) = replication_gain(dist, mid, opts);
        if g < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Deterministic, Exponential, Pareto};

    #[test]
    fn exponential_threshold_is_one_third() {
        // Theorem 1. Fast options give +-0.02 accuracy, plenty to separate
        // 1/3 from the deterministic ~0.26 and the Pareto ~0.4+.
        let thr = threshold_load(&Exponential::unit(), &ThresholdOptions::fast());
        assert!(
            (thr - 1.0 / 3.0).abs() < 0.035,
            "exponential threshold {thr} != 1/3"
        );
    }

    #[test]
    fn deterministic_threshold_near_quarter() {
        // Paper: ~25.82%, the conjectured worst case.
        let thr = threshold_load(&Deterministic::unit(), &ThresholdOptions::fast());
        assert!(
            (0.22..0.31).contains(&thr),
            "deterministic threshold {thr} not near 0.26"
        );
    }

    #[test]
    fn heavy_tail_threshold_exceeds_exponential() {
        let fast = ThresholdOptions::fast();
        let heavy = threshold_load(&Pareto::unit_mean(2.1), &fast);
        let exp = threshold_load(&Exponential::unit(), &fast);
        assert!(
            heavy > exp,
            "expected heavier tail to raise threshold: pareto={heavy} exp={exp}"
        );
        // Fig 2(b): visibly above the exponential 1/3 at this tail weight.
        // (Short fast-mode runs under-sample the heavy tail, so the sim
        // estimate sits below the asymptotic ~0.45; the full-length figure
        // harness recovers it.)
        assert!(heavy > 0.345, "pareto threshold {heavy}");
    }

    #[test]
    fn thresholds_live_in_the_conjectured_band() {
        // The paper's central claim: 25% <= threshold < 50% for any service
        // distribution when client cost is zero.
        let fast = ThresholdOptions::fast();
        for dist in [
            Box::new(Exponential::unit()) as Box<dyn Distribution>,
            Box::new(Deterministic::unit()),
            Box::new(Pareto::unit_mean(3.0)),
        ] {
            let thr = threshold_load(&dist.as_ref(), &fast);
            assert!(
                (0.22..0.5).contains(&thr),
                "{} threshold {thr} outside band",
                dist.label()
            );
        }
    }

    #[test]
    fn large_overhead_kills_threshold() {
        // Fig 4: once the client-side penalty reaches the mean service time,
        // replication cannot help the mean at any load.
        let opts = ThresholdOptions::fast().with_overhead(1.0);
        let thr = threshold_load(&Exponential::unit(), &opts);
        assert!(thr < 0.05, "threshold {thr} should collapse");
    }

    #[test]
    fn gain_sign_flips_across_threshold() {
        let opts = ThresholdOptions::fast();
        let (g_low, _) = replication_gain(&Exponential::unit(), 0.15, &opts);
        let (g_high, _) = replication_gain(&Exponential::unit(), 0.45, &opts);
        assert!(g_low < 0.0, "replication should help at 0.15: {g_low}");
        assert!(g_high > 0.0, "replication should hurt at 0.45: {g_high}");
    }
}
