//! Pollaczek–Khinchine: exact M/G/1 mean waiting time.
//!
//! `E[W] = λ·E[S²] / (2(1 − ρ))`, equivalently
//! `E[W] = ρ·E[S]·(1 + c²ₛ) / (2(1 − ρ))` with `c²ₛ` the squared
//! coefficient of variation. This anchors both approximation layers: any
//! stand-in we use for the paper's Myers–Vernon estimate must reproduce this
//! first moment exactly.

use simcore::dist::Distribution;

/// First two moments of a service-time distribution, the only inputs the
/// two-moment approximations need.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceMoments {
    /// E\[S\].
    pub mean: f64,
    /// Var\[S\] (must be finite for the light-tailed approximations).
    pub variance: f64,
}

impl ServiceMoments {
    /// Captures the moments of a distribution.
    ///
    /// # Panics
    /// Panics if either moment is non-finite — heavy-tailed laws with
    /// infinite variance belong to [`crate::analytic::heavy_tail`].
    pub fn of(dist: &dyn Distribution) -> Self {
        let mean = dist.mean();
        let variance = dist.variance();
        assert!(
            mean.is_finite() && variance.is_finite(),
            "{} has non-finite moments; use the heavy-tail analysis",
            dist.label()
        );
        ServiceMoments { mean, variance }
    }

    /// Explicit constructor.
    pub fn new(mean: f64, variance: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite() && variance >= 0.0 && variance.is_finite());
        ServiceMoments { mean, variance }
    }

    /// Squared coefficient of variation.
    pub fn scv(&self) -> f64 {
        self.variance / (self.mean * self.mean)
    }

    /// E\[S²\].
    pub fn second_raw(&self) -> f64 {
        self.variance + self.mean * self.mean
    }
}

/// P–K mean waiting time at utilization `rho`.
pub fn mean_wait(s: ServiceMoments, rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho out of range: {rho}");
    let lambda = rho / s.mean;
    lambda * s.second_raw() / (2.0 * (1.0 - rho))
}

/// P–K mean response time (wait + service).
pub fn mean_response(s: ServiceMoments, rho: f64) -> f64 {
    s.mean + mean_wait(s, rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Deterministic, Erlang, Exponential};

    #[test]
    fn reduces_to_mm1() {
        let s = ServiceMoments::of(&Exponential::unit());
        for &rho in &[0.1, 0.5, 0.9] {
            assert!((mean_response(s, rho) - 1.0 / (1.0 - rho)).abs() < 1e-12);
        }
    }

    #[test]
    fn md1_is_half_mm1_wait() {
        // M/D/1 waits are exactly half of M/M/1 waits.
        let d = ServiceMoments::of(&Deterministic::unit());
        let e = ServiceMoments::of(&Exponential::unit());
        for &rho in &[0.2, 0.6] {
            assert!((mean_wait(d, rho) - 0.5 * mean_wait(e, rho)).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_interpolates() {
        let e4 = ServiceMoments::of(&Erlang::unit_mean(4));
        let rho = 0.5;
        let w = mean_wait(e4, rho);
        let w_det = mean_wait(ServiceMoments::of(&Deterministic::unit()), rho);
        let w_exp = mean_wait(ServiceMoments::of(&Exponential::unit()), rho);
        assert!(w_det < w && w < w_exp);
        // Exact: (1 + 1/4)/2 * rho/(1-rho).
        assert!((w - 0.625 * rho / (1.0 - rho)).abs() < 1e-12);
    }

    #[test]
    fn matches_simulation_for_mg1() {
        // Cross-check the P-K formula against the event simulator with an
        // Erlang-2 service at rho = 0.4.
        use crate::model::{run, Config};
        let dist = Erlang::unit_mean(2);
        let s = ServiceMoments::of(&dist);
        let cfg = Config::new(dist, 0.4).with_requests(300_000, 30_000);
        let sim = run(&cfg, 99).moments.mean();
        let theory = mean_response(s, 0.4);
        assert!(
            (sim - theory).abs() / theory < 0.05,
            "sim {sim} vs P-K {theory}"
        );
    }
}
