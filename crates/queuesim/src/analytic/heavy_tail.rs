//! Regularly-varying (heavy-tail) response approximation — our stand-in for
//! the paper's use of Olvera-Cravioto, Blanchet & Glynn [24].
//!
//! For M/G/1 with a regularly varying service tail `F̄(x) = (xm/x)^α` the
//! classical subexponential asymptotic (Pakes' theorem, which [24] refines)
//! gives the stationary waiting-time tail
//!
//! ```text
//! P(W > x) ~ (ρ/(1−ρ)) · F̄ᵢ(x),      F̄ᵢ(x) = (1/E[S]) ∫ₓ^∞ F̄(u) du
//! ```
//!
//! and, because subexponential sums behave like their maximum,
//! `P(R > x) = P(W + S > x) ~ P(W > x) + P(S > x)`. For the Pareto family
//! both terms are pure power laws, so the mean of the **minimum of k
//! copies** — the k-th power of the CCDF — integrates in closed form past
//! the point `x₀` where the approximation drops below 1:
//!
//! ```text
//! E[min] = x₀ + Σᵢ C(k,i)·aⁱ·b^(k−i) · x₀^(1−p)/(p−1),  p = k(α−1)+i
//! ```
//!
//! Convergence requires `k(α−1) > 1`: one copy needs α > 2 for a finite
//! mean, two copies only α > 1.5. That asymmetry *is* the paper's Theorem 3
//! regime — for tails heavy enough (α < 1 + √2 ≈ 2.414 per the theorem;
//! dramatically for α ≤ 2 where the unreplicated mean diverges outright),
//! replication wins across (almost) the whole load range.

use super::bisect_threshold;

/// The heavy-tail response model for unit-mean Pareto(α) service at a given
/// per-server utilization.
#[derive(Clone, Copy, Debug)]
pub struct HeavyTailResponse {
    alpha: f64,
    xm: f64,
    /// Coefficient of the service-tail term `a·x^{−α}`.
    a: f64,
    /// Coefficient of the waiting-tail term `b·x^{1−α}`.
    b: f64,
}

impl HeavyTailResponse {
    /// Builds the model at per-server utilization `u` for unit-mean
    /// Pareto service with tail index `alpha > 1`.
    pub fn new(alpha: f64, u: f64) -> Self {
        assert!(alpha > 1.0, "regularly varying with finite mean needs alpha > 1");
        assert!((0.0..1.0).contains(&u), "utilization {u} out of range");
        let xm = (alpha - 1.0) / alpha; // unit mean
        let a = xm.powf(alpha);
        // Integrated tail of Pareto: ∫ₓ F̄ = xm^α x^{1−α}/(α−1); E[S] = 1.
        let b = u / (1.0 - u) * xm.powf(alpha) / (alpha - 1.0);
        HeavyTailResponse { alpha, xm, a, b }
    }

    /// Approximate response CCDF.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= self.xm {
            return 1.0;
        }
        (self.a * x.powf(-self.alpha) + self.b * x.powf(1.0 - self.alpha)).min(1.0)
    }

    /// The crossover point x₀ past which the power-law expression is < 1.
    fn crossover(&self) -> f64 {
        let f = |x: f64| self.a * x.powf(-self.alpha) + self.b * x.powf(1.0 - self.alpha);
        let mut lo = self.xm;
        let mut hi = self.xm.max(1.0);
        let mut guard = 0;
        while f(hi) > 1.0 && guard < 500 {
            hi *= 2.0;
            guard += 1;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Mean of the minimum of `k` i.i.d. responses under this model;
    /// `f64::INFINITY` when the defining integral diverges
    /// (`k(α−1) ≤ 1`).
    pub fn mean_min_of(&self, k: u32) -> f64 {
        assert!(k >= 1);
        let kf = k as f64;
        if kf * (self.alpha - 1.0) <= 1.0 {
            return f64::INFINITY;
        }
        let x0 = self.crossover();
        // Binomial expansion of (a x^{−α} + b x^{1−α})^k, each term a pure
        // power x^{−p} with p = k(α−1) + i for the term with i service
        // factors; integral over [x0, ∞) is x0^{1−p}/(p−1).
        let mut tail = 0.0;
        let mut binom = 1.0f64; // C(k, 0)
        for i in 0..=k {
            let ifl = i as f64;
            let p = kf * (self.alpha - 1.0) + ifl;
            let coef = binom * self.a.powf(ifl) * self.b.powf(kf - ifl);
            tail += coef * x0.powf(1.0 - p) / (p - 1.0);
            binom = binom * (kf - ifl) / (ifl + 1.0);
        }
        x0 + tail
    }
}

/// Threshold load for 2-way replication within the heavy-tail
/// approximation, for unit-mean Pareto(α) service.
///
/// For `α ≤ 2` the unreplicated mean response diverges at every positive
/// load while the replicated mean is finite (for `α > 1.5`), so replication
/// wins everywhere and the threshold sits at its 50 % ceiling.
pub fn threshold_pareto(alpha: f64) -> f64 {
    assert!(alpha > 1.5, "mean of min-of-two diverges for alpha <= 1.5");
    if alpha <= 2.0 {
        return 0.5 - 1e-6;
    }
    bisect_threshold(
        |rho| {
            let single = HeavyTailResponse::new(alpha, rho).mean_min_of(1);
            let double = HeavyTailResponse::new(alpha, 2.0 * rho).mean_min_of(2);
            double - single
        },
        1e-4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdf_is_valid() {
        let m = HeavyTailResponse::new(2.1, 0.4);
        let mut prev = 1.0;
        for i in 0..200 {
            let x = 0.1 * (i as f64 + 1.0);
            let c = m.ccdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c <= prev + 1e-12, "ccdf increased at {x}");
            prev = c;
        }
    }

    #[test]
    fn divergence_regimes() {
        // k=1 diverges for alpha <= 2; k=2 for alpha <= 1.5.
        assert!(HeavyTailResponse::new(1.9, 0.2).mean_min_of(1).is_infinite());
        assert!(HeavyTailResponse::new(1.9, 0.2).mean_min_of(2).is_finite());
        assert!(HeavyTailResponse::new(1.45, 0.2).mean_min_of(2).is_infinite());
        assert!(HeavyTailResponse::new(2.5, 0.2).mean_min_of(1).is_finite());
    }

    #[test]
    fn theorem_3_band() {
        // Theorem 3: for regularly varying service with alpha < 1 + sqrt(2),
        // the threshold load exceeds 30%.
        for &alpha in &[1.6, 1.8, 2.0, 2.1, 2.3, 2.41] {
            let t = threshold_pareto(alpha);
            assert!(t > 0.30, "alpha={alpha}: threshold {t} <= 30%");
            assert!(t < 0.5);
        }
    }

    #[test]
    fn threshold_decreases_as_tail_lightens_in_valid_regime() {
        // The asymptotic is only meaningful for genuinely heavy tails; the
        // paper applies it below alpha = 1 + sqrt(2). Within that regime the
        // threshold should fall as the tail lightens.
        let t1 = threshold_pareto(2.05);
        let t2 = threshold_pareto(2.2);
        let t3 = threshold_pareto(2.41);
        assert!(t1 >= t2 && t2 >= t3, "{t1} {t2} {t3}");
    }

    #[test]
    fn mean_increases_with_load() {
        let lo = HeavyTailResponse::new(2.2, 0.1).mean_min_of(1);
        let hi = HeavyTailResponse::new(2.2, 0.6).mean_min_of(1);
        assert!(hi > lo);
    }

    #[test]
    fn crossover_at_least_xm() {
        for &(alpha, u) in &[(2.1, 0.1), (3.0, 0.4), (2.4, 0.8)] {
            let m = HeavyTailResponse::new(alpha, u);
            assert!(m.crossover() >= m.xm - 1e-9);
        }
    }
}
