//! Closed forms and approximations for the replicated-queue model.
//!
//! Four layers, in decreasing exactness:
//!
//! 1. [`mm1`] — exact M/M/1 results, including **Theorem 1**: with
//!    exponential service the threshold load for k-way replication is
//!    exactly `1/(k+1)` (1/3 for the paper's k = 2).
//! 2. [`pk`] — the Pollaczek–Khinchine mean for M/G/1, exact for any
//!    service distribution with two finite moments.
//! 3. [`two_moment`] — a Gamma-shaped response-time approximation driven by
//!    the first two service moments. This is our documented stand-in for
//!    the Myers–Vernon estimate the paper uses (the original formula is in
//!    a paywalled SIGMETRICS PER note; ours has the same inputs, is exact
//!    for M/M/1, and reproduces Theorem 2's qualitative content: the
//!    threshold is minimized by deterministic service).
//! 4. [`heavy_tail`] — a regularly-varying tail approximation in the spirit
//!    of Olvera-Cravioto et al., applicable to Pareto-like service times;
//!    reproduces Theorem 3's regime (`α < 1 + √2` ⇒ threshold > 30 %).

pub mod heavy_tail;
pub mod mm1;
pub mod pk;
pub mod two_moment;

/// Numerically integrates a nonincreasing tail function `ccdf` over
/// `[0, ∞)` — i.e. computes `E[X] = ∫ P(X > x) dx` — by composite Simpson
/// on `[0, hi]` where `hi` is found by doubling until `ccdf(hi)` is
/// negligible, plus a geometric tail correction.
///
/// Used by the approximation layers to turn model CCDFs (and their k-th
/// powers, for the min of k copies) into means.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn integrate_ccdf(ccdf: impl Fn(f64) -> f64, hint: f64) -> f64 {
    // Find an upper cutoff where the tail is negligible.
    let mut hi = hint.max(1e-9);
    let mut guard = 0;
    while ccdf(hi) > 1e-12 && guard < 200 {
        hi *= 2.0;
        guard += 1;
    }
    // Composite Simpson with enough panels that the answer is stable for
    // the smooth CCDFs we integrate.
    let n = 20_000usize; // even
    let h = hi / n as f64;
    let mut acc = ccdf(0.0) + ccdf(hi);
    for i in 1..n {
        let x = i as f64 * h;
        acc += ccdf(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

/// Generic bisection for the threshold load given a replication-gain
/// function `g(ρ) = mean₂(ρ) − mean₁(ρ)` assumed negative below the root.
pub(crate) fn bisect_threshold(g: impl Fn(f64) -> f64, tol: f64) -> f64 {
    let mut lo = 1e-4;
    let mut hi = 0.5 - 1e-6;
    if g(lo) > 0.0 {
        return 0.0;
    }
    if g(hi) < 0.0 {
        return hi;
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrate_exponential_ccdf() {
        // E[Exp(rate 2)] = 0.5.
        let m = integrate_ccdf(|x| (-2.0 * x).exp(), 1.0);
        assert!((m - 0.5).abs() < 1e-4, "{m}");
    }

    #[test]
    fn integrate_min_of_two_exponentials() {
        // min of two Exp(1) is Exp(2): mean 0.5.
        let m = integrate_ccdf(|x| (-x).exp().powi(2), 1.0);
        assert!((m - 0.5).abs() < 1e-4, "{m}");
    }

    #[test]
    fn bisect_finds_known_root() {
        // g(rho) = rho - 1/3.
        let t = bisect_threshold(|rho| rho - 1.0 / 3.0, 1e-6);
        assert!((t - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn bisect_clamps_at_edges() {
        assert_eq!(bisect_threshold(|_| 1.0, 1e-6), 0.0);
        assert!(bisect_threshold(|_| -1.0, 1e-6) > 0.49);
    }
}
