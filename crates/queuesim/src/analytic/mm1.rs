//! Exact M/M/1 analysis — Theorem 1 of the paper.
//!
//! With i.i.d. exponential unit-mean service, each server under k-way
//! replication at base load ρ is an M/M/1 queue at utilization kρ whose
//! *response time* (wait + service) is itself exponential with rate
//! `1 − kρ`. The minimum of k independent such responses is exponential
//! with rate `k(1 − kρ)`, so:
//!
//! * `E[R₁] = 1/(1 − ρ)`
//! * `E[R_k] = 1/(k(1 − kρ))`
//! * replication helps iff `ρ < (k−1)/(k²−1) = 1/(k+1)` — **1/3 for k = 2**.

/// Mean response time of an M/M/1 queue with unit-mean service at load
/// `rho < 1`.
pub fn mean_response(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho out of range: {rho}");
    1.0 / (1.0 - rho)
}

/// Mean response time under k-way replication at base load `rho`
/// (per-server load `k·rho`), unit-mean exponential service.
pub fn mean_response_replicated(rho: f64, k: u32) -> f64 {
    assert!(k >= 1);
    let u = rho * k as f64;
    assert!(u < 1.0, "k*rho = {u} saturates");
    1.0 / (k as f64 * (1.0 - u))
}

/// The exact threshold load of Theorem 1, generalized to k copies:
/// `1/(k+1)`.
pub fn threshold(k: u32) -> f64 {
    assert!(k >= 2, "threshold defined for k >= 2");
    1.0 / (k as f64 + 1.0)
}

/// CCDF of the single-copy response time: `P(R > x) = e^{−(1−ρ)x}`.
pub fn response_ccdf(rho: f64, x: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho));
    (-(1.0 - rho) * x.max(0.0)).exp()
}

/// CCDF of the k-replicated response time:
/// `P(min > x) = e^{−k(1−kρ)x}`.
pub fn response_ccdf_replicated(rho: f64, k: u32, x: f64) -> f64 {
    let u = rho * k as f64;
    assert!(u < 1.0);
    (-(k as f64) * (1.0 - u) * x.max(0.0)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_threshold_is_one_third() {
        assert!((threshold(2) - 1.0 / 3.0).abs() < 1e-15);
        assert!((threshold(3) - 0.25).abs() < 1e-15);
        assert!((threshold(10) - 1.0 / 11.0).abs() < 1e-15);
    }

    #[test]
    fn crossover_at_exactly_one_third() {
        let eps = 1e-6;
        let rho = 1.0 / 3.0;
        // Just below: replication wins; just above: loses.
        assert!(mean_response_replicated(rho - eps, 2) < mean_response(rho - eps));
        assert!(mean_response_replicated(rho + eps, 2) > mean_response(rho + eps));
        // At the threshold the two means coincide.
        assert!((mean_response_replicated(rho, 2) - mean_response(rho)).abs() < 1e-9);
    }

    #[test]
    fn ccdf_integrates_to_mean() {
        let rho = 0.3;
        let m = super::super::integrate_ccdf(|x| response_ccdf(rho, x), 1.0);
        assert!((m - mean_response(rho)).abs() < 1e-3);
        let m2 = super::super::integrate_ccdf(|x| response_ccdf_replicated(rho, 2, x), 1.0);
        assert!((m2 - mean_response_replicated(rho, 2)).abs() < 1e-3);
    }

    #[test]
    fn replication_always_helps_tail_even_past_threshold() {
        // The paper notes replication may still improve the tail when it no
        // longer improves the mean: at rho = 0.4 (> 1/3) compare 99.9th
        // percentiles. R1 ~ Exp(0.6), Rmin ~ Exp(2*(1-0.8)=0.4): here even
        // the tail is worse -- but at rho = 0.35 (just past threshold) the
        // min's higher decay rate can still win deep in the tail only if
        // k(1-k rho) > (1-rho), i.e. below threshold. Verify the algebra.
        let rho: f64 = 0.35;
        let rate1 = 1.0 - rho;
        let rate2 = 2.0 * (1.0 - 2.0 * rho);
        // Past the threshold the min's rate is smaller: same ordering for
        // mean and every quantile (exponentials are scale families).
        assert!(rate2 < rate1);
    }

    #[test]
    #[should_panic(expected = "saturates")]
    fn saturation_panics() {
        let _ = mean_response_replicated(0.5, 2);
    }
}
