//! Two-moment response-time approximation — our stand-in for the paper's
//! use of Myers & Vernon [23].
//!
//! The paper evaluates its Conjecture 1 ("deterministic service minimizes
//! the threshold load") inside an approximation of the M/G/1 response-time
//! *distribution* that depends only on the first two moments of the service
//! time. The exact Myers–Vernon formula is not reproducible offline, so we
//! build a documented substitute with the same inputs and regime:
//!
//! * **Waiting time** `W`: an atom of mass `1 − u` at zero (PASTA: an
//!   arrival finds the server idle with the exact probability `1 − u`) plus
//!   an exponential excursion with mean `W_PK/u`, so that `E[W]` equals the
//!   exact Pollaczek–Khinchine mean.
//! * **Service** `S`: a Gamma fit to `(E[S], Var S)` (point mass when
//!   Var S = 0). `R = W + S` with `W ⊥ S` (true for FIFO M/G/1).
//! * The response CCDF is then *exactly computable* for the model:
//!   `P(R > x) = Q_S(x) + u·e^{−μx}(1−μθ)^{−κ}·P_Γ(κ, (1/θ−μ)x)` when the
//!   exponential rate `μ = u/W_PK` is smaller than the Gamma rate `1/θ`
//!   (closed-form Gamma⊛Exp convolution), and by an exponential
//!   quantile-mixture quadrature otherwise.
//! * **Replication**: the k-copy response is the min of k i.i.d. model
//!   responses at per-server load `kρ`; its mean is `∫ P(R > x)^k dx`.
//!
//! Exactness anchors: for exponential service the model CCDF collapses
//! algebraically to `e^{−(1−u)x}` — the *true* M/M/1 response law — so
//! Theorem 1's threshold of 1/3 is reproduced to the bisection tolerance.
//! For deterministic service everything is closed-form and the threshold is
//! `1 − √2/2 ≈ 0.2929` (vs ≈ 0.258 simulated — the right end of the
//! corridor, and the *minimum over distributions* as Theorem 2 requires;
//! see the tests).
//!
//! **Validity regime.** Like the original Myers–Vernon estimate — whose
//! authors "note that the approximation is likely to be inappropriate when
//! the service times are heavy tailed" (quoted in the paper) — this model
//! is trustworthy for light-tailed service (scv ≲ 1, the
//! deterministic–Erlang–exponential range). Beyond scv = 1 the exponential
//! excursion underestimates how much a min-of-two gains from heavy waiting
//! tails, and the model's threshold drifts back toward its deterministic
//! floor instead of climbing toward 50 % as simulation does. That is
//! precisely why the paper (and [`crate::analytic::heavy_tail`]) switch to
//! a regularly-varying asymptotic in the heavy regime, and why Figure 2's
//! curves come from simulation ([`crate::threshold`]) rather than from this
//! approximation.

use super::bisect_threshold;
use super::pk::{self, ServiceMoments};
use simcore::special::{gamma_p, gamma_q};

/// Atom-exponential-wait + Gamma-service response model at one utilization.
#[derive(Clone, Debug)]
pub struct AtomExpResponse {
    /// Per-server utilization u.
    pub utilization: f64,
    /// Rate of the conditional (busy-found) exponential wait.
    mu: f64,
    /// Gamma service shape (`None` = deterministic service).
    shape: Option<f64>,
    /// Gamma service scale, or the deterministic service time.
    scale: f64,
    mean_service: f64,
    mean_wait: f64,
}

impl AtomExpResponse {
    /// Fits the model at utilization `u` for service moments `s`.
    pub fn fit(s: ServiceMoments, u: f64) -> Self {
        assert!((0.0..1.0).contains(&u), "utilization out of range: {u}");
        let w = pk::mean_wait(s, u);
        // Conditional wait mean w/u; mu is its rate. At u = 0 the wait is
        // identically zero; use an arbitrary finite rate (atom mass is 1).
        let mu = if w > 0.0 { u / w } else { 1.0 };
        let (shape, scale) = if s.variance <= 1e-12 * s.mean * s.mean {
            (None, s.mean)
        } else {
            (Some(s.mean * s.mean / s.variance), s.variance / s.mean)
        };
        AtomExpResponse {
            utilization: u,
            mu,
            shape,
            scale,
            mean_service: s.mean,
            mean_wait: w,
        }
    }

    /// Mean of the model response — the exact P–K mean by construction.
    pub fn mean(&self) -> f64 {
        self.mean_service + self.mean_wait
    }

    /// Service-time CCDF of the fitted (Gamma or degenerate) service law.
    fn service_ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        match self.shape {
            None => {
                if x < self.scale {
                    1.0
                } else {
                    0.0
                }
            }
            Some(k) => gamma_q(k, x / self.scale),
        }
    }

    /// CCDF of the model response `R = W + S`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        let u = self.utilization;
        if u == 0.0 {
            return self.service_ccdf(x);
        }
        match self.shape {
            None => {
                // Deterministic service d: P(R > x) = 1 for x < d, else the
                // busy-branch exponential tail u·e^{−μ(x−d)}.
                let d = self.scale;
                if x < d {
                    1.0
                } else {
                    u * (-self.mu * (x - d)).exp()
                }
            }
            Some(k) => {
                let theta = self.scale;
                let a = 1.0 / theta - self.mu;
                if a > 1e-9 {
                    // Closed-form Gamma ⊛ Exp convolution.
                    let conv = (-self.mu * x).exp()
                        * (1.0 - self.mu * theta).powf(-k)
                        * gamma_p(k, a * x);
                    (self.service_ccdf(x) + u * conv).min(1.0)
                } else {
                    // mu >= Gamma rate: integrate over exponential-wait
                    // quantiles (midpoint rule on equal-probability strata).
                    const M: usize = 256;
                    let mut acc = (1.0 - u) * self.service_ccdf(x);
                    for j in 0..M {
                        let q = (j as f64 + 0.5) / M as f64;
                        let t = -(1.0 - q).ln() / self.mu;
                        acc += (u / M as f64) * self.service_ccdf(x - t);
                    }
                    acc.min(1.0)
                }
            }
        }
    }

    /// Mean of the min of `k` i.i.d. model responses.
    pub fn mean_min_of(&self, k: u32) -> f64 {
        assert!(k >= 1);
        if k == 1 {
            return self.mean();
        }
        if self.shape.is_none() {
            // Analytic: d + ∫ u^k e^{−kμt} dt.
            let kf = k as f64;
            return self.scale + self.utilization.powf(kf) / (kf * self.mu);
        }
        integrate_ccdf_log(|x| self.ccdf(x).powi(k as i32), self.mean())
    }
}

/// Integrates a nonincreasing `ccdf` over (0, ∞) on a log-spaced grid —
/// robust to distributions whose mass spans many orders of magnitude.
fn integrate_ccdf_log(ccdf: impl Fn(f64) -> f64, scale_hint: f64) -> f64 {
    let lo = scale_hint * 1e-7;
    let mut hi = scale_hint.max(1e-12);
    let mut guard = 0;
    while ccdf(hi) > 1e-10 && guard < 400 {
        hi *= 1.5;
        guard += 1;
    }
    let n = 4_000usize;
    let ratio = (hi / lo).powf(1.0 / n as f64);
    // Integral over [0, lo] bounded by lo (ccdf <= 1 there).
    let mut acc = lo * ccdf(lo * 0.5).min(1.0);
    let mut x = lo;
    let mut f_prev = ccdf(lo);
    for _ in 0..n {
        let x_next = x * ratio;
        let f_next = ccdf(x_next);
        acc += 0.5 * (f_prev + f_next) * (x_next - x);
        x = x_next;
        f_prev = f_next;
    }
    acc
}

/// Mean response under k-way replication within the approximation: min of
/// k fitted responses, each at per-server load `k·rho`.
pub fn mean_response_replicated(s: ServiceMoments, rho: f64, k: u32) -> f64 {
    let u = rho * k as f64;
    assert!(u < 1.0, "k*rho = {u} saturates");
    AtomExpResponse::fit(s, u).mean_min_of(k)
}

/// Threshold load within the approximation (k = 2): root of
/// `mean₂(ρ) − mean₁(ρ)`.
pub fn threshold(s: ServiceMoments) -> f64 {
    bisect_threshold(
        |rho| mean_response_replicated(s, rho, 2) - pk::mean_response(s, rho),
        1e-4,
    )
}

/// Threshold as a function of the squared coefficient of variation, for
/// unit-mean service — the approximation's view of Fig 2's x-axes.
pub fn threshold_for_scv(scv: f64) -> f64 {
    threshold(ServiceMoments::new(1.0, scv))
}

/// The closed-form threshold for deterministic service within this model:
/// `1 − √2/2 ≈ 0.2929` (solve `ρ²/(1−2ρ) = ρ/(2(1−ρ))`).
pub fn deterministic_threshold_closed_form() -> f64 {
    1.0 - std::f64::consts::SQRT_2 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::Distribution;
    use simcore::dist::{Deterministic, Erlang, Exponential, HyperExponential};

    #[test]
    fn exact_for_mm1() {
        // Exponential service: the model CCDF must equal the true M/M/1
        // response law e^{−(1−u)x}, and the threshold must be 1/3.
        let s = ServiceMoments::of(&Exponential::unit());
        let fit = AtomExpResponse::fit(s, 0.4);
        for &x in &[0.1, 0.5, 1.0, 3.0, 8.0] {
            let exact = (-0.6f64 * x).exp();
            let got = fit.ccdf(x);
            assert!(
                (got - exact).abs() < 1e-9,
                "ccdf({x}) {got} vs exact {exact}"
            );
        }
        let thr = threshold(s);
        assert!((thr - 1.0 / 3.0).abs() < 2e-3, "threshold {thr}");
    }

    #[test]
    fn min_of_two_halves_exponential_mean() {
        let s = ServiceMoments::of(&Exponential::unit());
        let fit = AtomExpResponse::fit(s, 0.4);
        let m2 = fit.mean_min_of(2);
        assert!(
            (m2 - fit.mean() / 2.0).abs() < 0.005 * fit.mean(),
            "m2 {m2} vs half of {}",
            fit.mean()
        );
    }

    #[test]
    fn deterministic_closed_form() {
        let t = threshold(ServiceMoments::of(&Deterministic::unit()));
        let expect = deterministic_threshold_closed_form();
        assert!(
            (t - expect).abs() < 1e-3,
            "deterministic threshold {t} vs closed form {expect}"
        );
    }

    #[test]
    fn deterministic_minimizes_threshold() {
        // Theorem 2 (within the approximation): deterministic service is
        // the worst case for replication.
        let t_det = threshold(ServiceMoments::of(&Deterministic::unit()));
        for dist in [
            Box::new(Exponential::unit()) as Box<dyn Distribution>,
            Box::new(Erlang::unit_mean(2)),
            Box::new(Erlang::unit_mean(8)),
            Box::new(HyperExponential::unit_mean_with_scv(2.0)),
            Box::new(HyperExponential::unit_mean_with_scv(8.0)),
        ] {
            let t = threshold(ServiceMoments::of(dist.as_ref()));
            assert!(
                t >= t_det - 1e-3,
                "{}: threshold {t} below deterministic {t_det}",
                dist.label()
            );
        }
    }

    #[test]
    fn threshold_monotone_in_scv_light_tail_regime() {
        // Within the approximation's regime of validity (light tails,
        // scv <= 1: the deterministic -> Erlang -> exponential family) the
        // threshold rises with variability, as in the paper's Fig 2.
        let ts: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&scv| threshold_for_scv(scv))
            .collect();
        for w in ts.windows(2) {
            assert!(w[1] >= w[0] - 2e-3, "not monotone: {ts:?}");
        }
        assert!(ts.iter().all(|&t| t < 0.5));
    }

    #[test]
    fn threshold_bounded_for_all_scv() {
        // Outside the light-tail regime the approximation is documented to
        // be conservative, but it must stay inside the paper's conjectured
        // corridor: never below the deterministic floor, never at/above 50%.
        let floor = deterministic_threshold_closed_form();
        for scv in [2.0, 4.0, 8.0, 32.0] {
            let t = threshold_for_scv(scv);
            assert!(
                (floor - 1e-3..0.5).contains(&t),
                "scv {scv}: threshold {t} escapes [{floor}, 0.5)"
            );
        }
    }

    #[test]
    fn approximation_tracks_simulation_mean() {
        // The model's k=2 mean should be within ~10% of simulation for a
        // moderate-variance service law.
        use crate::model::{run, Config};
        let dist = Erlang::unit_mean(2);
        let s = ServiceMoments::of(&dist);
        let rho = 0.2;
        let sim = run(
            &Config::new(dist, rho)
                .with_copies(2)
                .with_requests(200_000, 20_000),
            17,
        )
        .moments
        .mean();
        let approx = mean_response_replicated(s, rho, 2);
        assert!(
            (sim - approx).abs() / sim < 0.10,
            "sim {sim} vs approx {approx}"
        );
    }

    #[test]
    fn ccdf_monotone_and_bounded() {
        for scv in [0.0, 0.5, 1.0, 4.0] {
            let s = ServiceMoments::new(1.0, scv);
            let fit = AtomExpResponse::fit(s, 0.5);
            let mut prev = 1.0;
            for i in 1..400 {
                let x = i as f64 * 0.05;
                let c = fit.ccdf(x);
                assert!((0.0..=1.0).contains(&c), "scv {scv} x {x}: {c}");
                assert!(c <= prev + 1e-9, "scv {scv}: ccdf increased at {x}");
                prev = c;
            }
        }
    }

    #[test]
    fn model_mean_equals_pk_mean() {
        for scv in [0.0, 1.0, 3.0] {
            let s = ServiceMoments::new(1.0, scv);
            for u in [0.1, 0.5, 0.9] {
                let fit = AtomExpResponse::fit(s, u);
                assert!((fit.mean() - pk::mean_response(s, u)).abs() < 1e-12);
            }
        }
    }
}
