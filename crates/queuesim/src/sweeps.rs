//! Parameter sweeps behind Figures 1–4 of the paper.
//!
//! Each function returns plain data series (no I/O); the `repro-bench`
//! harness formats them into the same rows the paper plots. Everything is
//! deterministic given the options' seed — including under parallelism:
//! every sweep runs its points on a [`Runner`] (the `*_on` variants take
//! an explicit one; the plain versions use [`Runner::global`]), with
//! per-point randomness derived from the point's index, so results are
//! bit-identical at any thread count.

use crate::model::{run, Config, RunResult};
use crate::threshold::{threshold_load_on, ThresholdOptions};
use simcore::dist::{Distribution, Pareto, TwoPoint, Weibull};
use simcore::rng::Rng;
use simcore::runner::Runner;
use simcore::simplex::random_unit_mean_discrete;
use simcore::stats::Ccdf;

/// One point of a mean-response-vs-load curve (Fig 1(a)/1(b)).
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Base per-server load ρ.
    pub load: f64,
    /// Mean response time with 1 copy.
    pub mean_single: f64,
    /// Mean response time with 2 copies.
    pub mean_double: f64,
    /// 99.9th percentile with 1 copy.
    pub p999_single: f64,
    /// 99.9th percentile with 2 copies.
    pub p999_double: f64,
}

/// Sweeps mean response time over `loads` for 1 and 2 copies (Fig 1(a)/(b)).
pub fn mean_vs_load<D: Distribution + Clone>(
    dist: &D,
    loads: &[f64],
    requests: usize,
    seed: u64,
) -> Vec<LoadPoint> {
    mean_vs_load_on(&Runner::global(), dist, loads, requests, seed)
}

/// [`mean_vs_load`] on an explicit [`Runner`]; load points run in
/// parallel, bit-identical at any thread count.
pub fn mean_vs_load_on<D: Distribution + Clone>(
    runner: &Runner,
    dist: &D,
    loads: &[f64],
    requests: usize,
    seed: u64,
) -> Vec<LoadPoint> {
    runner.map(loads, |_i, &rho| {
        let base = Config::new(dist.clone(), rho).with_requests(requests, requests / 10);
        let mut single = run(&base.clone().with_copies(1), seed);
        let mut double = run(&base.with_copies(2), seed);
        LoadPoint {
            load: rho,
            mean_single: single.moments.mean(),
            mean_double: double.moments.mean(),
            p999_single: single.response.quantile(0.999),
            p999_double: double.response.quantile(0.999),
        }
    })
}

/// Response-time CCDFs at one load for 1 and 2 copies (Fig 1(c)). The
/// paired runs execute in parallel on the global runner.
pub fn ccdf_at_load<D: Distribution + Clone>(
    dist: &D,
    load: f64,
    requests: usize,
    points: usize,
    seed: u64,
) -> (Ccdf, Ccdf) {
    let base = Config::new(dist.clone(), load).with_requests(requests, requests / 10);
    let (mut single, mut double) = Runner::global().pair(
        || run(&base.clone().with_copies(1), seed),
        || run(&base.clone().with_copies(2), seed),
    );
    (single.response.ccdf(points), double.response.ccdf(points))
}

/// Runs the model once and returns the full result (for callers needing
/// custom statistics).
pub fn run_once<D: Distribution + Clone>(
    dist: &D,
    load: f64,
    copies: usize,
    requests: usize,
    seed: u64,
) -> RunResult {
    run(
        &Config::new(dist.clone(), load)
            .with_copies(copies)
            .with_requests(requests, requests / 10),
        seed,
    )
}

/// Fig 2(a): threshold load vs Weibull inverse shape γ.
pub fn weibull_family(gammas: &[f64], opts: &ThresholdOptions) -> Vec<(f64, f64)> {
    let runner = Runner::global();
    runner.map(gammas, |_i, &g| {
        (g, threshold_load_on(&runner, &Weibull::unit_mean_inverse_shape(g), opts))
    })
}

/// Fig 2(b): threshold load vs Pareto inverse scale β.
pub fn pareto_family(betas: &[f64], opts: &ThresholdOptions) -> Vec<(f64, f64)> {
    let runner = Runner::global();
    runner.map(betas, |_i, &b| {
        (b, threshold_load_on(&runner, &Pareto::unit_mean_inverse_scale(b), opts))
    })
}

/// Fig 2(c): threshold load vs the two-point parameter p.
pub fn two_point_family(ps: &[f64], opts: &ThresholdOptions) -> Vec<(f64, f64)> {
    let runner = Runner::global();
    runner.map(ps, |_i, &p| (p, threshold_load_on(&runner, &TwoPoint::new(p), opts)))
}

/// One row of Fig 3: the spread of threshold loads over randomly drawn
/// unit-mean discrete distributions with a given support size.
#[derive(Clone, Copy, Debug)]
pub struct RandomDistRow {
    /// Support size N.
    pub support: usize,
    /// Smallest threshold observed across the random draws.
    pub min_threshold: f64,
    /// Largest threshold observed.
    pub max_threshold: f64,
}

/// Fig 3: for each support size, draws `samples` random distributions from
/// a symmetric Dirichlet(α) on the simplex (α = 1 → the paper's "Uniform"
/// series; α = 0.1 → its "Dirichlet" series), normalizes them to unit mean,
/// and reports the min/max threshold load observed.
///
/// All `supports.len() × samples` threshold searches run in parallel; each
/// random distribution is drawn from a stream forked per (support, sample)
/// index, so the result is independent of scheduling.
pub fn random_distributions(
    supports: &[usize],
    samples: usize,
    alpha: f64,
    opts: &ThresholdOptions,
) -> Vec<RandomDistRow> {
    let mut rng = Rng::seed_from(opts.seed ^ 0xF163);
    // Draw every candidate distribution upfront (serial, deterministic),
    // then fan the expensive threshold searches out over the runner.
    let dists: Vec<(usize, simcore::dist::DiscreteEmpirical)> = supports
        .iter()
        .enumerate()
        .flat_map(|(si, &n)| {
            let mut draw_rng = rng.fork(si as u64);
            (0..samples)
                .map(|_| (n, random_unit_mean_discrete(&mut draw_rng, n, alpha)))
                .collect::<Vec<_>>()
        })
        .collect();
    let runner = Runner::global();
    let thresholds = runner.map(&dists, |_i, (_n, d)| threshold_load_on(&runner, d, opts));
    supports
        .iter()
        .enumerate()
        .map(|(si, &n)| {
            let slice = &thresholds[si * samples..(si + 1) * samples];
            RandomDistRow {
                support: n,
                min_threshold: slice.iter().copied().fold(f64::INFINITY, f64::min),
                max_threshold: slice.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect()
}

/// Fig 4: threshold load vs client-side overhead (as a fraction of the
/// mean service time), for one service distribution. All points share one
/// CRN draw cache ([`crate::threshold::overhead_thresholds`]): the draws
/// depend only on the seed, not the overhead, so they are generated once
/// instead of per point — bit-identical to the old per-point searches.
/// Replications inside each bisection step run in parallel on the global
/// runner.
pub fn overhead_sweep<D: Distribution + Clone>(
    dist: &D,
    overhead_fractions: &[f64],
    opts: &ThresholdOptions,
) -> Vec<(f64, f64)> {
    let mean = dist.mean();
    let overheads: Vec<f64> = overhead_fractions.iter().map(|&f| f * mean).collect();
    let thresholds =
        crate::threshold::overhead_thresholds_on(&Runner::global(), dist, &overheads, opts);
    overhead_fractions.iter().copied().zip(thresholds).collect()
}

/// The sweep row whose threshold (first element) is nearest `target`.
///
/// Uses `f64::total_cmp` on the absolute distances — the workspace-wide
/// rule for float comparators — so the choice is deterministic for every
/// input: equal distances resolve to the earliest row, and non-finite
/// distances (a NaN threshold, or an infinite one when `target` is
/// finite) sort *after* every finite distance, so such rows are only
/// returned when no finite candidate exists. A `partial_cmp(..).unwrap()`
/// here would instead panic the moment a sweep produced a NaN row.
///
/// # Panics
/// If `entries` is empty.
pub fn nearest_entry(entries: &[(f64, f64)], target: f64) -> (f64, f64) {
    *entries
        .iter()
        .min_by(|a, b| (a.0 - target).abs().total_cmp(&(b.0 - target).abs()))
        .expect("nearest_entry requires at least one sweep row")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Deterministic, Exponential};

    #[test]
    fn fig1_shape_deterministic() {
        // Fig 1(a): with deterministic service, the k=2 curve crosses the
        // k=1 curve between ~0.2 and ~0.35 load.
        let pts = mean_vs_load(
            &Deterministic::unit(),
            &[0.1, 0.2, 0.3, 0.4],
            60_000,
            1,
        );
        assert!(pts[0].mean_double <= pts[0].mean_single + 1e-3);
        assert!(pts[3].mean_double > pts[3].mean_single);
    }

    #[test]
    fn fig1c_tail_orders() {
        let (single, double) = ccdf_at_load(&Pareto::unit_mean(2.1), 0.2, 80_000, 30, 3);
        // Every tail fraction of the replicated curve is <= the single's at
        // matching thresholds (curves share the log grid only roughly, so
        // compare at the single curve's median threshold).
        let mid = single.entries()[single.entries().len() / 2];
        let d_at = nearest_entry(double.entries(), mid.0);
        assert!(d_at.1 <= mid.1 + 0.01, "double {d_at:?} vs single {mid:?}");
    }

    #[test]
    fn nearest_entry_total_order_on_ties_and_non_finite() {
        // Equal distances: |3-4| == |5-4|; total_cmp makes them a true tie
        // and min_by keeps the earliest row, deterministically.
        let rows = [(1.0, 0.9), (3.0, 0.5), (5.0, 0.1)];
        assert_eq!(nearest_entry(&rows, 4.0), (3.0, 0.5));

        // Non-finite candidates (NaN / inf thresholds) lose to any finite
        // row: |NaN| sorts above +inf under total_cmp (abs() clears the
        // sign bit, so the NaN distance is always positive NaN).
        let rows = [(f64::NAN, 0.2), (f64::INFINITY, 0.3), (2.0, 0.7)];
        assert_eq!(nearest_entry(&rows, 0.0), (2.0, 0.7));

        // All-NaN input returns a row instead of panicking, which is the
        // whole point of dropping partial_cmp(..).unwrap().
        let rows = [(f64::NAN, 0.1), (f64::NAN, 0.2)];
        let got = nearest_entry(&rows, 1.0);
        assert!(got.0.is_nan());
        assert_eq!(got.1, 0.1);
    }

    #[test]
    fn fig2c_endpoints() {
        // p = 0 is deterministic (threshold ~0.26); large p is heavy
        // (threshold near 0.5).
        let opts = ThresholdOptions::fast();
        let rows = two_point_family(&[0.0, 0.9], &opts);
        assert!(rows[0].1 < 0.31, "p=0 threshold {}", rows[0].1);
        assert!(rows[1].1 > rows[0].1, "{rows:?}");
    }

    #[test]
    fn fig3_rows_within_conjecture() {
        let mut opts = ThresholdOptions::fast();
        opts.requests = 20_000;
        opts.replications = 3;
        let rows = random_distributions(&[2, 8], 3, 1.0, &opts);
        for r in &rows {
            assert!(
                r.min_threshold >= 0.2 && r.max_threshold < 0.5,
                "row {r:?} violates the conjectured band"
            );
            assert!(r.min_threshold <= r.max_threshold);
        }
    }

    #[test]
    fn fig4_overhead_collapses_threshold() {
        let opts = ThresholdOptions::fast();
        let rows = overhead_sweep(&Exponential::unit(), &[0.0, 1.0], &opts);
        assert!(rows[0].1 > 0.28, "zero-overhead threshold {}", rows[0].1);
        assert!(rows[1].1 < 0.05, "full-overhead threshold {}", rows[1].1);
    }

    #[test]
    fn mean_vs_load_bit_identical_across_thread_counts() {
        let loads = [0.1, 0.25, 0.4];
        let base = mean_vs_load_on(&Runner::serial(), &Exponential::unit(), &loads, 10_000, 7);
        for threads in [2, 8] {
            let pts =
                mean_vs_load_on(&Runner::new(threads), &Exponential::unit(), &loads, 10_000, 7);
            for (a, b) in base.iter().zip(&pts) {
                assert_eq!(a.mean_single.to_bits(), b.mean_single.to_bits());
                assert_eq!(a.mean_double.to_bits(), b.mean_double.to_bits());
                assert_eq!(a.p999_single.to_bits(), b.p999_single.to_bits());
                assert_eq!(a.p999_double.to_bits(), b.p999_double.to_bits());
            }
        }
    }
}
