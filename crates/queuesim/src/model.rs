//! The replicated-queue simulator.
//!
//! Implements §2.1's model exactly: `N` identical FIFO servers, Poisson
//! arrivals at rate `N·ρ/E[S]` (so the *base* per-server utilization is ρ),
//! and `k` copies of each request enqueued at `k` distinct servers chosen
//! uniformly at random. Each copy draws an independent service time; the
//! request's response time is the minimum over copies of
//! `(completion − arrival)`; siblings are **not** cancelled (the paper's
//! model has no cancellation — that is what doubles utilization at k = 2).
//!
//! ## Exactness without an event heap
//!
//! Because each server is work-conserving FIFO and we process arrivals in
//! nondecreasing time order, a server's state is fully captured by the time
//! it next becomes free: a copy arriving at `t` at server `s` starts at
//! `max(t, free_at[s])` and completes after its service time. This makes the
//! simulator a tight O(1)-per-copy loop — important because the
//! threshold-load bisection in [`crate::threshold`] runs it tens of millions
//! of request-copies per figure point.
//!
//! ## Common random numbers
//!
//! Arrival times and the *i*-th request's copy-0 service time are identical
//! for the k = 1 and k = 2 runs at the same seed (per-request substreams are
//! derived from `(seed, request index)`, not from a shared sequential
//! stream). The paired difference `mean(k=1) − mean(k=2)` therefore has far
//! lower variance than two independent runs, which is what makes the
//! threshold bisection stable.

use simcore::dist::Distribution;
use simcore::rng::{Rng, SplitMix64};
use simcore::stats::{SampleSet, Welford};

/// Configuration for one run of the replicated-queue model.
#[derive(Clone, Debug)]
pub struct Config<D> {
    /// Number of servers `N`. The paper notes the independence
    /// approximation behind Theorem 1 is already <0.1 % off at N = 20, so
    /// that is the default.
    pub servers: usize,
    /// Replication factor `k ≥ 1` (k = 1 means no redundancy).
    pub copies: usize,
    /// Base per-server utilization ρ ∈ [0, 1) **without** replication; with
    /// k copies each server's actual utilization is `k·ρ`.
    pub load: f64,
    /// Service-time distribution `S` (the paper normalizes E[S] = 1; any
    /// positive mean works here).
    pub service: D,
    /// Client-side latency penalty added to every request when `copies > 1`
    /// (the x-axis of Fig 4), in the same time unit as `service`.
    pub replication_overhead: f64,
    /// Tied-request cancellation (the Dean & Barroso capability the paper
    /// notes is "not necessarily available in general"): when the first
    /// copy completes, sibling copies that have **not yet started service**
    /// are withdrawn from their queues and their load refunded. In-service
    /// siblings still run to completion (you cannot un-seek a disk). The
    /// paper's own model is `false`.
    pub cancellation: bool,
    /// Requests to measure (after warm-up).
    pub requests: usize,
    /// Requests to simulate-and-discard first, so measurements are taken in
    /// (approximate) steady state.
    pub warmup: usize,
}

impl<D: Distribution> Config<D> {
    /// A single-copy baseline at the given service distribution and load,
    /// with defaults suitable for figure-quality runs (20 servers, 200 k
    /// measured requests after 20 k warm-up).
    pub fn new(service: D, load: f64) -> Self {
        assert!((0.0..1.0).contains(&load), "load must be in [0,1): {load}");
        Config {
            servers: 20,
            copies: 1,
            load,
            service,
            replication_overhead: 0.0,
            cancellation: false,
            requests: 200_000,
            warmup: 20_000,
        }
    }

    /// Enables tied-request cancellation (see the field docs).
    pub fn with_cancellation(mut self, on: bool) -> Self {
        self.cancellation = on;
        self
    }

    /// Sets the replication factor.
    pub fn with_copies(mut self, k: usize) -> Self {
        assert!(k >= 1, "copies must be >= 1");
        self.copies = k;
        self
    }

    /// Sets the measured/warm-up request counts.
    pub fn with_requests(mut self, requests: usize, warmup: usize) -> Self {
        self.requests = requests;
        self.warmup = warmup;
        self
    }

    /// Sets the number of servers.
    pub fn with_servers(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.servers = n;
        self
    }

    /// Sets the per-request client-side overhead applied when `copies > 1`.
    pub fn with_replication_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 0.0);
        self.replication_overhead = overhead;
        self
    }

    /// Sets the base load.
    pub fn with_load(mut self, load: f64) -> Self {
        assert!((0.0..1.0).contains(&load), "load must be in [0,1): {load}");
        self.load = load;
        self
    }
}

/// Everything a run measures.
#[derive(Debug)]
pub struct RunResult {
    /// Per-request response times (min over copies, plus overhead).
    pub response: SampleSet,
    /// Response-time moments as a stream (same data as `response`).
    pub moments: Welford,
    /// Fraction of server-seconds actually busy — should be ≈ `k·ρ`.
    pub achieved_utilization: f64,
    /// Wall-clock span of the measured portion, in model time units.
    pub measured_span: f64,
}

/// Runs the model once. `seed` fixes everything: arrival process, server
/// choices, and service draws.
///
/// # Panics
/// Panics if `copies > servers` or if the offered load with replication
/// (`k·ρ`) is ≥ 1, which has no steady state.
pub fn run<D: Distribution>(cfg: &Config<D>, seed: u64) -> RunResult {
    let n = cfg.servers;
    let k = cfg.copies;
    assert!(k <= n, "need at least k={k} servers, have {n}");
    let per_server_load = cfg.load * k as f64;
    assert!(
        per_server_load < 1.0,
        "k*rho = {per_server_load} >= 1 has no steady state"
    );

    let mean_service = cfg.service.mean();
    assert!(
        mean_service.is_finite() && mean_service > 0.0,
        "service distribution must have a positive finite mean"
    );
    // Total arrival rate keeping base per-server load at rho.
    let lambda_total = n as f64 * cfg.load / mean_service;

    let mut arrival_rng = Rng::seed_from(seed).fork(0);
    // Separate the per-request substream salt from the arrival stream.
    let salt = SplitMix64::new(seed ^ 0x5EED_CAFE).next_u64();

    let total_requests = cfg.warmup + cfg.requests;
    let mut free_at = vec![0.0f64; n];
    let mut response = SampleSet::with_capacity(cfg.requests);
    let mut moments = Welford::new();
    let mut busy_time = 0.0f64;
    let mut measured_busy = 0.0f64;

    let overhead = if k > 1 { cfg.replication_overhead } else { 0.0 };

    let mut now = 0.0f64;
    let mut warmup_end_time = 0.0f64;
    for i in 0..total_requests {
        now += arrival_rng.exponential(lambda_total);
        if i == cfg.warmup {
            warmup_end_time = now;
        }
        // Per-request substream: identical across runs with different k, so
        // copy 0's service time is shared between the paired runs.
        let mut req_rng = Rng::seed_from(salt ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut best_done = f64::INFINITY;
        let mut services = [0.0f64; 16];
        let kk = k.min(16);
        for s in services.iter_mut().take(kk) {
            *s = cfg.service.sample(&mut req_rng);
        }
        let placements = if k == 1 {
            vec![req_rng.index(n)]
        } else {
            req_rng.distinct_indices(n, k)
        };
        // (server, start, svc) per copy, so cancellation can refund copies
        // that had not started when the winner finished.
        let mut copies_state: [(usize, f64, f64); 16] = [(0, 0.0, 0.0); 16];
        for (j, &srv) in placements.iter().enumerate() {
            let svc = if j < 16 {
                services[j]
            } else {
                cfg.service.sample(&mut req_rng)
            };
            let start = now.max(free_at[srv]);
            let done = start + svc;
            free_at[srv] = done;
            busy_time += svc;
            if i >= cfg.warmup {
                measured_busy += svc;
            }
            if j < 16 {
                copies_state[j] = (srv, start, svc);
            }
            if done < best_done {
                best_done = done;
            }
        }
        if cfg.cancellation && k > 1 {
            // Withdraw siblings that had not started service by the time
            // the winner completed. Safe under arrival-order processing:
            // no later arrival has touched these servers yet.
            for &(srv, start, svc) in copies_state.iter().take(k.min(16)) {
                if start >= best_done && start + svc == free_at[srv] {
                    free_at[srv] -= svc;
                    busy_time -= svc;
                    if i >= cfg.warmup {
                        measured_busy -= svc;
                    }
                }
            }
        }
        if i >= cfg.warmup {
            let rt = (best_done - now) + overhead;
            response.push(rt);
            moments.push(rt);
        }
    }
    let _ = busy_time;
    let measured_span = (now - warmup_end_time).max(f64::MIN_POSITIVE);
    RunResult {
        response,
        moments,
        achieved_utilization: measured_busy / (n as f64 * measured_span),
        measured_span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Deterministic, Exponential, Pareto};

    #[test]
    fn mm1_mean_matches_theory_single_copy() {
        // M/M/1 at rho: E[R] = 1/(1 - rho) for unit-mean service.
        for &rho in &[0.2, 0.5, 0.7] {
            let cfg = Config::new(Exponential::unit(), rho)
                .with_servers(20)
                .with_requests(300_000, 30_000);
            let out = run(&cfg, 42);
            let expect = 1.0 / (1.0 - rho);
            let got = out.moments.mean();
            assert!(
                (got - expect).abs() / expect < 0.06,
                "rho={rho}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn mm1_replicated_mean_matches_theory() {
        // Theorem 1's setting: with k=2 at base load rho, each server is
        // M/M/1 at 2*rho and E[R] = 1/(2(1-2*rho)).
        for &rho in &[0.1, 0.2, 0.3] {
            let cfg = Config::new(Exponential::unit(), rho)
                .with_copies(2)
                .with_servers(30)
                .with_requests(300_000, 30_000);
            let out = run(&cfg, 7);
            let expect = 1.0 / (2.0 * (1.0 - 2.0 * rho));
            let got = out.moments.mean();
            assert!(
                (got - expect).abs() / expect < 0.08,
                "rho={rho}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn achieved_utilization_tracks_k_rho() {
        let cfg = Config::new(Exponential::unit(), 0.15)
            .with_copies(2)
            .with_requests(150_000, 15_000);
        let out = run(&cfg, 3);
        assert!(
            (out.achieved_utilization - 0.30).abs() < 0.02,
            "util = {}",
            out.achieved_utilization
        );
    }

    #[test]
    fn deterministic_low_load_response_is_service() {
        // At very low load with deterministic service, response ~= 1 and
        // replication cannot help (no variability to exploit).
        let single = run(&Config::new(Deterministic::unit(), 0.01), 5);
        let double = run(&Config::new(Deterministic::unit(), 0.01).with_copies(2), 5);
        assert!((single.moments.mean() - 1.0).abs() < 0.01);
        assert!((double.moments.mean() - 1.0).abs() < 0.01);
    }

    #[test]
    fn replication_helps_tail_under_pareto() {
        // Fig 1(c): at load 0.2 with Pareto(2.1) service, k=2 shrinks the
        // 99.9th percentile by a large factor (paper reports ~5x).
        let base = Config::new(Pareto::unit_mean(2.1), 0.2).with_requests(200_000, 20_000);
        let mut single = run(&base.clone().with_copies(1), 11);
        let mut double = run(&base.with_copies(2), 11);
        let p999_1 = single.response.quantile(0.999);
        let p999_2 = double.response.quantile(0.999);
        assert!(
            p999_1 > 2.0 * p999_2,
            "tail gain too small: {p999_1} vs {p999_2}"
        );
    }

    #[test]
    fn overhead_applies_only_when_replicated() {
        let cfg1 = Config::new(Exponential::unit(), 0.1).with_replication_overhead(0.5);
        let cfg2 = cfg1.clone().with_copies(2);
        let r1 = run(&cfg1, 9);
        let r2 = run(&cfg2, 9);
        // Overhead 0.5 makes k=2 worse at this load even though min-of-two helps.
        assert!(r2.moments.mean() > r1.moments.mean());
        // And the k=1 run must be unaffected by the overhead setting.
        let r1_no = run(&Config::new(Exponential::unit(), 0.1), 9);
        assert!((r1.moments.mean() - r1_no.moments.mean()).abs() < 1e-12);
    }

    #[test]
    fn common_random_numbers_pair_runs() {
        // Same seed, same k: identical output.
        let cfg = Config::new(Exponential::unit(), 0.3).with_requests(10_000, 1_000);
        let a = run(&cfg, 123);
        let b = run(&cfg, 123);
        assert_eq!(a.moments.mean(), b.moments.mean());
        // Different seeds: different output.
        let c = run(&cfg, 124);
        assert_ne!(a.moments.mean(), c.moments.mean());
    }

    #[test]
    fn cancellation_reduces_utilization_and_latency() {
        // Tied requests: same offered load, but withdrawn siblings refund
        // their service, so realized utilization sits between rho and
        // 2*rho and response times improve.
        let base = Config::new(Exponential::unit(), 0.3)
            .with_copies(2)
            .with_requests(150_000, 15_000);
        let plain = run(&base.clone(), 21);
        let tied = run(&base.with_cancellation(true), 21);
        assert!(
            tied.achieved_utilization < plain.achieved_utilization - 0.05,
            "cancellation should shed load: {} vs {}",
            tied.achieved_utilization,
            plain.achieved_utilization
        );
        assert!(
            tied.moments.mean() < plain.moments.mean(),
            "cancellation should help latency: {} vs {}",
            tied.moments.mean(),
            plain.moments.mean()
        );
    }

    #[test]
    fn cancellation_extends_the_winning_region() {
        // At rho = 0.4 (> 1/3) plain replication loses for exponential
        // service, but tied requests shed enough load to keep winning.
        let base = Config::new(Exponential::unit(), 0.4).with_requests(150_000, 15_000);
        let single = run(&base.clone().with_copies(1), 31);
        let plain = run(&base.clone().with_copies(2), 31);
        let tied = run(&base.with_copies(2).with_cancellation(true), 31);
        assert!(plain.moments.mean() > single.moments.mean());
        assert!(
            tied.moments.mean() < single.moments.mean(),
            "tied {} vs single {}",
            tied.moments.mean(),
            single.moments.mean()
        );
    }

    #[test]
    #[should_panic(expected = "steady state")]
    fn overload_panics() {
        let cfg = Config::new(Exponential::unit(), 0.6).with_copies(2);
        let _ = run(&cfg, 1);
    }

    #[test]
    #[should_panic(expected = "servers")]
    fn too_many_copies_panics() {
        let cfg = Config::new(Exponential::unit(), 0.1)
            .with_servers(3)
            .with_copies(4);
        let _ = run(&cfg, 1);
    }
}
