//! # queuesim — the paper's §2.1 queueing model of replication
//!
//! *Low Latency via Redundancy* (Vulimiri et al., CoNEXT 2013) frames
//! redundancy as a race between two effects: taking the **minimum** of k
//! response-time samples (helps) versus multiplying server utilization by k
//! (hurts). This crate contains everything §2.1 uses to characterize that
//! trade-off:
//!
//! * [`model`] — an exact, allocation-light simulator of the paper's model:
//!   N identical FIFO servers, Poisson arrivals, k copies enqueued at k
//!   distinct uniformly-chosen servers, response = min over copies. Copies
//!   are *not* cancelled when a sibling finishes — exactly as in the paper,
//!   which is what makes utilization scale with k.
//! * [`threshold`] — the paper's metric of interest: the **threshold load**,
//!   the largest utilization below which replication improves mean response
//!   time. Found by a variance-reduced paired bisection (common random
//!   numbers between the k=1 and k=2 runs).
//! * [`analytic`] — closed forms and approximations: the M/M/1 result of
//!   Theorem 1 (threshold exactly 1/3), Pollaczek–Khinchine, a two-moment
//!   Gamma response approximation standing in for Myers–Vernon [23], and a
//!   regularly-varying tail approximation standing in for
//!   Olvera-Cravioto et al. [24].
//! * [`sweeps`] — the parameter sweeps behind Figures 1–4 (distribution
//!   families, random distributions, client-side overhead).
//!
//! ## The model in one picture
//!
//! ```text
//!            ┌────────┐
//!   Poisson  │ server │◄── copy 1 ──┐         response =
//!   arrivals │  FIFO  │             ├─ min(T₁, T₂)  (+ client overhead)
//!     λ = Nρ │ server │◄── copy 2 ──┘
//!            │  ...   │
//!            └────────┘
//! ```
//!
//! ## Example: Theorem 1 empirically
//!
//! ```
//! use queuesim::model::{run, Config};
//! use simcore::dist::Exponential;
//!
//! let base = Config::new(Exponential::unit(), 0.2).with_requests(60_000, 5_000);
//! let single = run(&base.clone().with_copies(1), 1);
//! let double = run(&base.with_copies(2), 1);
//! // Load 0.2 < 1/3: replication must win on the mean.
//! assert!(double.response.mean() < single.response.mean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod model;
pub mod sweeps;
pub mod threshold;

pub use model::{run, Config, RunResult};
pub use threshold::{threshold_load, ThresholdOptions};
