//! Named experiment configurations — one per figure of §2.2/§2.3.
//!
//! Each [`ExperimentSpec`] pins the knobs a figure varies (file size
//! distribution, cache:disk ratio, interference) while holding the §2.2
//! base configuration for everything else, exactly mirroring how the paper
//! presents Figures 5–11 as one-parameter perturbations of Figure 5.
//!
//! Scale note: the simulated cluster holds the paper's *ratios* (cache:disk,
//! file size vs transfer rate) but scales absolute capacities down ~16× so
//! every figure runs in seconds; response-time *shapes* are unaffected
//! because they depend only on the ratios and the per-operation service
//! constants.

use crate::cluster::{self, ClusterConfig, FilePopulation, NetProfile};
use crate::disk::DiskProfile;
use crate::service::{self, ServiceConfig};
use simcore::dist::{BoundedPareto, Deterministic, DynDist, Exponential, Mixture};
use simcore::rng::Rng;
use simcore::runner::Runner;
use simcore::stats::Ccdf;
use std::sync::Arc;

/// A named §2.2 experiment: everything that distinguishes one figure from
/// another.
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Figure-style name, e.g. `"fig5-base"`.
    pub name: &'static str,
    /// File-size distribution (bytes).
    pub file_size: DynDist,
    /// Total bytes stored across the cluster (before 2× replication).
    pub total_bytes: u64,
    /// Page-cache bytes per server.
    pub cache_bytes: u64,
    /// Optional extra stall on disk reads (kernel/controller hiccups).
    pub disk_noise: Option<DynDist>,
    /// Optional stall on every operation (multi-tenant interference).
    pub op_noise: Option<DynDist>,
}

impl std::fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("name", &self.name)
            .finish()
    }
}

const MB: u64 = 1024 * 1024;

/// Disk-path "hiccup" noise present even on dedicated hardware: a rare,
/// exponentially-sized stall on reads that actually reach the spindle
/// (controller retries, kernel writeback interference). This is what gives
/// the disk-bound figures their deep 99.9th-percentile tails — the paper's
/// Emulab nodes show ~150 ms tails at 20 % load that pure seek-time
/// queueing cannot produce — while leaving the in-memory Fig 11/12 path
/// untouched.
fn emulab_disk_noise() -> DynDist {
    Arc::new(Mixture::of_two(
        0.988,
        Deterministic::new(0.0),
        0.012,
        Exponential::with_mean(40.0e-3),
    ))
}

/// Multi-tenant interference on a public cloud (Fig 9): frequent stalls on
/// *every* operation, hitting each copy independently — which is exactly
/// why replication's win is dramatic there.
fn ec2_op_noise() -> DynDist {
    Arc::new(Mixture::of_two(
        0.94,
        Deterministic::new(0.0),
        0.06,
        Exponential::with_mean(40.0e-3),
    ))
}

impl ExperimentSpec {
    /// Fig 5: 4 KB deterministic files, cache:disk = 0.1, Emulab-like noise.
    pub fn fig5_base() -> Self {
        ExperimentSpec {
            name: "fig5-base",
            file_size: Arc::new(Deterministic::new(4096.0)),
            total_bytes: 320 * MB,
            cache_bytes: 16 * MB,
            disk_noise: Some(emulab_disk_noise()),
            op_noise: None,
        }
    }

    /// Fig 6: mean file size 0.04 KB instead of 4 KB (seek-dominated
    /// either way — the point of the figure). Population shrunk so the
    /// cache:disk ratio stays 0.1.
    pub fn fig6_tiny_files() -> Self {
        ExperimentSpec {
            name: "fig6-tiny-files",
            file_size: Arc::new(Deterministic::new(41.0)),
            total_bytes: 4 * MB,
            cache_bytes: 204 * 1024,
            disk_noise: Some(emulab_disk_noise()),
            op_noise: None,
        }
    }

    /// Fig 7: Pareto file sizes (mean 4 KB) instead of deterministic.
    pub fn fig7_pareto_files() -> Self {
        // Bounded Pareto, alpha 1.2, 256 B .. 4 MB, mean ~= 4 KB: heavy
        // spread without asking the simulated disk for terabyte files.
        let dist = BoundedPareto::new(1.2, 256.0, 4.0 * MB as f64);
        ExperimentSpec {
            name: "fig7-pareto-files",
            file_size: Arc::new(dist),
            total_bytes: 320 * MB,
            cache_bytes: 16 * MB,
            disk_noise: Some(emulab_disk_noise()),
            op_noise: None,
        }
    }

    /// Fig 8: cache:disk ratio 0.01 — more disk traffic, more variability,
    /// bigger replication win in the tail.
    pub fn fig8_cold_cache() -> Self {
        ExperimentSpec {
            name: "fig8-cold-cache",
            file_size: Arc::new(Deterministic::new(4096.0)),
            total_bytes: 800 * MB,
            cache_bytes: 4 * MB, // 4 MB / (2*800/4 = 400 MB) = 0.01
            disk_noise: Some(emulab_disk_noise()),
            op_noise: None,
        }
    }

    /// Fig 9: EC2 instead of Emulab — heavier multi-tenant interference on
    /// every operation.
    pub fn fig9_ec2() -> Self {
        ExperimentSpec {
            name: "fig9-ec2",
            op_noise: Some(ec2_op_noise()),
            ..Self::fig5_base()
        }
    }

    /// Fig 10: 400 KB files — transfer- and client-NIC-dominated, so the
    /// client-side cost of the second copy bites.
    pub fn fig10_large_files() -> Self {
        ExperimentSpec {
            name: "fig10-large-files",
            file_size: Arc::new(Deterministic::new(400.0 * 1024.0)),
            total_bytes: 640 * MB,
            cache_bytes: 32 * MB,
            disk_noise: Some(emulab_disk_noise()),
            op_noise: None,
        }
    }

    /// Fig 11: cache:disk = 2 — the whole dataset fits in memory and the
    /// disk never spins; replication only adds client-side cost.
    pub fn fig11_all_in_ram() -> Self {
        ExperimentSpec {
            name: "fig11-all-in-ram",
            file_size: Arc::new(Deterministic::new(4096.0)),
            total_bytes: 64 * MB, // per-server 32 MB, cache 64 MB => ratio 2
            cache_bytes: 64 * MB,
            disk_noise: Some(emulab_disk_noise()),
            op_noise: None,
        }
    }

    /// All §2.2 figures in order.
    pub fn all_disk_figures() -> Vec<ExperimentSpec> {
        vec![
            Self::fig5_base(),
            Self::fig6_tiny_files(),
            Self::fig7_pareto_files(),
            Self::fig8_cold_cache(),
            Self::fig9_ec2(),
            Self::fig10_large_files(),
            Self::fig11_all_in_ram(),
        ]
    }

    /// Materializes a [`ClusterConfig`] at a given replication factor and
    /// baseline load.
    pub fn to_config(
        &self,
        copies: usize,
        load: f64,
        requests: usize,
        seed: u64,
    ) -> ClusterConfig {
        let mut rng = Rng::seed_from(seed ^ 0xF11E5);
        let files = FilePopulation::generate(self.file_size.as_ref(), self.total_bytes, &mut rng);
        ClusterConfig {
            servers: 4,
            clients: 10,
            copies,
            files,
            cache_bytes: self.cache_bytes,
            disk: DiskProfile::default(),
            net: NetProfile::default(),
            disk_noise: self.disk_noise.clone(),
            op_noise: self.op_noise.clone(),
            load,
            requests,
            warmup: (requests / 10).max(1_000),
            seed,
        }
    }
}

/// One row of a §2.2 load sweep (the left/middle panels of Figs 5–11).
#[derive(Clone, Copy, Debug)]
pub struct LoadSweepRow {
    /// Baseline load.
    pub load: f64,
    /// Mean response (1 copy), seconds.
    pub mean_single: f64,
    /// Mean response (2 copies), seconds.
    pub mean_double: f64,
    /// 99.9th percentile (1 copy), seconds.
    pub p999_single: f64,
    /// 99.9th percentile (2 copies), seconds.
    pub p999_double: f64,
}

/// Sweeps the experiment across `loads`, running both replication factors.
/// Loads where 2 copies would saturate (≥ 0.5) report `NaN` for the
/// replicated columns, matching the paper's truncated 2-copy curves.
///
/// All `(load, copies)` cluster runs execute in parallel on the global
/// [`Runner`]; each run's randomness comes from `(seed, load, copies)`
/// alone, so results are bit-identical at any thread count.
pub fn run_load_sweep(
    spec: &ExperimentSpec,
    loads: &[f64],
    requests: usize,
    seed: u64,
) -> Vec<LoadSweepRow> {
    // Flatten to one task per (load, copies) pair so the runner balances
    // the expensive replicated runs across threads.
    let mut results = Runner::global().run(loads.len() * 2, |task| {
        let load = loads[task / 2];
        let copies = 1 + task % 2;
        if copies == 2 && 2.0 * load >= 0.98 {
            return None;
        }
        Some(cluster::run(&spec.to_config(copies, load, requests, seed)))
    });
    loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let mut single = results[2 * i].take().expect("single-copy run always present");
            let (mean_double, p999_double) = match results[2 * i + 1].take() {
                Some(mut double) => (double.response.mean(), double.response.quantile(0.999)),
                None => (f64::NAN, f64::NAN),
            };
            LoadSweepRow {
                load,
                mean_single: single.response.mean(),
                mean_double,
                p999_single: single.response.quantile(0.999),
                p999_double,
            }
        })
        .collect()
}

/// The right-hand panel of Figs 5–11: response CCDFs at one load for both
/// replication factors. The paired runs execute in parallel.
pub fn ccdf_at_load(
    spec: &ExperimentSpec,
    load: f64,
    requests: usize,
    points: usize,
    seed: u64,
) -> (Ccdf, Ccdf) {
    let (mut single, mut double) = Runner::global().pair(
        || cluster::run(&spec.to_config(1, load, requests, seed)),
        || cluster::run(&spec.to_config(2, load, requests, seed)),
    );
    (
        single.response.ccdf(points),
        double.response.ccdf(points),
    )
}

/// One row of the service-layer load-ramp experiment: the planner's
/// decision curve and the latency it bought, averaged over replications.
#[derive(Clone, Copy, Debug)]
pub struct ServiceRampRow {
    /// Bucket-center offered baseline load.
    pub load: f64,
    /// Fraction of requests the front-end duplicated (k = 2).
    pub frac_k2: f64,
    /// Mean response time, seconds.
    pub mean_response: f64,
    /// 99th-percentile response time, seconds (mean over replications).
    pub p99: f64,
    /// Hottest-server busy fraction in this bucket's time slice (mean
    /// over the replications that measured one; NaN when none did).
    pub peak_utilization: f64,
    /// k = 2 fraction of the hot-pair requests — those whose stored
    /// replica set includes the hottest server (NaN when none).
    pub frac_k2_hot: f64,
    /// k = 2 fraction of the cold-pair requests (NaN when none).
    pub frac_k2_cold: f64,
    /// Requests aggregated into this row.
    pub requests: usize,
}

/// The service-layer load-ramp experiment's aggregate outcome.
#[derive(Clone, Debug)]
pub struct ServiceRampOutcome {
    /// The decision/latency curve over the ramp.
    pub rows: Vec<ServiceRampRow>,
    /// Load at which the aggregated k = 2 fraction crosses ½.
    pub switch_off: f64,
    /// The offline §2.1 threshold for the configured workload.
    pub offline_threshold: f64,
    /// Copies cancelled per copy issued (0 with cancellation off).
    pub cancel_fraction: f64,
    /// Final live threshold, averaged over the replications that report
    /// one (equals `offline_threshold` in clairvoyant mode, NaN for fixed
    /// policies).
    pub live_threshold: f64,
    /// Final online mean-service estimate averaged over replications (NaN
    /// unless estimated mode ran warm).
    pub est_mean_service: f64,
    /// Final online SCV estimate averaged over replications (NaN unless
    /// estimated mode ran warm).
    pub est_scv: f64,
    /// Hottest-server peak busy fraction over the whole ramp (max over
    /// rows of [`ServiceRampRow::peak_utilization`]; NaN when nothing was
    /// measured).
    pub peak_utilization: f64,
    /// Load at which the **hot-pair** k = 2 fraction crosses ½ (NaN if it
    /// never does — e.g. fixed policies).
    pub switch_off_hot: f64,
    /// Load at which the **cold-pair** k = 2 fraction crosses ½. Under a
    /// per-server planner on a skewed mix this sits strictly above
    /// `switch_off_hot`: cold keys keep replicating longer.
    pub switch_off_cold: f64,
}

impl ServiceRampOutcome {
    /// Fraction of all measured requests that had a second copy
    /// dispatched — for hedged ramps, the overall fired-hedge fraction.
    pub fn overall_frac_k2(&self) -> f64 {
        let total: usize = self.rows.iter().map(|r| r.requests).sum();
        if total == 0 {
            return f64::NAN;
        }
        let k2: f64 = self
            .rows
            .iter()
            .filter(|r| r.requests > 0)
            .map(|r| r.frac_k2 * r.requests as f64)
            .sum();
        k2 / total as f64
    }
}

/// Mean over the finite entries of an iterator (NaN when none are).
fn finite_mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        if x.is_finite() {
            sum += x;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Runs `replications` independent load-ramp simulations of the sharded
/// service ([`crate::service`]) in parallel on the global [`Runner`] and
/// aggregates the per-bucket decision and latency curves. Replication
/// seeds are forked from `cfg.seed` by index, so the outcome is
/// bit-identical at any thread count.
///
/// The headline number is `switch_off`: the offered load at which the
/// planner's live per-request decision flips from k = 2 to k = 1, which
/// §2.1 predicts lands on `offline_threshold`.
pub fn run_service_ramp(cfg: &ServiceConfig, replications: usize) -> ServiceRampOutcome {
    run_service_ramp_on(&Runner::global(), cfg, replications)
}

/// [`run_service_ramp`] on an explicit [`Runner`].
pub fn run_service_ramp_on(
    runner: &Runner,
    cfg: &ServiceConfig,
    replications: usize,
) -> ServiceRampOutcome {
    assert!(replications >= 1);
    let mut root = Rng::seed_from(cfg.seed);
    let seeds: Vec<u64> = (0..replications)
        .map(|r| root.fork(r as u64).next_u64())
        .collect();
    let results = runner.run(replications, |r| {
        let mut c = cfg.clone();
        c.seed = seeds[r];
        service::run(&c)
    });

    let buckets = results[0].buckets.len();
    let mut rows = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let mut requests = 0usize;
        let mut k2 = 0usize;
        let mut hot = 0usize;
        let mut hot_k2 = 0usize;
        let mut weighted_mean = 0.0f64;
        let mut p99_sum = 0.0f64;
        let mut p99_n = 0usize;
        for res in &results {
            let bk = &res.buckets[b];
            requests += bk.requests;
            k2 += bk.k2_requests;
            hot += bk.hot_requests;
            hot_k2 += bk.hot_k2_requests;
            if bk.requests > 0 && bk.mean_response.is_finite() {
                weighted_mean += bk.mean_response * bk.requests as f64;
                p99_sum += bk.p99;
                p99_n += 1;
            }
        }
        let cold = requests - hot;
        rows.push(ServiceRampRow {
            load: results[0].buckets[b].load,
            frac_k2: if requests == 0 {
                f64::NAN
            } else {
                k2 as f64 / requests as f64
            },
            mean_response: if requests == 0 {
                f64::NAN
            } else {
                weighted_mean / requests as f64
            },
            p99: if p99_n == 0 {
                f64::NAN
            } else {
                p99_sum / p99_n as f64
            },
            peak_utilization: finite_mean(
                results.iter().map(|r| r.buckets[b].peak_utilization),
            ),
            frac_k2_hot: if hot == 0 {
                f64::NAN
            } else {
                hot_k2 as f64 / hot as f64
            },
            frac_k2_cold: if cold == 0 {
                f64::NAN
            } else {
                (k2 - hot_k2) as f64 / cold as f64
            },
            requests,
        });
    }

    let curve: Vec<(f64, f64)> = rows.iter().map(|r| (r.load, r.frac_k2)).collect();
    let hot_curve: Vec<(f64, f64)> = rows.iter().map(|r| (r.load, r.frac_k2_hot)).collect();
    let cold_curve: Vec<(f64, f64)> = rows.iter().map(|r| (r.load, r.frac_k2_cold)).collect();
    let issued: u64 = results.iter().map(|r| r.copies_issued).sum();
    let cancelled: u64 = results.iter().map(|r| r.copies_cancelled).sum();
    ServiceRampOutcome {
        switch_off: service::switch_off_load(&curve),
        switch_off_hot: service::switch_off_load(&hot_curve),
        switch_off_cold: service::switch_off_load(&cold_curve),
        offline_threshold: results[0].planner_threshold,
        cancel_fraction: cancelled as f64 / issued.max(1) as f64,
        live_threshold: finite_mean(results.iter().map(|r| r.live_threshold)),
        est_mean_service: finite_mean(results.iter().map(|r| r.est_mean_service)),
        est_scv: finite_mean(results.iter().map(|r| r.est_scv)),
        peak_utilization: rows
            .iter()
            .map(|r| r.peak_utilization)
            .fold(f64::NAN, f64::max),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_threshold_is_around_30_percent() {
        // Fig 5's headline: replication helps below ~30% load, hurts above.
        let spec = ExperimentSpec::fig5_base();
        let rows = run_load_sweep(&spec, &[0.1, 0.2, 0.4], 25_000, 11);
        assert!(
            rows[0].mean_double < rows[0].mean_single,
            "10% load: {:?}",
            rows[0]
        );
        assert!(
            rows[1].mean_double < rows[1].mean_single * 1.02,
            "20% load: {:?}",
            rows[1]
        );
        assert!(
            rows[2].mean_double > rows[2].mean_single,
            "40% load: {:?}",
            rows[2]
        );
    }

    #[test]
    fn tail_improvement_at_20_percent() {
        // Fig 5: ~2x 99.9th percentile cut at 20% load.
        let spec = ExperimentSpec::fig5_base();
        let rows = run_load_sweep(&spec, &[0.2], 60_000, 3);
        let r = &rows[0];
        assert!(
            r.p999_single > 1.5 * r.p999_double,
            "tail gain too small: {r:?}"
        );
    }

    #[test]
    fn ec2_gains_exceed_emulab_gains() {
        // Fig 9 vs Fig 5: interference should make replication's mean win
        // larger on "EC2".
        let emu = run_load_sweep(&ExperimentSpec::fig5_base(), &[0.15], 40_000, 7);
        let ec2 = run_load_sweep(&ExperimentSpec::fig9_ec2(), &[0.15], 40_000, 7);
        let gain = |r: &LoadSweepRow| r.mean_single / r.mean_double;
        assert!(
            gain(&ec2[0]) > gain(&emu[0]),
            "emulab gain {:.3} vs ec2 gain {:.3}",
            gain(&emu[0]),
            gain(&ec2[0])
        );
        assert!(gain(&ec2[0]) > 1.4, "ec2 gain {:.3}", gain(&ec2[0]));
    }

    #[test]
    fn large_files_kill_the_benefit() {
        // Fig 10: with 400 KB files replication stops being a clear win
        // even at low load (client/NIC cost comparable to service time).
        let rows = run_load_sweep(&ExperimentSpec::fig10_large_files(), &[0.15], 25_000, 5);
        let r = &rows[0];
        assert!(
            r.mean_double > 0.9 * r.mean_single,
            "unexpectedly large win with 400KB files: {r:?}"
        );
    }

    #[test]
    fn in_ram_replication_is_not_a_win() {
        // Fig 11: everything cached; replication only adds client cost.
        let rows = run_load_sweep(&ExperimentSpec::fig11_all_in_ram(), &[0.2], 40_000, 9);
        let r = &rows[0];
        assert!(
            r.mean_double > 0.95 * r.mean_single,
            "in-RAM replication should not win meaningfully: {r:?}"
        );
        // And the whole thing is sub-millisecond, unlike the disk figures.
        assert!(r.mean_single < 1.5e-3, "{r:?}");
    }

    #[test]
    fn service_ramp_switch_off_in_band_and_thread_invariant() {
        let mut cfg = ServiceConfig::ramp(Arc::new(Exponential::with_mean(1.0e-3)), 0.05, 0.6);
        cfg.requests = 30_000;
        cfg.warmup = 3_000;
        if let crate::service::Frontend::Adaptive { window, .. } = &mut cfg.frontend {
            *window = 768;
        }
        // The aggregate switch-off must land on the offline threshold, and
        // the whole outcome must be bit-identical at 1 and 8 threads.
        let serial = run_service_ramp_on(&Runner::serial(), &cfg, 3);
        let parallel = run_service_ramp_on(&Runner::new(8), &cfg, 3);
        assert!(
            (serial.switch_off - serial.offline_threshold).abs() < 0.05,
            "switch-off {} vs threshold {}",
            serial.switch_off,
            serial.offline_threshold
        );
        assert_eq!(serial.switch_off.to_bits(), parallel.switch_off.to_bits());
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.frac_k2.to_bits(), b.frac_k2.to_bits());
            assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
            assert_eq!(a.p99.to_bits(), b.p99.to_bits());
        }
    }

    #[test]
    fn estimated_ramp_aggregates_calibration_fields() {
        use crate::service::{Frontend, LoadModel, MomentSource};
        let mut cfg = ServiceConfig::ramp(Arc::new(Exponential::with_mean(1.0e-3)), 0.05, 0.55);
        cfg.requests = 12_000;
        cfg.warmup = 1_200;
        cfg.frontend = Frontend::Adaptive {
            window: 768,
            moments: MomentSource::Estimated {
                window: 4096,
                min_samples: 256,
                recalibrate: 512,
            },
            load_model: LoadModel::Global,
        };
        let out = run_service_ramp(&cfg, 2);
        // The calibration aggregates are finite means over replications and
        // land near the config truth.
        assert!(
            (out.est_mean_service - 1.0e-3).abs() / 1.0e-3 < 0.15,
            "est mean {}",
            out.est_mean_service
        );
        assert!((out.est_scv - 1.0).abs() < 0.4, "est scv {}", out.est_scv);
        assert!(
            (out.live_threshold - out.offline_threshold).abs() < 0.02,
            "live {} vs offline {}",
            out.live_threshold,
            out.offline_threshold
        );
        // Adaptive ramps spend roughly the sub-threshold fraction of the
        // ramp at k = 2; the aggregate fraction must reflect that.
        let f = out.overall_frac_k2();
        assert!(f > 0.3 && f < 0.9, "overall frac_k2 {f}");
        // Clairvoyant runs report NaN calibration fields.
        cfg.frontend = Frontend::Adaptive {
            window: 768,
            moments: MomentSource::Clairvoyant,
            load_model: LoadModel::Global,
        };
        let clair = run_service_ramp(&cfg, 2);
        assert!(clair.est_mean_service.is_nan() && clair.est_scv.is_nan());
        assert_eq!(
            clair.live_threshold.to_bits(),
            clair.offline_threshold.to_bits()
        );
    }

    #[test]
    fn tiny_files_behave_like_base() {
        // Fig 6: seek-dominated regardless of 41 B vs 4 KB.
        let base = run_load_sweep(&ExperimentSpec::fig5_base(), &[0.2], 25_000, 13);
        let tiny = run_load_sweep(&ExperimentSpec::fig6_tiny_files(), &[0.2], 25_000, 13);
        let rel = (tiny[0].mean_single - base[0].mean_single).abs() / base[0].mean_single;
        assert!(rel < 0.25, "tiny-file mean diverges from base: {rel}");
    }
}
