//! A sharded storage service whose replication factor is chosen **live**,
//! per request, by the planner — the paper's §2 decision rule running as
//! an online control loop instead of an offline sweep.
//!
//! The §2.2/§2.3 batch simulators ([`crate::cluster`], [`crate::memcached`])
//! fix the replication factor for a whole run; the paper's own analysis
//! (§2.1) and the follow-on literature (Joshi et al.'s redundancy-d
//! systems, Shah et al.'s "when do redundant requests reduce latency?")
//! ask the *online* question: given shifting load, when should the next
//! request be duplicated? This module answers it end-to-end:
//!
//! * **Shards** — `shards` keys placed on `servers` via the same
//!   consistent-hash ring as the batch store ([`crate::hashring`]), with
//!   `stored_replicas`-way placement (the paper's n, n+1, … rule).
//! * **Servers** — per-server queues on the [`simcore::event`] engine,
//!   FIFO (one request in service, queue behind it) or PS (processor
//!   sharing, all resident requests served at rate 1/n — the egalitarian
//!   model of the redundancy literature).
//! * **Front-end** — consults [`redundancy`]'s stack per request: a
//!   [`Policy`] (fixed `Single`/`Always`/`Hedged`, all usable on the load
//!   ramp) or the **adaptive** mode, where a windowed arrival-rate
//!   estimate feeds the live utilization into the [`Planner`]'s §2.1
//!   threshold and the request is duplicated exactly when the estimated
//!   load is below it. The load estimate itself has two shapes
//!   ([`LoadModel`]): **global** — one [`RateEstimator`] over the whole
//!   request stream, the balanced-load §2.1 assumption — or
//!   **per-server** — an [`EstimatorBank`] entry per server, fed every
//!   request's stored replica set at dispatch, with each request decided
//!   by [`Planner::decide_for`] against the *maximum* utilization of its
//!   own candidate pair, so cold keys keep replicating after hot keys
//!   have switched off (the per-server load signal Sparrow's batch
//!   sampling argues replicated dispatch needs). The threshold's moments
//!   come from a [`MomentSource`]: **clairvoyant** (config-supplied
//!   service moments, the partly-omniscient PR 3 mode) or **estimated**,
//!   where a [`MomentEstimator`] over per-copy service durations —
//!   reported at completion or, censoring-free, at dispatch
//!   ([`DemandReport`]) — re-derives mean, SCV, and threshold online: the
//!   fully self-calibrating loop (cf. Shah et al., whose answer to "when
//!   do redundant requests reduce latency?" hinges on the service-time
//!   shape, and Joshi et al.'s insistence that adaptive replication react
//!   to *measured* state).
//! * **Workload mix** — keys are uniform by default, or skewed per-shard
//!   via any [`DiscreteEmpirical`] popularity ([`zipf_popularity`]),
//!   which concentrates traffic on the hash ring's hot servers and
//!   exercises the contention the balanced-load threshold model does not
//!   see.
//! * **Cancellation** — on the first response, the request's
//!   [`CancelToken`] is cancelled and cancel messages race (one
//!   propagation delay) to the losing servers, which purge every copy the
//!   token marks: queued copies under FIFO (an in-service read cannot be
//!   un-seeked), queued *and* in-service copies under PS (a shared
//!   connection can be closed mid-transfer).
//!
//! A run drives an open-loop Poisson stream whose offered baseline load
//! ramps linearly from [`ServiceConfig::load_start`] to
//! [`ServiceConfig::load_end`] across the measured window, so one
//! simulation sweeps the whole load axis and the planner's switch-off
//! point is directly observable: the load at which the fraction of
//! requests issued with k = 2 crosses ½ ([`switch_off_load`]) should land
//! on the offline §2.1 threshold.
//!
//! Everything is bit-reproducible from the seed; replications fan out on
//! [`simcore::runner`] in [`crate::experiments::run_service_ramp`].

use crate::hashring::HashRing;
use redundancy::cancel::CancelToken;
use redundancy::estimator::{EstimatorBank, MomentEstimator, RateEstimator};
use redundancy::planner::{Planner, ThresholdCache, WorkloadProfile};
use redundancy::policy::Policy;
use simcore::dist::{BoundedPareto, DiscreteEmpirical, Distribution, DynDist, Weibull};
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::stats::SampleSet;
use simcore::time::SimTime;
use std::collections::VecDeque;
use std::sync::Arc;

/// Queueing discipline at each server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// First-in-first-out: one copy in service, the rest queued behind it.
    Fifo,
    /// Processor sharing: all resident copies progress at rate 1/n.
    Ps,
}

/// Where the adaptive front-end gets the service moments that
/// parameterize the planner's §2.1 threshold.
#[derive(Clone, Debug)]
pub enum MomentSource {
    /// Trust the config: threshold computed once from
    /// [`ServiceConfig::service`]'s exact moments (the partly-clairvoyant
    /// PR 3 behavior, kept as the reference mode).
    Clairvoyant,
    /// Measure: a [`MomentEstimator`] over the per-copy service durations
    /// reported by completing servers re-derives mean, SCV, and threshold
    /// online. Until `min_samples` durations have been observed the
    /// front-end falls back to the clairvoyant threshold (the warm-up
    /// fallback: a fresh deployment starts from its capacity-planning
    /// assumptions and then calibrates them away).
    Estimated {
        /// Moment-estimator window, in observed durations.
        window: usize,
        /// Observations required before the live moments are trusted.
        min_samples: usize,
        /// Threshold recalibration cadence, in observed durations. The
        /// recalibration itself is memoized on a quantized-SCV grid
        /// ([`ThresholdCache`]), so a converged estimator stops paying
        /// for the bisection entirely.
        recalibrate: usize,
    },
}

impl MomentSource {
    /// Estimated mode with figure-sized defaults: an 8192-duration window
    /// (large enough to see a heavy tail's rare giants), trust after 512
    /// observations, recalibrate every 1024.
    pub fn estimated() -> Self {
        MomentSource::Estimated {
            window: 8192,
            min_samples: 512,
            recalibrate: 1024,
        }
    }
}

/// Which load estimate the adaptive front-end compares against the §2.1
/// threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadModel {
    /// One cluster-wide [`RateEstimator`] over the request stream: the
    /// balanced-load assumption of §2.1, blind to the load *shape* (the
    /// PR 4 reference mode — bit-identical output, pinned by test).
    Global,
    /// One [`EstimatorBank`] entry per server, fed every request's stored
    /// replica set at dispatch; each request's decision compares the
    /// **maximum** utilization of its own candidate pair
    /// ([`Planner::decide_for`]) against the threshold, so requests whose
    /// servers are cold keep replicating after hot-server requests have
    /// switched off.
    PerServer,
}

/// When servers report per-copy service demands to the moment estimator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemandReport {
    /// At copy completion (the PR 4 behavior, kept as the reference).
    /// Under PS **cancellation** this channel is value-dependently
    /// censored — the purged in-flight loser is systematically the
    /// larger-demand copy, so the estimator would measure min(demands)
    /// and calibrate a biased threshold — which is why that combination
    /// is rejected in [`run`].
    Completion,
    /// At copy dispatch (arrival at the server), before any cancellation
    /// can intervene: every issued copy's demand is observed exactly
    /// once, making the moment sample censoring-free under every
    /// discipline/cancellation combination.
    Dispatch,
}

/// How the front-end picks the replication factor of each request.
#[derive(Clone, Debug)]
pub enum Frontend {
    /// A fixed [`Policy`] for every request (the batch simulators' mode).
    Fixed(Policy),
    /// Planner-driven: duplicate to 2 copies exactly while the estimated
    /// baseline utilization sits below the workload's §2.1 threshold.
    Adaptive {
        /// Window of the arrival-rate estimator(s), in inter-arrival gaps
        /// (per server in [`LoadModel::PerServer`] mode).
        window: usize,
        /// Where the threshold's service moments come from.
        moments: MomentSource,
        /// Global vs per-server load estimation.
        load_model: LoadModel,
    },
}

/// Elastic autoscaling policy: a controller on frontend lane 0
/// periodically reads the cluster-wide utilization estimate (the same
/// estimator stack the adaptive planner consults) and grows or shrinks
/// the fleet by whole steps between `ServiceConfig::servers` (the floor)
/// and [`Autoscale::max_servers`]. Servers join and leave the hash ring
/// in LIFO index order ([`crate::HashRing::add_server`] /
/// [`crate::HashRing::remove_server`]), shards whose ownership moved are
/// dual-dispatched to old and new owners for [`Autoscale::migration`]
/// seconds, and the per-server [`redundancy::estimator::EstimatorBank`]
/// grows/resets per-index on each change. Only the sharded runner
/// ([`crate::sharded::run_sharded`]) supports autoscaling; the
/// sequential [`run`] rejects it.
///
/// With autoscaling on, the arrival curve is no longer the linear
/// `load_start → load_end` ramp: request `i` offers a *diurnal* cluster
/// load `load_start + (peak_load − load_start)·sin(π·frac)` relative to
/// the configured baseline fleet, rising to `peak_load` (which may
/// exceed 1 — the whole point is that the fleet grows to absorb it) and
/// falling back. `load_start`/`load_end` then serve as the axis of the
/// reported buckets, which bin by *instantaneous per-live-server* load —
/// the ρ the planner's switch-off must track.
#[derive(Clone, Copy, Debug)]
pub struct Autoscale {
    /// Fleet ceiling (the floor is `ServiceConfig::servers`).
    pub max_servers: usize,
    /// Servers added or removed per scaling decision.
    pub step: usize,
    /// Scale out when estimated per-live-server utilization exceeds this.
    pub scale_out: f64,
    /// Scale in when it drops below this (hysteresis: `< scale_out`).
    pub scale_in: f64,
    /// Controller evaluation period, seconds (floored at the propagation
    /// delay — topology broadcasts travel on cross-shard wires).
    pub period: f64,
    /// Dual-dispatch window after each topology change, seconds:
    /// requests landing on a shard whose owners moved are sent to both
    /// old and new owners until the window closes.
    pub migration: f64,
    /// Peak of the diurnal cluster-load curve, relative to the baseline
    /// fleet of `ServiceConfig::servers` (may exceed 1).
    pub peak_load: f64,
}

/// Full configuration of one service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Storage servers.
    pub servers: usize,
    /// Key shards placed on the ring.
    pub shards: usize,
    /// Stored copies per shard (placement; the query-time k can only pick
    /// among these).
    pub stored_replicas: usize,
    /// Virtual nodes per server on the hash ring.
    pub vnodes: usize,
    /// Per-server queueing discipline.
    pub discipline: Discipline,
    /// Service-time distribution of one copy at one server.
    pub service: DynDist,
    /// Per-shard popularity of the request mix (`None` = uniform keys).
    /// Samples are floored and clamped into `[0, shards)`; build with
    /// [`zipf_popularity`] for the classic skewed mix.
    pub popularity: Option<Arc<DiscreteEmpirical>>,
    /// Replication decision mode.
    pub frontend: Frontend,
    /// Logical frontend lanes: the adaptive frontend is decomposed into
    /// this many independent actors, each owning a contiguous `1/lanes`
    /// slice of the key shards with its own forked RNG substreams and its
    /// own estimator state, exchanging periodic load summaries. This is a
    /// *model* parameter — it changes which simulation runs (lanes > 1 is
    /// a different, decomposed arrival process) — while the engine-shard
    /// *placement* of the lanes is a pure execution detail that never
    /// affects output. Only [`crate::sharded::run_sharded`] supports
    /// lanes > 1; the sequential [`run`] rejects it. Default 1, which is
    /// byte-identical to the pre-lane frontend.
    pub frontend_lanes: usize,
    /// Period of the cross-lane load-summary exchange, seconds. Floored
    /// at the propagation delay (the engine lookahead — summaries travel
    /// on cross-shard wires and cannot beat it); `0.0` means "as often as
    /// the lookahead allows". Ignored when `frontend_lanes == 1` (a lone
    /// lane has no peers).
    pub summary_period: f64,
    /// When servers report per-copy service demands to the moment
    /// estimator (only consulted in [`MomentSource::Estimated`] mode).
    pub demand_report: DemandReport,
    /// Cancel losing copies once the first response arrives.
    pub cancellation: bool,
    /// One-way propagation delay between clients and servers, seconds.
    pub propagation: f64,
    /// Client-side latency cost per *extra issued copy* (added to the
    /// response time, and fed to the planner as its §2.3 overhead).
    pub client_overhead: f64,
    /// Offered baseline (k = 1) per-server utilization at the start of the
    /// measured window (warm-up runs entirely at this load).
    pub load_start: f64,
    /// Offered baseline utilization at the end of the measured window.
    pub load_end: f64,
    /// Ramp buckets for the reported decision/latency curves.
    pub buckets: usize,
    /// Measured requests.
    pub requests: usize,
    /// Warm-up requests (run at `load_start`).
    pub warmup: usize,
    /// Elastic autoscaling policy (`None` = the fixed fleet every other
    /// experiment runs; see [`Autoscale`] for what turning it on changes).
    pub autoscale: Option<Autoscale>,
    /// RNG seed.
    pub seed: u64,
}

impl ServiceConfig {
    /// An adaptive load-ramp configuration with figure-sized defaults:
    /// 8 servers, 1024 shards stored 2-way, FIFO service, cancellation off
    /// (the §2.1 model the planner's threshold is derived from does not
    /// cancel).
    pub fn ramp(service: DynDist, load_start: f64, load_end: f64) -> Self {
        ServiceConfig {
            servers: 8,
            shards: 1024,
            stored_replicas: 2,
            vnodes: 64,
            discipline: Discipline::Fifo,
            service,
            popularity: None,
            frontend: Frontend::Adaptive {
                window: 2048,
                moments: MomentSource::Clairvoyant,
                load_model: LoadModel::Global,
            },
            frontend_lanes: 1,
            summary_period: 0.0,
            demand_report: DemandReport::Completion,
            cancellation: false,
            propagation: 50.0e-6,
            client_overhead: 0.0,
            load_start,
            load_end,
            buckets: 22,
            requests: 120_000,
            warmup: 12_000,
            autoscale: None,
            seed: 0x5E81CE,
        }
    }

    /// The planner for this workload (mean/scv from the service
    /// distribution, overhead from the config).
    pub fn planner(&self) -> Planner {
        Planner::new(WorkloadProfile {
            mean_service: self.service.mean(),
            scv: self.service.scv(),
            client_overhead: self.client_overhead,
        })
    }

    /// Offered baseline load of request `i` (warm-up requests all run at
    /// `load_start`; the ramp spans the measured portion).
    pub(crate) fn offered(&self, i: usize) -> f64 {
        if i < self.warmup || self.requests <= 1 {
            self.load_start
        } else {
            let frac = (i - self.warmup) as f64 / (self.requests - 1) as f64;
            self.load_start + (self.load_end - self.load_start) * frac
        }
    }

    /// Offered *cluster* load of request `i` relative to the baseline
    /// fleet of `servers`: the linear ramp without autoscaling, the
    /// diurnal half-sine (rising to [`Autoscale::peak_load`] and back to
    /// `load_start`) with it. This drives arrival pacing; per-live-server
    /// load is this times `servers / live_servers`.
    pub(crate) fn offered_cluster(&self, i: usize) -> f64 {
        match &self.autoscale {
            None => self.offered(i),
            Some(a) => {
                if i < self.warmup || self.requests <= 1 {
                    self.load_start
                } else {
                    let frac = (i - self.warmup) as f64 / (self.requests - 1) as f64;
                    self.load_start
                        + (a.peak_load - self.load_start) * (std::f64::consts::PI * frac).sin()
                }
            }
        }
    }
}

/// How a popularity sample maps to a shard id — the single definition
/// shared by the simulation's dispatch path and [`stored_load_shares`]'s
/// accounting: floored, clamped into `[0, shards)`.
pub(crate) fn shard_of(sample: f64, shards: usize) -> usize {
    (sample.floor().max(0.0) as usize).min(shards - 1)
}

/// Zipf(`exponent`) popularity over `shards` shards: shard `i` carries
/// weight `(i+1)^-exponent`. `exponent = 0` is uniform; ~0.9–1.1 matches
/// measured key-value traffic skews.
///
/// # Panics
/// Panics on zero shards or a negative exponent.
pub fn zipf_popularity(shards: usize, exponent: f64) -> Arc<DiscreteEmpirical> {
    assert!(shards >= 1, "popularity over zero shards");
    assert!(exponent >= 0.0, "negative Zipf exponent {exponent}");
    let pairs: Vec<(f64, f64)> = (0..shards)
        .map(|i| (i as f64, ((i + 1) as f64).powf(-exponent)))
        .collect();
    Arc::new(DiscreteEmpirical::new(&pairs))
}

/// A Weibull service law with the given `shape` rescaled to `mean` —
/// shape < 1 is heavy-tailed (SCV > 1), shape > 1 light (SCV < 1).
pub fn weibull_with_mean(shape: f64, mean: f64) -> Weibull {
    assert!(mean > 0.0);
    // Weibull's mean is proportional to its scale.
    Weibull::new(shape, mean / Weibull::new(shape, 1.0).mean())
}

/// A BoundedPareto(α) service law spanning `spread` orders of support
/// (`hi = spread·lo`), rescaled to `mean`. α close to 1 with a wide spread
/// gives the large-SCV heavy tails of Figure 2(b).
pub fn bounded_pareto_with_mean(alpha: f64, spread: f64, mean: f64) -> BoundedPareto {
    assert!(mean > 0.0 && spread > 1.0);
    // Moments scale linearly with (lo, hi), so fit at lo = 1 and rescale.
    let unit = BoundedPareto::new(alpha, 1.0, spread);
    let s = mean / unit.mean();
    BoundedPareto::new(alpha, s, spread * s)
}

/// Expected fraction of dispatched copies each server receives under
/// k = 1 dispatch, given the config's popularity mix: every shard spreads
/// its weight uniformly over its `stored_replicas` ring servers (the
/// front-end load-balances single reads across stored copies). Sums to 1;
/// the max entry over `1/servers` is the hot-server multiplier that
/// drives the skewed-workload contention.
pub fn stored_load_shares(cfg: &ServiceConfig) -> Vec<f64> {
    assert!(
        cfg.servers >= 1 && cfg.shards >= 1,
        "load shares need at least one server and one shard"
    );
    assert!(
        cfg.stored_replicas >= 1 && cfg.stored_replicas <= cfg.servers,
        "cannot store {} replicas on {} servers",
        cfg.stored_replicas,
        cfg.servers
    );
    // Per-shard weights, attributed exactly as `run` maps popularity
    // samples to shards: by *value* (floored and clamped), never by the
    // distribution's construction order.
    let mut weights = vec![1.0 / cfg.shards as f64; cfg.shards];
    if let Some(d) = &cfg.popularity {
        weights.fill(0.0);
        for (&v, &p) in d.values().iter().zip(d.probs()) {
            weights[shard_of(v, cfg.shards)] += p;
        }
    }
    let ring = HashRing::new(cfg.servers, cfg.vnodes);
    let mut shares = vec![0.0f64; cfg.servers];
    for (shard, &w) in weights.iter().enumerate() {
        let stored = ring.replicas(shard as u64, cfg.stored_replicas);
        for &s in &stored {
            shares[s] += w / stored.len() as f64;
        }
    }
    shares
}

/// The server carrying the largest expected k = 1 dispatch share under
/// this config's popularity mix (ties resolve to the lowest index) — the
/// "hot server" every skew experiment's accounting pivots on. With uniform
/// popularity this is just the ring's most-loaded server.
pub fn hottest_stored_server(cfg: &ServiceConfig) -> usize {
    let shares = stored_load_shares(cfg);
    let mut hot = 0;
    for (s, &w) in shares.iter().enumerate() {
        if w > shares[hot] {
            hot = s;
        }
    }
    hot
}

/// One bucket of the load ramp.
#[derive(Clone, Copy, Debug)]
pub struct RampBucket {
    /// Bucket-center offered baseline load.
    pub load: f64,
    /// Measured requests issued in this bucket.
    pub requests: usize,
    /// Of those, how many actually had a second copy dispatched (for
    /// hedged policies this counts fired hedges, not the arrival-time
    /// intent).
    pub k2_requests: usize,
    /// Mean response time, seconds (NaN when empty).
    pub mean_response: f64,
    /// 99th-percentile response time, seconds (NaN when empty).
    pub p99: f64,
    /// Largest per-server busy fraction over this bucket's time slice
    /// (max over servers of busy/elapsed between the first arrivals of
    /// this and the next bucket; NaN for a zero-width slice). FIFO busy
    /// is accrued as a lump at service start, so a saturated stretch can
    /// legitimately read slightly above 1.
    pub peak_utilization: f64,
    /// Of this bucket's measured requests, how many were **hot-pair**
    /// requests — their shard's stored replicas include the config's
    /// [`hottest_stored_server`].
    pub hot_requests: usize,
    /// Of the hot-pair requests, how many actually dispatched 2 copies.
    pub hot_k2_requests: usize,
}

impl RampBucket {
    /// Fraction of the bucket's requests issued with 2 copies (NaN when
    /// empty).
    pub fn frac_k2(&self) -> f64 {
        if self.requests == 0 {
            f64::NAN
        } else {
            self.k2_requests as f64 / self.requests as f64
        }
    }

    /// k = 2 fraction of the bucket's hot-pair requests (NaN when none).
    pub fn frac_k2_hot(&self) -> f64 {
        if self.hot_requests == 0 {
            f64::NAN
        } else {
            self.hot_k2_requests as f64 / self.hot_requests as f64
        }
    }

    /// k = 2 fraction of the bucket's cold-pair requests — those whose
    /// stored replica set avoids the hot server (NaN when none).
    pub fn frac_k2_cold(&self) -> f64 {
        let cold = self.requests - self.hot_requests;
        if cold == 0 {
            f64::NAN
        } else {
            (self.k2_requests - self.hot_k2_requests) as f64 / cold as f64
        }
    }
}

/// Everything one service run measures.
#[derive(Debug)]
pub struct ServiceResult {
    /// Per-request response times (first copy wins, plus per-extra-copy
    /// client overhead), seconds.
    pub response: SampleSet,
    /// Decision and latency curves over the offered-load ramp.
    pub buckets: Vec<RampBucket>,
    /// Load at which the k = 2 fraction crosses ½ (NaN if it never does).
    pub switch_off: f64,
    /// The offline §2.1 threshold the planner computed for this workload
    /// from the *config* moments (the clairvoyant reference).
    pub planner_threshold: f64,
    /// The threshold in force when the run ended: equals
    /// `planner_threshold` in clairvoyant mode, the last recalibrated
    /// value in estimated mode, NaN for fixed policies.
    pub live_threshold: f64,
    /// Final online estimate of the mean service time (NaN unless
    /// estimated mode ran warm).
    pub est_mean_service: f64,
    /// Final online estimate of the service SCV (NaN unless estimated
    /// mode ran warm).
    pub est_scv: f64,
    /// Threshold recalibrations performed (0 outside estimated mode).
    pub recalibrations: u64,
    /// Copies dispatched to servers (includes warm-up).
    pub copies_issued: u64,
    /// Copies purged by cancellation before completing service.
    pub copies_cancelled: u64,
    /// Mean per-server busy fraction over the whole run.
    pub mean_utilization: f64,
    /// Measured requests completed (must equal `requests`).
    pub completed: usize,
}

/// Interpolated load at which a `(load, frac_k2)` curve (ascending loads)
/// last crosses from ≥ ½ to < ½ — the planner's observable switch-off
/// point.
///
/// Degenerate curves report **NaN** rather than an interpolated artifact:
///
/// * an empty curve, or one with fewer than two usable points (a single
///   bucket has no crossing to interpolate);
/// * a curve that never reaches ½ (e.g. a fixed `Single` policy) or never
///   drops below it (a ramp entirely inside the replicate region);
/// * points with a non-finite load or NaN fraction are skipped entirely
///   (empty buckets), so a crossing can legitimately interpolate across a
///   gap.
///
/// A **non-monotone** curve (estimator jitter oscillating around the
/// threshold) reports the *last* downward crossing — the load beyond which
/// the planner never re-enables replication. A plateau sitting exactly at
/// ½ that then drops reports the plateau's last point.
pub fn switch_off_load(points: &[(f64, f64)]) -> f64 {
    let mut crossing = f64::NAN;
    let mut prev: Option<(f64, f64)> = None;
    for &(load, frac) in points {
        if !load.is_finite() || frac.is_nan() {
            continue;
        }
        if let Some((l0, f0)) = prev {
            if f0 >= 0.5 && frac < 0.5 {
                // f0 > frac is guaranteed here, so the interpolation is a
                // true convex combination of [l0, load].
                crossing = l0 + (load - l0) * (f0 - 0.5) / (f0 - frac);
            }
        }
        prev = Some((load, frac));
    }
    crossing
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A request enters the front-end.
    Arrive { req: u32 },
    /// A copy reaches its server.
    CopyArrive { req: u32, server: u16 },
    /// The hedging delay of a [`Policy::Hedged`] request elapsed.
    HedgeFire { req: u32 },
    /// The in-service FIFO copy at `server` completes.
    FifoDepart { server: u16 },
    /// The PS job set at `server` may have drained its minimum; stale
    /// epochs are ignored (lazy deletion).
    PsDepart { server: u16, epoch: u32 },
    /// A server's response reaches the client.
    Response { req: u32, server: u16 },
    /// The front-end's cancel message reaches `server`.
    CancelMsg { server: u16 },
}

struct ReqState {
    arrival: f64,
    offered: f64,
    /// Chosen targets, dispatch order (hedge copies are the tail).
    targets: Vec<u16>,
    /// Copies dispatched so far.
    sent: u8,
    /// The shard's stored replica set includes the config's hottest
    /// server (per-temperature decision accounting).
    hot: bool,
    done: bool,
    token: CancelToken,
}

pub(crate) struct FifoServer {
    pub(crate) queue: VecDeque<(u32, f64)>,
    /// `(request id, service demand)` of the copy in service, if any —
    /// the demand is re-surfaced at departure as the server's measured
    /// duration report to the moment estimator.
    pub(crate) in_service: Option<(u32, f64)>,
    pub(crate) busy: f64,
}

pub(crate) struct PsJob {
    pub(crate) req: u32,
    /// Total service demand (reported to the moment estimator at
    /// completion).
    pub(crate) size: f64,
    pub(crate) remaining: f64,
}

pub(crate) struct PsServer {
    pub(crate) jobs: Vec<PsJob>,
    pub(crate) last: f64,
    pub(crate) epoch: u32,
    pub(crate) busy: f64,
}

impl PsServer {
    /// Advances the shared-progress clock to `now`.
    pub(crate) fn advance(&mut self, now: f64) {
        let elapsed = now - self.last;
        if elapsed > 0.0 && !self.jobs.is_empty() {
            let share = elapsed / self.jobs.len() as f64;
            for j in &mut self.jobs {
                j.remaining -= share;
            }
            self.busy += elapsed;
        }
        self.last = now;
    }

    /// Next departure instant for the current job set, if any.
    pub(crate) fn next_departure(&self, now: f64) -> Option<f64> {
        let min = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            Some(now + min.max(0.0) * self.jobs.len() as f64)
        } else {
            None
        }
    }
}

/// Shared configuration validation for [`run`] and the sharded engine
/// port ([`crate::sharded::run_sharded`]) — both entry points reject the
/// same inconsistent configurations with the same panic messages.
pub(crate) fn validate_config(cfg: &ServiceConfig) {
    assert!(cfg.servers > 0 && cfg.shards > 0 && cfg.requests > 0);
    assert!(
        cfg.stored_replicas >= 1 && cfg.stored_replicas <= cfg.servers,
        "cannot store {} replicas on {} servers",
        cfg.stored_replicas,
        cfg.servers
    );
    assert!(
        (0.0..1.0).contains(&cfg.load_start) && (0.0..1.0).contains(&cfg.load_end),
        "loads must be in [0,1)"
    );
    assert!(
        cfg.load_start > 0.0 && cfg.load_end > 0.0,
        "zero load generates no arrivals"
    );
    assert!(cfg.buckets >= 1);
    // Event/bookkeeping ids are u16 (servers) and u8 (copies per request).
    assert!(cfg.servers <= u16::MAX as usize, "too many servers");
    assert!(cfg.stored_replicas <= u8::MAX as usize, "too many stored replicas");
    let max_load = cfg.load_start.max(cfg.load_end);
    match &cfg.frontend {
        Frontend::Fixed(policy) => {
            policy.validate().expect("invalid fixed policy");
            assert!(
                policy.max_copies() <= cfg.stored_replicas,
                "policy wants {} copies but only {} are stored",
                policy.max_copies(),
                cfg.stored_replicas
            );
            match *policy {
                // A hedge only duplicates the slow tail, so `k·load` is a
                // wild overestimate of its offered work; the general
                // loads-in-[0, 1) assert above is the only static
                // stability requirement. (A hedge ramp whose fire-rate
                // feedback saturates a server is a legitimate experiment
                // outcome, not a config error.)
                Policy::Hedged { .. } => {}
                _ => assert!(
                    policy.max_copies() as f64 * max_load < 1.0,
                    "fixed policy saturates: k*load = {}",
                    policy.max_copies() as f64 * max_load
                ),
            }
        }
        Frontend::Adaptive { moments, .. } => {
            assert!(
                cfg.stored_replicas >= 2,
                "adaptive mode needs at least 2 stored replicas"
            );
            assert!(
                2.0 * cfg.load_start < 1.0,
                "adaptive ramp starts saturated: 2*load_start = {}",
                2.0 * cfg.load_start
            );
            if let MomentSource::Estimated {
                window,
                min_samples,
                recalibrate,
            } = moments
            {
                assert!(
                    *min_samples >= 2 && *min_samples <= *window,
                    "min_samples must be in [2, window]"
                );
                assert!(*recalibrate >= 1, "recalibrate cadence must be >= 1");
                // Completion reporting samples completed copies. FIFO
                // cancellation only purges *queued* copies — a
                // value-independent drop — but PS cancellation kills the
                // in-flight loser, which is systematically the
                // larger-demand copy, so the estimator would measure
                // min(demands) and calibrate a biased threshold. The
                // unbiased observation channel is dispatch-time reporting
                // ([`DemandReport::Dispatch`]), which observes every
                // issued copy's demand before cancellation can censor it.
                assert!(
                    !(cfg.cancellation
                        && cfg.discipline == Discipline::Ps
                        && cfg.demand_report == DemandReport::Completion),
                    "completion-reported moments are censored-biased under PS \
                     cancellation; use DemandReport::Dispatch"
                );
            }
        }
    }
    if let Some(pop) = &cfg.popularity {
        assert!(
            !pop.values().is_empty(),
            "popularity distribution is empty"
        );
    }
    assert!(cfg.frontend_lanes >= 1, "need at least one frontend lane");
    assert!(
        cfg.summary_period >= 0.0 && cfg.summary_period.is_finite(),
        "summary period must be finite and non-negative"
    );
    if cfg.frontend_lanes > 1 {
        // Lane ids ride in u16 event fields alongside server ids.
        assert!(cfg.frontend_lanes <= u16::MAX as usize, "too many frontend lanes");
        assert!(
            cfg.shards.is_multiple_of(cfg.frontend_lanes),
            "frontend lanes must divide the shard count evenly \
             ({} shards across {} lanes)",
            cfg.shards,
            cfg.frontend_lanes
        );
        // Each lane draws keys uniformly from its own slice; conditional
        // per-slice sampling of an arbitrary popularity mix is not
        // implemented.
        assert!(
            cfg.popularity.is_none(),
            "skewed popularity requires a single frontend lane"
        );
        assert!(
            cfg.frontend_lanes <= cfg.warmup + cfg.requests,
            "more frontend lanes than requests"
        );
    }
    if let Some(a) = &cfg.autoscale {
        assert!(
            matches!(cfg.frontend, Frontend::Adaptive { .. }),
            "autoscaling needs the adaptive frontend (the controller reads \
             the same utilization estimate the planner does)"
        );
        assert!(
            a.max_servers >= cfg.servers,
            "autoscale ceiling {} below the baseline fleet {}",
            a.max_servers,
            cfg.servers
        );
        assert!(a.max_servers <= u16::MAX as usize, "too many servers");
        assert!(a.step >= 1, "autoscale step must be >= 1");
        assert!(
            a.scale_in > 0.0 && a.scale_in < a.scale_out && a.scale_out < 1.0,
            "autoscale thresholds need 0 < scale_in < scale_out < 1 \
             (got {} / {})",
            a.scale_in,
            a.scale_out
        );
        assert!(
            a.period > 0.0 && a.period.is_finite(),
            "autoscale period must be positive and finite"
        );
        assert!(
            a.migration >= 0.0 && a.migration.is_finite(),
            "migration window must be finite and non-negative"
        );
        assert!(
            a.peak_load >= cfg.load_start && a.peak_load.is_finite(),
            "diurnal peak below the starting load"
        );
        // The peak must be absorbable: at the full fleet it has to sit at
        // or below the scale-out trigger, or the controller would pin the
        // ceiling while per-server load keeps climbing toward saturation.
        assert!(
            a.peak_load * cfg.servers as f64 / a.max_servers as f64 <= a.scale_out,
            "diurnal peak saturates even the full fleet: \
             peak {} x {} / {} servers > scale_out {}",
            a.peak_load,
            cfg.servers,
            a.max_servers,
            a.scale_out
        );
    }
}

/// Runs the service simulation.
///
/// # Panics
/// Panics on inconsistent configuration: no servers/shards/requests, more
/// stored replicas than servers, a fixed policy issuing more copies than
/// stored replicas, loads outside `[0, 1)` (the only stability bound a
/// tail-only `Hedged` ramp needs), an offered load that saturates the
/// cluster (`max_copies × load_end ≥ 1` for `Always` policies,
/// `2 × load_start ≥ 1` for the adaptive mode, which replicates only
/// below the sub-½ threshold), estimated-mode parameters with
/// `min_samples` outside `[2, window]`, or **completion-reported**
/// estimated moments combined with PS cancellation (the purged in-flight
/// loser censors the completion-based sample — see the validation
/// comment; [`DemandReport::Dispatch`] is the censoring-free channel that
/// makes the combination legal).
pub fn run(cfg: &ServiceConfig) -> ServiceResult {
    validate_config(cfg);
    assert!(
        cfg.frontend_lanes == 1,
        "the sequential runner supports a single frontend lane; \
         use run_sharded for frontend_lanes > 1"
    );
    assert!(
        cfg.autoscale.is_none(),
        "the sequential runner does not autoscale; use run_sharded"
    );

    let mean_service = cfg.service.mean();
    assert!(mean_service.is_finite() && mean_service > 0.0);
    let planner = cfg.planner();
    let threshold = planner.threshold_load();

    let mut root = Rng::seed_from(cfg.seed);
    let mut arrival_rng = root.fork(1);
    let mut place_rng = root.fork(2);
    let mut svc_rng = root.fork(3);

    let ring = HashRing::new(cfg.servers, cfg.vnodes);
    let total = cfg.warmup + cfg.requests;

    // Load estimation: one global rate estimator, or one per server
    // (fed each request's full stored replica set at dispatch, so the
    // per-server estimate measures where k = 1 traffic *would* land —
    // independent of the replication decisions actually taken).
    let (mut estimator, mut bank) = match &cfg.frontend {
        Frontend::Adaptive {
            window, load_model, ..
        } => match load_model {
            LoadModel::Global => (Some(RateEstimator::new(*window)), None),
            LoadModel::PerServer => (None, Some(EstimatorBank::new(cfg.servers, *window))),
        },
        Frontend::Fixed(_) => (None, None),
    };
    // Online service-moment estimation (estimated mode only): the
    // estimator ingests per-copy service durations as servers report
    // completions; the threshold is re-derived on a cadence through a
    // quantized-SCV memo cache. Until `min_samples` durations are in, the
    // clairvoyant threshold is the warm-up fallback.
    let (mut moment_est, min_samples, recalibrate) = match &cfg.frontend {
        Frontend::Adaptive {
            moments:
                MomentSource::Estimated {
                    window,
                    min_samples,
                    recalibrate,
                },
            ..
        } => (
            Some(MomentEstimator::new(*window)),
            *min_samples,
            *recalibrate as u64,
        ),
        _ => (None, 0, 1),
    };
    let mut threshold_cache = ThresholdCache::new();
    let mut live_threshold = threshold;
    // The per-server path routes every decision through
    // `Planner::decide_for`; this planner carries whichever moments are
    // currently trusted (config at start, recalibrated on the estimated
    // cadence), so its cache lookups track `live_threshold`. The two are
    // deliberately parallel state — the global path must keep reading
    // the direct-bisected `threshold` until its first recalibration
    // (bit-identity with the pre-per-server code is pinned by test), so
    // they are updated in lockstep in `observe_service!` and must stay
    // that way.
    let mut live_planner = planner;
    let mut observed: u64 = 0;
    let mut recalibrations: u64 = 0;

    // Hot-pair accounting: a request is "hot" when its shard's stored
    // replica set includes the most-loaded server of the configured mix.
    let hot_server = hottest_stored_server(cfg);
    let hot_shard: Vec<bool> = (0..cfg.shards)
        .map(|sh| {
            ring.replicas(sh as u64, cfg.stored_replicas)
                .contains(&hot_server)
        })
        .collect();

    let mut fifo: Vec<FifoServer> = Vec::new();
    let mut ps: Vec<PsServer> = Vec::new();
    match cfg.discipline {
        Discipline::Fifo => {
            fifo = (0..cfg.servers)
                .map(|_| FifoServer {
                    queue: VecDeque::new(),
                    in_service: None,
                    busy: 0.0,
                })
                .collect();
        }
        Discipline::Ps => {
            ps = (0..cfg.servers)
                .map(|_| PsServer {
                    jobs: Vec::new(),
                    last: 0.0,
                    epoch: 0,
                    busy: 0.0,
                })
                .collect();
        }
    }

    let mut reqs: Vec<ReqState> = Vec::with_capacity(total);
    let mut response = SampleSet::with_capacity(cfg.requests);
    // Per-bucket accumulation (measured requests only).
    let span = cfg.load_end - cfg.load_start;
    let bucket_of = |offered: f64| -> usize {
        if span.abs() < f64::EPSILON {
            0
        } else {
            (((offered - cfg.load_start) / span) * cfg.buckets as f64)
                .floor()
                .clamp(0.0, (cfg.buckets - 1) as f64) as usize
        }
    };
    let mut bucket_samples: Vec<SampleSet> = (0..cfg.buckets).map(|_| SampleSet::new()).collect();
    let mut bucket_reqs = vec![0usize; cfg.buckets];
    let mut bucket_k2 = vec![0usize; cfg.buckets];
    let mut bucket_hot = vec![0usize; cfg.buckets];
    let mut bucket_hot_k2 = vec![0usize; cfg.buckets];
    // Per-bucket per-server busy accounting: the measured window is
    // sliced at the first arrival of each new bucket; a slice's
    // per-server busy delta over its elapsed time is that bucket's
    // utilization profile (its max is `RampBucket::peak_utilization`).
    let mut bucket_busy = vec![0.0f64; cfg.buckets * cfg.servers];
    let mut bucket_elapsed = vec![0.0f64; cfg.buckets];
    let mut snap_busy = vec![0.0f64; cfg.servers];
    let mut snap_t = 0.0f64;
    let mut cur_bucket: Option<usize> = None;

    let mut copies_issued = 0u64;
    let mut copies_cancelled = 0u64;
    let mut completed = 0usize;
    let mut end_time = 0.0f64;

    // Pre-size the future-event list to its steady-state footprint: one
    // pending arrival plus, per server, a handful of in-flight copy /
    // departure / response events — resizing a BinaryHeap mid-run shows up
    // directly in the push/pop microbenchmark (`bench-engine`).
    let mut q: EventQueue<Ev> = EventQueue::with_capacity((8 * cfg.servers).max(4 * 1024));

    // --- per-discipline helpers, as macros so they can borrow locals ---
    macro_rules! fifo_start_next {
        ($s:expr, $now:expr) => {{
            let srv = &mut fifo[$s];
            if let Some((req, svc)) = srv.queue.pop_front() {
                srv.in_service = Some((req, svc));
                srv.busy += svc;
                q.push(
                    SimTime::from_secs($now + svc),
                    Ev::FifoDepart { server: $s as u16 },
                );
            } else {
                srv.in_service = None;
            }
        }};
    }
    // Cumulative busy time of server `$s` as of `$now`: FIFO accrues the
    // whole demand at service start (lumpy), PS continuously via
    // `advance` — a resident PS job set has been busy since `last`.
    macro_rules! server_busy_now {
        ($s:expr, $now:expr) => {{
            match cfg.discipline {
                Discipline::Fifo => fifo[$s].busy,
                Discipline::Ps => {
                    let srv = &ps[$s];
                    if srv.jobs.is_empty() {
                        srv.busy
                    } else {
                        srv.busy + ($now - srv.last)
                    }
                }
            }
        }};
    }
    // Closes the bucket `$b`'s time slice at `$now`: folds each server's
    // busy delta since the last snapshot into the bucket and re-anchors
    // the snapshot.
    macro_rules! close_bucket_slice {
        ($b:expr, $now:expr) => {{
            for s in 0..cfg.servers {
                let now_busy = server_busy_now!(s, $now);
                bucket_busy[$b * cfg.servers + s] += now_busy - snap_busy[s];
                snap_busy[s] = now_busy;
            }
            bucket_elapsed[$b] += $now - snap_t;
            snap_t = $now;
        }};
    }
    // A server reports its measured per-copy service duration with each
    // completion (or the front-end observes it at dispatch, per
    // `cfg.demand_report`); in estimated mode the front-end feeds it to
    // the moment estimator and periodically re-derives the threshold from
    // the live (mean, SCV) through the quantized-grid cache.
    macro_rules! observe_service {
        ($svc:expr) => {{
            if let Some(me) = moment_est.as_mut() {
                me.observe($svc);
                observed += 1;
                if me.len() >= min_samples && observed % recalibrate == 0 {
                    live_threshold =
                        threshold_cache.threshold(me.mean(), me.scv(), cfg.client_overhead);
                    live_planner = planner.recalibrated(me.mean(), me.scv());
                    recalibrations += 1;
                }
            }
        }};
    }
    macro_rules! ps_reschedule {
        ($s:expr, $now:expr) => {{
            let srv = &mut ps[$s];
            srv.epoch = srv.epoch.wrapping_add(1);
            if let Some(at) = srv.next_departure($now) {
                q.push(
                    SimTime::from_secs(at),
                    Ev::PsDepart {
                        server: $s as u16,
                        epoch: srv.epoch,
                    },
                );
            }
        }};
    }
    macro_rules! dispatch_copies {
        ($req:expr, $now:expr, $from:expr, $to:expr) => {{
            let state = &mut reqs[$req as usize];
            for &server in &state.targets[$from..$to] {
                copies_issued += 1;
                q.push(
                    SimTime::from_secs($now + cfg.propagation),
                    Ev::CopyArrive { req: $req, server },
                );
            }
            // A request counts as duplicated when a second copy is
            // *actually dispatched* — for hedged policies that is only
            // when the hedge fires, not at the arrival decision.
            if $from < 2 && $to >= 2 && ($req as usize) >= cfg.warmup {
                let b = bucket_of(state.offered);
                bucket_k2[b] += 1;
                if state.hot {
                    bucket_hot_k2[b] += 1;
                }
            }
            state.sent = $to as u8;
        }};
    }

    let lambda_of = |offered: f64| offered * cfg.servers as f64 / mean_service;
    q.push(
        SimTime::from_secs(arrival_rng.exponential(lambda_of(cfg.offered(0)))),
        Ev::Arrive { req: 0 },
    );

    while let Some((now, ev)) = q.pop() {
        let t = now.as_secs();
        end_time = t;
        match ev {
            Ev::Arrive { req } => {
                let i = req as usize;
                let offered = cfg.offered(i);

                // Shard placement first: key drawn from the popularity
                // mix (uniform by default), stored replicas via the ring
                // — the per-server load model needs the candidate set
                // before it can decide. The `place_rng` draw order (shard
                // sample, then the optional shuffle below) is unchanged,
                // so the global model stays bit-identical to the
                // pre-per-server code.
                let shard = match &cfg.popularity {
                    None => place_rng.index(cfg.shards) as u64,
                    Some(d) => shard_of(d.sample(&mut place_rng), cfg.shards) as u64,
                };
                let stored = ring.replicas(shard, cfg.stored_replicas);
                let hot = hot_shard[shard as usize];

                // Per-request consultation of the redundancy stack.
                let (copies, hedge_after) = match &cfg.frontend {
                    Frontend::Fixed(policy) => match *policy {
                        Policy::Single => (1usize, None),
                        Policy::Always { copies } => (copies, None),
                        Policy::Hedged { copies, after } => (copies, Some(after.as_secs_f64())),
                    },
                    Frontend::Adaptive { load_model, .. } => {
                        // The planner's advice at the live estimates: the
                        // threshold is either the precomputed clairvoyant
                        // one or the latest recalibration from measured
                        // moments, and the utilization estimate uses the
                        // live mean once it is trusted — so the decision
                        // is the comparison `advise` (global) or
                        // `decide_for` (per-server) would perform, with
                        // every input measured.
                        let live_mean = match moment_est.as_ref() {
                            Some(me) if me.len() >= min_samples => me.mean(),
                            _ => mean_service,
                        };
                        let replicate = match load_model {
                            LoadModel::Global => {
                                let est = estimator.as_mut().expect("adaptive estimator");
                                est.observe_arrival(t);
                                let rho = if est.is_warm() {
                                    est.utilization(live_mean, cfg.servers)
                                } else {
                                    cfg.load_start
                                };
                                rho < live_threshold
                            }
                            LoadModel::PerServer => {
                                let bank = bank.as_mut().expect("per-server bank");
                                // Every stored candidate observes this
                                // arrival: the bank measures where k = 1
                                // traffic *would* land (divided back out
                                // by the split factor in `utilization`),
                                // so the estimate is independent of the
                                // replication decisions actually taken —
                                // no feedback loop. The pair max is
                                // folded inline (no per-request alloc);
                                // `decide_for` maxes over its slice, so a
                                // pre-maxed single candidate is
                                // equivalent.
                                let mut rho_max = 0.0f64;
                                for &s in &stored {
                                    bank.observe_arrival(s, t);
                                    let rho = if bank.get(s).is_warm() {
                                        bank.utilization(s, live_mean, stored.len())
                                    } else {
                                        cfg.load_start
                                    };
                                    rho_max = rho_max.max(rho);
                                }
                                let d =
                                    live_planner.decide_for(&mut threshold_cache, &[rho_max]);
                                live_threshold = d.threshold_load;
                                d.replicate
                            }
                        };
                        (if replicate { 2 } else { 1 }, None)
                    }
                };

                let k = copies.min(stored.len());
                // Shuffle unless every stored copy is dispatched at once:
                // a k = 1 read load-balances across the stored pair, and a
                // hedged request must load-balance its *primary* the same
                // way (the hedge then targets the leftovers) — otherwise
                // hedging would concentrate first copies on ring primaries
                // and carry a worse base load split than `Single`.
                let targets: Vec<u16> = if k == stored.len() && hedge_after.is_none() {
                    stored.iter().map(|&s| s as u16).collect()
                } else {
                    let mut order: Vec<usize> = (0..stored.len()).collect();
                    place_rng.shuffle(&mut order);
                    order[..k].iter().map(|&j| stored[j] as u16).collect()
                };

                reqs.push(ReqState {
                    arrival: t,
                    offered,
                    targets,
                    sent: 0,
                    hot,
                    done: false,
                    token: CancelToken::new(),
                });
                debug_assert_eq!(reqs.len() - 1, i);

                if i >= cfg.warmup {
                    let b = bucket_of(offered);
                    if cur_bucket != Some(b) {
                        match cur_bucket {
                            // Entering a new bucket closes the previous
                            // one's time slice...
                            Some(pb) => close_bucket_slice!(pb, t),
                            // ...while the first measured arrival only
                            // anchors the snapshot (warm-up busy time is
                            // not attributed to any bucket).
                            None => {
                                for s in 0..cfg.servers {
                                    snap_busy[s] = server_busy_now!(s, t);
                                }
                                snap_t = t;
                            }
                        }
                        cur_bucket = Some(b);
                    }
                    bucket_reqs[b] += 1;
                    if hot {
                        bucket_hot[b] += 1;
                    }
                }

                match hedge_after {
                    Some(after) => {
                        // Primary now; siblings only if the hedge fires.
                        dispatch_copies!(req, t, 0, 1);
                        q.push(SimTime::from_secs(t + after), Ev::HedgeFire { req });
                    }
                    None => {
                        let k = reqs[i].targets.len();
                        dispatch_copies!(req, t, 0, k);
                    }
                }

                if i + 1 < total {
                    let lambda = lambda_of(cfg.offered(i + 1));
                    q.push_after(
                        SimTime::from_secs(arrival_rng.exponential(lambda)),
                        Ev::Arrive { req: req + 1 },
                    );
                }
            }
            Ev::HedgeFire { req } => {
                let state = &reqs[req as usize];
                if !state.done {
                    let (from, to) = (state.sent as usize, state.targets.len());
                    dispatch_copies!(req, t, from, to);
                }
            }
            Ev::CopyArrive { req, server } => {
                let s = server as usize;
                let svc = cfg.service.sample(&mut svc_rng);
                // Dispatch-time reporting: the copy's demand is observed
                // the moment it reaches the server, before queueing or
                // cancellation can select which copies complete — the
                // censoring-free channel PS cancellation needs.
                if cfg.demand_report == DemandReport::Dispatch {
                    observe_service!(svc);
                }
                match cfg.discipline {
                    Discipline::Fifo => {
                        let srv = &mut fifo[s];
                        srv.queue.push_back((req, svc));
                        if srv.in_service.is_none() {
                            fifo_start_next!(s, t);
                        }
                    }
                    Discipline::Ps => {
                        ps[s].advance(t);
                        ps[s].jobs.push(PsJob {
                            req,
                            size: svc,
                            remaining: svc,
                        });
                        ps_reschedule!(s, t);
                    }
                }
            }
            Ev::FifoDepart { server } => {
                let s = server as usize;
                let (req, svc) = fifo[s].in_service.take().expect("depart with idle server");
                if cfg.demand_report == DemandReport::Completion {
                    observe_service!(svc);
                }
                q.push(
                    SimTime::from_secs(t + cfg.propagation),
                    Ev::Response { req, server },
                );
                fifo_start_next!(s, t);
            }
            Ev::PsDepart { server, epoch } => {
                let s = server as usize;
                if ps[s].epoch != epoch {
                    continue; // stale schedule
                }
                ps[s].advance(t);
                // Depart the minimum-remaining job (deterministic
                // tie-break: lowest index).
                let Some(idx) = ps[s]
                    .jobs
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
                    .map(|(i, _)| i)
                else {
                    continue;
                };
                let job = ps[s].jobs.remove(idx);
                if cfg.demand_report == DemandReport::Completion {
                    observe_service!(job.size);
                }
                q.push(
                    SimTime::from_secs(t + cfg.propagation),
                    Ev::Response {
                        req: job.req,
                        server,
                    },
                );
                ps_reschedule!(s, t);
            }
            Ev::Response { req, server } => {
                let i = req as usize;
                let state = &mut reqs[i];
                if state.done {
                    continue;
                }
                state.done = true;
                let extra = (state.sent as f64 - 1.0).max(0.0) * cfg.client_overhead;
                let rt = (t - state.arrival) + extra;
                if i >= cfg.warmup {
                    response.push(rt);
                    bucket_samples[bucket_of(state.offered)].push(rt);
                    completed += 1;
                }
                if cfg.cancellation && (state.sent as usize) > 1 {
                    state.token.cancel();
                    for &other in state.targets[..state.sent as usize].iter() {
                        if other != server {
                            q.push(
                                SimTime::from_secs(t + cfg.propagation),
                                Ev::CancelMsg { server: other },
                            );
                        }
                    }
                }
            }
            Ev::CancelMsg { server } => {
                let s = server as usize;
                match cfg.discipline {
                    Discipline::Fifo => {
                        // Purge queued copies whose token is cancelled; the
                        // in-service copy runs to completion (a disk read
                        // cannot be withdrawn mid-seek).
                        let before = fifo[s].queue.len();
                        fifo[s]
                            .queue
                            .retain(|&(r, _)| !reqs[r as usize].token.is_cancelled());
                        copies_cancelled += (before - fifo[s].queue.len()) as u64;
                    }
                    Discipline::Ps => {
                        // PS can drop in-progress work too: closing the
                        // shared connection frees the server's share.
                        ps[s].advance(t);
                        let before = ps[s].jobs.len();
                        ps[s]
                            .jobs
                            .retain(|j| !reqs[j.req as usize].token.is_cancelled());
                        if ps[s].jobs.len() != before {
                            copies_cancelled += (before - ps[s].jobs.len()) as u64;
                            ps_reschedule!(s, t);
                        }
                    }
                }
            }
        }
    }

    // The final bucket's slice runs through the post-arrival drain.
    if let Some(pb) = cur_bucket {
        close_bucket_slice!(pb, end_time);
    }
    let _ = snap_t; // the re-anchored snapshot is dead past the last close

    let busy: f64 = match cfg.discipline {
        Discipline::Fifo => fifo.iter().map(|s| s.busy).sum(),
        Discipline::Ps => ps.iter().map(|s| s.busy).sum(),
    };

    let buckets: Vec<RampBucket> = (0..cfg.buckets)
        .map(|b| {
            let width = if span.abs() < f64::EPSILON {
                0.0
            } else {
                span / cfg.buckets as f64
            };
            let load = cfg.load_start + width * (b as f64 + 0.5);
            let samples = &mut bucket_samples[b];
            let (mean_response, p99) = if samples.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                (samples.mean(), samples.quantile(0.99))
            };
            let peak_utilization = if bucket_elapsed[b] > 0.0 {
                (0..cfg.servers)
                    .map(|s| bucket_busy[b * cfg.servers + s] / bucket_elapsed[b])
                    .fold(f64::NAN, f64::max)
            } else {
                f64::NAN
            };
            RampBucket {
                load,
                requests: bucket_reqs[b],
                k2_requests: bucket_k2[b],
                mean_response,
                p99,
                peak_utilization,
                hot_requests: bucket_hot[b],
                hot_k2_requests: bucket_hot_k2[b],
            }
        })
        .collect();

    let curve: Vec<(f64, f64)> = buckets.iter().map(|b| (b.load, b.frac_k2())).collect();

    let (est_mean_service, est_scv) = match moment_est.as_ref() {
        Some(me) if me.len() >= min_samples => (me.mean(), me.scv()),
        _ => (f64::NAN, f64::NAN),
    };
    ServiceResult {
        response,
        switch_off: switch_off_load(&curve),
        planner_threshold: threshold,
        live_threshold: match &cfg.frontend {
            Frontend::Fixed(_) => f64::NAN,
            Frontend::Adaptive { .. } => live_threshold,
        },
        est_mean_service,
        est_scv,
        recalibrations,
        buckets,
        copies_issued,
        copies_cancelled,
        mean_utilization: busy / (cfg.servers as f64 * end_time.max(f64::MIN_POSITIVE)),
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::Exponential;
    use std::sync::Arc;
    use std::time::Duration;

    fn exp_service() -> DynDist {
        Arc::new(Exponential::with_mean(1.0e-3))
    }

    fn flat(policy: Policy, load: f64) -> ServiceConfig {
        let mut cfg = ServiceConfig::ramp(exp_service(), load, load);
        cfg.frontend = Frontend::Fixed(policy);
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        cfg.buckets = 1;
        cfg
    }

    #[test]
    fn all_requests_complete_and_copies_counted() {
        let cfg = flat(Policy::Single, 0.3);
        let out = run(&cfg);
        assert_eq!(out.completed, cfg.requests);
        assert_eq!(out.copies_issued, (cfg.requests + cfg.warmup) as u64);
        assert!(out.switch_off.is_nan(), "fixed policy never switches");
        let two = run(&flat(Policy::Always { copies: 2 }, 0.2));
        assert_eq!(two.completed, 20_000);
        assert_eq!(two.copies_issued, 2 * 22_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ServiceConfig::ramp(exp_service(), 0.1, 0.5);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.response.mean().to_bits(), b.response.mean().to_bits());
        assert_eq!(a.switch_off.to_bits(), b.switch_off.to_bits());
        assert_eq!(a.copies_issued, b.copies_issued);
    }

    #[test]
    fn utilization_tracks_flat_load() {
        let out = run(&flat(Policy::Single, 0.3));
        assert!(
            (out.mean_utilization - 0.3).abs() < 0.05,
            "util {}",
            out.mean_utilization
        );
        // Always-2 doubles the busy time.
        let two = run(&flat(Policy::Always { copies: 2 }, 0.3));
        assert!(
            (two.mean_utilization - 0.6).abs() < 0.07,
            "util {}",
            two.mean_utilization
        );
    }

    #[test]
    fn fifo_flat_mean_matches_mm1() {
        // Single copies over the ring at flat load: each server is M/M/1
        // at rho, so E[R] = E[S]/(1-rho) plus two propagation hops.
        let cfg = flat(Policy::Single, 0.4);
        let out = run(&cfg);
        let expect = 1.0e-3 / (1.0 - 0.4) + 2.0 * cfg.propagation;
        let got = out.response.mean();
        assert!(
            (got - expect).abs() / expect < 0.08,
            "mean {got} vs {expect}"
        );
    }

    #[test]
    fn ps_flat_mean_matches_mm1_ps() {
        // M/M/1-PS has the same mean response as FIFO at equal load.
        let mut cfg = flat(Policy::Single, 0.4);
        cfg.discipline = Discipline::Ps;
        let out = run(&cfg);
        assert_eq!(out.completed, cfg.requests);
        let expect = 1.0e-3 / (1.0 - 0.4) + 2.0 * cfg.propagation;
        let got = out.response.mean();
        assert!(
            (got - expect).abs() / expect < 0.10,
            "PS mean {got} vs {expect}"
        );
    }

    #[test]
    fn replication_helps_at_low_load_and_hurts_at_high() {
        let single_low = run(&flat(Policy::Single, 0.15)).response.mean();
        let double_low = run(&flat(Policy::Always { copies: 2 }, 0.15)).response.mean();
        assert!(double_low < single_low, "{double_low} vs {single_low}");
        let single_high = run(&flat(Policy::Single, 0.45)).response.mean();
        let double_high = run(&flat(Policy::Always { copies: 2 }, 0.45)).response.mean();
        assert!(double_high > single_high, "{double_high} vs {single_high}");
    }

    #[test]
    fn cancellation_sheds_load() {
        let mut plain = flat(Policy::Always { copies: 2 }, 0.35);
        let mut tied = plain.clone();
        tied.cancellation = true;
        plain.seed = 77;
        tied.seed = 77;
        let p = run(&plain);
        let t = run(&tied);
        assert_eq!(p.copies_cancelled, 0);
        assert!(t.copies_cancelled > 0, "no copies cancelled");
        assert!(
            t.mean_utilization < p.mean_utilization - 0.02,
            "cancellation should shed load: {} vs {}",
            t.mean_utilization,
            p.mean_utilization
        );
        assert!(
            t.response.mean() < p.response.mean(),
            "cancellation should help latency"
        );
    }

    #[test]
    fn hedged_policy_pays_only_in_the_tail() {
        let mut cfg = flat(
            Policy::Hedged {
                copies: 2,
                after: Duration::from_micros(5_000), // 5x the mean service
            },
            0.2,
        );
        cfg.cancellation = true;
        let out = run(&cfg);
        assert_eq!(out.completed, cfg.requests);
        let total = (cfg.requests + cfg.warmup) as u64;
        assert!(out.copies_issued > total, "some hedges must fire");
        assert!(
            out.copies_issued < (total as f64 * 1.15) as u64,
            "hedge fired too often: {} of {total}",
            out.copies_issued
        );
        // k2 counts *fired* hedges, not arrival-time intent.
        let frac = out.buckets[0].frac_k2();
        assert!(
            frac > 0.0 && frac < 0.15,
            "hedged frac_k2 should be the fired fraction: {frac}"
        );
    }

    #[test]
    fn adaptive_switch_off_lands_on_the_offline_threshold() {
        // The acceptance shape: one ramp, exponential workload, the k=2
        // fraction must cross 1/2 within +-0.05 of the planner's offline
        // threshold (~1/3 for exponential service, zero overhead).
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.05, 0.6);
        cfg.requests = 60_000;
        cfg.warmup = 6_000;
        if let Frontend::Adaptive { window, .. } = &mut cfg.frontend {
            *window = 1024;
        }
        let out = run(&cfg);
        assert!(
            (out.planner_threshold - 1.0 / 3.0).abs() < 0.01,
            "offline threshold {}",
            out.planner_threshold
        );
        assert!(
            (out.switch_off - out.planner_threshold).abs() < 0.05,
            "switch-off {} vs threshold {}",
            out.switch_off,
            out.planner_threshold
        );
        // Low-load buckets duplicate, high-load buckets do not.
        let first = out.buckets.first().unwrap();
        let last = out.buckets.last().unwrap();
        assert!(first.frac_k2() > 0.9, "start of ramp: {:?}", first);
        assert!(last.frac_k2() < 0.1, "end of ramp: {:?}", last);
        assert_eq!(out.completed, cfg.requests);
    }

    #[test]
    fn switch_off_interpolation() {
        let curve = [(0.1, 1.0), (0.2, 1.0), (0.3, 0.75), (0.4, 0.25), (0.5, 0.0)];
        let x = switch_off_load(&curve);
        assert!((x - 0.35).abs() < 1e-12, "{x}");
        assert!(switch_off_load(&[(0.1, 1.0), (0.2, 0.9)]).is_nan());
        assert!(switch_off_load(&[]).is_nan());
        // NaN buckets are skipped, not treated as crossings.
        let gappy = [(0.1, 1.0), (0.2, f64::NAN), (0.3, 0.0)];
        let x = switch_off_load(&gappy);
        assert!((x - 0.2).abs() < 1e-9, "{x}");
    }

    #[test]
    fn switch_off_degenerate_curves_report_nan() {
        // Single bucket: nothing to interpolate, whichever side of ½.
        assert!(switch_off_load(&[(0.3, 1.0)]).is_nan());
        assert!(switch_off_load(&[(0.3, 0.0)]).is_nan());
        // Entirely above ½ (ramp inside the replicate region) or entirely
        // below it (fixed Single): no crossing.
        assert!(switch_off_load(&[(0.1, 0.9), (0.2, 0.8), (0.3, 0.6)]).is_nan());
        assert!(switch_off_load(&[(0.1, 0.4), (0.2, 0.3), (0.3, 0.1)]).is_nan());
        // All-NaN fractions (no measured bucket) and NaN loads.
        assert!(switch_off_load(&[(0.1, f64::NAN), (0.2, f64::NAN)]).is_nan());
        assert!(switch_off_load(&[(f64::NAN, 1.0), (f64::NAN, 0.0)]).is_nan());
        // A NaN load is skipped like an empty bucket: the crossing
        // interpolates between its finite neighbours.
        let x = switch_off_load(&[(0.1, 1.0), (f64::NAN, 0.7), (0.3, 0.0)]);
        assert!((x - 0.2).abs() < 1e-9, "{x}");
        // Upward-only crossing (starts low, ends high): never switches
        // *off*, so NaN — not a garbage backward interpolation.
        assert!(switch_off_load(&[(0.1, 0.2), (0.2, 0.6), (0.3, 0.9)]).is_nan());
    }

    #[test]
    fn switch_off_non_monotone_takes_last_crossing() {
        // Estimator jitter around the threshold: down, back up, down for
        // good. The reported point is the *last* downward crossing.
        let curve = [
            (0.1, 1.0),
            (0.2, 0.4), // first crossing at 0.1833...
            (0.3, 0.8), // jitters back above
            (0.4, 0.0), // final crossing: 0.3 + 0.1*(0.3/0.8) = 0.3375
        ];
        let x = switch_off_load(&curve);
        assert!((x - 0.3375).abs() < 1e-12, "{x}");
        // Plateau exactly at ½, then a drop: crossing pinned to the
        // plateau's last point, not interpolated into the drop.
        let plateau = [(0.1, 0.5), (0.2, 0.5), (0.3, 0.1)];
        let x = switch_off_load(&plateau);
        assert!((x - 0.2).abs() < 1e-12, "{x}");
    }

    #[test]
    #[should_panic(expected = "saturates")]
    fn saturating_fixed_policy_panics() {
        let _ = run(&flat(Policy::Always { copies: 2 }, 0.55));
    }

    fn estimated_ramp(lo: f64, hi: f64) -> ServiceConfig {
        let mut cfg = ServiceConfig::ramp(exp_service(), lo, hi);
        cfg.requests = 60_000;
        cfg.warmup = 6_000;
        cfg.frontend = Frontend::Adaptive {
            window: 1024,
            moments: MomentSource::estimated(),
            load_model: LoadModel::Global,
        };
        cfg
    }

    #[test]
    fn estimated_mode_learns_the_exponential_moments_and_threshold() {
        let out = run(&estimated_ramp(0.05, 0.6));
        assert_eq!(out.completed, 60_000);
        assert!(out.recalibrations > 0, "never recalibrated");
        // The live estimates converge on the config truth...
        assert!(
            (out.est_mean_service - 1.0e-3).abs() / 1.0e-3 < 0.1,
            "est mean {}",
            out.est_mean_service
        );
        assert!((out.est_scv - 1.0).abs() < 0.25, "est scv {}", out.est_scv);
        // ...so the recalibrated threshold lands on the offline one, and
        // the observable switch-off follows it.
        assert!(
            (out.live_threshold - out.planner_threshold).abs() < 0.01,
            "live {} vs offline {}",
            out.live_threshold,
            out.planner_threshold
        );
        assert!(
            (out.switch_off - out.planner_threshold).abs() < 0.08,
            "switch-off {} vs threshold {}",
            out.switch_off,
            out.planner_threshold
        );
    }

    #[test]
    fn estimated_mode_tracks_the_service_law_it_actually_sees() {
        // Swap the workload to deterministic service: the estimator must
        // measure scv ~ 0 and recalibrate onto the deterministic
        // threshold (~0.293), not stay anywhere near the exponential 1/3.
        let mut cfg = estimated_ramp(0.05, 0.55);
        cfg.service = Arc::new(simcore::dist::Deterministic::new(1.0e-3));
        let out = run(&cfg);
        assert!(out.est_scv < 0.05, "est scv {}", out.est_scv);
        assert!(
            (out.live_threshold - 0.2929).abs() < 0.01,
            "live threshold {}",
            out.live_threshold
        );
    }

    #[test]
    fn clairvoyant_mode_reports_nan_estimates() {
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.1, 0.5);
        cfg.requests = 10_000;
        cfg.warmup = 1_000;
        let out = run(&cfg);
        assert!(out.est_mean_service.is_nan() && out.est_scv.is_nan());
        assert_eq!(out.recalibrations, 0);
        assert_eq!(out.live_threshold.to_bits(), out.planner_threshold.to_bits());
        let fixed = run(&flat(Policy::Single, 0.3));
        assert!(fixed.live_threshold.is_nan());
    }

    #[test]
    fn zipf_popularity_concentrates_load_on_hot_servers() {
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        cfg.frontend = Frontend::Fixed(Policy::Single);
        cfg.requests = 30_000;
        cfg.warmup = 3_000;
        cfg.buckets = 1;
        let uniform_shares = stored_load_shares(&cfg);
        assert!((uniform_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let fair = 1.0 / cfg.servers as f64;
        let u_max = uniform_shares.iter().cloned().fold(0.0, f64::max);
        cfg.popularity = Some(zipf_popularity(cfg.shards, 1.0));
        let skew_shares = stored_load_shares(&cfg);
        assert!((skew_shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let s_max = skew_shares.iter().cloned().fold(0.0, f64::max);
        assert!(
            s_max > u_max + 0.02 && s_max > 1.3 * fair,
            "zipf hot share {s_max} vs uniform max {u_max}"
        );
        // The hot server's queueing shows up as a worse tail than the
        // uniform mix at the same offered load.
        let skew_out = run(&cfg);
        cfg.popularity = None;
        let unif_out = run(&cfg);
        assert_eq!(skew_out.completed, cfg.requests);
        let (mut s_resp, mut u_resp) = (skew_out.response, unif_out.response);
        assert!(
            s_resp.quantile(0.99) > u_resp.quantile(0.99),
            "skew p99 {} vs uniform p99 {}",
            s_resp.quantile(0.99),
            u_resp.quantile(0.99)
        );
    }

    #[test]
    fn hedged_policy_rides_the_ramp() {
        // The hedged fixed policy is now legal on a ramp whose top the
        // Always-2 assertion would reject (2 × 0.6 > 1): hedges only
        // duplicate the tail.
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.1, 0.6);
        cfg.frontend = Frontend::Fixed(Policy::Hedged {
            copies: 2,
            after: Duration::from_micros(8_000),
        });
        cfg.cancellation = true;
        cfg.requests = 30_000;
        cfg.warmup = 3_000;
        let out = run(&cfg);
        assert_eq!(out.completed, cfg.requests);
        let total = (cfg.requests + cfg.warmup) as u64;
        assert!(out.copies_issued > total, "no hedge ever fired");
        // Fired-hedge fraction climbs with load: the last bucket's tail is
        // deeper than the first's.
        let first = out.buckets.first().unwrap().frac_k2();
        let last = out.buckets.last().unwrap().frac_k2();
        assert!(last > first, "hedge firing should climb: {first} vs {last}");
        assert!(out.switch_off.is_nan(), "a hedge ramp never 'switches off'");
    }

    #[test]
    #[should_panic(expected = "censored-biased")]
    fn estimated_moments_under_ps_cancellation_rejected() {
        // Under PS, cancellation purges the in-flight *loser* — the
        // larger-demand copy — so completion-based moment estimation
        // would sample min(demands). The completion-reported config is
        // rejected outright.
        let mut cfg = estimated_ramp(0.05, 0.4);
        cfg.discipline = Discipline::Ps;
        cfg.cancellation = true;
        let _ = run(&cfg);
    }

    #[test]
    fn dispatch_reporting_unbiases_ps_cancellation_estimates() {
        // The same previously rejected combination with dispatch-time
        // reporting: every issued copy's demand is observed before
        // cancellation can censor it, so the estimator must land on the
        // true moments (mean 1 ms, scv 1) even though cancellation is
        // systematically killing the larger-demand in-flight copies.
        let mut cfg = estimated_ramp(0.05, 0.55);
        cfg.discipline = Discipline::Ps;
        cfg.cancellation = true;
        cfg.demand_report = DemandReport::Dispatch;
        let out = run(&cfg);
        assert_eq!(out.completed, cfg.requests);
        assert!(out.copies_cancelled > 0, "cancellation never fired");
        assert!(
            (out.est_mean_service - 1.0e-3).abs() / 1.0e-3 < 0.1,
            "dispatch-reported mean is biased: {}",
            out.est_mean_service
        );
        assert!(
            (out.est_scv - 1.0).abs() < 0.25,
            "dispatch-reported scv is biased: {}",
            out.est_scv
        );
        assert!(
            (out.switch_off - out.planner_threshold).abs() < 0.08,
            "switch-off {} vs threshold {}",
            out.switch_off,
            out.planner_threshold
        );
        // A completion-reported FIFO control (no cancellation) measures
        // the same law — the dispatch channel is a superset observer, not
        // a different quantity.
        let fifo = run(&estimated_ramp(0.05, 0.55));
        assert!(
            (out.est_mean_service - fifo.est_mean_service).abs() / fifo.est_mean_service < 0.1,
            "dispatch {} vs completion {}",
            out.est_mean_service,
            fifo.est_mean_service
        );
    }

    fn per_server_ramp(lo: f64, hi: f64) -> ServiceConfig {
        let mut cfg = ServiceConfig::ramp(exp_service(), lo, hi);
        cfg.requests = 60_000;
        cfg.warmup = 6_000;
        cfg.frontend = Frontend::Adaptive {
            window: 512,
            moments: MomentSource::Clairvoyant,
            load_model: LoadModel::PerServer,
        };
        cfg
    }

    #[test]
    fn per_server_uniform_keys_flip_near_the_global_threshold() {
        // With uniform keys every server's estimated share sits near the
        // fair 1/8, so per-server planning must reproduce the global
        // behavior: a switch-off in the global band (the residual spread
        // is the ring's stored-pair imbalance).
        let out = run(&per_server_ramp(0.05, 0.6));
        assert_eq!(out.completed, 60_000);
        assert!(
            (out.switch_off - out.planner_threshold).abs() < 0.07,
            "per-server uniform switch-off {} vs threshold {}",
            out.switch_off,
            out.planner_threshold
        );
        let first = out.buckets.first().unwrap();
        let last = out.buckets.last().unwrap();
        assert!(first.frac_k2() > 0.9, "start of ramp: {first:?}");
        assert!(last.frac_k2() < 0.1, "end of ramp: {last:?}");
    }

    #[test]
    fn per_server_planner_staggers_switch_off_by_temperature() {
        // Zipf keys: pairs containing the hot server must switch off at a
        // strictly lower offered load than pairs avoiding it — the
        // skew-aware point of the whole mechanism. The global planner, by
        // construction, flips both temperatures together.
        let mut cfg = per_server_ramp(0.05, 0.45);
        cfg.popularity = Some(zipf_popularity(cfg.shards, 0.6));
        let out = run(&cfg);
        let hot: Vec<(f64, f64)> = out.buckets.iter().map(|b| (b.load, b.frac_k2_hot())).collect();
        let cold: Vec<(f64, f64)> = out
            .buckets
            .iter()
            .map(|b| (b.load, b.frac_k2_cold()))
            .collect();
        let hot_off = switch_off_load(&hot);
        let cold_off = switch_off_load(&cold);
        assert!(
            hot_off + 0.03 < cold_off,
            "cold pairs must replicate longer: hot {hot_off} vs cold {cold_off}"
        );
        // Against the global planner on the identical workload: the hot
        // server's peak busy fraction over the ramp must drop.
        let mut global = cfg.clone();
        global.frontend = Frontend::Adaptive {
            window: 512,
            moments: MomentSource::Clairvoyant,
            load_model: LoadModel::Global,
        };
        let gout = run(&global);
        let peak = |r: &ServiceResult| {
            r.buckets
                .iter()
                .map(|b| b.peak_utilization)
                .fold(f64::NAN, f64::max)
        };
        assert!(
            peak(&out) < peak(&gout) - 0.05,
            "per-server peak {} vs global peak {}",
            peak(&out),
            peak(&gout)
        );
    }

    #[test]
    fn per_bucket_peak_utilization_tracks_flat_load() {
        // Flat Single-copy load 0.3 on uniform keys: every bucket's peak
        // (hottest-server) busy fraction must sit above the cluster mean
        // and below saturation, and hot-pair accounting must cover a
        // plausible share of requests without inventing k = 2 traffic.
        let mut cfg = flat(Policy::Single, 0.3);
        cfg.buckets = 4;
        let out = run(&cfg);
        // A flat ramp maps every request into bucket 0; the rest are
        // empty and must report NaN peaks, not artifacts.
        let (head, rest) = out.buckets.split_first().unwrap();
        assert!(head.requests > 0);
        assert!(
            head.peak_utilization > 0.25 && head.peak_utilization < 0.75,
            "peak utilization {head:?}"
        );
        assert!(head.peak_utilization > out.mean_utilization - 0.05);
        assert!(head.hot_requests > 0 && head.hot_requests < head.requests);
        assert_eq!(head.hot_k2_requests, 0, "Single never duplicates");
        assert_eq!(head.frac_k2_hot(), 0.0);
        assert_eq!(head.frac_k2_cold(), 0.0);
        for b in rest {
            assert_eq!(b.requests, 0);
            assert!(b.peak_utilization.is_nan(), "{b:?}");
            assert!(b.frac_k2_hot().is_nan() && b.frac_k2_cold().is_nan());
        }
    }

    #[test]
    fn stored_load_shares_attributes_weight_by_value_not_order() {
        // A popularity whose values are NOT in construction order: the
        // helper must attribute each weight to the shard run() would
        // actually sample, matching an independent by-value computation.
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        cfg.shards = 4;
        cfg.popularity = Some(Arc::new(simcore::dist::DiscreteEmpirical::new(&[
            (3.0, 0.6),
            (0.0, 0.25),
            (2.0, 0.15),
        ])));
        let shares = stored_load_shares(&cfg);
        let ring = crate::hashring::HashRing::new(cfg.servers, cfg.vnodes);
        let mut expect = vec![0.0f64; cfg.servers];
        for (shard, w) in [(3u64, 0.6), (0, 0.25), (2, 0.15)] {
            for s in ring.replicas(shard, cfg.stored_replicas) {
                expect[s] += w / cfg.stored_replicas as f64;
            }
        }
        for (got, want) in shares.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12, "{shares:?} vs {expect:?}");
        }
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stored_load_shares_degenerate_inputs() {
        // Uniform popularity supplied *explicitly* (Zipf exponent 0) must
        // match the implicit `None` default exactly.
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        let implicit = stored_load_shares(&cfg);
        cfg.popularity = Some(zipf_popularity(cfg.shards, 0.0));
        let explicit = stored_load_shares(&cfg);
        for (a, b) in implicit.iter().zip(&explicit) {
            assert!((a - b).abs() < 1e-12, "{implicit:?} vs {explicit:?}");
        }
        assert!((implicit.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        // Single shard: all weight lands on exactly its stored pair,
        // split evenly, and the hottest server is one of the pair.
        let mut one = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        one.shards = 1;
        let shares = stored_load_shares(&one);
        let ring = crate::hashring::HashRing::new(one.servers, one.vnodes);
        let pair = ring.replicas(0, one.stored_replicas);
        for (s, &w) in shares.iter().enumerate() {
            let expect = if pair.contains(&s) { 0.5 } else { 0.0 };
            assert!((w - expect).abs() < 1e-12, "server {s}: {shares:?}");
        }
        assert!(pair.contains(&hottest_stored_server(&one)));

        // A popularity vector shorter than the shard count: unnamed
        // shards carry zero weight, the named ones keep theirs, and the
        // whole thing still sums to 1.
        let mut short = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        short.shards = 512;
        short.popularity = Some(Arc::new(simcore::dist::DiscreteEmpirical::new(&[
            (0.0, 0.7),
            (1.0, 0.3),
        ])));
        let shares = stored_load_shares(&short);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut expect = vec![0.0f64; short.servers];
        let ring = crate::hashring::HashRing::new(short.servers, short.vnodes);
        for (shard, w) in [(0u64, 0.7), (1, 0.3)] {
            for s in ring.replicas(shard, short.stored_replicas) {
                expect[s] += w / short.stored_replicas as f64;
            }
        }
        for (got, want) in shares.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12, "{shares:?} vs {expect:?}");
        }

        // Values beyond the shard range clamp onto the last shard, like
        // the dispatch path's `shard_of`.
        let mut clamp = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        clamp.shards = 4;
        clamp.popularity = Some(Arc::new(simcore::dist::DiscreteEmpirical::new(&[
            (99.0, 0.5),
            (-3.0, 0.5),
        ])));
        let shares = stored_load_shares(&clamp);
        let ring = crate::hashring::HashRing::new(clamp.servers, clamp.vnodes);
        let mut expect = vec![0.0f64; clamp.servers];
        for shard in [3u64, 0] {
            for s in ring.replicas(shard, clamp.stored_replicas) {
                expect[s] += 0.5 / clamp.stored_replicas as f64;
            }
        }
        for (got, want) in shares.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12, "{shares:?} vs {expect:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn stored_load_shares_rejects_zero_shards() {
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        cfg.shards = 0;
        let _ = stored_load_shares(&cfg);
    }

    #[test]
    #[should_panic(expected = "cannot store")]
    fn stored_load_shares_rejects_overwide_replication() {
        let mut cfg = ServiceConfig::ramp(exp_service(), 0.2, 0.2);
        cfg.servers = 2;
        cfg.stored_replicas = 3;
        let _ = stored_load_shares(&cfg);
    }

    #[test]
    fn moment_helper_distributions_hit_their_means() {
        let w = weibull_with_mean(2.0, 1.0e-3);
        assert!((w.mean() - 1.0e-3).abs() < 1e-12);
        assert!(w.scv() < 1.0, "shape-2 Weibull is light-tailed");
        let bp = bounded_pareto_with_mean(1.4, 1000.0, 1.0e-3);
        assert!((bp.mean() - 1.0e-3).abs() / 1.0e-3 < 1e-9);
        assert!(bp.scv() > 5.0, "wide Pareto should be heavy: {}", bp.scv());
    }
}
