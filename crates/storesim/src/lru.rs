//! A byte-capacity LRU cache — our stand-in for the Linux page cache.
//!
//! The §2.2 experiment sizes main memory so "around half … is available for
//! the Linux disk cache" and then varies the cache:disk ratio. The only
//! properties the experiment depends on are (a) a hard byte capacity,
//! (b) least-recently-used eviction, and (c) hit/miss classification per
//! access — all provided here by a slab-backed intrusive doubly-linked list
//! with O(1) touch/insert/evict and no `unsafe`.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    key: u64,
    bytes: u64,
    prev: u32,
    next: u32,
}

/// Byte-capacity LRU over `u64` keys.
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    map: HashMap<u64, u32>,
    slab: Vec<Node>,
    free: Vec<u32>,
    /// Most recently used.
    head: u32,
    /// Least recently used (eviction end).
    tail: u32,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Total byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hits recorded by [`access`](Self::access).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`access`](Self::access).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.slab[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.slab[idx as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Looks up `key` without recording statistics or touching recency.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// The access path a read takes: returns `true` (hit; entry moved to
    /// MRU) or `false` (miss; caller is expected to [`insert`](Self::insert)
    /// after "reading from disk").
    pub fn access(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.detach(idx);
            self.push_front(idx);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts (or refreshes) `key` at `bytes`, evicting LRU entries until
    /// it fits. Objects larger than the whole cache are *not* cached
    /// (matching page-cache behaviour for files exceeding memory) and
    /// `false` is returned.
    pub fn insert(&mut self, key: u64, bytes: u64) -> bool {
        if bytes > self.capacity {
            return false;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Size update + touch.
            let old = self.slab[idx as usize].bytes;
            self.used = self.used - old + bytes;
            self.slab[idx as usize].bytes = bytes;
            self.detach(idx);
            self.push_front(idx);
        } else {
            let idx = if let Some(idx) = self.free.pop() {
                self.slab[idx as usize] = Node {
                    key,
                    bytes,
                    prev: NIL,
                    next: NIL,
                };
                idx
            } else {
                assert!(self.slab.len() < u32::MAX as usize - 1, "cache too large");
                self.slab.push(Node {
                    key,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                (self.slab.len() - 1) as u32
            };
            self.map.insert(key, idx);
            self.used += bytes;
            self.push_front(idx);
        }
        while self.used > self.capacity {
            self.evict_lru();
        }
        true
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert!(victim != NIL, "over capacity with empty list");
        let (key, bytes) = {
            let n = &self.slab[victim as usize];
            (n.key, n.bytes)
        };
        self.detach(victim);
        self.map.remove(&key);
        self.free.push(victim);
        self.used -= bytes;
    }

    /// Keys from most- to least-recently used (test/diagnostic helper;
    /// O(n)).
    pub fn keys_mru_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.slab[cur as usize];
            out.push(n.key);
            cur = n.next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_bookkeeping() {
        let mut c = LruCache::new(100);
        assert!(!c.access(1));
        c.insert(1, 10);
        assert!(c.access(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = LruCache::new(30);
        c.insert(1, 10);
        c.insert(2, 10);
        c.insert(3, 10);
        // Touch 1 so 2 becomes LRU.
        assert!(c.access(1));
        c.insert(4, 10); // must evict 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert!(c.contains(4));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(100);
        for k in 0..1000u64 {
            c.insert(k, 7);
            assert!(c.used_bytes() <= 100, "used {} > cap", c.used_bytes());
        }
        assert_eq!(c.len(), (100 / 7) as usize);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = LruCache::new(50);
        c.insert(1, 10);
        assert!(!c.insert(2, 51));
        assert!(c.contains(1), "oversized insert must not evict");
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn resize_existing_entry() {
        let mut c = LruCache::new(100);
        c.insert(1, 10);
        c.insert(1, 40);
        assert_eq!(c.used_bytes(), 40);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn mru_order_reflects_touches() {
        let mut c = LruCache::new(100);
        c.insert(1, 1);
        c.insert(2, 1);
        c.insert(3, 1);
        c.access(1);
        assert_eq!(c.keys_mru_order(), vec![1, 3, 2]);
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let mut c = LruCache::new(10);
        for k in 0..10_000u64 {
            c.insert(k, 5);
        }
        // Only ~2 entries alive at a time; slab must not grow unboundedly.
        assert!(c.slab.len() <= 4, "slab grew to {}", c.slab.len());
    }
}
