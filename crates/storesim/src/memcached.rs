//! The §2.3 memcached experiment: an in-memory store where replication
//! *loses*.
//!
//! The paper measures a 0.18 ms mean service time, a distribution with
//! "more than 99.9 % of the mass … within a factor of 4 of the mean", and a
//! client-side cost of at least 9 % of the mean service time per extra
//! copy (measured by swapping memcached calls for no-op stubs, Fig 13).
//! Under those constants the §2.1 model predicts a threshold below 10 %,
//! and Fig 12 indeed shows 2 copies worse at every load from 10–90 %.
//!
//! We model each memcached server as a single FIFO service resource (the
//! event-loop thread), log-normal service times with rare millisecond-scale
//! outliers, and the same client NIC/CPU cost structure as
//! [`crate::cluster`]. [`StubMode`] reproduces the paper's
//! client-side-isolation methodology.

use crate::hashring::HashRing;
use simcore::dist::{Distribution, LogNormal, Mixture};
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::stats::SampleSet;
use simcore::time::SimTime;

/// Whether requests actually visit the servers or are stubbed at the client
/// (the paper's Fig 13 methodology for measuring client-side cost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StubMode {
    /// Real runs: requests traverse the network and the server.
    Real,
    /// Stub runs: the memcached call is a no-op returning immediately;
    /// only client-side work remains.
    Stub,
}

/// Configuration for one memcached run.
#[derive(Clone, Debug)]
pub struct MemcachedConfig {
    /// Number of cache servers.
    pub servers: usize,
    /// Number of client machines.
    pub clients: usize,
    /// Copies per GET.
    pub copies: usize,
    /// Distinct keys (placement via consistent hashing + n/n+1).
    pub keys: usize,
    /// Baseline (k = 1) per-server utilization.
    pub load: f64,
    /// Real or stub servers.
    pub mode: StubMode,
    /// Measured requests.
    pub requests: usize,
    /// Warm-up requests.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MemcachedConfig {
    /// The paper's deployment shape at a given replication factor and load.
    pub fn paper_like(copies: usize, load: f64) -> Self {
        MemcachedConfig {
            servers: 4,
            clients: 10,
            copies,
            keys: 100_000,
            load,
            mode: StubMode::Real,
            requests: 200_000,
            warmup: 20_000,
            seed: 0x3E3C,
        }
    }

    /// Switches to stub mode.
    pub fn stubbed(mut self) -> Self {
        self.mode = StubMode::Stub;
        self
    }
}

/// Service-time and client-cost constants for the memcached model.
#[derive(Clone, Debug)]
pub struct MemcachedProfile {
    /// Server service time distribution (seconds).
    pub service: Mixture,
    /// Mean of `service` (cached).
    pub mean_service: f64,
    /// One-way propagation, seconds.
    pub propagation: f64,
    /// Client CPU per issued copy.
    pub client_send_cost: f64,
    /// Client CPU per received response.
    pub client_recv_cost: f64,
    /// Client-side base processing for a stubbed call (the no-op path:
    /// library + event-loop work with no network or server).
    pub stub_base: LogNormal,
}

impl Default for MemcachedProfile {
    fn default() -> Self {
        // 0.18 ms mean with a tight body (memcached under light load is
        // very consistent; the paper notes >99.9% of mass within 4x of the
        // mean) plus rare ms-scale outliers.
        let body = LogNormal::with_mean_sigma(0.176e-3, 0.10);
        let outlier = LogNormal::with_mean_sigma(2.0e-3, 0.5);
        let service = Mixture::of_two(0.9985, body, 0.0015, outlier);
        let mean_service = service.mean();
        MemcachedProfile {
            service,
            mean_service,
            propagation: 25.0e-6,
            // The paper's stub experiment measured replication adding 9% of
            // the 0.18 ms mean (16 us) at the client and calls that an
            // *underestimate* because the stub never touches the kernel or
            // the NIC; the real per-copy receive path (interrupt, copy,
            // event loop) is modeled at 30 us, sends at 12 us.
            client_send_cost: 12.0e-6,
            client_recv_cost: 30.0e-6,
            stub_base: LogNormal::with_mean_sigma(30.0e-6, 0.35),
        }
    }
}

/// Result of a memcached run.
#[derive(Debug)]
pub struct MemcachedResult {
    /// Per-request response times (first copy wins), seconds.
    pub response: SampleSet,
    /// Measured mean server utilization.
    pub server_utilization: f64,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrive { req: u32 },
    ServerRecv { req: u32, server: u16 },
    ClientRecv { req: u32 },
}

/// Runs the memcached model with the default profile.
pub fn run(cfg: &MemcachedConfig) -> MemcachedResult {
    run_with_profile(cfg, &MemcachedProfile::default())
}

/// Runs the memcached model with explicit constants.
pub fn run_with_profile(cfg: &MemcachedConfig, prof: &MemcachedProfile) -> MemcachedResult {
    assert!(cfg.copies >= 1 && cfg.copies <= cfg.servers);
    assert!(
        cfg.copies as f64 * cfg.load < 1.0 || cfg.mode == StubMode::Stub,
        "k*load saturates"
    );

    let mut root = Rng::seed_from(cfg.seed);
    let mut arrival_rng = root.fork(1);
    let mut place_rng = root.fork(2);
    let mut svc_rng = root.fork(3);

    let ring = HashRing::new(cfg.servers, 64);
    let lambda = cfg.load * cfg.servers as f64 / prof.mean_service;

    let total = cfg.warmup + cfg.requests;
    let mut server_free = vec![0.0f64; cfg.servers];
    let mut server_busy = vec![0.0f64; cfg.servers];
    let mut arrivals: Vec<(f64, u16)> = Vec::with_capacity(total);
    let mut recorded = vec![false; total];
    let mut response = SampleSet::with_capacity(cfg.requests);
    let mut end_time = 0.0f64;

    // Pre-size past the steady-state population (a few events per server)
    // so the heap never reallocates mid-run.
    let mut q: EventQueue<Ev> = EventQueue::with_capacity((8 * cfg.servers).max(1024));
    q.push(
        SimTime::from_secs(arrival_rng.exponential(lambda)),
        Ev::Arrive { req: 0 },
    );

    while let Some((now, ev)) = q.pop() {
        let t = now.as_secs();
        match ev {
            Ev::Arrive { req } => {
                let key = place_rng.index(cfg.keys) as u64;
                let client = place_rng.index(cfg.clients) as u16;
                arrivals.push((t, client));
                end_time = t;
                match cfg.mode {
                    StubMode::Stub => {
                        // No server, no wire: client-side work only. Each
                        // copy costs send CPU; the response is synthesized
                        // after the base stub processing time.
                        let base = prof.stub_base.sample(&mut svc_rng);
                        let extra = (cfg.copies as f64 - 1.0)
                            * (prof.client_send_cost + prof.client_recv_cost);
                        if req as usize >= cfg.warmup {
                            response.push(base + extra);
                        }
                        recorded[req as usize] = true;
                    }
                    StubMode::Real => {
                        for (i, &server) in
                            ring.replicas(key, cfg.copies).iter().enumerate()
                        {
                            let send_at = t
                                + prof.client_send_cost * (i as f64 + 1.0)
                                + prof.propagation;
                            q.push(
                                SimTime::from_secs(send_at),
                                Ev::ServerRecv {
                                    req,
                                    server: server as u16,
                                },
                            );
                        }
                    }
                }
                if (req as usize) + 1 < total {
                    q.push_after(
                        SimTime::from_secs(arrival_rng.exponential(lambda)),
                        Ev::Arrive { req: req + 1 },
                    );
                }
            }
            Ev::ServerRecv { req, server } => {
                let s = server as usize;
                let svc = prof.service.sample(&mut svc_rng);
                let start = t.max(server_free[s]);
                server_free[s] = start + svc;
                server_busy[s] += svc;
                q.push(
                    SimTime::from_secs(start + svc + prof.propagation),
                    Ev::ClientRecv { req },
                );
            }
            Ev::ClientRecv { req } => {
                let i = req as usize;
                if !recorded[i] {
                    recorded[i] = true;
                    let completion = t + prof.client_recv_cost
                        + (cfg.copies as f64 - 1.0) * prof.client_recv_cost;
                    if i >= cfg.warmup {
                        response.push(completion - arrivals[i].0);
                    }
                }
            }
        }
    }

    MemcachedResult {
        response,
        server_utilization: server_busy.iter().sum::<f64>()
            / (cfg.servers as f64 * end_time.max(f64::MIN_POSITIVE)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(copies: usize, load: f64) -> MemcachedConfig {
        let mut c = MemcachedConfig::paper_like(copies, load);
        c.requests = 60_000;
        c.warmup = 6_000;
        c
    }

    #[test]
    fn utilization_tracks_load() {
        let out = run(&quick(1, 0.4));
        assert!(
            (out.server_utilization - 0.4).abs() < 0.04,
            "util {}",
            out.server_utilization
        );
    }

    #[test]
    fn replication_worsens_mean_at_moderate_load() {
        // Fig 12: the client-side cost exceeds the min-of-two gain at
        // essentially all tested loads (10-90%).
        for &load in &[0.2, 0.4] {
            let m1 = run(&quick(1, load)).response.mean();
            let m2 = run(&quick(2, load)).response.mean();
            assert!(
                m2 > m1 * 0.98,
                "load {load}: replication should not win (m1 {m1} m2 {m2})"
            );
        }
    }

    #[test]
    fn stub_isolates_client_cost() {
        // Fig 13: stub responses are far below real ones, and stub k=2
        // exceeds stub k=1 by roughly the per-copy client cost.
        let prof = MemcachedProfile::default();
        let real = run(&quick(1, 0.001)).response.mean();
        let stub1 = run(&quick(1, 0.001).stubbed()).response.mean();
        let stub2 = run(&quick(2, 0.001).stubbed()).response.mean();
        assert!(stub1 < 0.5 * real, "stub {stub1} vs real {real}");
        let added = stub2 - stub1;
        let expect = prof.client_send_cost + prof.client_recv_cost;
        assert!(
            (added - expect).abs() < 0.5 * expect,
            "stub overhead {added} vs expected {expect}"
        );
        // And that overhead is at least 9% of the mean service time, the
        // paper's headline measurement.
        assert!(added >= 0.09 * prof.mean_service);
    }

    #[test]
    fn replication_slightly_positive_at_tiny_load() {
        // Fig 13 note: at 0.1% load the real (non-stub) runs still show a
        // slightly positive effect overall -- the threshold is positive but
        // small. Allow either a small win or a near-tie.
        let m1 = run(&quick(1, 0.001)).response.mean();
        let m2 = run(&quick(2, 0.001)).response.mean();
        assert!(
            m2 < m1 * 1.15,
            "at 0.1% load replication should be near-neutral: {m1} vs {m2}"
        );
    }

    #[test]
    fn service_distribution_mass_within_4x() {
        // The paper: >99.9% of the service mass within 4x of the mean.
        let prof = MemcachedProfile::default();
        let mut rng = Rng::seed_from(5);
        let n = 200_000;
        let within = (0..n)
            .filter(|_| prof.service.sample(&mut rng) < 4.0 * prof.mean_service)
            .count();
        let frac = within as f64 / n as f64;
        assert!(frac > 0.996, "only {frac} within 4x of mean");
    }
}
