//! # rt — the wall-clock counterpart of the simulated service.
//!
//! Everything else in this crate runs in *simulated* time on
//! `simcore::event`. This module is the executable twin: `N` real worker
//! threads serve requests over `std::sync::mpsc` channels, the adaptive
//! frontend makes live [`Planner::decide_for`] decisions fed by the real
//! [`EstimatorBank`] / [`MomentEstimator`] stack, and first-response
//! cancellation races actual in-flight execution through the shared
//! [`CancelToken`]. It exists to answer the question the simulators
//! cannot: is the per-request decision stack cheap enough — in real
//! nanoseconds, against real thread wakeups — to run on every request?
//! ("When Do Redundant Requests Reduce Latency?" maps where decision
//! overhead flips redundancy negative; this runtime is where we measure
//! our own overhead against that line.)
//!
//! ## The determinism split
//!
//! A wall-clock runtime cannot promise bit-identical *latencies* — but its
//! **decision trace** can be a pure function of the workload. The split:
//!
//! * the **request script** (arrival times, per-copy service demands,
//!   server placements) is generated upfront from the seed, exactly like
//!   the CRN draw streams in `queuesim::threshold`;
//! * every estimator ingests **script time and scripted demands only**:
//!   arrivals enter the [`EstimatorBank`] at their scripted timestamps,
//!   and issued copies report their scripted demand at *dispatch*
//!   (mirroring `DemandReport::Dispatch`), never a measured duration;
//! * therefore each replicate-or-not decision is a pure function of the
//!   script prefix, and the recorded trace is byte-identical across runs
//!   and across **any worker count** — the property pinned by the tests
//!   below and smoked by `repro svc-rt`;
//! * wall-clock latencies are measured (dispatch → first completion) and
//!   reported, but live in a clearly separated, *non-deterministic*
//!   section of the output, excluded from CI's byte-diff trees.
//!
//! Workers execute a copy by spinning for its scripted demand while
//! polling the request's [`CancelToken`]; the frontend cancels the token
//! when the first copy completes, so losers are purged from the queue
//! (cancelled before starting) or aborted mid-execution — the same
//! tri-state accounting the simulated service keeps. The frontend records
//! a response exactly once per request: a late winner (a copy that
//! completed before observing the cancel) increments a counter instead of
//! double-completing.
//!
//! This file is the *only* storesim module on the lint `wall-clock`
//! allowlist: `Instant` here is the data plane, not simulation state.

use redundancy::cancel::CancelToken;
use redundancy::estimator::{EstimatorBank, MomentEstimator};
use redundancy::planner::{Planner, ThresholdCache, WorkloadProfile};
use simcore::dist::{DynDist, Exponential};
use simcore::rng::Rng;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one wall-clock run.
///
/// `servers` are *logical* queues (the planner's placement domain);
/// `workers` are OS threads. Copy placed on logical server `s` executes
/// on worker thread `s % workers`, so the worker count is a pure
/// execution knob — it moves wall-clock latency, never the decision
/// trace.
#[derive(Clone, Debug)]
pub struct RtConfig {
    /// Logical servers (placement candidates; the estimator bank's width).
    pub servers: usize,
    /// OS worker threads executing copies. Must be ≥ 1.
    pub workers: usize,
    /// Per-copy service demand distribution, in seconds of real execution
    /// (spin time). Its exact moments seed the planner until the moment
    /// estimator warms up.
    pub service: DynDist,
    /// Arrival-rate estimator window, in inter-arrival gaps per server.
    pub window: usize,
    /// Moment-estimator window, in observed (scripted) demands.
    pub moment_window: usize,
    /// Scripted demands observed before the live moments are trusted.
    pub min_samples: usize,
    /// Planner recalibration cadence, in observed demands.
    pub recalibrate: usize,
    /// Client-side overhead fed to the planner (§2.3), seconds.
    pub client_overhead: f64,
    /// Offered baseline per-server utilization at the ramp start (the
    /// warm-up runs entirely at this load). This shapes the *script
    /// clock* — the frontend dispatches as fast as the in-flight window
    /// allows, it does not pace wall time to the script.
    pub load_start: f64,
    /// Offered baseline utilization at the ramp end.
    pub load_end: f64,
    /// Measured requests.
    pub requests: usize,
    /// Warm-up requests (run at `load_start`, excluded from the bucketed
    /// decision curve but part of the trace).
    pub warmup: usize,
    /// Maximum requests simultaneously in flight (bounds queue memory and
    /// keeps the latency race honest — losers must still be racing when
    /// the winner lands).
    pub inflight: usize,
    /// Ramp buckets for the reported k = 2 fraction curve.
    pub buckets: usize,
    /// RNG seed for the request script.
    pub seed: u64,
}

impl RtConfig {
    /// The smoke configuration: 8 logical servers, 5 µs mean exponential
    /// demands, a 0.05 → 0.90 load ramp that crosses the §2.1 threshold
    /// (so the trace shows the planner actually switching off), and a
    /// self-calibrating moment loop with figure-shaped cadences.
    pub fn smoke(requests: usize, workers: usize) -> Self {
        RtConfig {
            servers: 8,
            workers,
            service: Arc::new(Exponential::with_mean(5.0e-6)),
            // Sized for the per-*server* stream: with 8 servers and two
            // observations per request, a request stream of R feeds each
            // estimator ~R/4 gaps, and the window must cover a small
            // fraction of the ramp for the switch-off to track it.
            window: 512,
            moment_window: 4096,
            min_samples: 256,
            recalibrate: 512,
            client_overhead: 0.0,
            load_start: 0.05,
            load_end: 0.90,
            requests,
            warmup: requests / 10,
            inflight: 512,
            buckets: 18,
            seed: 0x5C11_07E5,
        }
    }

    /// Total scripted requests (warm-up + measured).
    fn total(&self) -> usize {
        self.warmup + self.requests
    }

    /// Offered baseline load of request `i` (same ramp shape as the
    /// simulated service: warm-up flat at `load_start`, then linear).
    fn offered(&self, i: usize) -> f64 {
        if i < self.warmup || self.requests <= 1 {
            self.load_start
        } else {
            let frac = (i - self.warmup) as f64 / (self.requests - 1) as f64;
            self.load_start + (self.load_end - self.load_start) * frac
        }
    }
}

/// The deterministic request script: every random draw the run needs,
/// materialized upfront from the seed (the rt analogue of the CRN draw
/// streams). Arrival timestamps follow the offered-load ramp at the
/// script clock; demands and placements are load-independent.
struct Script {
    /// Scripted arrival time of each request, seconds, nondecreasing.
    arrivals: Vec<f64>,
    /// Per-copy service demands (copy 0 is the k = 1 copy).
    demands: Vec<[f64; 2]>,
    /// The two stored-replica servers of each request.
    pairs: Vec<[u16; 2]>,
    /// Which pair member a k = 1 dispatch uses (load-balanced pick).
    single_pick: Vec<u8>,
}

impl Script {
    fn build(cfg: &RtConfig) -> Script {
        assert!(cfg.servers >= 2, "need at least 2 servers to replicate");
        assert!(cfg.servers <= u16::MAX as usize, "too many servers");
        let total = cfg.total();
        let mean = cfg.service.mean();
        let mut root = Rng::seed_from(cfg.seed);
        let mut arrival_rng = root.fork(0);
        let mut req_rng = root.fork(1);
        let mut arrivals = Vec::with_capacity(total);
        let mut demands = Vec::with_capacity(total);
        let mut pairs = Vec::with_capacity(total);
        let mut single_pick = Vec::with_capacity(total);
        let mut now = 0.0f64;
        for i in 0..total {
            let rho = cfg.offered(i);
            let lambda = cfg.servers as f64 * rho / mean;
            now += -arrival_rng.f64_open().ln() / lambda;
            arrivals.push(now);
            let d0 = cfg.service.sample(&mut req_rng);
            let d1 = cfg.service.sample(&mut req_rng);
            let pair = req_rng.distinct_indices(cfg.servers, 2);
            demands.push([d0, d1]);
            pairs.push([pair[0] as u16, pair[1] as u16]);
            single_pick.push(req_rng.index(2) as u8);
        }
        Script {
            arrivals,
            demands,
            pairs,
            single_pick,
        }
    }
}

/// One copy handed to a worker thread.
struct Job {
    req: u32,
    demand_secs: f64,
    token: CancelToken,
    enqueued: Instant,
}

/// What happened to one copy.
enum CopyOutcome {
    /// Ran its full demand before any cancel was observed.
    Completed,
    /// Token already cancelled when the worker dequeued it.
    Purged,
    /// Cancel observed mid-execution.
    Aborted,
}

struct CopyDone {
    req: u32,
    outcome: CopyOutcome,
    latency: Duration,
}

/// Frontend-side completion bookkeeping (split out of [`run`] so the
/// drain sites share one handler without a self-borrowing closure).
struct FrontState {
    tokens: Vec<Option<CancelToken>>,
    pending_copies: Vec<u8>,
    recorded: Vec<bool>,
    latencies: Vec<f64>,
    responses: usize,
    late: usize,
    purged: usize,
    aborted: usize,
    accounted: usize,
    inflight: usize,
}

impl FrontState {
    fn new(total: usize) -> Self {
        FrontState {
            tokens: vec![None; total],
            pending_copies: vec![0; total],
            recorded: vec![false; total],
            latencies: Vec::with_capacity(total),
            responses: 0,
            late: 0,
            purged: 0,
            aborted: 0,
            accounted: 0,
            inflight: 0,
        }
    }

    fn handle_done(&mut self, done: CopyDone) {
        let r = done.req as usize;
        match done.outcome {
            CopyOutcome::Completed => {
                if self.recorded[r] {
                    // A late winner: its sibling already completed. It must
                    // never double-complete the request — counted, dropped.
                    self.late += 1;
                } else {
                    self.recorded[r] = true;
                    self.responses += 1;
                    self.latencies.push(done.latency.as_secs_f64());
                    if let Some(token) = &self.tokens[r] {
                        token.cancel();
                    }
                }
            }
            CopyOutcome::Purged => self.purged += 1,
            CopyOutcome::Aborted => self.aborted += 1,
        }
        self.pending_copies[r] -= 1;
        if self.pending_copies[r] == 0 {
            self.tokens[r] = None;
            self.inflight -= 1;
        }
        self.accounted += 1;
    }
}

/// Result of one wall-clock run: the deterministic decision trace and its
/// derived statistics first, the non-deterministic wall-clock section
/// last. `trace_fingerprint` is the value the determinism tests and
/// `repro svc-rt` compare across runs and worker counts.
#[derive(Clone, Debug)]
pub struct RtResult {
    /// FNV-1a-64 over every `(k, pair, pick)` trace entry, in request
    /// order. Identical across runs and worker counts by construction.
    pub trace_fingerprint: u64,
    /// Requests the planner replicated (k = 2), over the whole script.
    pub decisions_k2: usize,
    /// Scripted requests served (warm-up + measured).
    pub requests: usize,
    /// Copies dispatched to workers (`requests + decisions_k2`).
    pub issued_copies: usize,
    /// Requests whose first completion was recorded (always `requests`).
    pub responses: usize,
    /// Copies that completed *after* their request already had a winner —
    /// the double-completion candidates the frontend must absorb.
    pub late: usize,
    /// Copies cancelled before starting execution.
    pub purged: usize,
    /// Copies whose execution was aborted by a cancel.
    pub aborted: usize,
    /// `(bucket midpoint offered load, k = 2 fraction)` over the measured
    /// ramp — deterministic.
    pub k2_fraction_by_bucket: Vec<(f64, f64)>,
    /// Offered load past which the planner stopped replicating the
    /// majority of requests (`None` if it never switched off).
    pub switch_off_load: Option<f64>,
    /// Planner's offline threshold from the config moments (reference).
    pub offline_threshold: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds, dispatch of the first request to the last
    /// accounted copy. **Non-deterministic.**
    pub wall_secs: f64,
    /// Mean dispatch → first-completion latency, seconds. **Non-deterministic.**
    pub mean_latency_s: f64,
    /// 99th-percentile latency, seconds. **Non-deterministic.**
    pub p99_latency_s: f64,
}

/// FNV-1a 64-bit, the fingerprint primitive the byte-pin tests use.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Spins for `demand` seconds, polling the token; `true` if the copy ran
/// to completion, `false` if a cancel aborted it.
fn execute(demand_secs: f64, token: &CancelToken) -> bool {
    let deadline = Duration::from_secs_f64(demand_secs);
    let t0 = Instant::now();
    loop {
        if t0.elapsed() >= deadline {
            return true;
        }
        if token.is_cancelled() {
            return false;
        }
        std::hint::spin_loop();
    }
}

/// Runs the wall-clock service over the scripted workload.
///
/// # Panics
/// Panics on a zero worker count, `servers < 2`, or loads outside the
/// replicated system's stable region.
pub fn run(cfg: &RtConfig) -> RtResult {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(
        cfg.load_start > 0.0 && cfg.load_end > 0.0 && cfg.load_start < 1.0 && cfg.load_end < 1.0,
        "loads must sit in (0, 1)"
    );
    assert!(cfg.inflight >= 1, "need a positive in-flight window");
    let script = Script::build(cfg);
    let total = cfg.total();
    let mean_cfg = cfg.service.mean();
    let scv_cfg = cfg.service.scv();

    // Worker pool: one job channel per worker, one shared completion
    // channel back. Copy on logical server s runs on worker s % workers.
    let (done_tx, done_rx) = mpsc::channel::<CopyDone>();
    let mut job_txs = Vec::with_capacity(cfg.workers);
    let mut handles = Vec::with_capacity(cfg.workers);
    for _ in 0..cfg.workers {
        let (tx, rx) = mpsc::channel::<Job>();
        let done = done_tx.clone();
        job_txs.push(tx);
        handles.push(std::thread::spawn(move || {
            for job in rx {
                let done_msg = if job.token.is_cancelled() {
                    CopyDone {
                        req: job.req,
                        outcome: CopyOutcome::Purged,
                        latency: job.enqueued.elapsed(),
                    }
                } else {
                    let completed = execute(job.demand_secs, &job.token);
                    CopyDone {
                        req: job.req,
                        outcome: if completed {
                            CopyOutcome::Completed
                        } else {
                            CopyOutcome::Aborted
                        },
                        latency: job.enqueued.elapsed(),
                    }
                };
                if done.send(done_msg).is_err() {
                    return;
                }
            }
        }));
    }
    drop(done_tx);

    // The live decision stack — the exact types the simulated frontend
    // uses, crossing no thread boundary (decisions are made inline here;
    // only `Job`s, which are `Send`, cross to workers).
    let mut bank = EstimatorBank::new(cfg.servers, cfg.window);
    let mut moments = MomentEstimator::new(cfg.moment_window);
    let base_planner = Planner::new(WorkloadProfile {
        mean_service: mean_cfg,
        scv: scv_cfg,
        client_overhead: cfg.client_overhead,
    });
    let offline_threshold = base_planner.threshold_load();
    let mut planner = base_planner;
    let mut cache = ThresholdCache::new();
    let mut observed = 0usize;

    // Per-request bookkeeping.
    let mut st = FrontState::new(total);
    let mut trace_k: Vec<u8> = vec![0; total];
    let mut fingerprint = 0xCBF2_9CE4_8422_2325u64;
    let mut issued = 0usize;

    let t_run = Instant::now();
    for (i, trace_slot) in trace_k.iter_mut().enumerate() {
        // Drain whatever has finished; block only when the window is full.
        while let Ok(done) = done_rx.try_recv() {
            st.handle_done(done);
        }
        while st.inflight >= cfg.inflight {
            let done = done_rx.recv().expect("workers alive while jobs pending");
            st.handle_done(done);
        }

        // --- the deterministic decision hot path (script inputs only) ---
        let now = script.arrivals[i];
        let pair = script.pairs[i];
        bank.observe_arrival(pair[0] as usize, now);
        bank.observe_arrival(pair[1] as usize, now);
        let mean_live = planner.profile().mean_service;
        let loads = [
            bank.utilization(pair[0] as usize, mean_live, 2),
            bank.utilization(pair[1] as usize, mean_live, 2),
        ];
        let decision = planner.decide_for(&mut cache, &loads);
        let k = if decision.replicate { 2u8 } else { 1u8 };
        *trace_slot = k;
        fingerprint_entry(&mut fingerprint, k, pair, script.single_pick[i]);

        // Dispatch-time demand reporting (mirrors DemandReport::Dispatch):
        // every *issued* copy's scripted demand, observed exactly once.
        for c in 0..k as usize {
            moments.observe(script.demands[i][copy_index(k, script.single_pick[i], c)]);
            observed += 1;
            if observed >= cfg.min_samples && observed.is_multiple_of(cfg.recalibrate) {
                planner = base_planner.recalibrated(moments.mean(), moments.scv());
            }
        }

        // --- real dispatch ---
        let token = CancelToken::new();
        st.tokens[i] = Some(token.clone());
        st.pending_copies[i] = k;
        st.inflight += 1;
        let enqueued = Instant::now();
        for c in 0..k as usize {
            let idx = copy_index(k, script.single_pick[i], c);
            let server = pair[idx] as usize;
            let job = Job {
                req: i as u32,
                demand_secs: script.demands[i][idx],
                token: token.clone(),
                enqueued,
            };
            job_txs[server % cfg.workers]
                .send(job)
                .expect("worker alive");
            issued += 1;
        }
    }
    drop(job_txs);
    while st.accounted < issued {
        let done = done_rx.recv().expect("workers alive while jobs pending");
        st.handle_done(done);
    }
    let wall_secs = t_run.elapsed().as_secs_f64();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    // Deterministic derived stats.
    let decisions_k2 = trace_k.iter().filter(|&&k| k == 2).count();
    let mut k2_fraction_by_bucket = Vec::with_capacity(cfg.buckets);
    let measured = cfg.requests.max(1);
    for b in 0..cfg.buckets {
        let lo = cfg.warmup + b * measured / cfg.buckets;
        let hi = cfg.warmup + (b + 1) * measured / cfg.buckets;
        let n = (hi - lo).max(1);
        let k2 = trace_k[lo..hi].iter().filter(|&&k| k == 2).count();
        let mid = 0.5 * (cfg.offered(lo) + cfg.offered(hi.saturating_sub(1)));
        k2_fraction_by_bucket.push((mid, k2 as f64 / n as f64));
    }
    let switch_off_load = k2_fraction_by_bucket
        .iter()
        .find(|(_, frac)| *frac < 0.5)
        .map(|(load, _)| *load);

    // Non-deterministic wall-clock stats.
    st.latencies.sort_by(f64::total_cmp);
    let mean_latency_s = st.latencies.iter().sum::<f64>() / st.latencies.len().max(1) as f64;
    let p99_latency_s = st
        .latencies
        .get((st.latencies.len().saturating_sub(1)) * 99 / 100)
        .copied()
        .unwrap_or(0.0);

    RtResult {
        trace_fingerprint: fingerprint,
        decisions_k2,
        requests: total,
        issued_copies: issued,
        responses: st.responses,
        late: st.late,
        purged: st.purged,
        aborted: st.aborted,
        k2_fraction_by_bucket,
        switch_off_load,
        offline_threshold,
        workers: cfg.workers,
        wall_secs,
        mean_latency_s,
        p99_latency_s,
    }
}

/// Which scripted demand/placement slot copy `c` of a `k`-copy dispatch
/// uses: k = 2 issues both slots in order; k = 1 issues the load-balanced
/// pick among the stored pair.
fn copy_index(k: u8, pick: u8, c: usize) -> usize {
    if k == 2 {
        c
    } else {
        pick as usize
    }
}

fn fingerprint_entry(hash: &mut u64, k: u8, pair: [u16; 2], pick: u8) {
    fnv1a(hash, &[k, pick]);
    fnv1a(hash, &pair[0].to_le_bytes());
    fnv1a(hash, &pair[1].to_le_bytes());
}

// The decision stack crosses into this module under `Send` bounds (jobs
// and tokens cross threads; estimators/planners stay on the frontend but
// must be movable into service threads by callers). Pin it at compile
// time so a non-Send regression in `redundancy` fails here, not in a
// downstream embedding.
#[allow(dead_code)] // compile-time Send assertion, never called
fn assert_decision_stack_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Planner>();
    is_send::<ThresholdCache>();
    is_send::<EstimatorBank>();
    is_send::<MomentEstimator>();
    is_send::<CancelToken>();
    is_send::<Job>();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(requests: usize, workers: usize) -> RtConfig {
        let mut cfg = RtConfig::smoke(requests, workers);
        // ~1 µs demands keep the scripted run fast even in debug builds.
        cfg.service = Arc::new(Exponential::with_mean(1.0e-6));
        cfg
    }

    #[test]
    fn completes_and_accounts_every_copy() {
        let mut cfg = tiny(4_000, 2);
        // A 4k script feeds each per-server estimator only ~1k gaps; a
        // short window keeps the load estimate tracking the ramp.
        cfg.window = 128;
        let out = run(&cfg);
        assert_eq!(out.responses, out.requests);
        assert_eq!(
            out.issued_copies,
            out.responses + out.late + out.purged + out.aborted,
            "every dispatched copy must be accounted exactly once: {out:?}"
        );
        assert!(out.decisions_k2 > 0, "ramp must start below threshold");
        assert!(
            out.decisions_k2 < out.requests,
            "ramp end (0.9) must sit above the switch-off"
        );
        assert!(out.switch_off_load.is_some(), "{out:?}");
        assert!(out.mean_latency_s > 0.0 && out.wall_secs > 0.0);
    }

    #[test]
    fn decision_trace_is_deterministic_across_runs_and_workers() {
        // The acceptance bar: a 100k-request scripted run, identical
        // decision trace at 1, 4, and 8 worker threads — and across
        // repeat runs at the same worker count.
        let base = run(&tiny(100_000, 1));
        for workers in [4usize, 8] {
            let out = run(&tiny(100_000, workers));
            assert_eq!(
                out.trace_fingerprint, base.trace_fingerprint,
                "workers={workers}"
            );
            assert_eq!(out.decisions_k2, base.decisions_k2, "workers={workers}");
            assert_eq!(out.k2_fraction_by_bucket, base.k2_fraction_by_bucket);
        }
        let again = run(&tiny(100_000, 4));
        assert_eq!(again.trace_fingerprint, base.trace_fingerprint);
    }

    #[test]
    fn late_winner_never_double_completes() {
        // Load pinned far below threshold ⇒ every request replicates, and
        // near-deterministic sibling demands make the race tight, so late
        // second completions actually occur. The frontend must record one
        // response per request and absorb the rest.
        let mut cfg = tiny(6_000, 4);
        cfg.load_start = 0.05;
        cfg.load_end = 0.10;
        let out = run(&cfg);
        assert_eq!(out.decisions_k2, out.requests, "all requests replicate");
        assert_eq!(out.responses, out.requests, "exactly one response each");
        assert_eq!(
            out.issued_copies,
            out.responses + out.late + out.purged + out.aborted
        );
        assert!(
            out.late + out.purged + out.aborted > 0,
            "with 2 copies per request the losing copies must show up \
             somewhere: {out:?}"
        );
    }

    #[test]
    fn cancellation_reaches_in_flight_execution() {
        // Long demands + few workers: by the time a winner lands, the
        // sibling is usually queued (purged) or mid-spin (aborted) — the
        // cancel must reach both states.
        let mut cfg = tiny(1_500, 2);
        cfg.service = Arc::new(Exponential::with_mean(20.0e-6));
        cfg.load_start = 0.05;
        cfg.load_end = 0.10;
        let out = run(&cfg);
        assert!(
            out.purged + out.aborted > 0,
            "cancellation never reached a loser: {out:?}"
        );
    }
}
