//! Consistent hashing — the placement substrate of the §2.2 store.
//!
//! The paper: "The files are partitioned across servers via consistent
//! hashing, and two copies are stored of every file: if the primary is
//! stored on server n, the (replicated) secondary goes to server n + 1."
//!
//! [`HashRing`] implements classic Karger-style consistent hashing with
//! virtual nodes; [`HashRing::primary`] gives the owner of a key, and
//! [`HashRing::replicas`] applies the paper's n, n+1, … rule in *server
//! index* space (not ring space), exactly as quoted.

/// 64-bit mix used for both vnode positions and key hashes (SplitMix64
/// finalizer — good avalanche, stable across platforms).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping `u64` keys to server indices.
#[derive(Clone, Debug)]
pub struct HashRing {
    servers: usize,
    /// Sorted `(position, server)` pairs.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring over `servers` nodes with `vnodes` virtual points each.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(servers: usize, vnodes: usize) -> Self {
        assert!(servers > 0, "ring needs at least one server");
        assert!(vnodes > 0, "ring needs at least one vnode per server");
        let mut points = Vec::with_capacity(servers * vnodes);
        for s in 0..servers {
            for v in 0..vnodes {
                // Position derived from (server, vnode); stable as servers
                // are added, which is what makes the ring *consistent*.
                let pos = mix64((s as u64) << 32 | v as u64);
                points.push((pos, s as u32));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { servers, points }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The server owning `key` (first vnode clockwise of the key's hash).
    pub fn primary(&self, key: u64) -> usize {
        let h = mix64(key);
        let idx = self.points.partition_point(|&(pos, _)| pos < h);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1 as usize
    }

    /// The paper's replica rule: primary on server `n`, copies on
    /// `n+1, n+2, …` (mod server count). Returns `k` distinct servers.
    ///
    /// # Panics
    /// Panics if `k` exceeds the server count.
    pub fn replicas(&self, key: u64, k: usize) -> Vec<usize> {
        assert!(k <= self.servers, "cannot place {k} copies on {} servers", self.servers);
        let p = self.primary(key);
        (0..k).map(|i| (p + i) % self.servers).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // BTreeMap, not HashMap: the assertion loop below traverses the map,
    // and the determinism lint (`cargo run -p lint`, rule map-iteration)
    // bans order-dependent HashMap traversal in simulation crates.
    use std::collections::BTreeMap;

    #[test]
    fn deterministic_lookup() {
        let ring = HashRing::new(4, 64);
        for key in 0..1000u64 {
            assert_eq!(ring.primary(key), ring.primary(key));
        }
    }

    #[test]
    fn balance_with_enough_vnodes() {
        let servers = 8;
        let ring = HashRing::new(servers, 128);
        let mut counts = BTreeMap::new();
        let n = 100_000u64;
        for key in 0..n {
            *counts.entry(ring.primary(key)).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), servers);
        let expect = n as f64 / servers as f64;
        for (&s, &c) in &counts {
            let skew = c as f64 / expect;
            assert!(
                (0.75..1.25).contains(&skew),
                "server {s} owns {c} keys (skew {skew:.2})"
            );
        }
    }

    #[test]
    fn replica_rule_is_n_plus_one() {
        let ring = HashRing::new(5, 32);
        for key in 0..200u64 {
            let reps = ring.replicas(key, 2);
            assert_eq!(reps.len(), 2);
            assert_eq!(reps[1], (reps[0] + 1) % 5);
        }
    }

    #[test]
    fn adding_a_server_moves_few_keys() {
        // The consistency property: growing the ring from 9 to 10 servers
        // should move roughly 1/10th of keys, not reshuffle everything.
        let before = HashRing::new(9, 128);
        let after = HashRing::new(10, 128);
        let n = 50_000u64;
        let moved = (0..n)
            .filter(|&k| before.primary(k) != after.primary(k))
            .count();
        let frac = moved as f64 / n as f64;
        assert!(
            frac < 0.2,
            "adding one server moved {frac:.2} of keys (expected ~0.1)"
        );
        // And every moved key must now live on the new server.
        for k in 0..n {
            if before.primary(k) != after.primary(k) {
                assert_eq!(after.primary(k), 9, "key {k} moved to an old server");
            }
        }
    }

    #[test]
    #[should_panic(expected = "copies")]
    fn too_many_replicas_panics() {
        let ring = HashRing::new(3, 8);
        let _ = ring.replicas(1, 4);
    }
}
