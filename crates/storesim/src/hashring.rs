//! Consistent hashing — the placement substrate of the §2.2 store.
//!
//! The paper: "The files are partitioned across servers via consistent
//! hashing, and two copies are stored of every file: if the primary is
//! stored on server n, the (replicated) secondary goes to server n + 1."
//!
//! [`HashRing`] implements classic Karger-style consistent hashing with
//! virtual nodes. [`HashRing::primary`] gives the owner of a key, and
//! [`HashRing::replicas`] places the copies on the next *distinct*
//! servers clockwise on the ring — the paper's "n, n + 1, …" reading in
//! ring-successor order. An earlier version applied the rule in server
//! *index* space (`(primary + i) % servers`), which broke the whole
//! point of consistent hashing: changing the server count reshuffled
//! nearly every replica set. With the successor walk, resizing the ring
//! only perturbs replica sets whose walk passes a vnode that appeared
//! or vanished.
//!
//! The ring is elastic: [`HashRing::add_server`] and
//! [`HashRing::remove_server`] grow and shrink it one server at a time
//! with minimal key movement. Construction is defined *as* repeated
//! `add_server`, so an incrementally grown ring is bitwise identical to
//! a batch-built one of the same size, and `remove_server` exactly
//! undoes the matching `add_server` (servers join and leave in LIFO
//! index order, the only order the storage layer needs).

/// 64-bit mix used for both vnode positions and key hashes (SplitMix64
/// finalizer — good avalanche, stable across platforms).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping `u64` keys to server indices.
#[derive(Clone, Debug)]
pub struct HashRing {
    servers: usize,
    vnodes: usize,
    /// Sorted `(position, server)` pairs; exactly `servers * vnodes`
    /// entries — position collisions are rehashed, never dropped.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring over `servers` nodes with `vnodes` virtual points each.
    ///
    /// Equivalent to an empty ring grown by `servers` calls to
    /// [`HashRing::add_server`].
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(servers: usize, vnodes: usize) -> Self {
        assert!(servers > 0, "ring needs at least one server");
        assert!(vnodes > 0, "ring needs at least one vnode per server");
        let mut ring = HashRing {
            servers: 0,
            vnodes,
            points: Vec::with_capacity(servers * vnodes),
        };
        for _ in 0..servers {
            ring.add_server();
        }
        ring
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Virtual points per server.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Inserts a vnode at `pos` (owned by `server`), rehashing through
    /// [`mix64`] until the position is free. A collision used to be
    /// silently dropped by `dedup_by_key`, so a server could own fewer
    /// points than requested — pathologically zero. The probe chain
    /// only depends on positions inserted *before* it, and servers are
    /// generated in index order, so incremental growth resolves every
    /// collision exactly as a batch build would.
    fn insert_probed(&mut self, mut pos: u64, server: u32) {
        loop {
            match self.points.binary_search_by_key(&pos, |p| p.0) {
                Ok(_) => pos = mix64(pos),
                Err(i) => {
                    self.points.insert(i, (pos, server));
                    return;
                }
            }
        }
    }

    /// Grows the ring by one server (index `servers()`), returning the
    /// new server's index. Only keys whose successor walk meets one of
    /// the new server's vnodes change placement — the consistency
    /// property (`~1/(n+1)` of primaries for an `n`-server ring).
    ///
    /// # Panics
    /// Panics if the ring already holds `u16::MAX + 1` servers (server
    /// indices travel as `u16` through the service layers).
    pub fn add_server(&mut self) -> usize {
        let s = self.servers;
        assert!(s <= u16::MAX as usize, "ring is full ({s} servers)");
        for v in 0..self.vnodes {
            // Position derived from (server, vnode); stable as servers
            // are added, which is what makes the ring *consistent*.
            let pos = mix64((s as u64) << 32 | v as u64);
            self.insert_probed(pos, s as u32);
        }
        self.servers = s + 1;
        self.servers - 1
    }

    /// Shrinks the ring by one server — the highest-index one, exactly
    /// undoing the matching [`HashRing::add_server`] (LIFO). Keys owned
    /// by the departed server fall through to their next surviving
    /// successor; nothing else moves.
    ///
    /// # Panics
    /// Panics on a one-server ring.
    pub fn remove_server(&mut self) -> usize {
        assert!(self.servers > 1, "cannot remove the last server");
        self.servers -= 1;
        let gone = self.servers as u32;
        self.points.retain(|&(_, s)| s != gone);
        self.servers
    }

    /// The server owning `key` (first vnode clockwise of the key's hash).
    pub fn primary(&self, key: u64) -> usize {
        let h = mix64(key);
        let idx = self.points.partition_point(|&(pos, _)| pos < h);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1 as usize
    }

    /// The replica rule: walk clockwise from the key's hash and collect
    /// the first `k` *distinct* servers — primary first, then each next
    /// new server the walk encounters. Returns `k` servers.
    ///
    /// # Panics
    /// Panics if `k` exceeds the server count.
    pub fn replicas(&self, key: u64, k: usize) -> Vec<usize> {
        let mut buf = vec![0u16; k];
        self.replicas_into(key, &mut buf);
        buf.into_iter().map(|s| s as usize).collect()
    }

    /// Allocation-free [`HashRing::replicas`]: fills `out` with the
    /// first `out.len()` distinct servers clockwise of `key`'s hash.
    /// This is the dispatch hot path of the sharded service.
    ///
    /// # Panics
    /// Panics if `out.len()` exceeds the server count.
    pub fn replicas_into(&self, key: u64, out: &mut [u16]) {
        let k = out.len();
        assert!(
            k <= self.servers,
            "cannot place {k} copies on {} servers",
            self.servers
        );
        let h = mix64(key);
        let start = self.points.partition_point(|&(pos, _)| pos < h);
        let n = self.points.len();
        let mut found = 0;
        for step in 0..n {
            let mut i = start + step;
            if i >= n {
                i -= n;
            }
            let s = self.points[i].1 as u16;
            if !out[..found].contains(&s) {
                out[found] = s;
                found += 1;
                if found == k {
                    return;
                }
            }
        }
        unreachable!("ring holds vnodes for every server");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // BTreeMap, not HashMap: the assertion loops below traverse maps,
    // and the determinism lint (`cargo run -p lint`, rule map-iteration)
    // bans order-dependent HashMap traversal in simulation crates.
    use std::collections::BTreeMap;

    #[test]
    fn deterministic_lookup() {
        let ring = HashRing::new(4, 64);
        for key in 0..1000u64 {
            assert_eq!(ring.primary(key), ring.primary(key));
        }
    }

    #[test]
    fn balance_with_enough_vnodes() {
        let servers = 8;
        let ring = HashRing::new(servers, 128);
        let mut counts = BTreeMap::new();
        let n = 100_000u64;
        for key in 0..n {
            *counts.entry(ring.primary(key)).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), servers);
        let expect = n as f64 / servers as f64;
        for (&s, &c) in &counts {
            let skew = c as f64 / expect;
            assert!(
                (0.75..1.25).contains(&skew),
                "server {s} owns {c} keys (skew {skew:.2})"
            );
        }
    }

    #[test]
    fn replicas_walk_the_ring_for_distinct_servers() {
        let ring = HashRing::new(5, 32);
        for key in 0..500u64 {
            let reps = ring.replicas(key, 3);
            assert_eq!(reps.len(), 3);
            // Primary first, then all distinct.
            assert_eq!(reps[0], ring.primary(key));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "key {key}: duplicate replica in {reps:?}");
        }
        // k == servers enumerates every server.
        let mut all = ring.replicas(7, 5);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn replicas_into_matches_replicas() {
        let ring = HashRing::new(9, 64);
        let mut buf = [0u16; 4];
        for key in 0..300u64 {
            ring.replicas_into(key, &mut buf);
            let vec = ring.replicas(key, 4);
            for (a, &b) in vec.iter().zip(buf.iter()) {
                assert_eq!(*a, b as usize);
            }
        }
    }

    #[test]
    fn resize_moves_few_primaries_and_spares_replica_sets() {
        // The consistency property, now for *replica sets* too: growing
        // the ring from N to N+1 servers moves ~1/(N+1) of primaries,
        // every moved key lands on the new server, and any key whose
        // primary stayed put keeps a replica set that differs at most by
        // the new server displacing one old member — untouched walks
        // stay bitwise identical.
        let n_servers = 9;
        let before = HashRing::new(n_servers, 128);
        let mut after = before.clone();
        assert_eq!(after.add_server(), n_servers);
        let n = 50_000u64;
        let mut moved = 0usize;
        let mut touched_sets = 0usize;
        for k in 0..n {
            if before.primary(k) != after.primary(k) {
                moved += 1;
                assert_eq!(after.primary(k), n_servers, "key {k} moved to an old server");
            }
            let old = before.replicas(k, 2);
            let new = after.replicas(k, 2);
            if old != new {
                touched_sets += 1;
                // A changed set must involve the new server — existing
                // servers never trade keys among themselves on growth.
                assert!(
                    new.contains(&n_servers),
                    "key {k}: replica set changed {old:?} -> {new:?} without the new server"
                );
            }
        }
        let frac = moved as f64 / n as f64;
        assert!(
            frac < 0.2,
            "adding one server moved {frac:.2} of primaries (expected ~0.1)"
        );
        // Two-copy sets are touched at roughly twice the primary rate
        // (either walk slot can hit the new server); the vast majority
        // must survive untouched.
        let set_frac = touched_sets as f64 / n as f64;
        assert!(
            set_frac < 0.35,
            "adding one server touched {set_frac:.2} of replica sets (expected ~0.2)"
        );
    }

    #[test]
    fn incremental_growth_matches_batch_build() {
        let batch = HashRing::new(13, 64);
        let mut grown = HashRing::new(1, 64);
        for _ in 1..13 {
            grown.add_server();
        }
        assert_eq!(grown.servers(), batch.servers());
        assert_eq!(grown.points, batch.points);
    }

    #[test]
    fn remove_undoes_add() {
        let base = HashRing::new(10, 64);
        let mut ring = base.clone();
        ring.add_server();
        ring.add_server();
        assert_eq!(ring.remove_server(), 11);
        assert_eq!(ring.remove_server(), 10);
        assert_eq!(ring.servers(), base.servers());
        assert_eq!(ring.points, base.points);
        // Shrinking moves only the departed server's keys: survivors
        // keep their primaries.
        let mut big = base.clone();
        big.add_server();
        big.remove_server();
        for k in 0..20_000u64 {
            assert_eq!(big.primary(k), base.primary(k));
        }
    }

    #[test]
    fn position_collisions_are_rehashed_not_dropped() {
        // Force collisions directly: insert a server whose probe start
        // is a position the ring already owns. insert_probed must walk
        // the mix64 chain to a free slot instead of dropping the point.
        let mut ring = HashRing::new(2, 8);
        let taken = ring.points[3].0;
        let len = ring.points.len();
        ring.insert_probed(taken, 0);
        assert_eq!(ring.points.len(), len + 1, "colliding vnode was dropped");
        assert_eq!(
            ring.points.iter().filter(|&&(p, _)| p == taken).count(),
            1,
            "duplicate ring position"
        );
        // And the invariant the old dedup_by_key build could violate:
        // every server owns exactly `vnodes` points, at any size.
        for servers in [1usize, 2, 7, 64, 257] {
            let ring = HashRing::new(servers, 16);
            assert_eq!(ring.points.len(), servers * 16);
            let mut owned = BTreeMap::new();
            for &(_, s) in &ring.points {
                *owned.entry(s).or_insert(0usize) += 1;
            }
            for (&s, &c) in &owned {
                assert_eq!(c, 16, "server {s} owns {c} vnodes (wanted 16)");
            }
        }
    }

    #[test]
    #[should_panic(expected = "copies")]
    fn too_many_replicas_panics() {
        let ring = HashRing::new(3, 8);
        let _ = ring.replicas(1, 4);
    }

    #[test]
    #[should_panic(expected = "last server")]
    fn removing_the_last_server_panics() {
        let mut ring = HashRing::new(1, 8);
        ring.remove_server();
    }
}
