//! # storesim — the paper's disk-backed database and memcached experiments
//!
//! §2.2 of *Low Latency via Redundancy* deploys Apache file servers backed
//! by the Linux page cache over 10k-RPM disks, partitions files across
//! servers with consistent hashing (primary on server *n*, replica on
//! *n + 1*), drives them with open-loop Poisson clients, and measures GET
//! response times with and without 2-way replication. §2.3 repeats the
//! experiment against memcached, where the *client-side* cost of the second
//! copy (≈ 9 % of the 0.18 ms mean service time) flips the verdict.
//!
//! This crate rebuilds that testbed as a discrete-event simulation:
//!
//! * [`hashring`] — consistent hashing with virtual nodes (the placement
//!   substrate; the paper's n/n+1 replica rule sits on top);
//! * [`lru`] — a byte-capacity LRU standing in for the kernel page cache;
//! * [`disk`] — a mechanical-disk service model (seek + rotation +
//!   transfer) and the RAM path that replaces it for cache hits;
//! * [`cluster`] — servers (disk FIFO + cache + NIC), clients (Poisson
//!   open loop, replicated GETs, downlink serialization + fixed per-copy
//!   CPU cost), and the event loop connecting them;
//! * [`memcached`] — the §2.3 in-memory variant, including the *stub* mode
//!   the paper uses to isolate client-side overhead (Fig 13);
//! * [`service`] — the **online** variant: a sharded service whose
//!   front-end consults the `redundancy` planner *per request*, adapting
//!   the replication factor live as a windowed load estimate crosses the
//!   §2.1 threshold, with loser cancellation over FIFO or PS servers;
//! * [`sharded`] — the same online service ported onto `simcore`'s
//!   sharded parallel engine (one shard per server group plus a frontend
//!   shard), unlocking hundred-server, million-request ramps with
//!   bit-identical output at any thread count;
//! * [`rt`] — the **wall-clock** twin of [`service`]: real worker threads
//!   serving scripted requests over channels, live per-request planner
//!   decisions, and first-response cancellation racing actual execution —
//!   the decision trace stays deterministic, only latencies are real;
//! * [`experiments`] — one named configuration per figure (5 through 13),
//!   plus the service-layer load-ramp experiment.
//!
//! What carries over from the paper's hardware: the *ratios* that drive
//! behaviour (cache:disk ratio, file size vs transfer rates, fixed client
//! cost vs mean service time). What doesn't: absolute 2013 disk constants,
//! which are configurable in [`disk::DiskProfile`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod disk;
pub mod experiments;
pub mod hashring;
pub mod lru;
pub mod memcached;
pub mod rt;
pub mod service;
pub mod sharded;

pub use cluster::{ClusterConfig, ClusterResult};
pub use experiments::{run_load_sweep, ExperimentSpec, LoadSweepRow};
pub use service::{ServiceConfig, ServiceResult};
pub use sharded::{run_sharded, ShardedOutcome};
