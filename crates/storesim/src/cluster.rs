//! The disk-backed storage cluster: servers, clients, and the event loop.
//!
//! Reproduces the §2.2 testbed's moving parts:
//!
//! * **Servers** — a byte-capacity LRU page cache ([`crate::lru`]) in front
//!   of a single FIFO disk ([`crate::disk`]), plus an outbound NIC that
//!   serializes responses. An optional *interference* distribution adds
//!   per-operation noise (the EC2 experiment of Fig 9 — multi-tenant
//!   hiccups the paper identifies as the reason redundancy wins big there).
//! * **Clients** — an open-loop Poisson stream of GETs for uniformly random
//!   files. A replicated GET goes to the file's primary *and* the next
//!   server (the paper's n/n+1 rule); the response time is the first
//!   response's completion, but **both** responses still traverse the
//!   client's downlink and cost fixed per-copy CPU — this is exactly the
//!   client-side overhead that §2.3 shows can erase the benefit.
//! * **Network** — one-way propagation plus store-and-forward
//!   serialization at the server NIC and the client NIC (each NIC is a
//!   FIFO resource; transfer time is paid once end-to-end when
//!   uncontended).
//!
//! Caches are pre-warmed to their steady state (a uniform-random resident
//! set, which is the LRU fixed point under uniform access) so measured
//! hit rates equal the configured cache:disk ratio from the first sample.

use crate::disk::DiskProfile;
use crate::hashring::HashRing;
use crate::lru::LruCache;
use simcore::dist::{Distribution, DynDist};
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::stats::SampleSet;
use simcore::time::SimTime;

/// Network and client-side cost constants.
#[derive(Clone, Debug)]
pub struct NetProfile {
    /// Server NIC line rate, bytes/second.
    pub server_nic_bytes_per_sec: f64,
    /// Client NIC line rate, bytes/second.
    pub client_nic_bytes_per_sec: f64,
    /// One-way propagation + switching delay, seconds.
    pub propagation: f64,
    /// Client CPU cost to issue one request copy (syscall + marshalling).
    pub client_send_cost: f64,
    /// Client CPU cost to absorb one response copy.
    pub client_recv_cost: f64,
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile {
            // Gigabit everywhere, LAN latencies, 2013-kernel syscall costs.
            server_nic_bytes_per_sec: 125.0e6,
            client_nic_bytes_per_sec: 125.0e6,
            propagation: 50.0e-6,
            client_send_cost: 8.0e-6,
            client_recv_cost: 8.0e-6,
        }
    }
}

/// The population of files served by the cluster.
#[derive(Clone, Debug)]
pub struct FilePopulation {
    sizes: Vec<u64>,
    total_bytes: u64,
}

impl FilePopulation {
    /// Draws files from `size_dist` (values in bytes, rounded up to ≥ 1)
    /// until `total_bytes` is reached.
    pub fn generate(size_dist: &dyn Distribution, total_bytes: u64, rng: &mut Rng) -> Self {
        assert!(total_bytes > 0);
        let mut sizes = Vec::new();
        let mut acc = 0u64;
        while acc < total_bytes {
            let s = size_dist.sample(rng).ceil().max(1.0) as u64;
            sizes.push(s);
            acc += s;
        }
        FilePopulation {
            sizes,
            total_bytes: acc,
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size of file `id` in bytes.
    pub fn size(&self, id: usize) -> u64 {
        self.sizes[id]
    }

    /// Sum of all file sizes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Mean file size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.total_bytes as f64 / self.sizes.len() as f64
    }
}

/// Full configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of storage servers (the paper uses 4).
    pub servers: usize,
    /// Number of client machines (the paper uses 10).
    pub clients: usize,
    /// Copies per GET (1 = no replication, 2 = the paper's scheme).
    pub copies: usize,
    /// The file population.
    pub files: FilePopulation,
    /// Page-cache capacity per server, bytes.
    pub cache_bytes: u64,
    /// Disk/RAM service constants.
    pub disk: DiskProfile,
    /// Network constants.
    pub net: NetProfile,
    /// Optional extra stall added to *disk* reads (seconds) — kernel and
    /// controller hiccups that only bite when the request actually reaches
    /// the spindle. This is what gives the disk-bound figures their deep
    /// 99.9th-percentile tails without touching the in-memory ones.
    pub disk_noise: Option<DynDist>,
    /// Optional stall added to *every* operation — multi-tenant CPU/VM
    /// interference (the Fig 9 EC2 configuration).
    pub op_noise: Option<DynDist>,
    /// Target *baseline* per-server utilization of the bottleneck resource
    /// (the k = 1 load; with k copies the realized utilization is k× this).
    pub load: f64,
    /// Measured requests.
    pub requests: usize,
    /// Warm-up requests (caches are additionally pre-warmed structurally).
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// Fraction of reads expected to hit a server's page cache.
    ///
    /// Two copies of every file are *stored* regardless of the query-time
    /// replication factor (1-copy GETs load-balance across the two stored
    /// replicas, as a fault-tolerant store would), so each server is
    /// accessed for `2·T/N` bytes of distinct data in every configuration.
    /// Under uniform access the LRU steady state is a random resident
    /// subset, hence hit rate = resident fraction = the configured
    /// cache:disk ratio, capped at 1 — identical for k = 1 and k = 2, which
    /// is what keeps the measured threshold comparable to the §2.1 model.
    pub fn expected_hit_rate(&self) -> f64 {
        let accessed_bytes = self.files.total_bytes() as f64 * 2.0 / self.servers as f64;
        (self.cache_bytes as f64 / accessed_bytes).min(1.0)
    }

    /// Expected k = 1 service demand per request on the bottleneck resource
    /// (disk if any traffic misses, otherwise the CPU/NIC path). The load
    /// axis of every figure is defined against this baseline, for both
    /// replication factors — exactly as the paper plots both curves against
    /// one offered-load axis.
    pub fn bottleneck_demand(&self) -> f64 {
        let mean_bytes = self.files.mean_bytes();
        let hit = self.expected_hit_rate();
        let noise = self.disk_noise.as_ref().map_or(0.0, |n| n.mean());
        let disk_demand =
            (1.0 - hit) * (self.disk.mean_disk_read(mean_bytes as u64) + noise);
        let cpu_demand = self.disk.cache_read(mean_bytes as u64)
            + mean_bytes / self.net.server_nic_bytes_per_sec;
        disk_demand.max(cpu_demand)
    }

    /// Total request arrival rate (requests/second across all clients)
    /// achieving the configured baseline load.
    pub fn arrival_rate(&self) -> f64 {
        self.load * self.servers as f64 / self.bottleneck_demand()
    }
}

/// Everything one run measures.
#[derive(Debug)]
pub struct ClusterResult {
    /// Per-request response times, seconds (first copy to complete).
    pub response: SampleSet,
    /// Measured cache hit rate across all servers.
    pub hit_rate: f64,
    /// Measured mean disk utilization across servers.
    pub disk_utilization: f64,
    /// Requests measured.
    pub completed: usize,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A new request is generated.
    Arrive { req: u32 },
    /// A request copy reaches a server.
    ServerRecv { req: u32, server: u16 },
    /// A response is ready to claim the server's outbound NIC. Claiming at
    /// readiness (not at request arrival) is what keeps the NIC FIFO in
    /// *service order*: a response stalled by interference must not block
    /// responses that became ready before it.
    ServerSend { req: u32, server: u16, bytes: u64 },
    /// A response has fully crossed the fabric to the client's downlink.
    ClientRecv { req: u32, client: u16, bytes: u64 },
}

struct ReqState {
    arrival: SimTime,
    file: u32,
    client: u16,
    outstanding: u8,
    recorded: bool,
}

/// Runs the cluster simulation.
///
/// # Panics
/// Panics if `copies` exceeds the server count or the realized bottleneck
/// utilization `copies × load` is ≥ 1.
pub fn run(cfg: &ClusterConfig) -> ClusterResult {
    assert!(cfg.copies >= 1 && cfg.copies <= cfg.servers);
    assert!(
        (cfg.copies as f64) * cfg.load < 1.0,
        "k*load = {} saturates the cluster",
        cfg.copies as f64 * cfg.load
    );
    assert!(!cfg.files.is_empty(), "empty file population");

    let mut root = Rng::seed_from(cfg.seed);
    let mut arrival_rng = root.fork(1);
    let mut placement_rng = root.fork(2);
    let mut service_rng = root.fork(3);

    let ring = HashRing::new(cfg.servers, 64);
    let lambda = cfg.arrival_rate();

    // --- server state ---
    let mut caches: Vec<LruCache> = (0..cfg.servers)
        .map(|_| LruCache::new(cfg.cache_bytes))
        .collect();
    let mut disk_free = vec![0.0f64; cfg.servers];
    let mut snic_free = vec![0.0f64; cfg.servers];
    let mut disk_busy = vec![0.0f64; cfg.servers];

    // Pre-warm: the steady state of LRU under uniform access is a uniform
    // random resident subset of the data this server will actually be asked
    // for (its primaries, plus secondaries when copies = 2). Insert every
    // such file in random order; LRU keeps a random full-cache subset.
    {
        let mut warm_rng = root.fork(4);
        let mut ids: Vec<u32> = (0..cfg.files.len() as u32).collect();
        warm_rng.shuffle(&mut ids);
        for (s, cache) in caches.iter_mut().enumerate() {
            for &f in &ids {
                // Two copies are stored regardless of the query-time k.
                let owners = ring.replicas(f as u64, 2.min(cfg.servers));
                if owners.contains(&s) {
                    cache.insert(f as u64, cfg.files.size(f as usize));
                }
            }
        }
    }

    // --- client state ---
    let mut cnic_free = vec![0.0f64; cfg.clients];

    // --- request bookkeeping ---
    let total = cfg.warmup + cfg.requests;
    let mut reqs: Vec<ReqState> = Vec::with_capacity(total);
    let mut response = SampleSet::with_capacity(cfg.requests);
    let mut hits = 0u64;
    let mut accesses = 0u64;

    // Steady state holds roughly one in-flight request chain per server
    // plus one pending arrival; pre-size so the heap never reallocates.
    let mut q: EventQueue<Ev> = EventQueue::with_capacity((8 * cfg.servers).max(1024));
    q.push(
        SimTime::from_secs(arrival_rng.exponential(lambda)),
        Ev::Arrive { req: 0 },
    );

    let mut measure_end = 0.0f64;

    while let Some((now, ev)) = q.pop() {
        let t = now.as_secs();
        match ev {
            Ev::Arrive { req } => {
                let file = placement_rng.index(cfg.files.len()) as u32;
                let client = placement_rng.index(cfg.clients) as u16;
                reqs.push(ReqState {
                    arrival: now,
                    file,
                    client,
                    outstanding: cfg.copies as u8,
                    recorded: false,
                });
                debug_assert_eq!(reqs.len() - 1, req as usize);
                measure_end = t;

                // Two replicas are stored; a 1-copy GET load-balances
                // across them, a 2-copy GET races both.
                let stored = ring.replicas(file as u64, 2.min(cfg.servers));
                let targets: Vec<usize> = if cfg.copies >= stored.len() {
                    stored
                } else {
                    vec![stored[placement_rng.index(stored.len())]]
                };
                for (copy, &server) in targets.iter().enumerate() {
                    // Each extra copy costs client CPU to send, serially.
                    let send_at =
                        t + cfg.net.client_send_cost * (copy as f64 + 1.0) + cfg.net.propagation;
                    q.push(
                        SimTime::from_secs(send_at),
                        Ev::ServerRecv {
                            req,
                            server: server as u16,
                        },
                    );
                }
                // Open loop: schedule the next arrival regardless.
                if (req as usize) + 1 < total {
                    q.push_after(
                        SimTime::from_secs(arrival_rng.exponential(lambda)),
                        Ev::Arrive { req: req + 1 },
                    );
                }
            }
            Ev::ServerRecv { req, server } => {
                let s = server as usize;
                let state = &reqs[req as usize];
                let file = state.file;
                let bytes = cfg.files.size(file as usize);
                accesses += 1;
                let hit = caches[s].access(file as u64);
                let core_done = if hit {
                    hits += 1;
                    t + cfg.disk.cache_read(bytes)
                } else {
                    let mut svc = cfg.disk.disk_read(bytes, &mut service_rng);
                    if let Some(noise) = &cfg.disk_noise {
                        svc += noise.sample(&mut service_rng);
                    }
                    let start = t.max(disk_free[s]);
                    disk_free[s] = start + svc;
                    disk_busy[s] += svc;
                    caches[s].insert(file as u64, bytes);
                    start + svc
                };
                let core_done = match &cfg.op_noise {
                    Some(noise) => core_done + noise.sample(&mut service_rng),
                    None => core_done,
                };
                q.push(
                    SimTime::from_secs(core_done),
                    Ev::ServerSend { req, server, bytes },
                );
            }
            Ev::ServerSend { req, server, bytes } => {
                // Claim the outbound NIC now that the response is ready;
                // pop order = readiness order, so the NIC is FIFO in
                // service order. The client pays the per-hop transfer once
                // (cut-through): ClientRecv is stamped with the NIC start
                // plus propagation and the client side adds its own rx
                // serialization.
                let s = server as usize;
                let tx = bytes as f64 / cfg.net.server_nic_bytes_per_sec;
                let nic_start = t.max(snic_free[s]);
                snic_free[s] = nic_start + tx;
                let client = reqs[req as usize].client;
                q.push(
                    SimTime::from_secs(nic_start + tx + cfg.net.propagation),
                    Ev::ClientRecv { req, client, bytes },
                );
            }
            Ev::ClientRecv { req, client, bytes } => {
                let c = client as usize;
                let rx = bytes as f64 / cfg.net.client_nic_bytes_per_sec;
                // `t` is when the response has fully crossed the fabric; the
                // client downlink re-serializes it only if busy with the
                // sibling copy or other responses.
                let done_rx = t.max(cnic_free[c]) + rx;
                cnic_free[c] = done_rx;
                let completion = done_rx + cfg.net.client_recv_cost;
                let state = &mut reqs[req as usize];
                state.outstanding -= 1;
                if !state.recorded {
                    state.recorded = true;
                    if (req as usize) >= cfg.warmup {
                        response.push(completion - state.arrival.as_secs());
                    }
                }
            }
        }
    }

    ClusterResult {
        completed: response.len(),
        response,
        hit_rate: hits as f64 / accesses.max(1) as f64,
        // Busy time includes warm-up; normalize against the whole run for a
        // close-enough utilization check (arrivals are stationary).
        disk_utilization: disk_busy.iter().sum::<f64>()
            / (cfg.servers as f64 * measure_end.max(f64::MIN_POSITIVE)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::Deterministic;

    fn small_config(copies: usize, load: f64) -> ClusterConfig {
        let mut rng = Rng::seed_from(7);
        let files = FilePopulation::generate(
            &Deterministic::new(4096.0),
            256 * 1024 * 1024, // 256 MB total
            &mut rng,
        );
        ClusterConfig {
            servers: 4,
            clients: 10,
            copies,
            files,
            cache_bytes: 12 * 1024 * 1024, // ratio ~= 12/128 ~= 0.094
            disk: DiskProfile::default(),
            net: NetProfile::default(),
            disk_noise: None,
            op_noise: None,
            load,
            requests: 30_000,
            warmup: 3_000,
            seed: 42,
        }
    }

    #[test]
    fn hit_rate_matches_cache_ratio() {
        let cfg = small_config(1, 0.2);
        let expect = cfg.expected_hit_rate();
        let out = run(&cfg);
        assert!(
            (out.hit_rate - expect).abs() < 0.03,
            "hit rate {} vs expected {expect}",
            out.hit_rate
        );
    }

    #[test]
    fn disk_utilization_tracks_load() {
        let cfg = small_config(1, 0.3);
        let out = run(&cfg);
        assert!(
            (out.disk_utilization - 0.3).abs() < 0.05,
            "disk util {}",
            out.disk_utilization
        );
    }

    #[test]
    fn replication_helps_at_low_load() {
        let single = run(&small_config(1, 0.1));
        let double = run(&small_config(2, 0.1));
        let m1 = single.response.mean();
        let m2 = double.response.mean();
        assert!(
            m2 < m1,
            "replication should win at 10% load: {m1} vs {m2}"
        );
    }

    #[test]
    fn replication_hurts_at_high_load() {
        let single = run(&small_config(1, 0.45));
        let double = run(&small_config(2, 0.45));
        assert!(
            double.response.mean() > single.response.mean(),
            "replication should lose at 45% load"
        );
    }

    #[test]
    fn response_floor_is_physical() {
        // No response can beat propagation + minimum service.
        let cfg = small_config(1, 0.05);
        let mut out = run(&cfg);
        let min = out.response.quantile(0.0);
        assert!(
            min > 2.0 * cfg.net.propagation,
            "response {min} beats the wire"
        );
    }

    #[test]
    fn all_requests_complete() {
        let cfg = small_config(2, 0.2);
        let out = run(&cfg);
        assert_eq!(out.completed, cfg.requests);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&small_config(2, 0.2));
        let b = run(&small_config(2, 0.2));
        assert_eq!(a.response.mean(), b.response.mean());
        assert_eq!(a.hit_rate, b.hit_rate);
    }
}
