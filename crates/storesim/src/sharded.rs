//! The [`service`](crate::service) simulation ported onto the sharded
//! parallel engine ([`simcore::shard`]) — one engine shard per server
//! group plus a frontend shard, so a single long ramp can use several
//! cores.
//!
//! The partition follows the physical message flow: `Arrive` and
//! `HedgeFire` are frontend-local, `FifoDepart`/`PsDepart` are
//! server-local, and exactly the events that cross the client↔server
//! boundary in the model — copy dispatches, responses, and cancellations —
//! become cross-shard messages carrying the existing one-way
//! [`propagation`](ServiceConfig::propagation) delay, which is therefore
//! the engine's lookahead window.
//!
//! Two deliberate deltas from the sequential [`service::run`] keep every
//! shard deterministic in isolation (all randomness lives on the
//! frontend):
//!
//! * a copy's service demand is sampled from `svc_rng` at **dispatch** on
//!   the frontend and carried in the `CopyArrive` message, instead of at
//!   server arrival — the same per-copy law, drawn in frontend dispatch
//!   order;
//! * cancellations are addressed **per request** (`Cancel { req, server }`
//!   purges that request's copies at that server) instead of via the
//!   shared [`CancelToken`](redundancy::cancel::CancelToken) — the same
//!   copies are purged, at most one propagation delay later than the
//!   token's opportunistic sweep could have caught them.
//!
//! Consequently the sharded run is **not** byte-identical to
//! [`service::run`] on the same config (distributions agree statistically;
//! a test pins that), but it **is** byte-identical to itself at any thread
//! count — the workspace invariant — because the engine's
//! `(time, shard, sequence)` merge rule fixes every pop order and all RNG
//! draws happen on the frontend shard in its deterministic event order.
//!
//! Per-bucket `peak_utilization` is not computed here (it needs a global
//! per-server busy snapshot at bucket boundaries, which is exactly the
//! cross-shard coupling the partition removes) and reports NaN;
//! run-level `mean_utilization` is still exact, folded from per-server
//! busy totals after the engine drains.

use crate::hashring::HashRing;
use crate::service::{
    hottest_stored_server, shard_of, validate_config, DemandReport, Discipline, FifoServer,
    Frontend, LoadModel, MomentSource, PsJob, PsServer, RampBucket, ServiceConfig, ServiceResult,
    switch_off_load,
};
use redundancy::estimator::{EstimatorBank, MomentEstimator, RateEstimator};
use redundancy::planner::{Planner, ThresholdCache};
use redundancy::policy::Policy;
use simcore::dist::Distribution;
use simcore::rng::Rng;
use simcore::shard::{EngineStats, ShardCtx, ShardEngine, ShardLogic};
use simcore::stats::SampleSet;
use simcore::time::SimTime;
use std::collections::VecDeque;

/// Stored-replica ceiling of the sharded port: targets live in a fixed
/// array on the per-request slot (no per-request allocation on the hot
/// path). The paper's placements use 2–3.
pub const MAX_STORED: usize = 4;

#[derive(Clone, Copy, Debug)]
enum SEv {
    /// A request enters the front-end (frontend shard).
    Arrive { req: u32 },
    /// A hedged request's delay elapsed (frontend shard).
    HedgeFire { req: u32 },
    /// A dispatched copy reaches its server, demand pre-sampled at the
    /// frontend (cross-shard, one propagation delay).
    CopyArrive { req: u32, server: u16, demand: f64 },
    /// The in-service FIFO copy at `server` completes (server shard).
    FifoDepart { server: u16 },
    /// The PS job set at `server` may have drained its minimum; stale
    /// epochs are ignored (server shard).
    PsDepart { server: u16, epoch: u32 },
    /// A completion travels back to the client; `demand` is re-surfaced
    /// for completion-mode moment reporting (cross-shard).
    Response { req: u32, server: u16, demand: f64 },
    /// The front-end cancels `req`'s copy at `server` (cross-shard).
    Cancel { req: u32, server: u16 },
}

/// Per-request bookkeeping on the frontend shard.
struct ReqSlot {
    arrival: f64,
    offered: f64,
    targets: [u16; MAX_STORED],
    tlen: u8,
    sent: u8,
    hot: bool,
    done: bool,
}

/// The frontend shard: arrival process, redundancy stack, per-request
/// state, and every measurement that keys off request identity.
struct Front {
    cfg: ServiceConfig,
    mean_service: f64,
    total: usize,
    span: f64,
    /// Server id → engine shard id (1 + its group).
    group_of: Vec<u16>,
    /// Flat `[shard][replica]` stored-placement table (stride
    /// `stored_replicas`), precomputed from the ring.
    stored_tab: Vec<u16>,
    hot_shard: Vec<bool>,
    arrival_rng: Rng,
    place_rng: Rng,
    svc_rng: Rng,
    estimator: Option<RateEstimator>,
    bank: Option<EstimatorBank>,
    moment_est: Option<MomentEstimator>,
    min_samples: usize,
    recalibrate: u64,
    threshold_cache: ThresholdCache,
    planner: Planner,
    live_planner: Planner,
    live_threshold: f64,
    observed: u64,
    recalibrations: u64,
    reqs: Vec<ReqSlot>,
    response: SampleSet,
    bucket_samples: Vec<SampleSet>,
    bucket_reqs: Vec<usize>,
    bucket_k2: Vec<usize>,
    bucket_hot: Vec<usize>,
    bucket_hot_k2: Vec<usize>,
    copies_issued: u64,
    completed: usize,
}

impl Front {
    fn bucket_of(&self, offered: f64) -> usize {
        if self.span.abs() < f64::EPSILON {
            0
        } else {
            (((offered - self.cfg.load_start) / self.span) * self.cfg.buckets as f64)
                .floor()
                .clamp(0.0, (self.cfg.buckets - 1) as f64) as usize
        }
    }

    fn lambda_of(&self, offered: f64) -> f64 {
        offered * self.cfg.servers as f64 / self.mean_service
    }

    /// Ingests one per-copy service duration (see
    /// [`service::run`](crate::service::run)'s `observe_service!`).
    fn observe_service(&mut self, svc: f64) {
        if let Some(me) = self.moment_est.as_mut() {
            me.observe(svc);
            self.observed += 1;
            if me.len() >= self.min_samples && self.observed.is_multiple_of(self.recalibrate) {
                self.live_threshold =
                    self.threshold_cache
                        .threshold(me.mean(), me.scv(), self.cfg.client_overhead);
                self.live_planner = self.planner.recalibrated(me.mean(), me.scv());
                self.recalibrations += 1;
            }
        }
    }

    /// Dispatches copies `from..to` of `req`'s target list: demand sampled
    /// here (frontend RNG), `CopyArrive` sent to the owning server shard.
    fn dispatch(&mut self, t: f64, req: u32, from: usize, to: usize, ctx: &mut ShardCtx<'_, SEv>) {
        let prop = SimTime::from_secs(self.cfg.propagation);
        for idx in from..to {
            let server = self.reqs[req as usize].targets[idx];
            let demand = self.cfg.service.sample(&mut self.svc_rng);
            if self.cfg.demand_report == DemandReport::Dispatch {
                self.observe_service(demand);
            }
            self.copies_issued += 1;
            ctx.send(
                self.group_of[server as usize] as usize,
                prop,
                SEv::CopyArrive {
                    req,
                    server,
                    demand,
                },
            );
        }
        // A request counts as duplicated when a second copy is *actually
        // dispatched* — for hedged policies only when the hedge fires.
        if from < 2 && to >= 2 && (req as usize) >= self.cfg.warmup {
            let b = self.bucket_of(self.reqs[req as usize].offered);
            self.bucket_k2[b] += 1;
            if self.reqs[req as usize].hot {
                self.bucket_hot_k2[b] += 1;
            }
        }
        let _ = t;
        self.reqs[req as usize].sent = to as u8;
    }

    fn arrive(&mut self, t: f64, req: u32, ctx: &mut ShardCtx<'_, SEv>) {
        let i = req as usize;
        let offered = self.cfg.offered(i);
        let k_stored = self.cfg.stored_replicas;

        let shard = match &self.cfg.popularity {
            None => self.place_rng.index(self.cfg.shards),
            Some(d) => shard_of(d.sample(&mut self.place_rng), self.cfg.shards),
        };
        let hot = self.hot_shard[shard];

        // Replication decision — same stack as the sequential path.
        let (copies, hedge_after) = match &self.cfg.frontend {
            Frontend::Fixed(policy) => match *policy {
                Policy::Single => (1usize, None),
                Policy::Always { copies } => (copies, None),
                Policy::Hedged { copies, after } => (copies, Some(after.as_secs_f64())),
            },
            Frontend::Adaptive { load_model, .. } => {
                let live_mean = match self.moment_est.as_ref() {
                    Some(me) if me.len() >= self.min_samples => me.mean(),
                    _ => self.mean_service,
                };
                let replicate = match load_model {
                    LoadModel::Global => {
                        let est = self.estimator.as_mut().expect("adaptive estimator");
                        est.observe_arrival(t);
                        let rho = if est.is_warm() {
                            est.utilization(live_mean, self.cfg.servers)
                        } else {
                            self.cfg.load_start
                        };
                        rho < self.live_threshold
                    }
                    LoadModel::PerServer => {
                        let bank = self.bank.as_mut().expect("per-server bank");
                        let mut rho_max = 0.0f64;
                        for idx in 0..k_stored {
                            let s = self.stored_tab[shard * k_stored + idx] as usize;
                            bank.observe_arrival(s, t);
                            let rho = if bank.get(s).is_warm() {
                                bank.utilization(s, live_mean, k_stored)
                            } else {
                                self.cfg.load_start
                            };
                            rho_max = rho_max.max(rho);
                        }
                        let d = self
                            .live_planner
                            .decide_for(&mut self.threshold_cache, &[rho_max]);
                        self.live_threshold = d.threshold_load;
                        d.replicate
                    }
                };
                (if replicate { 2 } else { 1 }, None)
            }
        };

        let k = copies.min(k_stored);
        let stored = &self.stored_tab[shard * k_stored..shard * k_stored + k_stored];
        let mut targets = [0u16; MAX_STORED];
        if k == k_stored && hedge_after.is_none() {
            targets[..k].copy_from_slice(stored);
        } else {
            // Load-balance the primary across the stored set, exactly as
            // the sequential path shuffles (same place_rng draw order).
            let mut order = [0usize; MAX_STORED];
            for (j, slot) in order.iter_mut().enumerate().take(k_stored) {
                *slot = j;
            }
            self.place_rng.shuffle(&mut order[..k_stored]);
            for j in 0..k {
                targets[j] = stored[order[j]];
            }
        }

        self.reqs.push(ReqSlot {
            arrival: t,
            offered,
            targets,
            tlen: k as u8,
            sent: 0,
            hot,
            done: false,
        });
        debug_assert_eq!(self.reqs.len() - 1, i);

        if i >= self.cfg.warmup {
            let b = self.bucket_of(offered);
            self.bucket_reqs[b] += 1;
            if hot {
                self.bucket_hot[b] += 1;
            }
        }

        match hedge_after {
            Some(after) => {
                self.dispatch(t, req, 0, 1, ctx);
                ctx.schedule_at(SimTime::from_secs(t + after), SEv::HedgeFire { req });
            }
            None => {
                self.dispatch(t, req, 0, k, ctx);
            }
        }

        if i + 1 < self.total {
            let lambda = self.lambda_of(self.cfg.offered(i + 1));
            let gap = self.arrival_rng.exponential(lambda);
            ctx.schedule_after(SimTime::from_secs(gap), SEv::Arrive { req: req + 1 });
        }
    }

    fn response(&mut self, t: f64, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        // Completion-mode reporting happens when the response reaches the
        // client (the server's report rides the response), duplicates
        // included — the same per-copy sample as the sequential path, one
        // propagation later.
        if self.cfg.demand_report == DemandReport::Completion {
            self.observe_service(demand);
        }
        let i = req as usize;
        if self.reqs[i].done {
            return;
        }
        self.reqs[i].done = true;
        let state = &self.reqs[i];
        let extra = (state.sent as f64 - 1.0).max(0.0) * self.cfg.client_overhead;
        let rt = (t - state.arrival) + extra;
        let offered = state.offered;
        if i >= self.cfg.warmup {
            let b = self.bucket_of(offered);
            self.response.push(rt);
            self.bucket_samples[b].push(rt);
            self.completed += 1;
        }
        if self.cfg.cancellation && self.reqs[i].sent > 1 {
            let prop = SimTime::from_secs(self.cfg.propagation);
            for idx in 0..self.reqs[i].sent as usize {
                let other = self.reqs[i].targets[idx];
                if other != server {
                    ctx.send(
                        self.group_of[other as usize] as usize,
                        prop,
                        SEv::Cancel { req, server: other },
                    );
                }
            }
        }
    }
}

/// A server-group shard: a contiguous block of servers with their queues.
/// No RNG here — demands arrive pre-sampled — so the group's trajectory is
/// a pure function of its message stream.
struct Group {
    /// First global server id in this group.
    lo: usize,
    discipline: Discipline,
    propagation: f64,
    fifo: Vec<FifoServer>,
    ps: Vec<PsServer>,
    cancelled: u64,
}

impl Group {
    fn fifo_start_next(&mut self, s: usize, t: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let srv = &mut self.fifo[s];
        if let Some((req, svc)) = srv.queue.pop_front() {
            srv.in_service = Some((req, svc));
            srv.busy += svc;
            ctx.schedule_at(
                SimTime::from_secs(t + svc),
                SEv::FifoDepart {
                    server: (self.lo + s) as u16,
                },
            );
        } else {
            srv.in_service = None;
        }
    }

    fn ps_reschedule(&mut self, s: usize, t: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let srv = &mut self.ps[s];
        srv.epoch = srv.epoch.wrapping_add(1);
        if let Some(at) = srv.next_departure(t) {
            ctx.schedule_at(
                SimTime::from_secs(at),
                SEv::PsDepart {
                    server: (self.lo + s) as u16,
                    epoch: srv.epoch,
                },
            );
        }
    }

    fn copy_arrive(&mut self, t: f64, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        match self.discipline {
            Discipline::Fifo => {
                let srv = &mut self.fifo[s];
                srv.queue.push_back((req, demand));
                if srv.in_service.is_none() {
                    self.fifo_start_next(s, t, ctx);
                }
            }
            Discipline::Ps => {
                let srv = &mut self.ps[s];
                srv.advance(t);
                srv.jobs.push(PsJob {
                    req,
                    size: demand,
                    remaining: demand,
                });
                self.ps_reschedule(s, t, ctx);
            }
        }
    }

    fn fifo_depart(&mut self, t: f64, server: u16, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        let (req, svc) = self.fifo[s]
            .in_service
            .take()
            .expect("depart with idle server");
        ctx.send(
            0,
            SimTime::from_secs(self.propagation),
            SEv::Response {
                req,
                server,
                demand: svc,
            },
        );
        self.fifo_start_next(s, t, ctx);
    }

    fn ps_depart(&mut self, t: f64, server: u16, epoch: u32, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        if self.ps[s].epoch != epoch {
            return; // stale schedule
        }
        self.ps[s].advance(t);
        let Some(idx) = self.ps[s]
            .jobs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
            .map(|(i, _)| i)
        else {
            return;
        };
        let job = self.ps[s].jobs.remove(idx);
        ctx.send(
            0,
            SimTime::from_secs(self.propagation),
            SEv::Response {
                req: job.req,
                server,
                demand: job.size,
            },
        );
        self.ps_reschedule(s, t, ctx);
    }

    fn cancel(&mut self, t: f64, req: u32, server: u16, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        match self.discipline {
            Discipline::Fifo => {
                // Queued copies of the cancelled request are purged; the
                // in-service copy runs to completion (a disk read cannot
                // be withdrawn mid-seek).
                let before = self.fifo[s].queue.len();
                self.fifo[s].queue.retain(|&(r, _)| r != req);
                self.cancelled += (before - self.fifo[s].queue.len()) as u64;
            }
            Discipline::Ps => {
                // PS drops in-progress work too: closing the shared
                // connection frees the server's share.
                self.ps[s].advance(t);
                let before = self.ps[s].jobs.len();
                self.ps[s].jobs.retain(|j| j.req != req);
                if self.ps[s].jobs.len() != before {
                    self.cancelled += (before - self.ps[s].jobs.len()) as u64;
                    self.ps_reschedule(s, t, ctx);
                }
            }
        }
    }

    fn busy_total(&self) -> f64 {
        match self.discipline {
            Discipline::Fifo => self.fifo.iter().map(|s| s.busy).sum(),
            Discipline::Ps => self.ps.iter().map(|s| s.busy).sum(),
        }
    }
}

enum Node {
    Front(Box<Front>),
    Group(Box<Group>),
}

impl ShardLogic for Node {
    type Event = SEv;

    fn handle(&mut self, now: SimTime, ev: SEv, ctx: &mut ShardCtx<'_, SEv>) {
        let t = now.as_secs();
        match (self, ev) {
            (Node::Front(f), SEv::Arrive { req }) => f.arrive(t, req, ctx),
            (Node::Front(f), SEv::HedgeFire { req }) => {
                if !f.reqs[req as usize].done {
                    let (from, to) = (
                        f.reqs[req as usize].sent as usize,
                        f.reqs[req as usize].tlen as usize,
                    );
                    f.dispatch(t, req, from, to, ctx);
                }
            }
            (Node::Front(f), SEv::Response {
                req,
                server,
                demand,
            }) => f.response(t, req, server, demand, ctx),
            (Node::Group(g), SEv::CopyArrive {
                req,
                server,
                demand,
            }) => g.copy_arrive(t, req, server, demand, ctx),
            (Node::Group(g), SEv::FifoDepart { server }) => g.fifo_depart(t, server, ctx),
            (Node::Group(g), SEv::PsDepart { server, epoch }) => {
                g.ps_depart(t, server, epoch, ctx)
            }
            (Node::Group(g), SEv::Cancel { req, server }) => g.cancel(t, req, server, ctx),
            _ => unreachable!("event routed to the wrong shard kind"),
        }
    }
}

/// A [`ServiceResult`] plus the engine's execution counters.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The measurements, shaped exactly like [`service::run`]'s
    /// (`peak_utilization` is NaN — see the module docs).
    pub result: ServiceResult,
    /// Events, rounds, worker threads, and drain time of the engine run.
    /// `events` and `rounds` are deterministic and thread-count-invariant.
    pub engine: EngineStats,
    /// Server groups used (engine shards minus the frontend).
    pub groups: usize,
}

/// Runs the service simulation on the sharded engine with `groups` server
/// groups (plus the frontend shard) and up to `threads` worker threads
/// (leased from the process-wide budget; 1 = the sequential reference
/// path). Output is bit-identical for every `threads` value.
///
/// # Panics
/// Panics on everything [`service::run`] rejects, plus: non-positive
/// propagation (it is the lookahead), `groups` outside `[1, servers]`, or
/// more than [`MAX_STORED`] stored replicas.
pub fn run_sharded(cfg: &ServiceConfig, groups: usize, threads: usize) -> ShardedOutcome {
    validate_config(cfg);
    assert!(
        cfg.propagation > 0.0,
        "sharded engine needs positive propagation (the lookahead window)"
    );
    assert!(
        groups >= 1 && groups <= cfg.servers,
        "server groups must be in [1, servers]"
    );
    assert!(
        cfg.stored_replicas <= MAX_STORED,
        "sharded port stores at most {MAX_STORED} replicas"
    );

    let mean_service = cfg.service.mean();
    assert!(mean_service.is_finite() && mean_service > 0.0);
    let planner = cfg.planner();
    let threshold = planner.threshold_load();

    let mut root = Rng::seed_from(cfg.seed);
    let mut arrival_rng = root.fork(1);
    let place_rng = root.fork(2);
    let svc_rng = root.fork(3);

    // Placement is precomputed into a flat table: the hot path then never
    // touches the ring (HashRing::replicas allocates per call).
    let k_stored = cfg.stored_replicas;
    let ring = HashRing::new(cfg.servers, cfg.vnodes);
    let mut stored_tab = vec![0u16; cfg.shards * k_stored];
    for sh in 0..cfg.shards {
        for (j, &s) in ring.replicas(sh as u64, k_stored).iter().enumerate() {
            stored_tab[sh * k_stored + j] = s as u16;
        }
    }
    let hot_server = hottest_stored_server(cfg) as u16;
    let hot_shard: Vec<bool> = (0..cfg.shards)
        .map(|sh| stored_tab[sh * k_stored..(sh + 1) * k_stored].contains(&hot_server))
        .collect();

    // Group g owns the contiguous server block [bounds[g], bounds[g+1]).
    let bounds: Vec<usize> = (0..=groups).map(|g| g * cfg.servers / groups).collect();
    let mut group_of = vec![0u16; cfg.servers];
    for g in 0..groups {
        for s in group_of.iter_mut().take(bounds[g + 1]).skip(bounds[g]) {
            *s = (g + 1) as u16;
        }
    }

    let (estimator, bank) = match &cfg.frontend {
        Frontend::Adaptive {
            window, load_model, ..
        } => match load_model {
            LoadModel::Global => (Some(RateEstimator::new(*window)), None),
            LoadModel::PerServer => (None, Some(EstimatorBank::new(cfg.servers, *window))),
        },
        Frontend::Fixed(_) => (None, None),
    };
    let (moment_est, min_samples, recalibrate) = match &cfg.frontend {
        Frontend::Adaptive {
            moments:
                MomentSource::Estimated {
                    window,
                    min_samples,
                    recalibrate,
                },
            ..
        } => (
            Some(MomentEstimator::new(*window)),
            *min_samples,
            *recalibrate as u64,
        ),
        _ => (None, 0, 1),
    };

    let total = cfg.warmup + cfg.requests;
    let first_gap =
        arrival_rng.exponential(cfg.offered(0) * cfg.servers as f64 / mean_service);

    let front = Front {
        mean_service,
        total,
        span: cfg.load_end - cfg.load_start,
        group_of,
        stored_tab,
        hot_shard,
        arrival_rng,
        place_rng,
        svc_rng,
        estimator,
        bank,
        moment_est,
        min_samples,
        recalibrate,
        threshold_cache: ThresholdCache::new(),
        planner,
        live_planner: planner,
        live_threshold: threshold,
        observed: 0,
        recalibrations: 0,
        reqs: Vec::with_capacity(total),
        response: SampleSet::with_capacity(cfg.requests),
        bucket_samples: (0..cfg.buckets).map(|_| SampleSet::new()).collect(),
        bucket_reqs: vec![0; cfg.buckets],
        bucket_k2: vec![0; cfg.buckets],
        bucket_hot: vec![0; cfg.buckets],
        bucket_hot_k2: vec![0; cfg.buckets],
        copies_issued: 0,
        completed: 0,
        cfg: cfg.clone(),
    };

    let mut nodes = Vec::with_capacity(groups + 1);
    nodes.push(Node::Front(Box::new(front)));
    for g in 0..groups {
        let n = bounds[g + 1] - bounds[g];
        let (fifo, ps) = match cfg.discipline {
            Discipline::Fifo => (
                (0..n)
                    .map(|_| FifoServer {
                        queue: VecDeque::new(),
                        in_service: None,
                        busy: 0.0,
                    })
                    .collect(),
                Vec::new(),
            ),
            Discipline::Ps => (
                Vec::new(),
                (0..n)
                    .map(|_| PsServer {
                        jobs: Vec::new(),
                        last: 0.0,
                        epoch: 0,
                        busy: 0.0,
                    })
                    .collect(),
            ),
        };
        nodes.push(Node::Group(Box::new(Group {
            lo: bounds[g],
            discipline: cfg.discipline,
            propagation: cfg.propagation,
            fifo,
            ps,
            cancelled: 0,
        })));
    }

    let mut engine = ShardEngine::new(nodes, SimTime::from_secs(cfg.propagation));
    // Pre-size per-shard queues to their steady-state footprint.
    engine.reserve(0, 4 * 1024);
    for g in 0..groups {
        engine.reserve(1 + g, (8 * (bounds[g + 1] - bounds[g])).max(256));
    }
    engine.schedule(0, SimTime::from_secs(first_gap), SEv::Arrive { req: 0 });

    let stats = engine.run(threads);

    let mut states = engine.into_states().into_iter();
    let mut front = match states.next().expect("frontend shard") {
        Node::Front(f) => f,
        Node::Group(_) => unreachable!("shard 0 is the frontend"),
    };
    let mut busy = 0.0f64;
    let mut copies_cancelled = 0u64;
    for node in states {
        match node {
            Node::Group(g) => {
                busy += g.busy_total();
                copies_cancelled += g.cancelled;
            }
            Node::Front(_) => unreachable!("only shard 0 is the frontend"),
        }
    }
    let end_time = stats.end_time.as_secs();

    let span = front.span;
    let buckets: Vec<RampBucket> = (0..cfg.buckets)
        .map(|b| {
            let width = if span.abs() < f64::EPSILON {
                0.0
            } else {
                span / cfg.buckets as f64
            };
            let load = cfg.load_start + width * (b as f64 + 0.5);
            let samples = &mut front.bucket_samples[b];
            let (mean_response, p99) = if samples.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                (samples.mean(), samples.quantile(0.99))
            };
            RampBucket {
                load,
                requests: front.bucket_reqs[b],
                k2_requests: front.bucket_k2[b],
                mean_response,
                p99,
                peak_utilization: f64::NAN,
                hot_requests: front.bucket_hot[b],
                hot_k2_requests: front.bucket_hot_k2[b],
            }
        })
        .collect();
    let curve: Vec<(f64, f64)> = buckets.iter().map(|b| (b.load, b.frac_k2())).collect();
    let (est_mean_service, est_scv) = match front.moment_est.as_ref() {
        Some(me) if me.len() >= front.min_samples => (me.mean(), me.scv()),
        _ => (f64::NAN, f64::NAN),
    };

    let result = ServiceResult {
        response: front.response,
        switch_off: switch_off_load(&curve),
        planner_threshold: threshold,
        live_threshold: match &cfg.frontend {
            Frontend::Fixed(_) => f64::NAN,
            Frontend::Adaptive { .. } => front.live_threshold,
        },
        est_mean_service,
        est_scv,
        recalibrations: front.recalibrations,
        buckets,
        copies_issued: front.copies_issued,
        copies_cancelled,
        mean_utilization: busy / (cfg.servers as f64 * end_time.max(f64::MIN_POSITIVE)),
        completed: front.completed,
    };
    ShardedOutcome {
        result,
        engine: stats,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service;
    use simcore::dist::{DynDist, Exponential};
    use std::sync::Arc;

    fn small_ramp() -> ServiceConfig {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.05, 0.55);
        cfg.servers = 16;
        cfg.shards = 2048;
        cfg.requests = 30_000;
        cfg.warmup = 3_000;
        cfg
    }

    /// Collapses an outcome into a bitwise fingerprint of everything the
    /// reports print.
    fn fingerprint(out: &ShardedOutcome) -> Vec<u64> {
        let mut v = vec![
            out.result.response.mean().to_bits(),
            out.result.switch_off.to_bits(),
            out.result.live_threshold.to_bits(),
            out.result.mean_utilization.to_bits(),
            out.result.copies_issued,
            out.result.copies_cancelled,
            out.result.completed as u64,
            out.engine.events,
            out.engine.rounds,
        ];
        for b in &out.result.buckets {
            v.push(b.requests as u64);
            v.push(b.k2_requests as u64);
            v.push(b.mean_response.to_bits());
            v.push(b.p99.to_bits());
        }
        v
    }

    #[test]
    fn bit_identical_at_every_thread_count() {
        let cfg = small_ramp();
        let reference = fingerprint(&run_sharded(&cfg, 5, 1));
        for threads in [2, 3, 6, 8] {
            assert_eq!(
                reference,
                fingerprint(&run_sharded(&cfg, 5, threads)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn group_count_is_part_of_the_config_not_the_schedule() {
        // Different groupings change message routing but not the physical
        // model: switch-off and copy counts stay close (not bitwise —
        // per-shard FIFO tie-breaks shift with the partition).
        let cfg = small_ramp();
        let a = run_sharded(&cfg, 1, 1);
        let b = run_sharded(&cfg, 8, 1);
        assert_eq!(a.result.completed, b.result.completed);
        assert_eq!(a.result.copies_issued, b.result.copies_issued);
        assert!((a.result.switch_off - b.result.switch_off).abs() < 0.05);
    }

    #[test]
    fn matches_sequential_service_statistically() {
        // Same config through both engines: distributions must agree even
        // though event interleavings (and so exact samples) differ.
        let cfg = small_ramp();
        let seq = service::run(&cfg);
        let sh = run_sharded(&cfg, 4, 1).result;
        assert_eq!(seq.completed, sh.completed);
        let (a, b) = (seq.response.mean(), sh.response.mean());
        assert!((a - b).abs() / a < 0.05, "mean {a} vs {b}");
        assert!(
            (seq.switch_off - sh.switch_off).abs() < 0.05,
            "switch-off {} vs {}",
            seq.switch_off,
            sh.switch_off
        );
        assert!((seq.mean_utilization - sh.mean_utilization).abs() < 0.03);
    }

    #[test]
    fn cancellation_works_across_shards() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.2, 0.2);
        cfg.servers = 12;
        cfg.frontend = Frontend::Fixed(Policy::Always { copies: 2 });
        cfg.cancellation = true;
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        cfg.buckets = 1;
        let out = run_sharded(&cfg, 4, 1);
        assert_eq!(out.result.completed, cfg.requests);
        assert!(out.result.copies_cancelled > 0, "no copies cancelled");
        let seq = service::run(&cfg);
        let rel = (out.result.copies_cancelled as f64 - seq.copies_cancelled as f64).abs()
            / seq.copies_cancelled as f64;
        assert!(rel < 0.05, "cancelled {} vs {}", out.result.copies_cancelled, seq.copies_cancelled);
    }

    #[test]
    fn ps_discipline_runs_sharded() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.3, 0.3);
        cfg.discipline = Discipline::Ps;
        cfg.frontend = Frontend::Fixed(Policy::Single);
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        cfg.buckets = 1;
        let out = run_sharded(&cfg, 3, 1);
        assert_eq!(out.result.completed, cfg.requests);
        let expect = 1.0e-3 / (1.0 - 0.3) + 2.0 * cfg.propagation;
        let got = out.result.response.mean();
        assert!((got - expect).abs() / expect < 0.10, "PS mean {got} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "saturates")]
    fn rejects_saturating_config_like_sequential() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.6, 0.6);
        cfg.frontend = Frontend::Fixed(Policy::Always { copies: 2 });
        let _ = run_sharded(&cfg, 2, 1);
    }
}
