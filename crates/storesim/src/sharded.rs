//! The [`service`](crate::service) simulation ported onto the sharded
//! parallel engine ([`simcore::shard`]) — engine shards for the server
//! groups *and* for the frontend, so a single long ramp can use several
//! cores on both sides of the client↔server boundary.
//!
//! The partition follows the physical message flow: `Arrive` and
//! `HedgeFire` are frontend-local, `FifoDepart`/`PsDepart` are
//! server-local, and exactly the events that cross the client↔server
//! boundary in the model — copy dispatches, responses, and cancellations —
//! become cross-shard messages carrying the existing one-way
//! [`propagation`](ServiceConfig::propagation) delay, which is therefore
//! the engine's lookahead window.
//!
//! ## Frontend lanes vs frontend shards
//!
//! The frontend itself is decomposed into
//! [`frontend_lanes`](ServiceConfig::frontend_lanes) logical **lanes**:
//! lane ℓ owns the requests with `req % lanes == ℓ`, a contiguous
//! `1/lanes` slice of the key shards, its own forked RNG substreams
//! (streams `3ℓ+1..=3ℓ+3`, so one lane draws exactly the streams the
//! pre-lane frontend drew), and its own estimator state
//! ([`RateEstimator`]/[`EstimatorBank`] slice plus [`MomentEstimator`]).
//! Lanes see only their own arrivals, so they periodically exchange
//! [`LoadSummary`] messages (floored at the lookahead) and combine peer
//! rates through [`PeerLoads`] — rates are additive, so the combined
//! utilization estimate converges to the whole cluster's without any
//! shared mutable state.
//!
//! The lane count is a **model** parameter: `lanes > 1` runs a different
//! (decomposed) arrival process, and `lanes = 1` is byte-identical to the
//! pre-lane frontend. The number of **frontend shards** F the lanes are
//! placed on is, by contrast, pure execution: every lane event is
//! scheduled through the engine's `*_keyed` API under the lane's logical
//! origin `ℓ` and the lane's own sequence counter (server groups likewise
//! use logical origin `lanes + g`), so the `(time, origin, seq)` merge
//! keys — and therefore every pop order and every RNG draw — are
//! identical whether the lanes share one engine shard or occupy F of
//! them. Output is **bit-identical at any (worker, frontend-shard)
//! configuration**; only wall-clock changes with F, which is what the
//! `fig-service-frontier` experiment and the engine bench measure.
//!
//! Two deliberate deltas from the sequential [`service::run`] keep every
//! shard deterministic in isolation (all randomness lives on the
//! frontend lanes):
//!
//! * a copy's service demand is sampled from the lane's `svc_rng` at
//!   **dispatch** and carried in the `CopyArrive` message, instead of at
//!   server arrival — the same per-copy law, drawn in lane dispatch
//!   order;
//! * cancellations are addressed **per request** (`Cancel { req, server }`
//!   purges that request's copies at that server) instead of via the
//!   shared [`CancelToken`](redundancy::cancel::CancelToken) — the same
//!   copies are purged, at most one propagation delay later than the
//!   token's opportunistic sweep could have caught them.
//!
//! Consequently the sharded run is **not** byte-identical to
//! [`service::run`] on the same config (distributions agree statistically;
//! a test pins that), but it **is** byte-identical to itself at any
//! thread and placement count — the workspace invariant.
//!
//! Per-bucket `peak_utilization` is not computed here (it needs a global
//! per-server busy snapshot at bucket boundaries, which is exactly the
//! cross-shard coupling the partition removes) and reports NaN;
//! run-level `mean_utilization` is still exact, folded from per-server
//! busy totals after the engine drains.

use crate::hashring::HashRing;
use crate::service::{
    hottest_stored_server, shard_of, validate_config, DemandReport, Discipline, FifoServer,
    Frontend, LoadModel, MomentSource, PsJob, PsServer, RampBucket, ServiceConfig, ServiceResult,
    switch_off_load,
};
use redundancy::estimator::{
    EstimatorBank, LoadSummary, MomentEstimator, MomentSnapshot, PeerLoads, RateEstimator,
};
use redundancy::planner::{Planner, ThresholdCache};
use redundancy::policy::Policy;
use simcore::dist::Distribution;
use simcore::rng::Rng;
use simcore::shard::{EngineStats, ShardCtx, ShardEngine, ShardLogic};
use simcore::stats::SampleSet;
use simcore::time::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Stored-replica ceiling of the sharded port: targets live in a fixed
/// array on the per-request slot (no per-request allocation on the hot
/// path). The paper's placements use 2–3.
pub const MAX_STORED: usize = 4;

#[derive(Clone, Debug)]
enum SEv {
    /// A request enters its owning frontend lane (frontend shard).
    Arrive { req: u32 },
    /// A hedged request's delay elapsed (frontend shard).
    HedgeFire { req: u32 },
    /// A dispatched copy reaches its server, demand pre-sampled on the
    /// lane (cross-shard, one propagation delay).
    CopyArrive { req: u32, server: u16, demand: f64 },
    /// The in-service FIFO copy at `server` completes (server shard).
    FifoDepart { server: u16 },
    /// The PS job set at `server` may have drained its minimum; stale
    /// epochs are ignored (server shard).
    PsDepart { server: u16, epoch: u32 },
    /// A completion travels back to the client; `demand` is re-surfaced
    /// for completion-mode moment reporting (cross-shard).
    Response { req: u32, server: u16, demand: f64 },
    /// The front-end cancels `req`'s copy at `server` (cross-shard).
    Cancel { req: u32, server: u16 },
    /// A lane's periodic load-summary broadcast timer (lane-local).
    SummaryTick { lane: u16 },
    /// Lane `from`'s load summary reaching peer lane `to`, one lookahead
    /// after it was snapshotted. Delivered under the sender's merge key
    /// whether the peer is co-located or remote, so placement cannot
    /// reorder it.
    Summary { from: u16, to: u16, rates: LoadSummary },
}

/// Per-request bookkeeping on the owning lane.
struct ReqSlot {
    arrival: f64,
    offered: f64,
    targets: [u16; MAX_STORED],
    tlen: u8,
    sent: u8,
    hot: bool,
    done: bool,
}

/// Immutable tables shared by every lane.
struct Statics {
    cfg: ServiceConfig,
    mean_service: f64,
    total: usize,
    span: f64,
    lanes: usize,
    /// Server id → engine shard id (`frontends + its group`).
    group_shard_of: Vec<u16>,
    /// Lane id → engine shard id (`lane % frontends`).
    lane_shard: Vec<u16>,
    /// Flat `[shard][replica]` stored-placement table (stride
    /// `stored_replicas`), precomputed from the ring.
    stored_tab: Vec<u16>,
    hot_shard: Vec<bool>,
    /// Resolved summary-exchange period: `max(summary_period, lookahead)`.
    summary_period: f64,
}

/// One frontend lane: a slice of the arrival process, the redundancy
/// stack for its requests, and every measurement keyed off its request
/// identities. All scheduling goes through the keyed engine API under
/// this lane's logical origin, so the lane's trajectory is independent
/// of which engine shard hosts it.
struct Lane {
    id: u32,
    seq: u64,
    st: Arc<Statics>,
    /// First key shard of this lane's slice.
    slice_lo: usize,
    slice_len: usize,
    /// Requests this lane owns (`req % lanes == id`).
    owned: usize,
    arrival_rng: Rng,
    place_rng: Rng,
    svc_rng: Rng,
    estimator: Option<RateEstimator>,
    bank: Option<EstimatorBank>,
    peers: PeerLoads,
    moment_est: Option<MomentEstimator>,
    min_samples: usize,
    recalibrate: u64,
    threshold_cache: ThresholdCache,
    planner: Planner,
    live_planner: Planner,
    live_threshold: f64,
    observed: u64,
    recalibrations: u64,
    /// Indexed by the lane-local request index `req / lanes`.
    reqs: Vec<ReqSlot>,
    response: SampleSet,
    bucket_samples: Vec<SampleSet>,
    bucket_reqs: Vec<usize>,
    bucket_k2: Vec<usize>,
    bucket_hot: Vec<usize>,
    bucket_hot_k2: Vec<usize>,
    copies_issued: u64,
    completed: usize,
    /// All responses marked done, warm-up included — drives the summary
    /// tick shutdown so the engine can drain.
    finished: usize,
    summaries_sent: u64,
}

impl Lane {
    #[inline]
    fn take_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn bucket_of(&self, offered: f64) -> usize {
        if self.st.span.abs() < f64::EPSILON {
            0
        } else {
            (((offered - self.st.cfg.load_start) / self.st.span) * self.st.cfg.buckets as f64)
                .floor()
                .clamp(0.0, (self.st.cfg.buckets - 1) as f64) as usize
        }
    }

    /// This lane's arrival rate at offered load `offered`: its `1/lanes`
    /// share of the cluster rate (slices are equal-mass by the
    /// lanes-divide-shards validation).
    fn lambda_of(&self, offered: f64) -> f64 {
        offered * self.st.cfg.servers as f64 / self.st.mean_service / self.st.lanes as f64
    }

    /// Ingests one per-copy service duration (see
    /// [`service::run`](crate::service::run)'s `observe_service!`).
    fn observe_service(&mut self, svc: f64) {
        if let Some(me) = self.moment_est.as_mut() {
            me.observe(svc);
            self.observed += 1;
            if me.len() >= self.min_samples && self.observed.is_multiple_of(self.recalibrate) {
                self.live_threshold =
                    self.threshold_cache
                        .threshold(me.mean(), me.scv(), self.st.cfg.client_overhead);
                self.live_planner = self.planner.recalibrated(me.mean(), me.scv());
                self.recalibrations += 1;
            }
        }
    }

    /// Dispatches copies `from..to` of `req`'s target list: demand sampled
    /// here (lane RNG), `CopyArrive` sent to the owning server shard under
    /// this lane's merge key.
    fn dispatch(&mut self, t: f64, req: u32, from: usize, to: usize, ctx: &mut ShardCtx<'_, SEv>) {
        let prop = SimTime::from_secs(self.st.cfg.propagation);
        let slot = (req as usize) / self.st.lanes;
        for idx in from..to {
            let server = self.reqs[slot].targets[idx];
            let demand = self.st.cfg.service.sample(&mut self.svc_rng);
            if self.st.cfg.demand_report == DemandReport::Dispatch {
                self.observe_service(demand);
            }
            self.copies_issued += 1;
            let dest = self.st.group_shard_of[server as usize] as usize;
            let (origin, seq) = (self.id, self.take_seq());
            ctx.send_keyed(
                dest,
                prop,
                origin,
                seq,
                SEv::CopyArrive {
                    req,
                    server,
                    demand,
                },
            );
        }
        // A request counts as duplicated when a second copy is *actually
        // dispatched* — for hedged policies only when the hedge fires.
        if from < 2 && to >= 2 && (req as usize) >= self.st.cfg.warmup {
            let b = self.bucket_of(self.reqs[slot].offered);
            self.bucket_k2[b] += 1;
            if self.reqs[slot].hot {
                self.bucket_hot_k2[b] += 1;
            }
        }
        let _ = t;
        self.reqs[slot].sent = to as u8;
    }

    fn arrive(&mut self, t: f64, req: u32, ctx: &mut ShardCtx<'_, SEv>) {
        let i = req as usize;
        let offered = self.st.cfg.offered(i);
        let k_stored = self.st.cfg.stored_replicas;

        let shard = match &self.st.cfg.popularity {
            None => self.slice_lo + self.place_rng.index(self.slice_len),
            // Validation rejects popularity with lanes > 1, so this arm
            // only runs on the single full-range lane.
            Some(d) => shard_of(d.sample(&mut self.place_rng), self.st.cfg.shards),
        };
        let hot = self.st.hot_shard[shard];

        // Replication decision — same stack as the sequential path, with
        // peer-reported rates folded into the utilization estimates.
        let (copies, hedge_after) = match &self.st.cfg.frontend {
            Frontend::Fixed(policy) => match *policy {
                Policy::Single => (1usize, None),
                Policy::Always { copies } => (copies, None),
                Policy::Hedged { copies, after } => (copies, Some(after.as_secs_f64())),
            },
            Frontend::Adaptive { load_model, .. } => {
                let live_mean = match self.moment_est.as_ref() {
                    Some(me) if me.len() >= self.min_samples => me.mean(),
                    _ => self.st.mean_service,
                };
                let replicate = match load_model {
                    LoadModel::Global => {
                        let est = self.estimator.as_mut().expect("adaptive estimator");
                        est.observe_arrival(t);
                        let rho = if est.is_warm() {
                            self.peers.total_rate(0, est.rate()) * live_mean
                                / self.st.cfg.servers as f64
                        } else {
                            self.st.cfg.load_start
                        };
                        rho < self.live_threshold
                    }
                    LoadModel::PerServer => {
                        let bank = self.bank.as_mut().expect("per-server bank");
                        let mut rho_max = 0.0f64;
                        for idx in 0..k_stored {
                            let s = self.st.stored_tab[shard * k_stored + idx] as usize;
                            bank.observe_arrival(s, t);
                            let rho = if bank.get(s).is_warm() {
                                self.peers.total_rate(s, bank.rate(s)) * live_mean
                                    / k_stored as f64
                            } else {
                                self.st.cfg.load_start
                            };
                            rho_max = rho_max.max(rho);
                        }
                        let d = self
                            .live_planner
                            .decide_for(&mut self.threshold_cache, &[rho_max]);
                        self.live_threshold = d.threshold_load;
                        d.replicate
                    }
                };
                (if replicate { 2 } else { 1 }, None)
            }
        };

        let k = copies.min(k_stored);
        let stored = &self.st.stored_tab[shard * k_stored..shard * k_stored + k_stored];
        let mut targets = [0u16; MAX_STORED];
        if k == k_stored && hedge_after.is_none() {
            targets[..k].copy_from_slice(stored);
        } else {
            // Load-balance the primary across the stored set, exactly as
            // the sequential path shuffles (same place_rng draw order).
            let mut order = [0usize; MAX_STORED];
            for (j, slot) in order.iter_mut().enumerate().take(k_stored) {
                *slot = j;
            }
            self.place_rng.shuffle(&mut order[..k_stored]);
            for j in 0..k {
                targets[j] = stored[order[j]];
            }
        }

        self.reqs.push(ReqSlot {
            arrival: t,
            offered,
            targets,
            tlen: k as u8,
            sent: 0,
            hot,
            done: false,
        });
        debug_assert_eq!(self.reqs.len() - 1, i / self.st.lanes);

        if i >= self.st.cfg.warmup {
            let b = self.bucket_of(offered);
            self.bucket_reqs[b] += 1;
            if hot {
                self.bucket_hot[b] += 1;
            }
        }

        match hedge_after {
            Some(after) => {
                self.dispatch(t, req, 0, 1, ctx);
                let (origin, seq) = (self.id, self.take_seq());
                ctx.schedule_at_keyed(
                    SimTime::from_secs(t + after),
                    origin,
                    seq,
                    SEv::HedgeFire { req },
                );
            }
            None => {
                self.dispatch(t, req, 0, k, ctx);
            }
        }

        if i + self.st.lanes < self.st.total {
            let lambda = self.lambda_of(self.st.cfg.offered(i + self.st.lanes));
            let gap = self.arrival_rng.exponential(lambda);
            let (origin, seq) = (self.id, self.take_seq());
            ctx.schedule_at_keyed(
                ctx.now() + SimTime::from_secs(gap),
                origin,
                seq,
                SEv::Arrive {
                    req: req + self.st.lanes as u32,
                },
            );
        }
    }

    fn response(&mut self, t: f64, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        // Completion-mode reporting happens when the response reaches the
        // client (the server's report rides the response), duplicates
        // included — the same per-copy sample as the sequential path, one
        // propagation later.
        if self.st.cfg.demand_report == DemandReport::Completion {
            self.observe_service(demand);
        }
        let i = req as usize;
        let slot = i / self.st.lanes;
        if self.reqs[slot].done {
            return;
        }
        self.reqs[slot].done = true;
        self.finished += 1;
        let state = &self.reqs[slot];
        let extra = (state.sent as f64 - 1.0).max(0.0) * self.st.cfg.client_overhead;
        let rt = (t - state.arrival) + extra;
        let offered = state.offered;
        if i >= self.st.cfg.warmup {
            let b = self.bucket_of(offered);
            self.response.push(rt);
            self.bucket_samples[b].push(rt);
            self.completed += 1;
        }
        if self.st.cfg.cancellation && self.reqs[slot].sent > 1 {
            let prop = SimTime::from_secs(self.st.cfg.propagation);
            for idx in 0..self.reqs[slot].sent as usize {
                let other = self.reqs[slot].targets[idx];
                if other != server {
                    let dest = self.st.group_shard_of[other as usize] as usize;
                    let (origin, seq) = (self.id, self.take_seq());
                    ctx.send_keyed(dest, prop, origin, seq, SEv::Cancel { req, server: other });
                }
            }
        }
    }

    /// Broadcasts this lane's current rate summary to every peer lane
    /// (one lookahead of delay; keyed-local when a peer shares this
    /// engine shard) and re-arms the timer while the lane still has
    /// requests in flight.
    fn summary_tick(&mut self, ctx: &mut ShardCtx<'_, SEv>) {
        let rates = match (&self.estimator, &self.bank) {
            (Some(est), _) => est.summary(),
            (_, Some(bank)) => bank.summary(),
            _ => unreachable!("summary tick on a lane without estimators"),
        };
        let delay = SimTime::from_secs(self.st.cfg.propagation);
        let here = ctx.shard();
        for peer in 0..self.st.lanes {
            if peer == self.id as usize {
                continue;
            }
            let ev = SEv::Summary {
                from: self.id as u16,
                to: peer as u16,
                rates: rates.clone(),
            };
            let dest = self.st.lane_shard[peer] as usize;
            let (origin, seq) = (self.id, self.take_seq());
            if dest == here {
                ctx.schedule_at_keyed(ctx.now() + delay, origin, seq, ev);
            } else {
                ctx.send_keyed(dest, delay, origin, seq, ev);
            }
            self.summaries_sent += 1;
        }
        if self.finished < self.owned {
            let (origin, seq) = (self.id, self.take_seq());
            ctx.schedule_at_keyed(
                ctx.now() + SimTime::from_secs(self.st.summary_period),
                origin,
                seq,
                SEv::SummaryTick {
                    lane: self.id as u16,
                },
            );
        }
    }
}

/// A server-group shard: a contiguous block of servers with their queues.
/// No RNG here — demands arrive pre-sampled — so the group's trajectory is
/// a pure function of its message stream. All scheduling goes through the
/// keyed API under the group's logical origin (`lanes + group`), which is
/// independent of the frontend placement.
struct Group {
    /// First global server id in this group.
    lo: usize,
    /// Logical merge-key origin: `lanes + group index`.
    origin: u32,
    seq: u64,
    lanes: u32,
    /// Lane id → engine shard id, for routing responses to the owner.
    lane_shard: Vec<u16>,
    discipline: Discipline,
    propagation: f64,
    fifo: Vec<FifoServer>,
    ps: Vec<PsServer>,
    cancelled: u64,
}

impl Group {
    #[inline]
    fn take_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Sends a completion back to the lane owning `req`.
    fn respond(&mut self, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let lane = (req % self.lanes) as usize;
        let dest = self.lane_shard[lane] as usize;
        let (origin, seq) = (self.origin, self.take_seq());
        ctx.send_keyed(
            dest,
            SimTime::from_secs(self.propagation),
            origin,
            seq,
            SEv::Response {
                req,
                server,
                demand,
            },
        );
    }

    fn fifo_start_next(&mut self, s: usize, t: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let (origin, seq) = (self.origin, self.seq);
        let srv = &mut self.fifo[s];
        if let Some((req, svc)) = srv.queue.pop_front() {
            srv.in_service = Some((req, svc));
            srv.busy += svc;
            self.seq += 1;
            ctx.schedule_at_keyed(
                SimTime::from_secs(t + svc),
                origin,
                seq,
                SEv::FifoDepart {
                    server: (self.lo + s) as u16,
                },
            );
        } else {
            srv.in_service = None;
        }
    }

    fn ps_reschedule(&mut self, s: usize, t: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let srv = &mut self.ps[s];
        srv.epoch = srv.epoch.wrapping_add(1);
        if let Some(at) = srv.next_departure(t) {
            let epoch = srv.epoch;
            let (origin, seq) = (self.origin, self.take_seq());
            ctx.schedule_at_keyed(
                SimTime::from_secs(at),
                origin,
                seq,
                SEv::PsDepart {
                    server: (self.lo + s) as u16,
                    epoch,
                },
            );
        }
    }

    fn copy_arrive(&mut self, t: f64, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        match self.discipline {
            Discipline::Fifo => {
                let srv = &mut self.fifo[s];
                srv.queue.push_back((req, demand));
                if srv.in_service.is_none() {
                    self.fifo_start_next(s, t, ctx);
                }
            }
            Discipline::Ps => {
                let srv = &mut self.ps[s];
                srv.advance(t);
                srv.jobs.push(PsJob {
                    req,
                    size: demand,
                    remaining: demand,
                });
                self.ps_reschedule(s, t, ctx);
            }
        }
    }

    fn fifo_depart(&mut self, t: f64, server: u16, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        let (req, svc) = self.fifo[s]
            .in_service
            .take()
            .expect("depart with idle server");
        self.respond(req, server, svc, ctx);
        self.fifo_start_next(s, t, ctx);
    }

    fn ps_depart(&mut self, t: f64, server: u16, epoch: u32, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        if self.ps[s].epoch != epoch {
            return; // stale schedule
        }
        self.ps[s].advance(t);
        let Some(idx) = self.ps[s]
            .jobs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
            .map(|(i, _)| i)
        else {
            return;
        };
        let job = self.ps[s].jobs.remove(idx);
        self.respond(job.req, server, job.size, ctx);
        self.ps_reschedule(s, t, ctx);
    }

    fn cancel(&mut self, t: f64, req: u32, server: u16, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        match self.discipline {
            Discipline::Fifo => {
                // Queued copies of the cancelled request are purged; the
                // in-service copy runs to completion (a disk read cannot
                // be withdrawn mid-seek).
                let before = self.fifo[s].queue.len();
                self.fifo[s].queue.retain(|&(r, _)| r != req);
                self.cancelled += (before - self.fifo[s].queue.len()) as u64;
            }
            Discipline::Ps => {
                // PS drops in-progress work too: closing the shared
                // connection frees the server's share.
                self.ps[s].advance(t);
                let before = self.ps[s].jobs.len();
                self.ps[s].jobs.retain(|j| j.req != req);
                if self.ps[s].jobs.len() != before {
                    self.cancelled += (before - self.ps[s].jobs.len()) as u64;
                    self.ps_reschedule(s, t, ctx);
                }
            }
        }
    }

    fn busy_total(&self) -> f64 {
        match self.discipline {
            Discipline::Fifo => self.fifo.iter().map(|s| s.busy).sum(),
            Discipline::Ps => self.ps.iter().map(|s| s.busy).sum(),
        }
    }
}

/// A frontend engine shard hosting one or more lanes. With F frontend
/// shards, shard f hosts lanes `{f, f+F, f+2F, …}` (local index
/// `lane / F`) — but since all lane scheduling is keyed by lane, the
/// grouping is invisible to the simulation.
struct FrontShard {
    lanes: Vec<Lane>,
    lane_count: usize,
    frontends: usize,
}

impl FrontShard {
    #[inline]
    fn lane_for_req(&mut self, req: u32) -> &mut Lane {
        let lane = req as usize % self.lane_count;
        &mut self.lanes[lane / self.frontends]
    }

    #[inline]
    fn lane_by_id(&mut self, lane: usize) -> &mut Lane {
        &mut self.lanes[lane / self.frontends]
    }
}

enum Node {
    Front(Box<FrontShard>),
    Group(Box<Group>),
}

impl ShardLogic for Node {
    type Event = SEv;

    fn handle(&mut self, now: SimTime, ev: SEv, ctx: &mut ShardCtx<'_, SEv>) {
        let t = now.as_secs();
        match (self, ev) {
            (Node::Front(f), SEv::Arrive { req }) => f.lane_for_req(req).arrive(t, req, ctx),
            (Node::Front(f), SEv::HedgeFire { req }) => {
                let lane = f.lane_for_req(req);
                let slot = (req as usize) / lane.st.lanes;
                if !lane.reqs[slot].done {
                    let (from, to) = (
                        lane.reqs[slot].sent as usize,
                        lane.reqs[slot].tlen as usize,
                    );
                    lane.dispatch(t, req, from, to, ctx);
                }
            }
            (Node::Front(f), SEv::Response {
                req,
                server,
                demand,
            }) => f.lane_for_req(req).response(t, req, server, demand, ctx),
            (Node::Front(f), SEv::SummaryTick { lane }) => {
                f.lane_by_id(lane as usize).summary_tick(ctx)
            }
            (Node::Front(f), SEv::Summary { from, to, rates }) => {
                f.lane_by_id(to as usize).peers.apply(from as usize, rates)
            }
            (Node::Group(g), SEv::CopyArrive {
                req,
                server,
                demand,
            }) => g.copy_arrive(t, req, server, demand, ctx),
            (Node::Group(g), SEv::FifoDepart { server }) => g.fifo_depart(t, server, ctx),
            (Node::Group(g), SEv::PsDepart { server, epoch }) => {
                g.ps_depart(t, server, epoch, ctx)
            }
            (Node::Group(g), SEv::Cancel { req, server }) => g.cancel(t, req, server, ctx),
            _ => unreachable!("event routed to the wrong shard kind"),
        }
    }
}

/// A [`ServiceResult`] plus the engine's execution counters.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The measurements, shaped exactly like [`service::run`]'s
    /// (`peak_utilization` is NaN — see the module docs).
    pub result: ServiceResult,
    /// Events, rounds, worker threads, and drain time of the engine run.
    /// `events` and `rounds` are deterministic and invariant to both the
    /// thread count and the frontend placement.
    pub engine: EngineStats,
    /// Server groups used (engine shards minus the frontends).
    pub groups: usize,
    /// Frontend engine shards the lanes were placed on.
    pub frontends: usize,
    /// Cross-lane load summaries exchanged (0 when `frontend_lanes == 1`).
    pub summaries: u64,
}

/// Process-wide default frontend placement consulted by [`run_sharded`]:
/// `0` (the default) places each lane on its own frontend shard; any
/// other value caps the frontend shards at that count. Because placement
/// never affects output, this knob only changes wall-clock — the CI
/// byte-diff matrix sets it to prove exactly that.
static DEFAULT_FRONTEND_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default frontend-shard cap used by
/// [`run_sharded`] (`0` = one shard per lane). Mirrors
/// [`simcore::runner::set_global_threads`] in spirit: a harness-level
/// execution knob, not a model parameter.
pub fn set_default_frontend_shards(n: usize) {
    DEFAULT_FRONTEND_SHARDS.store(n, Ordering::Relaxed);
}

/// The current process-wide default frontend-shard cap (`0` = auto).
pub fn default_frontend_shards() -> usize {
    DEFAULT_FRONTEND_SHARDS.load(Ordering::Relaxed)
}

/// Runs the service simulation on the sharded engine with `groups` server
/// groups plus [`frontend_lanes`](ServiceConfig::frontend_lanes) lanes
/// placed per the process-wide default (see
/// [`set_default_frontend_shards`]), using up to `threads` worker threads
/// (leased from the process-wide budget; 1 = the sequential reference
/// path). Output is bit-identical for every `threads` value and every
/// frontend placement.
///
/// # Panics
/// Panics on everything [`service::run`] rejects, plus: non-positive
/// propagation (it is the lookahead), `groups` outside `[1, servers]`, or
/// more than [`MAX_STORED`] stored replicas.
pub fn run_sharded(cfg: &ServiceConfig, groups: usize, threads: usize) -> ShardedOutcome {
    let cap = default_frontend_shards();
    let frontends = if cap == 0 {
        cfg.frontend_lanes
    } else {
        cap.min(cfg.frontend_lanes)
    };
    run_sharded_placed(cfg, groups, threads, frontends)
}

/// Like [`run_sharded`] but with an explicit frontend placement: the
/// lanes are dealt round-robin onto `frontends` engine shards
/// (`1 ≤ frontends ≤ frontend_lanes`). The placement is pure execution —
/// output is bit-identical at every legal value; the
/// `fig-service-frontier` experiment asserts exactly that while
/// measuring the wall-clock difference.
///
/// # Panics
/// Panics like [`run_sharded`], or if `frontends` is outside
/// `[1, frontend_lanes]`.
pub fn run_sharded_placed(
    cfg: &ServiceConfig,
    groups: usize,
    threads: usize,
    frontends: usize,
) -> ShardedOutcome {
    validate_config(cfg);
    assert!(
        cfg.propagation > 0.0,
        "sharded engine needs positive propagation (the lookahead window)"
    );
    assert!(
        groups >= 1 && groups <= cfg.servers,
        "server groups must be in [1, servers]"
    );
    assert!(
        cfg.stored_replicas <= MAX_STORED,
        "sharded port stores at most {MAX_STORED} replicas"
    );
    let lanes = cfg.frontend_lanes;
    assert!(
        frontends >= 1 && frontends <= lanes,
        "frontend shards must be in [1, frontend_lanes]: {frontends} vs {lanes}"
    );

    let mean_service = cfg.service.mean();
    assert!(mean_service.is_finite() && mean_service > 0.0);
    let planner = cfg.planner();
    let threshold = planner.threshold_load();

    // Placement is precomputed into a flat table: the hot path then never
    // touches the ring (HashRing::replicas allocates per call).
    let k_stored = cfg.stored_replicas;
    let ring = HashRing::new(cfg.servers, cfg.vnodes);
    let mut stored_tab = vec![0u16; cfg.shards * k_stored];
    for sh in 0..cfg.shards {
        for (j, &s) in ring.replicas(sh as u64, k_stored).iter().enumerate() {
            stored_tab[sh * k_stored + j] = s as u16;
        }
    }
    let hot_server = hottest_stored_server(cfg) as u16;
    let hot_shard: Vec<bool> = (0..cfg.shards)
        .map(|sh| stored_tab[sh * k_stored..(sh + 1) * k_stored].contains(&hot_server))
        .collect();

    // Group g owns the contiguous server block [bounds[g], bounds[g+1])
    // on engine shard `frontends + g`.
    let bounds: Vec<usize> = (0..=groups).map(|g| g * cfg.servers / groups).collect();
    let mut group_shard_of = vec![0u16; cfg.servers];
    for g in 0..groups {
        for s in group_shard_of
            .iter_mut()
            .take(bounds[g + 1])
            .skip(bounds[g])
        {
            *s = (frontends + g) as u16;
        }
    }
    let lane_shard: Vec<u16> = (0..lanes).map(|l| (l % frontends) as u16).collect();

    let total = cfg.warmup + cfg.requests;
    let statics = Arc::new(Statics {
        mean_service,
        total,
        span: cfg.load_end - cfg.load_start,
        lanes,
        group_shard_of,
        lane_shard: lane_shard.clone(),
        stored_tab,
        hot_shard,
        summary_period: cfg.summary_period.max(cfg.propagation),
        cfg: cfg.clone(),
    });

    // Lanes fork their RNG substreams in lane order from one root, so
    // lane 0 of a single-lane config draws exactly the streams the
    // pre-lane frontend drew (1, 2, 3).
    let mut root = Rng::seed_from(cfg.seed);
    let slice_len = cfg.shards / lanes;
    let adaptive = matches!(cfg.frontend, Frontend::Adaptive { .. });
    let mut lanes_vec: Vec<Lane> = Vec::with_capacity(lanes);
    // (shard, at, origin, seq, event) seeds applied once the engine exists.
    let mut seeds: Vec<(usize, SimTime, u32, u64, SEv)> = Vec::new();
    for l in 0..lanes {
        let arrival_rng = root.fork((3 * l + 1) as u64);
        let place_rng = root.fork((3 * l + 2) as u64);
        let svc_rng = root.fork((3 * l + 3) as u64);

        // A lane sees a `1/lanes` thinning of the arrival stream, so a
        // window of `window` of its own gaps would span `lanes`× more
        // simulated time than the single-lane estimator's — and lag a
        // ramp `lanes`× harder. Scaling the per-lane window down keeps
        // the aggregate time horizon (and so the estimator's
        // responsiveness) what the config asked for; at one lane the
        // division is exact and nothing changes.
        let lane_window = |w: usize| (w / lanes).max(2);
        let (estimator, bank) = match &cfg.frontend {
            Frontend::Adaptive {
                window, load_model, ..
            } => match load_model {
                LoadModel::Global => (Some(RateEstimator::new(lane_window(*window))), None),
                LoadModel::PerServer => (
                    None,
                    Some(EstimatorBank::new(cfg.servers, lane_window(*window))),
                ),
            },
            Frontend::Fixed(_) => (None, None),
        };
        let peer_width = match &cfg.frontend {
            Frontend::Adaptive { load_model, .. } => match load_model {
                LoadModel::Global => 1,
                LoadModel::PerServer => cfg.servers,
            },
            Frontend::Fixed(_) => 1,
        };
        let (moment_est, min_samples, recalibrate) = match &cfg.frontend {
            Frontend::Adaptive {
                moments:
                    MomentSource::Estimated {
                        window,
                        min_samples,
                        recalibrate,
                    },
                ..
            } => (
                Some(MomentEstimator::new(lane_window(*window))),
                min_samples.div_ceil(lanes),
                *recalibrate as u64,
            ),
            _ => (None, 0, 1),
        };

        // Lane l owns requests {l, l+lanes, l+2·lanes, …} below `total`.
        let owned = (total - l).div_ceil(lanes);
        let mut lane = Lane {
            id: l as u32,
            seq: 0,
            st: Arc::clone(&statics),
            slice_lo: l * slice_len,
            slice_len,
            owned,
            arrival_rng,
            place_rng,
            svc_rng,
            estimator,
            bank,
            peers: PeerLoads::new(lanes, peer_width),
            moment_est,
            min_samples,
            recalibrate,
            threshold_cache: ThresholdCache::new(),
            planner,
            live_planner: planner,
            live_threshold: threshold,
            observed: 0,
            recalibrations: 0,
            reqs: Vec::with_capacity(owned),
            response: SampleSet::with_capacity(cfg.requests / lanes + 1),
            bucket_samples: (0..cfg.buckets).map(|_| SampleSet::new()).collect(),
            bucket_reqs: vec![0; cfg.buckets],
            bucket_k2: vec![0; cfg.buckets],
            bucket_hot: vec![0; cfg.buckets],
            bucket_hot_k2: vec![0; cfg.buckets],
            copies_issued: 0,
            completed: 0,
            finished: 0,
            summaries_sent: 0,
        };
        if owned > 0 {
            let first_gap = lane
                .arrival_rng
                .exponential(lane.lambda_of(cfg.offered(l)));
            let seq = lane.take_seq();
            seeds.push((
                statics.lane_shard[l] as usize,
                SimTime::from_secs(first_gap),
                l as u32,
                seq,
                SEv::Arrive { req: l as u32 },
            ));
            if lanes > 1 && adaptive {
                let seq = lane.take_seq();
                seeds.push((
                    statics.lane_shard[l] as usize,
                    SimTime::from_secs(statics.summary_period),
                    l as u32,
                    seq,
                    SEv::SummaryTick { lane: l as u16 },
                ));
            }
        }
        lanes_vec.push(lane);
    }

    // Deal lanes round-robin onto the frontend shards (shard f hosts
    // lanes f, f+F, … — local index lane/F).
    let mut front_lanes: Vec<Vec<Lane>> = (0..frontends).map(|_| Vec::new()).collect();
    for lane in lanes_vec {
        let f = lane.id as usize % frontends;
        front_lanes[f].push(lane);
    }

    let mut nodes = Vec::with_capacity(frontends + groups);
    for lanes_on_shard in front_lanes {
        nodes.push(Node::Front(Box::new(FrontShard {
            lanes: lanes_on_shard,
            lane_count: lanes,
            frontends,
        })));
    }
    for g in 0..groups {
        let n = bounds[g + 1] - bounds[g];
        let (fifo, ps) = match cfg.discipline {
            Discipline::Fifo => (
                (0..n)
                    .map(|_| FifoServer {
                        queue: VecDeque::new(),
                        in_service: None,
                        busy: 0.0,
                    })
                    .collect(),
                Vec::new(),
            ),
            Discipline::Ps => (
                Vec::new(),
                (0..n)
                    .map(|_| PsServer {
                        jobs: Vec::new(),
                        last: 0.0,
                        epoch: 0,
                        busy: 0.0,
                    })
                    .collect(),
            ),
        };
        nodes.push(Node::Group(Box::new(Group {
            lo: bounds[g],
            origin: (lanes + g) as u32,
            seq: 0,
            lanes: lanes as u32,
            lane_shard: lane_shard.clone(),
            discipline: cfg.discipline,
            propagation: cfg.propagation,
            fifo,
            ps,
            cancelled: 0,
        })));
    }

    let mut engine = ShardEngine::new(nodes, SimTime::from_secs(cfg.propagation));
    // Pre-size per-shard queues to their steady-state footprint.
    for f in 0..frontends {
        engine.reserve(f, 4 * 1024);
    }
    for g in 0..groups {
        engine.reserve(
            frontends + g,
            (8 * (bounds[g + 1] - bounds[g])).max(256),
        );
    }
    for (shard, at, origin, seq, ev) in seeds {
        engine.schedule_keyed(shard, at, origin, seq, ev);
    }

    let stats = engine.run(threads);

    let mut lanes_out: Vec<Lane> = Vec::with_capacity(lanes);
    let mut busy = 0.0f64;
    let mut copies_cancelled = 0u64;
    for node in engine.into_states() {
        match node {
            Node::Front(f) => lanes_out.extend(f.lanes),
            Node::Group(g) => {
                busy += g.busy_total();
                copies_cancelled += g.cancelled;
            }
        }
    }
    // Merge in lane order: every fold below is then a fixed-order f64
    // reduction, bit-identical at any placement.
    lanes_out.sort_unstable_by_key(|l| l.id);
    let end_time = stats.end_time.as_secs();

    let mut response = SampleSet::with_capacity(cfg.requests);
    let mut completed = 0usize;
    let mut copies_issued = 0u64;
    let mut recalibrations = 0u64;
    let mut summaries = 0u64;
    for lane in &lanes_out {
        response.merge(&lane.response);
        completed += lane.completed;
        copies_issued += lane.copies_issued;
        recalibrations += lane.recalibrations;
        summaries += lane.summaries_sent;
    }

    let span = statics.span;
    let buckets: Vec<RampBucket> = (0..cfg.buckets)
        .map(|b| {
            let width = if span.abs() < f64::EPSILON {
                0.0
            } else {
                span / cfg.buckets as f64
            };
            let load = cfg.load_start + width * (b as f64 + 0.5);
            let mut samples = SampleSet::new();
            let mut requests = 0usize;
            let mut k2_requests = 0usize;
            let mut hot_requests = 0usize;
            let mut hot_k2_requests = 0usize;
            for lane in &lanes_out {
                samples.merge(&lane.bucket_samples[b]);
                requests += lane.bucket_reqs[b];
                k2_requests += lane.bucket_k2[b];
                hot_requests += lane.bucket_hot[b];
                hot_k2_requests += lane.bucket_hot_k2[b];
            }
            let (mean_response, p99) = if samples.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                (samples.mean(), samples.quantile(0.99))
            };
            RampBucket {
                load,
                requests,
                k2_requests,
                mean_response,
                p99,
                peak_utilization: f64::NAN,
                hot_requests,
                hot_k2_requests,
            }
        })
        .collect();
    let curve: Vec<(f64, f64)> = buckets.iter().map(|b| (b.load, b.frac_k2())).collect();

    // Pooled service moments across the lanes (Chan's combine) — at one
    // lane this is exactly the lane's own windowed estimate.
    let moment_pool = lanes_out
        .iter()
        .filter_map(|l| l.moment_est.as_ref().map(|m| m.snapshot()))
        .fold(None::<MomentSnapshot>, |acc, s| {
            Some(acc.map_or(s, |a| a.merge(s)))
        });
    // Report the pooled moments once the lanes together hold as many
    // samples as the single-lane gate demanded (at one lane: the same
    // `len >= min_samples` comparison as before).
    let min_pooled = lanes_out.first().map_or(0, |l| l.min_samples) * lanes;
    let (est_mean_service, est_scv) = match moment_pool {
        Some(snap) if (snap.count as usize) >= min_pooled => (snap.mean, snap.scv()),
        _ => (f64::NAN, f64::NAN),
    };

    let result = ServiceResult {
        response,
        switch_off: switch_off_load(&curve),
        planner_threshold: threshold,
        live_threshold: match &cfg.frontend {
            Frontend::Fixed(_) => f64::NAN,
            // Lane 0's view; lanes recalibrate from the same pooled
            // summaries so the spread across lanes is within the
            // exchange period's drift.
            Frontend::Adaptive { .. } => lanes_out[0].live_threshold,
        },
        est_mean_service,
        est_scv,
        recalibrations,
        buckets,
        copies_issued,
        copies_cancelled,
        mean_utilization: busy / (cfg.servers as f64 * end_time.max(f64::MIN_POSITIVE)),
        completed,
    };
    ShardedOutcome {
        result,
        engine: stats,
        groups,
        frontends,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service;
    use simcore::dist::{DynDist, Exponential};

    fn small_ramp() -> ServiceConfig {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.05, 0.55);
        cfg.servers = 16;
        cfg.shards = 2048;
        cfg.requests = 30_000;
        cfg.warmup = 3_000;
        cfg
    }

    /// Collapses an outcome into a bitwise fingerprint of everything the
    /// reports print.
    fn fingerprint(out: &ShardedOutcome) -> Vec<u64> {
        let mut v = vec![
            out.result.response.mean().to_bits(),
            out.result.switch_off.to_bits(),
            out.result.live_threshold.to_bits(),
            out.result.mean_utilization.to_bits(),
            out.result.copies_issued,
            out.result.copies_cancelled,
            out.result.completed as u64,
            out.summaries,
            out.engine.events,
            out.engine.rounds,
        ];
        for b in &out.result.buckets {
            v.push(b.requests as u64);
            v.push(b.k2_requests as u64);
            v.push(b.mean_response.to_bits());
            v.push(b.p99.to_bits());
        }
        v
    }

    #[test]
    fn bit_identical_at_every_thread_count() {
        let cfg = small_ramp();
        let reference = fingerprint(&run_sharded(&cfg, 5, 1));
        for threads in [2, 3, 6, 8] {
            assert_eq!(
                reference,
                fingerprint(&run_sharded(&cfg, 5, threads)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn multi_lane_bit_identical_at_any_placement_and_thread_count() {
        // The tentpole invariant: with 4 lanes, every (frontend shards,
        // workers) combination produces the same bits — including the
        // summary-exchange traffic, which lands exactly on horizon
        // boundaries (period == lookahead).
        let mut cfg = small_ramp();
        cfg.frontend_lanes = 4;
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        let reference = fingerprint(&run_sharded_placed(&cfg, 3, 1, 1));
        for frontends in [1usize, 2, 4] {
            for threads in [1usize, 3, 8] {
                assert_eq!(
                    reference,
                    fingerprint(&run_sharded_placed(&cfg, 3, threads, frontends)),
                    "frontends={frontends} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn lanes_exchange_summaries_and_match_single_lane_statistically() {
        // Decomposing the frontend into lanes changes the RNG decomposition
        // but not the physics: the ramp's switch-off and throughput agree
        // with the single-lane run, and summaries actually flow.
        let cfg1 = small_ramp();
        let mut cfg4 = small_ramp();
        cfg4.frontend_lanes = 4;
        let a = run_sharded(&cfg1, 4, 1);
        let b = run_sharded(&cfg4, 4, 1);
        assert_eq!(a.summaries, 0, "a lone lane has no peers");
        assert!(b.summaries > 0, "lanes must exchange load summaries");
        assert_eq!(a.result.completed, b.result.completed);
        assert!(
            (a.result.switch_off - b.result.switch_off).abs() < 0.05,
            "switch-off {} vs {}",
            a.result.switch_off,
            b.result.switch_off
        );
        let (ma, mb) = (a.result.response.mean(), b.result.response.mean());
        assert!((ma - mb).abs() / ma < 0.05, "mean {ma} vs {mb}");
    }

    #[test]
    fn default_placement_knob_caps_the_frontend_shards() {
        let mut cfg = small_ramp();
        cfg.frontend_lanes = 4;
        cfg.requests = 5_000;
        cfg.warmup = 500;
        let reference = fingerprint(&run_sharded_placed(&cfg, 2, 1, 4));
        set_default_frontend_shards(2);
        let capped = run_sharded(&cfg, 2, 1);
        set_default_frontend_shards(0);
        let auto = run_sharded(&cfg, 2, 1);
        assert_eq!(capped.frontends, 2);
        assert_eq!(auto.frontends, 4);
        assert_eq!(fingerprint(&capped), reference);
        assert_eq!(fingerprint(&auto), reference);
    }

    #[test]
    fn group_count_is_part_of_the_config_not_the_schedule() {
        // Different groupings change message routing but not the physical
        // model: switch-off and copy counts stay close (not bitwise —
        // per-shard FIFO tie-breaks shift with the partition).
        let cfg = small_ramp();
        let a = run_sharded(&cfg, 1, 1);
        let b = run_sharded(&cfg, 8, 1);
        assert_eq!(a.result.completed, b.result.completed);
        assert_eq!(a.result.copies_issued, b.result.copies_issued);
        assert!((a.result.switch_off - b.result.switch_off).abs() < 0.05);
    }

    #[test]
    fn matches_sequential_service_statistically() {
        // Same config through both engines: distributions must agree even
        // though event interleavings (and so exact samples) differ.
        let cfg = small_ramp();
        let seq = service::run(&cfg);
        let sh = run_sharded(&cfg, 4, 1).result;
        assert_eq!(seq.completed, sh.completed);
        let (a, b) = (seq.response.mean(), sh.response.mean());
        assert!((a - b).abs() / a < 0.05, "mean {a} vs {b}");
        assert!(
            (seq.switch_off - sh.switch_off).abs() < 0.05,
            "switch-off {} vs {}",
            seq.switch_off,
            sh.switch_off
        );
        assert!((seq.mean_utilization - sh.mean_utilization).abs() < 0.03);
    }

    #[test]
    fn cancellation_works_across_shards() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.2, 0.2);
        cfg.servers = 12;
        cfg.frontend = Frontend::Fixed(Policy::Always { copies: 2 });
        cfg.cancellation = true;
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        cfg.buckets = 1;
        let out = run_sharded(&cfg, 4, 1);
        assert_eq!(out.result.completed, cfg.requests);
        assert!(out.result.copies_cancelled > 0, "no copies cancelled");
        let seq = service::run(&cfg);
        let rel = (out.result.copies_cancelled as f64 - seq.copies_cancelled as f64).abs()
            / seq.copies_cancelled as f64;
        assert!(rel < 0.05, "cancelled {} vs {}", out.result.copies_cancelled, seq.copies_cancelled);
    }

    #[test]
    fn ps_discipline_runs_sharded() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.3, 0.3);
        cfg.discipline = Discipline::Ps;
        cfg.frontend = Frontend::Fixed(Policy::Single);
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        cfg.buckets = 1;
        let out = run_sharded(&cfg, 3, 1);
        assert_eq!(out.result.completed, cfg.requests);
        let expect = 1.0e-3 / (1.0 - 0.3) + 2.0 * cfg.propagation;
        let got = out.result.response.mean();
        assert!((got - expect).abs() / expect < 0.10, "PS mean {got} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "saturates")]
    fn rejects_saturating_config_like_sequential() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.6, 0.6);
        cfg.frontend = Frontend::Fixed(Policy::Always { copies: 2 });
        let _ = run_sharded(&cfg, 2, 1);
    }

    #[test]
    #[should_panic(expected = "single frontend lane")]
    fn rejects_popularity_with_multiple_lanes() {
        let mut cfg = small_ramp();
        cfg.frontend_lanes = 4;
        cfg.popularity = Some(service::zipf_popularity(cfg.shards, 0.9));
        let _ = run_sharded(&cfg, 2, 1);
    }
}
