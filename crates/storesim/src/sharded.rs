//! The [`service`](crate::service) simulation ported onto the sharded
//! parallel engine ([`simcore::shard`]) — engine shards for the server
//! groups *and* for the frontend, so a single long ramp can use several
//! cores on both sides of the client↔server boundary.
//!
//! The partition follows the physical message flow: `Arrive` and
//! `HedgeFire` are frontend-local, `FifoDepart`/`PsDepart` are
//! server-local, and exactly the events that cross the client↔server
//! boundary in the model — copy dispatches, responses, and cancellations —
//! become cross-shard messages carrying the existing one-way
//! [`propagation`](ServiceConfig::propagation) delay, which is therefore
//! the engine's lookahead window.
//!
//! ## Frontend lanes vs frontend shards
//!
//! The frontend itself is decomposed into
//! [`frontend_lanes`](ServiceConfig::frontend_lanes) logical **lanes**:
//! lane ℓ owns the requests with `req % lanes == ℓ`, a contiguous
//! `1/lanes` slice of the key shards, its own forked RNG substreams
//! (streams `3ℓ+1..=3ℓ+3`, so one lane draws exactly the streams the
//! pre-lane frontend drew), and its own estimator state
//! ([`RateEstimator`]/[`EstimatorBank`] slice plus [`MomentEstimator`]).
//! Lanes see only their own arrivals, so they periodically exchange
//! [`LoadSummary`] messages (floored at the lookahead) and combine peer
//! rates through [`PeerLoads`] — rates are additive, so the combined
//! utilization estimate converges to the whole cluster's without any
//! shared mutable state.
//!
//! The lane count is a **model** parameter: `lanes > 1` runs a different
//! (decomposed) arrival process, and `lanes = 1` is byte-identical to the
//! pre-lane frontend. The number of **frontend shards** F the lanes are
//! placed on is, by contrast, pure execution: every lane event is
//! scheduled through the engine's `*_keyed` API under the lane's logical
//! origin `ℓ` and the lane's own sequence counter (server groups likewise
//! use logical origin `lanes + g`), so the `(time, origin, seq)` merge
//! keys — and therefore every pop order and every RNG draw — are
//! identical whether the lanes share one engine shard or occupy F of
//! them. Output is **bit-identical at any (worker, frontend-shard)
//! configuration**; only wall-clock changes with F, which is what the
//! `fig-service-frontier` experiment and the engine bench measure.
//!
//! Two deliberate deltas from the sequential [`service::run`] keep every
//! shard deterministic in isolation (all randomness lives on the
//! frontend lanes):
//!
//! * a copy's service demand is sampled from the lane's `svc_rng` at
//!   **dispatch** and carried in the `CopyArrive` message, instead of at
//!   server arrival — the same per-copy law, drawn in lane dispatch
//!   order;
//! * cancellations are addressed **per request** (`Cancel { req, server }`
//!   purges that request's copies at that server) instead of via the
//!   shared [`CancelToken`](redundancy::cancel::CancelToken) — the same
//!   copies are purged, at most one propagation delay later than the
//!   token's opportunistic sweep could have caught them.
//!
//! Consequently the sharded run is **not** byte-identical to
//! [`service::run`] on the same config (distributions agree statistically;
//! a test pins that), but it **is** byte-identical to itself at any
//! thread and placement count — the workspace invariant.
//!
//! Per-bucket `peak_utilization` is not computed here (it needs a global
//! per-server busy snapshot at bucket boundaries, which is exactly the
//! cross-shard coupling the partition removes) and reports NaN;
//! run-level `mean_utilization` is still exact, folded from per-server
//! busy totals after the engine drains.
//!
//! ## Elastic scaling
//!
//! With [`ServiceConfig::autoscale`] set, the fleet resizes mid-run: an
//! autoscale controller on lane 0 wakes on a periodic `ScaleTick`,
//! compares the cluster-wide utilization estimate (the same
//! estimator-plus-peer-summary stack the planner reads) against the
//! hysteresis band, and broadcasts `Topology` events that every lane —
//! itself included — applies **at the same simulated instant**, one
//! propagation delay after the decision. Each lane keeps its own
//! [`HashRing`] clone and applies identical deterministic `add_server` /
//! `remove_server` sequences, so the rings never diverge; requests
//! landing on a shard whose owners moved are dual-dispatched to the old
//! *and* new owners for the configured migration window; and the
//! per-server [`EstimatorBank`] grows/resets per churned index. All of
//! it flows through the keyed scheduling API under lane-logical origins,
//! so elastic runs keep the workspace invariant: bit-identical output at
//! any thread count and frontend placement. Server slots for the full
//! [`crate::service::Autoscale::max_servers`] fleet are allocated up front (dormant
//! servers idle in their groups); `mean_utilization` divides by the
//! *provisioned* server-time integral `∫ live(t) dt`, and the ramp
//! buckets bin by **instantaneous per-live-server load**, which is the ρ
//! axis the planner's switch-off must track through every resize.

use crate::hashring::HashRing;
use crate::service::{
    hottest_stored_server, shard_of, validate_config, DemandReport, Discipline, FifoServer,
    Frontend, LoadModel, MomentSource, PsJob, PsServer, RampBucket, ServiceConfig, ServiceResult,
    switch_off_load,
};
use redundancy::estimator::{
    EstimatorBank, LoadSummary, MomentEstimator, MomentSnapshot, PeerLoads, RateEstimator,
};
use redundancy::planner::{Planner, ThresholdCache};
use redundancy::policy::Policy;
use simcore::dist::Distribution;
use simcore::rng::Rng;
use simcore::shard::{EngineStats, ShardCtx, ShardEngine, ShardLogic};
use simcore::stats::SampleSet;
use simcore::time::SimTime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Stored-replica ceiling of the sharded port: targets live in a fixed
/// array on the per-request slot (no per-request allocation on the hot
/// path). The paper's placements use 2–3.
pub const MAX_STORED: usize = 4;

#[derive(Clone, Debug)]
enum SEv {
    /// A request enters its owning frontend lane (frontend shard).
    Arrive { req: u32 },
    /// A hedged request's delay elapsed (frontend shard).
    HedgeFire { req: u32 },
    /// A dispatched copy reaches its server, demand pre-sampled on the
    /// lane (cross-shard, one propagation delay).
    CopyArrive { req: u32, server: u16, demand: f64 },
    /// The in-service FIFO copy at `server` completes (server shard).
    FifoDepart { server: u16 },
    /// The PS job set at `server` may have drained its minimum; stale
    /// epochs are ignored (server shard).
    PsDepart { server: u16, epoch: u32 },
    /// A completion travels back to the client; `demand` is re-surfaced
    /// for completion-mode moment reporting (cross-shard).
    Response { req: u32, server: u16, demand: f64 },
    /// The front-end cancels `req`'s copy at `server` (cross-shard).
    Cancel { req: u32, server: u16 },
    /// A lane's periodic load-summary broadcast timer (lane-local).
    SummaryTick { lane: u16 },
    /// Lane `from`'s load summary reaching peer lane `to`, one lookahead
    /// after it was snapshotted. Delivered under the sender's merge key
    /// whether the peer is co-located or remote, so placement cannot
    /// reorder it.
    Summary { from: u16, to: u16, rates: LoadSummary },
    /// The autoscale controller's periodic evaluation timer (lane 0,
    /// elastic mode only).
    ScaleTick,
    /// The fleet resizes to `servers` live servers: broadcast by the
    /// lane-0 controller to every lane (itself included) with one
    /// propagation delay, so all rings mutate at the same simulated
    /// instant. `generation` counts decisions, for sanity checking.
    Topology { to: u16, generation: u32, servers: u16 },
}

/// One autoscaler decision that changed the fleet size.
#[derive(Clone, Copy, Debug)]
pub struct ScaleEvent {
    /// Simulated time of the decision (the fleet changes one propagation
    /// delay later).
    pub at: f64,
    /// Live servers after the change.
    pub servers: usize,
    /// The estimated per-live-server utilization that triggered it.
    pub rho: f64,
}

/// Per-request bookkeeping on the owning lane.
struct ReqSlot {
    arrival: f64,
    offered: f64,
    targets: [u16; MAX_STORED],
    tlen: u8,
    sent: u8,
    hot: bool,
    done: bool,
}

/// Immutable tables shared by every lane.
struct Statics {
    cfg: ServiceConfig,
    mean_service: f64,
    total: usize,
    span: f64,
    lanes: usize,
    /// Server id → engine shard id (`frontends + its group`).
    group_shard_of: Vec<u16>,
    /// Lane id → engine shard id (`lane % frontends`).
    lane_shard: Vec<u16>,
    /// Flat `[shard][replica]` stored-placement table (stride
    /// `stored_replicas`), precomputed from the ring.
    stored_tab: Vec<u16>,
    hot_shard: Vec<bool>,
    /// Resolved summary-exchange period: `max(summary_period, lookahead)`.
    summary_period: f64,
    /// `cfg.autoscale.is_some()` — checked on every hot path, so cached.
    elastic: bool,
    /// Resolved controller period: `max(autoscale.period, lookahead)`
    /// (topology broadcasts ride cross-shard wires). 0 when static.
    scale_period: f64,
}

/// One frontend lane: a slice of the arrival process, the redundancy
/// stack for its requests, and every measurement keyed off its request
/// identities. All scheduling goes through the keyed engine API under
/// this lane's logical origin, so the lane's trajectory is independent
/// of which engine shard hosts it.
struct Lane {
    id: u32,
    seq: u64,
    st: Arc<Statics>,
    /// First key shard of this lane's slice.
    slice_lo: usize,
    slice_len: usize,
    /// Requests this lane owns (`req % lanes == id`).
    owned: usize,
    arrival_rng: Rng,
    place_rng: Rng,
    svc_rng: Rng,
    estimator: Option<RateEstimator>,
    bank: Option<EstimatorBank>,
    peers: PeerLoads,
    moment_est: Option<MomentEstimator>,
    min_samples: usize,
    recalibrate: u64,
    threshold_cache: ThresholdCache,
    planner: Planner,
    live_planner: Planner,
    live_threshold: f64,
    observed: u64,
    recalibrations: u64,
    /// Indexed by the lane-local request index `req / lanes`.
    reqs: Vec<ReqSlot>,
    response: SampleSet,
    bucket_samples: Vec<SampleSet>,
    bucket_reqs: Vec<usize>,
    bucket_k2: Vec<usize>,
    bucket_hot: Vec<usize>,
    bucket_hot_k2: Vec<usize>,
    copies_issued: u64,
    completed: usize,
    /// All responses marked done, warm-up included — drives the summary
    /// tick shutdown so the engine can drain.
    finished: usize,
    summaries_sent: u64,
    // --- elastic topology state (inert when `st.elastic` is false) ---
    /// This lane's live ring; every lane applies the same deterministic
    /// op sequence at the same simulated instants, so the clones never
    /// diverge. `None` in static mode (the precomputed `stored_tab` is
    /// the placement there).
    ring: Option<HashRing>,
    /// The ring as it was before the latest topology change — consulted
    /// for dual-dispatch while the migration window is open.
    ring_prev: Option<HashRing>,
    /// End of the current dual-dispatch window (simulated seconds).
    migration_until: f64,
    /// Live server count (== `cfg.servers` in static mode).
    live: usize,
    /// Last applied topology generation.
    topo_gen: u32,
    // Controller state (meaningful on lane 0 only):
    /// Fleet size of the latest announced (possibly not yet applied)
    /// decision — the size scaling decisions are evaluated against.
    target_live: usize,
    /// Topology generations announced by this lane's controller.
    topo_announced: u32,
    /// Decisions that changed the fleet, in order.
    scale_log: Vec<ScaleEvent>,
    /// `∫ live(t) dt` accumulated at each topology application.
    cap_integral: f64,
    /// Time of the last `cap_integral` accrual.
    cap_last: f64,
    /// Largest fleet the run reached.
    peak_live: usize,
}

impl Lane {
    #[inline]
    fn take_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn bucket_of(&self, offered: f64) -> usize {
        if self.st.span.abs() < f64::EPSILON {
            0
        } else {
            (((offered - self.st.cfg.load_start) / self.st.span) * self.st.cfg.buckets as f64)
                .floor()
                .clamp(0.0, (self.st.cfg.buckets - 1) as f64) as usize
        }
    }

    /// This lane's arrival rate at offered load `offered`: its `1/lanes`
    /// share of the cluster rate (slices are equal-mass by the
    /// lanes-divide-shards validation).
    fn lambda_of(&self, offered: f64) -> f64 {
        offered * self.st.cfg.servers as f64 / self.st.mean_service / self.st.lanes as f64
    }

    /// Ingests one per-copy service duration (see
    /// [`service::run`](crate::service::run)'s `observe_service!`).
    fn observe_service(&mut self, svc: f64) {
        if let Some(me) = self.moment_est.as_mut() {
            me.observe(svc);
            self.observed += 1;
            if me.len() >= self.min_samples && self.observed.is_multiple_of(self.recalibrate) {
                self.live_threshold =
                    self.threshold_cache
                        .threshold(me.mean(), me.scv(), self.st.cfg.client_overhead);
                self.live_planner = self.planner.recalibrated(me.mean(), me.scv());
                self.recalibrations += 1;
            }
        }
    }

    /// Dispatches copies `from..to` of `req`'s target list: demand sampled
    /// here (lane RNG), `CopyArrive` sent to the owning server shard under
    /// this lane's merge key.
    fn dispatch(&mut self, t: f64, req: u32, from: usize, to: usize, ctx: &mut ShardCtx<'_, SEv>) {
        let prop = SimTime::from_secs(self.st.cfg.propagation);
        let slot = (req as usize) / self.st.lanes;
        for idx in from..to {
            let server = self.reqs[slot].targets[idx];
            let demand = self.st.cfg.service.sample(&mut self.svc_rng);
            if self.st.cfg.demand_report == DemandReport::Dispatch {
                self.observe_service(demand);
            }
            self.copies_issued += 1;
            let dest = self.st.group_shard_of[server as usize] as usize;
            let (origin, seq) = (self.id, self.take_seq());
            ctx.send_keyed(
                dest,
                prop,
                origin,
                seq,
                SEv::CopyArrive {
                    req,
                    server,
                    demand,
                },
            );
        }
        // A request counts as duplicated when a second copy is *actually
        // dispatched* — for hedged policies only when the hedge fires.
        // Elastic runs count at decision time in `arrive` instead:
        // dual-dispatched migration copies are capacity overhead, not a
        // planner choice, and must not read as k = 2 on the curve.
        if !self.st.elastic && from < 2 && to >= 2 && (req as usize) >= self.st.cfg.warmup {
            let b = self.bucket_of(self.reqs[slot].offered);
            self.bucket_k2[b] += 1;
            if self.reqs[slot].hot {
                self.bucket_hot_k2[b] += 1;
            }
        }
        let _ = t;
        self.reqs[slot].sent = to as u8;
    }

    fn arrive(&mut self, t: f64, req: u32, ctx: &mut ShardCtx<'_, SEv>) {
        let i = req as usize;
        // Static: the configured ramp. Elastic: the diurnal *cluster*
        // curve rescaled by `baseline / live` — the instantaneous
        // per-live-server load, which is both the bucket axis and the ρ
        // the planner's threshold is defined against.
        let offered = if self.st.elastic {
            self.st.cfg.offered_cluster(i) * self.st.cfg.servers as f64 / self.live as f64
        } else {
            self.st.cfg.offered(i)
        };
        let k_stored = self.st.cfg.stored_replicas;

        let shard = match &self.st.cfg.popularity {
            None => self.slice_lo + self.place_rng.index(self.slice_len),
            // Validation rejects popularity with lanes > 1, so this arm
            // only runs on the single full-range lane.
            Some(d) => shard_of(d.sample(&mut self.place_rng), self.st.cfg.shards),
        };
        let hot = self.st.hot_shard[shard];
        // Elastic placement comes from the live ring; static from the
        // precomputed table (identical to a ring lookup, but flat).
        // Copied into a stack buffer so no borrow of `self` outlives the
        // mutable estimator access below.
        let mut stored_buf = [0u16; MAX_STORED];
        if let Some(ring) = &self.ring {
            ring.replicas_into(shard as u64, &mut stored_buf[..k_stored]);
        } else {
            stored_buf[..k_stored]
                .copy_from_slice(&self.st.stored_tab[shard * k_stored..shard * k_stored + k_stored]);
        }

        // Replication decision — same stack as the sequential path, with
        // peer-reported rates folded into the utilization estimates.
        let (copies, hedge_after) = match &self.st.cfg.frontend {
            Frontend::Fixed(policy) => match *policy {
                Policy::Single => (1usize, None),
                Policy::Always { copies } => (copies, None),
                Policy::Hedged { copies, after } => (copies, Some(after.as_secs_f64())),
            },
            Frontend::Adaptive { load_model, .. } => {
                let live_mean = match self.moment_est.as_ref() {
                    Some(me) if me.len() >= self.min_samples => me.mean(),
                    _ => self.st.mean_service,
                };
                let replicate = match load_model {
                    LoadModel::Global => {
                        let est = self.estimator.as_mut().expect("adaptive estimator");
                        est.observe_arrival(t);
                        let rho = if est.is_warm() {
                            // Divide by the *live* fleet, not the
                            // configured one — the whole point of
                            // elastic mode is that the threshold tracks
                            // current capacity (static: live == servers).
                            self.peers.total_rate(0, est.rate()) * live_mean
                                / self.live as f64
                        } else {
                            self.st.cfg.load_start
                        };
                        rho < self.live_threshold
                    }
                    LoadModel::PerServer => {
                        let bank = self.bank.as_mut().expect("per-server bank");
                        let mut rho_max = 0.0f64;
                        for &stored_s in &stored_buf[..k_stored] {
                            let s = stored_s as usize;
                            bank.observe_arrival(s, t);
                            let rho = if bank.get(s).is_warm() {
                                self.peers.total_rate(s, bank.rate(s)) * live_mean
                                    / k_stored as f64
                            } else {
                                self.st.cfg.load_start
                            };
                            rho_max = rho_max.max(rho);
                        }
                        let d = self
                            .live_planner
                            .decide_for(&mut self.threshold_cache, &[rho_max]);
                        self.live_threshold = d.threshold_load;
                        d.replicate
                    }
                };
                (if replicate { 2 } else { 1 }, None)
            }
        };

        let k = copies.min(k_stored);
        let stored = &stored_buf[..k_stored];
        let mut targets = [0u16; MAX_STORED];
        if k == k_stored && hedge_after.is_none() {
            targets[..k].copy_from_slice(stored);
        } else {
            // Load-balance the primary across the stored set, exactly as
            // the sequential path shuffles (same place_rng draw order).
            let mut order = [0usize; MAX_STORED];
            for (j, slot) in order.iter_mut().enumerate().take(k_stored) {
                *slot = j;
            }
            self.place_rng.shuffle(&mut order[..k_stored]);
            for j in 0..k {
                targets[j] = stored[order[j]];
            }
        }

        let mut tlen = k;
        if self.st.elastic {
            // Decision-time k = 2 accounting (see `dispatch`): the curve
            // reflects the planner's choice, not migration overhead.
            if k >= 2 && i >= self.st.cfg.warmup {
                let b = self.bucket_of(offered);
                self.bucket_k2[b] += 1;
                if hot {
                    self.bucket_hot_k2[b] += 1;
                }
            }
            // Dual-dispatch while the shard may still be migrating: the
            // same number of copies under the *previous* placement, with
            // owners that moved added as extra targets (capped by the
            // slot array — with the paper's 2-copy placements the union
            // always fits).
            if t < self.migration_until {
                if let Some(prev) = &self.ring_prev {
                    let mut old = [0u16; MAX_STORED];
                    prev.replicas_into(shard as u64, &mut old[..k_stored]);
                    for &s in &old[..k] {
                        if !targets[..tlen].contains(&s) && tlen < MAX_STORED {
                            targets[tlen] = s;
                            tlen += 1;
                        }
                    }
                }
            }
        }

        self.reqs.push(ReqSlot {
            arrival: t,
            offered,
            targets,
            tlen: tlen as u8,
            sent: 0,
            hot,
            done: false,
        });
        debug_assert_eq!(self.reqs.len() - 1, i / self.st.lanes);

        if i >= self.st.cfg.warmup {
            let b = self.bucket_of(offered);
            self.bucket_reqs[b] += 1;
            if hot {
                self.bucket_hot[b] += 1;
            }
        }

        match hedge_after {
            Some(after) => {
                self.dispatch(t, req, 0, 1, ctx);
                let (origin, seq) = (self.id, self.take_seq());
                ctx.schedule_at_keyed(
                    SimTime::from_secs(t + after),
                    origin,
                    seq,
                    SEv::HedgeFire { req },
                );
            }
            None => {
                self.dispatch(t, req, 0, tlen, ctx);
            }
        }

        if i + self.st.lanes < self.st.total {
            let lambda = self.lambda_of(self.st.cfg.offered_cluster(i + self.st.lanes));
            let gap = self.arrival_rng.exponential(lambda);
            let (origin, seq) = (self.id, self.take_seq());
            ctx.schedule_at_keyed(
                ctx.now() + SimTime::from_secs(gap),
                origin,
                seq,
                SEv::Arrive {
                    req: req + self.st.lanes as u32,
                },
            );
        }
    }

    fn response(&mut self, t: f64, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        // Completion-mode reporting happens when the response reaches the
        // client (the server's report rides the response), duplicates
        // included — the same per-copy sample as the sequential path, one
        // propagation later.
        if self.st.cfg.demand_report == DemandReport::Completion {
            self.observe_service(demand);
        }
        let i = req as usize;
        let slot = i / self.st.lanes;
        if self.reqs[slot].done {
            return;
        }
        self.reqs[slot].done = true;
        self.finished += 1;
        let state = &self.reqs[slot];
        let extra = (state.sent as f64 - 1.0).max(0.0) * self.st.cfg.client_overhead;
        let rt = (t - state.arrival) + extra;
        let offered = state.offered;
        if i >= self.st.cfg.warmup {
            let b = self.bucket_of(offered);
            self.response.push(rt);
            self.bucket_samples[b].push(rt);
            self.completed += 1;
        }
        if self.st.cfg.cancellation && self.reqs[slot].sent > 1 {
            let prop = SimTime::from_secs(self.st.cfg.propagation);
            for idx in 0..self.reqs[slot].sent as usize {
                let other = self.reqs[slot].targets[idx];
                if other != server {
                    let dest = self.st.group_shard_of[other as usize] as usize;
                    let (origin, seq) = (self.id, self.take_seq());
                    ctx.send_keyed(dest, prop, origin, seq, SEv::Cancel { req, server: other });
                }
            }
        }
    }

    /// Broadcasts this lane's current rate summary to every peer lane
    /// (one lookahead of delay; keyed-local when a peer shares this
    /// engine shard) and re-arms the timer while the lane still has
    /// requests in flight.
    fn summary_tick(&mut self, ctx: &mut ShardCtx<'_, SEv>) {
        let rates = match (&self.estimator, &self.bank) {
            (Some(est), _) => est.summary(),
            (_, Some(bank)) => bank.summary(),
            _ => unreachable!("summary tick on a lane without estimators"),
        };
        let delay = SimTime::from_secs(self.st.cfg.propagation);
        let here = ctx.shard();
        for peer in 0..self.st.lanes {
            if peer == self.id as usize {
                continue;
            }
            let ev = SEv::Summary {
                from: self.id as u16,
                to: peer as u16,
                rates: rates.clone(),
            };
            let dest = self.st.lane_shard[peer] as usize;
            let (origin, seq) = (self.id, self.take_seq());
            if dest == here {
                ctx.schedule_at_keyed(ctx.now() + delay, origin, seq, ev);
            } else {
                ctx.send_keyed(dest, delay, origin, seq, ev);
            }
            self.summaries_sent += 1;
        }
        if self.finished < self.owned {
            let (origin, seq) = (self.id, self.take_seq());
            ctx.schedule_at_keyed(
                ctx.now() + SimTime::from_secs(self.st.summary_period),
                origin,
                seq,
                SEv::SummaryTick {
                    lane: self.id as u16,
                },
            );
        }
    }

    /// The autoscale controller (lane 0): estimate cluster-wide
    /// per-live-server utilization from the same estimator-plus-peers
    /// stack the planner reads, step the fleet if it left the hysteresis
    /// band, and broadcast the new topology to every lane with one
    /// propagation delay so all rings mutate at the same simulated
    /// instant. Pure function of lane state — deterministic at any
    /// thread count.
    fn scale_tick(&mut self, ctx: &mut ShardCtx<'_, SEv>) {
        let t = ctx.now().as_secs();
        let a = self.st.cfg.autoscale.expect("scale tick without autoscale");
        let live_mean = match self.moment_est.as_ref() {
            Some(me) if me.len() >= self.min_samples => me.mean(),
            _ => self.st.mean_service,
        };
        // Cluster arrival rate: own estimate plus last-heard peer
        // summaries. The per-server bank reports every request to all
        // `k_stored` candidates, so its index sum overcounts by exactly
        // that factor.
        let rate = match (&self.estimator, &self.bank) {
            (Some(est), _) => est
                .is_warm()
                .then(|| self.peers.total_rate(0, est.rate())),
            (_, Some(bank)) => {
                let warm = (0..bank.len()).any(|s| bank.get(s).is_warm());
                warm.then(|| {
                    (0..bank.len())
                        .map(|s| self.peers.total_rate(s, bank.rate(s)))
                        .sum::<f64>()
                        / self.st.cfg.stored_replicas as f64
                })
            }
            _ => None,
        };
        if let Some(rate) = rate {
            // Evaluated against the latest *announced* size: a decision
            // in flight (applied one lookahead later) must not be
            // re-taken against the stale fleet on the next tick.
            let rho = rate * live_mean / self.target_live as f64;
            let mut target = self.target_live;
            if rho > a.scale_out {
                target = (target + a.step).min(a.max_servers);
            } else if rho < a.scale_in {
                target = target.saturating_sub(a.step).max(self.st.cfg.servers);
            }
            if target != self.target_live {
                self.target_live = target;
                self.topo_announced += 1;
                self.scale_log.push(ScaleEvent {
                    at: t,
                    servers: target,
                    rho,
                });
                let delay = SimTime::from_secs(self.st.cfg.propagation);
                let here = ctx.shard();
                for lane in 0..self.st.lanes {
                    let ev = SEv::Topology {
                        to: lane as u16,
                        generation: self.topo_announced,
                        servers: target as u16,
                    };
                    let dest = self.st.lane_shard[lane] as usize;
                    let (origin, seq) = (self.id, self.take_seq());
                    if dest == here {
                        ctx.schedule_at_keyed(ctx.now() + delay, origin, seq, ev);
                    } else {
                        ctx.send_keyed(dest, delay, origin, seq, ev);
                    }
                }
            }
        }
        if self.finished < self.owned {
            let (origin, seq) = (self.id, self.take_seq());
            ctx.schedule_at_keyed(
                ctx.now() + SimTime::from_secs(self.st.scale_period),
                origin,
                seq,
                SEv::ScaleTick,
            );
        }
    }

    /// Applies a topology broadcast: mutate this lane's ring to the new
    /// size (LIFO add/remove — identical ops on every lane, so the
    /// clones stay equal), open the dual-dispatch window, and churn the
    /// per-server estimator state (grow on scale-out, per-index reset of
    /// departed servers on scale-in; survivors untouched).
    fn apply_topology(&mut self, t: f64, generation: u32, servers: usize) {
        debug_assert_eq!(generation, self.topo_gen + 1, "topology gap");
        self.topo_gen = generation;
        let ring = self.ring.as_mut().expect("topology without autoscale");
        self.ring_prev = Some(ring.clone());
        while ring.servers() < servers {
            ring.add_server();
        }
        while ring.servers() > servers {
            ring.remove_server();
        }
        if let Some(bank) = self.bank.as_mut() {
            bank.grow_to(servers);
            // Departed indices go cold; a re-added server must warm up
            // fresh, not inherit its pre-departure window.
            for idx in servers..self.live {
                bank.reset(idx);
            }
            self.peers.grow_to(servers);
        }
        self.cap_integral += self.live as f64 * (t - self.cap_last);
        self.cap_last = t;
        self.live = servers;
        self.peak_live = self.peak_live.max(servers);
        self.migration_until = t + self.st.cfg.autoscale.expect("elastic").migration;
    }
}

/// A server-group shard: a contiguous block of servers with their queues.
/// No RNG here — demands arrive pre-sampled — so the group's trajectory is
/// a pure function of its message stream. All scheduling goes through the
/// keyed API under the group's logical origin (`lanes + group`), which is
/// independent of the frontend placement.
struct Group {
    /// First global server id in this group.
    lo: usize,
    /// Logical merge-key origin: `lanes + group index`.
    origin: u32,
    seq: u64,
    lanes: u32,
    /// Lane id → engine shard id, for routing responses to the owner.
    lane_shard: Vec<u16>,
    discipline: Discipline,
    propagation: f64,
    fifo: Vec<FifoServer>,
    ps: Vec<PsServer>,
    cancelled: u64,
}

impl Group {
    #[inline]
    fn take_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Sends a completion back to the lane owning `req`.
    fn respond(&mut self, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let lane = (req % self.lanes) as usize;
        let dest = self.lane_shard[lane] as usize;
        let (origin, seq) = (self.origin, self.take_seq());
        ctx.send_keyed(
            dest,
            SimTime::from_secs(self.propagation),
            origin,
            seq,
            SEv::Response {
                req,
                server,
                demand,
            },
        );
    }

    fn fifo_start_next(&mut self, s: usize, t: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let (origin, seq) = (self.origin, self.seq);
        let srv = &mut self.fifo[s];
        if let Some((req, svc)) = srv.queue.pop_front() {
            srv.in_service = Some((req, svc));
            srv.busy += svc;
            self.seq += 1;
            ctx.schedule_at_keyed(
                SimTime::from_secs(t + svc),
                origin,
                seq,
                SEv::FifoDepart {
                    server: (self.lo + s) as u16,
                },
            );
        } else {
            srv.in_service = None;
        }
    }

    fn ps_reschedule(&mut self, s: usize, t: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let srv = &mut self.ps[s];
        srv.epoch = srv.epoch.wrapping_add(1);
        if let Some(at) = srv.next_departure(t) {
            let epoch = srv.epoch;
            let (origin, seq) = (self.origin, self.take_seq());
            ctx.schedule_at_keyed(
                SimTime::from_secs(at),
                origin,
                seq,
                SEv::PsDepart {
                    server: (self.lo + s) as u16,
                    epoch,
                },
            );
        }
    }

    fn copy_arrive(&mut self, t: f64, req: u32, server: u16, demand: f64, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        match self.discipline {
            Discipline::Fifo => {
                let srv = &mut self.fifo[s];
                srv.queue.push_back((req, demand));
                if srv.in_service.is_none() {
                    self.fifo_start_next(s, t, ctx);
                }
            }
            Discipline::Ps => {
                let srv = &mut self.ps[s];
                srv.advance(t);
                srv.jobs.push(PsJob {
                    req,
                    size: demand,
                    remaining: demand,
                });
                self.ps_reschedule(s, t, ctx);
            }
        }
    }

    fn fifo_depart(&mut self, t: f64, server: u16, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        let (req, svc) = self.fifo[s]
            .in_service
            .take()
            .expect("depart with idle server");
        self.respond(req, server, svc, ctx);
        self.fifo_start_next(s, t, ctx);
    }

    fn ps_depart(&mut self, t: f64, server: u16, epoch: u32, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        if self.ps[s].epoch != epoch {
            return; // stale schedule
        }
        self.ps[s].advance(t);
        let Some(idx) = self.ps[s]
            .jobs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
            .map(|(i, _)| i)
        else {
            return;
        };
        let job = self.ps[s].jobs.remove(idx);
        self.respond(job.req, server, job.size, ctx);
        self.ps_reschedule(s, t, ctx);
    }

    fn cancel(&mut self, t: f64, req: u32, server: u16, ctx: &mut ShardCtx<'_, SEv>) {
        let s = server as usize - self.lo;
        match self.discipline {
            Discipline::Fifo => {
                // Queued copies of the cancelled request are purged; the
                // in-service copy runs to completion (a disk read cannot
                // be withdrawn mid-seek).
                let before = self.fifo[s].queue.len();
                self.fifo[s].queue.retain(|&(r, _)| r != req);
                self.cancelled += (before - self.fifo[s].queue.len()) as u64;
            }
            Discipline::Ps => {
                // PS drops in-progress work too: closing the shared
                // connection frees the server's share.
                self.ps[s].advance(t);
                let before = self.ps[s].jobs.len();
                self.ps[s].jobs.retain(|j| j.req != req);
                if self.ps[s].jobs.len() != before {
                    self.cancelled += (before - self.ps[s].jobs.len()) as u64;
                    self.ps_reschedule(s, t, ctx);
                }
            }
        }
    }

    fn busy_total(&self) -> f64 {
        match self.discipline {
            Discipline::Fifo => self.fifo.iter().map(|s| s.busy).sum(),
            Discipline::Ps => self.ps.iter().map(|s| s.busy).sum(),
        }
    }
}

/// A frontend engine shard hosting one or more lanes. With F frontend
/// shards, shard f hosts lanes `{f, f+F, f+2F, …}` (local index
/// `lane / F`) — but since all lane scheduling is keyed by lane, the
/// grouping is invisible to the simulation.
struct FrontShard {
    lanes: Vec<Lane>,
    lane_count: usize,
    frontends: usize,
}

impl FrontShard {
    #[inline]
    fn lane_for_req(&mut self, req: u32) -> &mut Lane {
        let lane = req as usize % self.lane_count;
        &mut self.lanes[lane / self.frontends]
    }

    #[inline]
    fn lane_by_id(&mut self, lane: usize) -> &mut Lane {
        &mut self.lanes[lane / self.frontends]
    }
}

enum Node {
    Front(Box<FrontShard>),
    Group(Box<Group>),
}

impl ShardLogic for Node {
    type Event = SEv;

    fn handle(&mut self, now: SimTime, ev: SEv, ctx: &mut ShardCtx<'_, SEv>) {
        let t = now.as_secs();
        match (self, ev) {
            (Node::Front(f), SEv::Arrive { req }) => f.lane_for_req(req).arrive(t, req, ctx),
            (Node::Front(f), SEv::HedgeFire { req }) => {
                let lane = f.lane_for_req(req);
                let slot = (req as usize) / lane.st.lanes;
                if !lane.reqs[slot].done {
                    let (from, to) = (
                        lane.reqs[slot].sent as usize,
                        lane.reqs[slot].tlen as usize,
                    );
                    lane.dispatch(t, req, from, to, ctx);
                }
            }
            (Node::Front(f), SEv::Response {
                req,
                server,
                demand,
            }) => f.lane_for_req(req).response(t, req, server, demand, ctx),
            (Node::Front(f), SEv::SummaryTick { lane }) => {
                f.lane_by_id(lane as usize).summary_tick(ctx)
            }
            (Node::Front(f), SEv::Summary { from, to, rates }) => {
                f.lane_by_id(to as usize).peers.apply(from as usize, rates)
            }
            (Node::Front(f), SEv::ScaleTick) => f.lane_by_id(0).scale_tick(ctx),
            (Node::Front(f), SEv::Topology {
                to,
                generation,
                servers,
            }) => f
                .lane_by_id(to as usize)
                .apply_topology(t, generation, servers as usize),
            (Node::Group(g), SEv::CopyArrive {
                req,
                server,
                demand,
            }) => g.copy_arrive(t, req, server, demand, ctx),
            (Node::Group(g), SEv::FifoDepart { server }) => g.fifo_depart(t, server, ctx),
            (Node::Group(g), SEv::PsDepart { server, epoch }) => {
                g.ps_depart(t, server, epoch, ctx)
            }
            (Node::Group(g), SEv::Cancel { req, server }) => g.cancel(t, req, server, ctx),
            _ => unreachable!("event routed to the wrong shard kind"),
        }
    }
}

/// A [`ServiceResult`] plus the engine's execution counters.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The measurements, shaped exactly like [`service::run`]'s
    /// (`peak_utilization` is NaN — see the module docs).
    pub result: ServiceResult,
    /// Events, rounds, worker threads, and drain time of the engine run.
    /// `events` and `rounds` are deterministic and invariant to both the
    /// thread count and the frontend placement.
    pub engine: EngineStats,
    /// Server groups used (engine shards minus the frontends).
    pub groups: usize,
    /// Frontend engine shards the lanes were placed on.
    pub frontends: usize,
    /// Cross-lane load summaries exchanged (0 when `frontend_lanes == 1`).
    pub summaries: u64,
    /// The autoscaler's fleet-size trajectory (empty without autoscale):
    /// every decision that changed the live server count, in order.
    pub scale_log: Vec<ScaleEvent>,
    /// Largest live fleet the run reached (`cfg.servers` when static).
    pub peak_live: usize,
    /// Live servers when the run ended (`cfg.servers` when static).
    pub final_live: usize,
}

/// Process-wide default frontend placement consulted by [`run_sharded`]:
/// `0` (the default) places each lane on its own frontend shard; any
/// other value caps the frontend shards at that count. Because placement
/// never affects output, this knob only changes wall-clock — the CI
/// byte-diff matrix sets it to prove exactly that.
static DEFAULT_FRONTEND_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default frontend-shard cap used by
/// [`run_sharded`] (`0` = one shard per lane). Mirrors
/// [`simcore::runner::set_global_threads`] in spirit: a harness-level
/// execution knob, not a model parameter.
pub fn set_default_frontend_shards(n: usize) {
    DEFAULT_FRONTEND_SHARDS.store(n, Ordering::Relaxed);
}

/// The current process-wide default frontend-shard cap (`0` = auto).
pub fn default_frontend_shards() -> usize {
    DEFAULT_FRONTEND_SHARDS.load(Ordering::Relaxed)
}

/// Runs the service simulation on the sharded engine with `groups` server
/// groups plus [`frontend_lanes`](ServiceConfig::frontend_lanes) lanes
/// placed per the process-wide default (see
/// [`set_default_frontend_shards`]), using up to `threads` worker threads
/// (leased from the process-wide budget; 1 = the sequential reference
/// path). Output is bit-identical for every `threads` value and every
/// frontend placement.
///
/// # Panics
/// Panics on everything [`service::run`] rejects, plus: non-positive
/// propagation (it is the lookahead), `groups` outside `[1, servers]`, or
/// more than [`MAX_STORED`] stored replicas.
pub fn run_sharded(cfg: &ServiceConfig, groups: usize, threads: usize) -> ShardedOutcome {
    let cap = default_frontend_shards();
    let frontends = if cap == 0 {
        cfg.frontend_lanes
    } else {
        cap.min(cfg.frontend_lanes)
    };
    run_sharded_placed(cfg, groups, threads, frontends)
}

/// Like [`run_sharded`] but with an explicit frontend placement: the
/// lanes are dealt round-robin onto `frontends` engine shards
/// (`1 ≤ frontends ≤ frontend_lanes`). The placement is pure execution —
/// output is bit-identical at every legal value; the
/// `fig-service-frontier` experiment asserts exactly that while
/// measuring the wall-clock difference.
///
/// # Panics
/// Panics like [`run_sharded`], or if `frontends` is outside
/// `[1, frontend_lanes]`.
pub fn run_sharded_placed(
    cfg: &ServiceConfig,
    groups: usize,
    threads: usize,
    frontends: usize,
) -> ShardedOutcome {
    validate_config(cfg);
    assert!(
        cfg.propagation > 0.0,
        "sharded engine needs positive propagation (the lookahead window)"
    );
    // Elastic runs allocate server slots for the *ceiling* up front;
    // servers beyond the live count simply never receive copies.
    let capacity = cfg.autoscale.map_or(cfg.servers, |a| a.max_servers);
    assert!(
        groups >= 1 && groups <= capacity,
        "server groups must be in [1, servers]"
    );
    assert!(
        cfg.stored_replicas <= MAX_STORED,
        "sharded port stores at most {MAX_STORED} replicas"
    );
    let lanes = cfg.frontend_lanes;
    assert!(
        frontends >= 1 && frontends <= lanes,
        "frontend shards must be in [1, frontend_lanes]: {frontends} vs {lanes}"
    );

    let mean_service = cfg.service.mean();
    assert!(mean_service.is_finite() && mean_service > 0.0);
    let planner = cfg.planner();
    let threshold = planner.threshold_load();

    // Placement is precomputed into a flat table: the hot path then never
    // touches the ring (HashRing::replicas allocates per call).
    let k_stored = cfg.stored_replicas;
    let ring = HashRing::new(cfg.servers, cfg.vnodes);
    let mut stored_tab = vec![0u16; cfg.shards * k_stored];
    for sh in 0..cfg.shards {
        for (j, &s) in ring.replicas(sh as u64, k_stored).iter().enumerate() {
            stored_tab[sh * k_stored + j] = s as u16;
        }
    }
    let hot_server = hottest_stored_server(cfg) as u16;
    let hot_shard: Vec<bool> = (0..cfg.shards)
        .map(|sh| stored_tab[sh * k_stored..(sh + 1) * k_stored].contains(&hot_server))
        .collect();

    // Group g owns the contiguous server block [bounds[g], bounds[g+1])
    // on engine shard `frontends + g` — sized over the full capacity so
    // scale-outs land on pre-built (dormant) servers.
    let bounds: Vec<usize> = (0..=groups).map(|g| g * capacity / groups).collect();
    let mut group_shard_of = vec![0u16; capacity];
    for g in 0..groups {
        for s in group_shard_of
            .iter_mut()
            .take(bounds[g + 1])
            .skip(bounds[g])
        {
            *s = (frontends + g) as u16;
        }
    }
    let lane_shard: Vec<u16> = (0..lanes).map(|l| (l % frontends) as u16).collect();

    let total = cfg.warmup + cfg.requests;
    let statics = Arc::new(Statics {
        mean_service,
        total,
        span: cfg.load_end - cfg.load_start,
        lanes,
        group_shard_of,
        lane_shard: lane_shard.clone(),
        stored_tab,
        hot_shard,
        summary_period: cfg.summary_period.max(cfg.propagation),
        elastic: cfg.autoscale.is_some(),
        scale_period: cfg
            .autoscale
            .map_or(0.0, |a| a.period.max(cfg.propagation)),
        cfg: cfg.clone(),
    });

    // Lanes fork their RNG substreams in lane order from one root, so
    // lane 0 of a single-lane config draws exactly the streams the
    // pre-lane frontend drew (1, 2, 3).
    let mut root = Rng::seed_from(cfg.seed);
    let slice_len = cfg.shards / lanes;
    let adaptive = matches!(cfg.frontend, Frontend::Adaptive { .. });
    let mut lanes_vec: Vec<Lane> = Vec::with_capacity(lanes);
    // (shard, at, origin, seq, event) seeds applied once the engine exists.
    let mut seeds: Vec<(usize, SimTime, u32, u64, SEv)> = Vec::new();
    for l in 0..lanes {
        let arrival_rng = root.fork((3 * l + 1) as u64);
        let place_rng = root.fork((3 * l + 2) as u64);
        let svc_rng = root.fork((3 * l + 3) as u64);

        // A lane sees a `1/lanes` thinning of the arrival stream, so a
        // window of `window` of its own gaps would span `lanes`× more
        // simulated time than the single-lane estimator's — and lag a
        // ramp `lanes`× harder. Scaling the per-lane window down keeps
        // the aggregate time horizon (and so the estimator's
        // responsiveness) what the config asked for; at one lane the
        // division is exact and nothing changes.
        let lane_window = |w: usize| (w / lanes).max(2);
        let (estimator, bank) = match &cfg.frontend {
            Frontend::Adaptive {
                window, load_model, ..
            } => match load_model {
                LoadModel::Global => (Some(RateEstimator::new(lane_window(*window))), None),
                LoadModel::PerServer => (
                    None,
                    Some(EstimatorBank::new(cfg.servers, lane_window(*window))),
                ),
            },
            Frontend::Fixed(_) => (None, None),
        };
        let peer_width = match &cfg.frontend {
            Frontend::Adaptive { load_model, .. } => match load_model {
                LoadModel::Global => 1,
                LoadModel::PerServer => cfg.servers,
            },
            Frontend::Fixed(_) => 1,
        };
        let (moment_est, min_samples, recalibrate) = match &cfg.frontend {
            Frontend::Adaptive {
                moments:
                    MomentSource::Estimated {
                        window,
                        min_samples,
                        recalibrate,
                    },
                ..
            } => (
                Some(MomentEstimator::new(lane_window(*window))),
                min_samples.div_ceil(lanes),
                *recalibrate as u64,
            ),
            _ => (None, 0, 1),
        };

        // Lane l owns requests {l, l+lanes, l+2·lanes, …} below `total`.
        let owned = (total - l).div_ceil(lanes);
        let mut lane = Lane {
            id: l as u32,
            seq: 0,
            st: Arc::clone(&statics),
            slice_lo: l * slice_len,
            slice_len,
            owned,
            arrival_rng,
            place_rng,
            svc_rng,
            estimator,
            bank,
            peers: PeerLoads::new(lanes, peer_width),
            moment_est,
            min_samples,
            recalibrate,
            threshold_cache: ThresholdCache::new(),
            planner,
            live_planner: planner,
            live_threshold: threshold,
            observed: 0,
            recalibrations: 0,
            reqs: Vec::with_capacity(owned),
            response: SampleSet::with_capacity(cfg.requests / lanes + 1),
            bucket_samples: (0..cfg.buckets).map(|_| SampleSet::new()).collect(),
            bucket_reqs: vec![0; cfg.buckets],
            bucket_k2: vec![0; cfg.buckets],
            bucket_hot: vec![0; cfg.buckets],
            bucket_hot_k2: vec![0; cfg.buckets],
            copies_issued: 0,
            completed: 0,
            finished: 0,
            summaries_sent: 0,
            ring: cfg.autoscale.is_some().then(|| ring.clone()),
            ring_prev: None,
            migration_until: f64::NEG_INFINITY,
            live: cfg.servers,
            topo_gen: 0,
            target_live: cfg.servers,
            topo_announced: 0,
            scale_log: Vec::new(),
            cap_integral: 0.0,
            cap_last: 0.0,
            peak_live: cfg.servers,
        };
        if owned > 0 {
            let first_gap = lane
                .arrival_rng
                .exponential(lane.lambda_of(cfg.offered(l)));
            let seq = lane.take_seq();
            seeds.push((
                statics.lane_shard[l] as usize,
                SimTime::from_secs(first_gap),
                l as u32,
                seq,
                SEv::Arrive { req: l as u32 },
            ));
            if lanes > 1 && adaptive {
                let seq = lane.take_seq();
                seeds.push((
                    statics.lane_shard[l] as usize,
                    SimTime::from_secs(statics.summary_period),
                    l as u32,
                    seq,
                    SEv::SummaryTick { lane: l as u16 },
                ));
            }
            if l == 0 && statics.elastic {
                let seq = lane.take_seq();
                seeds.push((
                    statics.lane_shard[0] as usize,
                    SimTime::from_secs(statics.scale_period),
                    0,
                    seq,
                    SEv::ScaleTick,
                ));
            }
        }
        lanes_vec.push(lane);
    }

    // Deal lanes round-robin onto the frontend shards (shard f hosts
    // lanes f, f+F, … — local index lane/F).
    let mut front_lanes: Vec<Vec<Lane>> = (0..frontends).map(|_| Vec::new()).collect();
    for lane in lanes_vec {
        let f = lane.id as usize % frontends;
        front_lanes[f].push(lane);
    }

    let mut nodes = Vec::with_capacity(frontends + groups);
    for lanes_on_shard in front_lanes {
        nodes.push(Node::Front(Box::new(FrontShard {
            lanes: lanes_on_shard,
            lane_count: lanes,
            frontends,
        })));
    }
    for g in 0..groups {
        let n = bounds[g + 1] - bounds[g];
        let (fifo, ps) = match cfg.discipline {
            Discipline::Fifo => (
                (0..n)
                    .map(|_| FifoServer {
                        queue: VecDeque::new(),
                        in_service: None,
                        busy: 0.0,
                    })
                    .collect(),
                Vec::new(),
            ),
            Discipline::Ps => (
                Vec::new(),
                (0..n)
                    .map(|_| PsServer {
                        jobs: Vec::new(),
                        last: 0.0,
                        epoch: 0,
                        busy: 0.0,
                    })
                    .collect(),
            ),
        };
        nodes.push(Node::Group(Box::new(Group {
            lo: bounds[g],
            origin: (lanes + g) as u32,
            seq: 0,
            lanes: lanes as u32,
            lane_shard: lane_shard.clone(),
            discipline: cfg.discipline,
            propagation: cfg.propagation,
            fifo,
            ps,
            cancelled: 0,
        })));
    }

    let mut engine = ShardEngine::new(nodes, SimTime::from_secs(cfg.propagation));
    // Pre-size per-shard queues to their steady-state footprint.
    for f in 0..frontends {
        engine.reserve(f, 4 * 1024);
    }
    for g in 0..groups {
        engine.reserve(
            frontends + g,
            (8 * (bounds[g + 1] - bounds[g])).max(256),
        );
    }
    for (shard, at, origin, seq, ev) in seeds {
        engine.schedule_keyed(shard, at, origin, seq, ev);
    }

    let stats = engine.run(threads);

    let mut lanes_out: Vec<Lane> = Vec::with_capacity(lanes);
    let mut busy = 0.0f64;
    let mut copies_cancelled = 0u64;
    for node in engine.into_states() {
        match node {
            Node::Front(f) => lanes_out.extend(f.lanes),
            Node::Group(g) => {
                busy += g.busy_total();
                copies_cancelled += g.cancelled;
            }
        }
    }
    // Merge in lane order: every fold below is then a fixed-order f64
    // reduction, bit-identical at any placement.
    lanes_out.sort_unstable_by_key(|l| l.id);
    let end_time = stats.end_time.as_secs();

    // Elastic accounting lives on lane 0 (the controller): the fleet
    // trajectory, and the provisioned server-time integral that replaces
    // `servers × end_time` as the utilization denominator.
    let (scale_log, peak_live, final_live, provisioned) = {
        let l0 = &mut lanes_out[0];
        let provisioned = if statics.elastic {
            l0.cap_integral + l0.live as f64 * (end_time - l0.cap_last)
        } else {
            cfg.servers as f64 * end_time
        };
        (
            std::mem::take(&mut l0.scale_log),
            l0.peak_live,
            l0.live,
            provisioned,
        )
    };

    let mut response = SampleSet::with_capacity(cfg.requests);
    let mut completed = 0usize;
    let mut copies_issued = 0u64;
    let mut recalibrations = 0u64;
    let mut summaries = 0u64;
    for lane in &lanes_out {
        response.merge(&lane.response);
        completed += lane.completed;
        copies_issued += lane.copies_issued;
        recalibrations += lane.recalibrations;
        summaries += lane.summaries_sent;
    }

    let span = statics.span;
    let buckets: Vec<RampBucket> = (0..cfg.buckets)
        .map(|b| {
            let width = if span.abs() < f64::EPSILON {
                0.0
            } else {
                span / cfg.buckets as f64
            };
            let load = cfg.load_start + width * (b as f64 + 0.5);
            let mut samples = SampleSet::new();
            let mut requests = 0usize;
            let mut k2_requests = 0usize;
            let mut hot_requests = 0usize;
            let mut hot_k2_requests = 0usize;
            for lane in &lanes_out {
                samples.merge(&lane.bucket_samples[b]);
                requests += lane.bucket_reqs[b];
                k2_requests += lane.bucket_k2[b];
                hot_requests += lane.bucket_hot[b];
                hot_k2_requests += lane.bucket_hot_k2[b];
            }
            let (mean_response, p99) = if samples.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                (samples.mean(), samples.quantile(0.99))
            };
            RampBucket {
                load,
                requests,
                k2_requests,
                mean_response,
                p99,
                peak_utilization: f64::NAN,
                hot_requests,
                hot_k2_requests,
            }
        })
        .collect();
    let curve: Vec<(f64, f64)> = buckets.iter().map(|b| (b.load, b.frac_k2())).collect();

    // Pooled service moments across the lanes (Chan's combine) — at one
    // lane this is exactly the lane's own windowed estimate.
    let moment_pool = lanes_out
        .iter()
        .filter_map(|l| l.moment_est.as_ref().map(|m| m.snapshot()))
        .fold(None::<MomentSnapshot>, |acc, s| {
            Some(acc.map_or(s, |a| a.merge(s)))
        });
    // Report the pooled moments once the lanes together hold as many
    // samples as the single-lane gate demanded (at one lane: the same
    // `len >= min_samples` comparison as before).
    let min_pooled = lanes_out.first().map_or(0, |l| l.min_samples) * lanes;
    let (est_mean_service, est_scv) = match moment_pool {
        Some(snap) if (snap.count as usize) >= min_pooled => (snap.mean, snap.scv()),
        _ => (f64::NAN, f64::NAN),
    };

    let result = ServiceResult {
        response,
        switch_off: switch_off_load(&curve),
        planner_threshold: threshold,
        live_threshold: match &cfg.frontend {
            Frontend::Fixed(_) => f64::NAN,
            // Lane 0's view; lanes recalibrate from the same pooled
            // summaries so the spread across lanes is within the
            // exchange period's drift.
            Frontend::Adaptive { .. } => lanes_out[0].live_threshold,
        },
        est_mean_service,
        est_scv,
        recalibrations,
        buckets,
        copies_issued,
        copies_cancelled,
        mean_utilization: busy / provisioned.max(f64::MIN_POSITIVE),
        completed,
    };
    ShardedOutcome {
        result,
        engine: stats,
        groups,
        frontends,
        summaries,
        scale_log,
        peak_live,
        final_live,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service;
    use simcore::dist::{DynDist, Exponential};

    fn small_ramp() -> ServiceConfig {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.05, 0.55);
        cfg.servers = 16;
        cfg.shards = 2048;
        cfg.requests = 30_000;
        cfg.warmup = 3_000;
        cfg
    }

    /// Collapses an outcome into a bitwise fingerprint of everything the
    /// reports print.
    fn fingerprint(out: &ShardedOutcome) -> Vec<u64> {
        let mut v = vec![
            out.result.response.mean().to_bits(),
            out.result.switch_off.to_bits(),
            out.result.live_threshold.to_bits(),
            out.result.mean_utilization.to_bits(),
            out.result.copies_issued,
            out.result.copies_cancelled,
            out.result.completed as u64,
            out.summaries,
            out.engine.events,
            out.engine.rounds,
        ];
        for b in &out.result.buckets {
            v.push(b.requests as u64);
            v.push(b.k2_requests as u64);
            v.push(b.mean_response.to_bits());
            v.push(b.p99.to_bits());
        }
        v.push(out.peak_live as u64);
        v.push(out.final_live as u64);
        for e in &out.scale_log {
            v.push(e.at.to_bits());
            v.push(e.servers as u64);
            v.push(e.rho.to_bits());
        }
        v
    }

    #[test]
    fn bit_identical_at_every_thread_count() {
        let cfg = small_ramp();
        let reference = fingerprint(&run_sharded(&cfg, 5, 1));
        for threads in [2, 3, 6, 8] {
            assert_eq!(
                reference,
                fingerprint(&run_sharded(&cfg, 5, threads)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn multi_lane_bit_identical_at_any_placement_and_thread_count() {
        // The tentpole invariant: with 4 lanes, every (frontend shards,
        // workers) combination produces the same bits — including the
        // summary-exchange traffic, which lands exactly on horizon
        // boundaries (period == lookahead).
        let mut cfg = small_ramp();
        cfg.frontend_lanes = 4;
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        let reference = fingerprint(&run_sharded_placed(&cfg, 3, 1, 1));
        for frontends in [1usize, 2, 4] {
            for threads in [1usize, 3, 8] {
                assert_eq!(
                    reference,
                    fingerprint(&run_sharded_placed(&cfg, 3, threads, frontends)),
                    "frontends={frontends} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn lanes_exchange_summaries_and_match_single_lane_statistically() {
        // Decomposing the frontend into lanes changes the RNG decomposition
        // but not the physics: the ramp's switch-off and throughput agree
        // with the single-lane run, and summaries actually flow.
        let cfg1 = small_ramp();
        let mut cfg4 = small_ramp();
        cfg4.frontend_lanes = 4;
        let a = run_sharded(&cfg1, 4, 1);
        let b = run_sharded(&cfg4, 4, 1);
        assert_eq!(a.summaries, 0, "a lone lane has no peers");
        assert!(b.summaries > 0, "lanes must exchange load summaries");
        assert_eq!(a.result.completed, b.result.completed);
        assert!(
            (a.result.switch_off - b.result.switch_off).abs() < 0.05,
            "switch-off {} vs {}",
            a.result.switch_off,
            b.result.switch_off
        );
        let (ma, mb) = (a.result.response.mean(), b.result.response.mean());
        assert!((ma - mb).abs() / ma < 0.05, "mean {ma} vs {mb}");
    }

    #[test]
    fn default_placement_knob_caps_the_frontend_shards() {
        let mut cfg = small_ramp();
        cfg.frontend_lanes = 4;
        cfg.requests = 5_000;
        cfg.warmup = 500;
        let reference = fingerprint(&run_sharded_placed(&cfg, 2, 1, 4));
        set_default_frontend_shards(2);
        let capped = run_sharded(&cfg, 2, 1);
        set_default_frontend_shards(0);
        let auto = run_sharded(&cfg, 2, 1);
        assert_eq!(capped.frontends, 2);
        assert_eq!(auto.frontends, 4);
        assert_eq!(fingerprint(&capped), reference);
        assert_eq!(fingerprint(&auto), reference);
    }

    #[test]
    fn group_count_is_part_of_the_config_not_the_schedule() {
        // Different groupings change message routing but not the physical
        // model: switch-off and copy counts stay close (not bitwise —
        // per-shard FIFO tie-breaks shift with the partition).
        let cfg = small_ramp();
        let a = run_sharded(&cfg, 1, 1);
        let b = run_sharded(&cfg, 8, 1);
        assert_eq!(a.result.completed, b.result.completed);
        assert_eq!(a.result.copies_issued, b.result.copies_issued);
        assert!((a.result.switch_off - b.result.switch_off).abs() < 0.05);
    }

    #[test]
    fn matches_sequential_service_statistically() {
        // Same config through both engines: distributions must agree even
        // though event interleavings (and so exact samples) differ.
        let cfg = small_ramp();
        let seq = service::run(&cfg);
        let sh = run_sharded(&cfg, 4, 1).result;
        assert_eq!(seq.completed, sh.completed);
        let (a, b) = (seq.response.mean(), sh.response.mean());
        assert!((a - b).abs() / a < 0.05, "mean {a} vs {b}");
        assert!(
            (seq.switch_off - sh.switch_off).abs() < 0.05,
            "switch-off {} vs {}",
            seq.switch_off,
            sh.switch_off
        );
        assert!((seq.mean_utilization - sh.mean_utilization).abs() < 0.03);
    }

    #[test]
    fn cancellation_works_across_shards() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.2, 0.2);
        cfg.servers = 12;
        cfg.frontend = Frontend::Fixed(Policy::Always { copies: 2 });
        cfg.cancellation = true;
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        cfg.buckets = 1;
        let out = run_sharded(&cfg, 4, 1);
        assert_eq!(out.result.completed, cfg.requests);
        assert!(out.result.copies_cancelled > 0, "no copies cancelled");
        let seq = service::run(&cfg);
        let rel = (out.result.copies_cancelled as f64 - seq.copies_cancelled as f64).abs()
            / seq.copies_cancelled as f64;
        assert!(rel < 0.05, "cancelled {} vs {}", out.result.copies_cancelled, seq.copies_cancelled);
    }

    #[test]
    fn ps_discipline_runs_sharded() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.3, 0.3);
        cfg.discipline = Discipline::Ps;
        cfg.frontend = Frontend::Fixed(Policy::Single);
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        cfg.buckets = 1;
        let out = run_sharded(&cfg, 3, 1);
        assert_eq!(out.result.completed, cfg.requests);
        let expect = 1.0e-3 / (1.0 - 0.3) + 2.0 * cfg.propagation;
        let got = out.result.response.mean();
        assert!((got - expect).abs() / expect < 0.10, "PS mean {got} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "saturates")]
    fn rejects_saturating_config_like_sequential() {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.6, 0.6);
        cfg.frontend = Frontend::Fixed(Policy::Always { copies: 2 });
        let _ = run_sharded(&cfg, 2, 1);
    }

    #[test]
    #[should_panic(expected = "single frontend lane")]
    fn rejects_popularity_with_multiple_lanes() {
        let mut cfg = small_ramp();
        cfg.frontend_lanes = 4;
        cfg.popularity = Some(service::zipf_popularity(cfg.shards, 0.9));
        let _ = run_sharded(&cfg, 2, 1);
    }

    /// A diurnal ramp on an 8-server baseline that must stretch to 16
    /// and come back: peak cluster load 0.9 relative to the baseline is
    /// 0.45 per server at the full fleet (inside the 0.30–0.50
    /// hysteresis band) but 0.60 at 12 servers (above it), so the
    /// controller cannot stop short of the ceiling.
    fn elastic_ramp() -> ServiceConfig {
        let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
        let mut cfg = ServiceConfig::ramp(service, 0.05, 0.6);
        cfg.servers = 8;
        cfg.shards = 2048;
        cfg.requests = 30_000;
        cfg.warmup = 3_000;
        cfg.autoscale = Some(service::Autoscale {
            max_servers: 16,
            step: 4,
            scale_out: 0.50,
            scale_in: 0.30,
            period: 0.05,
            migration: 0.01,
            peak_load: 0.9,
        });
        cfg
    }

    #[test]
    fn autoscaler_tracks_the_diurnal_curve() {
        let cfg = elastic_ramp();
        let out = run_sharded(&cfg, 4, 1);
        assert_eq!(out.result.completed, cfg.requests);
        assert_eq!(out.peak_live, 16, "fleet never reached the ceiling");
        assert_eq!(out.final_live, 8, "fleet did not return to the floor");
        assert!(
            out.scale_log.len() >= 4,
            "64→256→64-style trajectory needs at least 4 steps, got {:?}",
            out.scale_log
        );
        // The trajectory is up-then-down: monotone to the peak, monotone
        // back (hysteresis leaves no room for mid-course flapping on a
        // single-peak curve).
        let peak_at = out
            .scale_log
            .iter()
            .position(|e| e.servers == 16)
            .expect("ceiling decision logged");
        for w in out.scale_log[..=peak_at].windows(2) {
            assert!(w[0].servers < w[1].servers, "flap on the way up: {:?}", out.scale_log);
        }
        for w in out.scale_log[peak_at..].windows(2) {
            assert!(w[0].servers > w[1].servers, "flap on the way down: {:?}", out.scale_log);
        }
        // The switch-off (per-live-server axis) still tracks the offline
        // threshold through all the resizing.
        assert!(
            (out.result.switch_off - out.result.planner_threshold).abs() < 0.1,
            "switch-off {} vs threshold {}",
            out.result.switch_off,
            out.result.planner_threshold
        );
    }

    #[test]
    fn elastic_run_is_bit_identical_at_any_placement_and_thread_count() {
        // The workspace invariant extends through topology churn: the
        // controller, the topology broadcasts, the ring mutations, and
        // the dual-dispatch window are all keyed events, so the full
        // elastic trajectory is reproduced bit-for-bit at every
        // (frontend shards, workers) combination.
        let mut cfg = elastic_ramp();
        cfg.frontend_lanes = 4;
        cfg.requests = 20_000;
        cfg.warmup = 2_000;
        let reference = fingerprint(&run_sharded_placed(&cfg, 3, 1, 1));
        assert!(reference.len() > 40, "scale log missing from fingerprint");
        for (frontends, threads) in [(1usize, 3usize), (2, 8), (4, 1), (4, 8)] {
            assert_eq!(
                reference,
                fingerprint(&run_sharded_placed(&cfg, 3, threads, frontends)),
                "frontends={frontends} threads={threads}"
            );
        }
    }

    #[test]
    fn elastic_per_server_bank_survives_churn() {
        // PerServer load model under topology churn: the bank grows on
        // scale-out, departed indices reset on scale-in, and the peer
        // boards tolerate stale-width summaries — the run completes with
        // the fleet trajectory intact.
        let mut cfg = elastic_ramp();
        cfg.frontend = Frontend::Adaptive {
            window: 2048,
            moments: MomentSource::Clairvoyant,
            load_model: LoadModel::PerServer,
        };
        cfg.frontend_lanes = 2;
        let out = run_sharded(&cfg, 4, 2);
        assert_eq!(out.result.completed, cfg.requests);
        assert_eq!(out.peak_live, 16);
        assert_eq!(out.final_live, 8);
        assert!(out.summaries > 0);
    }

    #[test]
    #[should_panic(expected = "does not autoscale")]
    fn sequential_runner_rejects_autoscale() {
        let _ = service::run(&elastic_ramp());
    }

    #[test]
    #[should_panic(expected = "saturates even the full fleet")]
    fn rejects_unservable_diurnal_peak() {
        let mut cfg = elastic_ramp();
        cfg.autoscale = Some(service::Autoscale {
            peak_load: 1.5,
            ..cfg.autoscale.unwrap()
        });
        let _ = run_sharded(&cfg, 4, 1);
    }
}
