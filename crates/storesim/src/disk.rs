//! Service-time models for the storage media.
//!
//! The §2.2 testbed's latencies decompose into: position the disk head
//! (seek + rotational latency — the dominant cost for small files), stream
//! the bytes off the platter, or serve straight from the page cache at
//! RAM/CPU speed. [`DiskProfile`] captures those constants; the defaults
//! approximate the paper's single 10k-RPM disk per server, and every
//! experiment variation (file size, cache ratio) reuses the same profile.

use simcore::dist::{Distribution, Uniform};
use simcore::rng::Rng;

/// Mechanical + cache service-time constants for one storage server.
#[derive(Clone, Debug)]
pub struct DiskProfile {
    /// Head positioning time (seek + rotational latency) per disk read.
    pub position: Uniform,
    /// Sequential transfer rate off the platter, bytes/second.
    pub disk_bytes_per_sec: f64,
    /// Cache-hit service path (kernel + copy) fixed cost, seconds.
    pub cache_hit_overhead: f64,
    /// Memory bandwidth for cache hits, bytes/second.
    pub mem_bytes_per_sec: f64,
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile {
            // 10k RPM: ~3 ms mean rotational + ~4-10 ms seek. A uniform
            // 3..13 ms spread (mean 8 ms) reproduces the paper's ~8 ms
            // low-load mean for 4 KB reads with a 0.1 cache ratio.
            position: Uniform::new(3.0e-3, 13.0e-3),
            // Commodity 2013 SATA streaming rate.
            disk_bytes_per_sec: 100.0e6,
            // Kernel + Apache + copy cost on a hit.
            cache_hit_overhead: 150.0e-6,
            mem_bytes_per_sec: 2.0e9,
        }
    }
}

impl DiskProfile {
    /// Samples the disk-read service time for a file of `bytes`.
    pub fn disk_read(&self, bytes: u64, rng: &mut Rng) -> f64 {
        self.position.sample(rng) + bytes as f64 / self.disk_bytes_per_sec
    }

    /// Cache-hit service time for a file of `bytes` (deterministic).
    pub fn cache_read(&self, bytes: u64) -> f64 {
        self.cache_hit_overhead + bytes as f64 / self.mem_bytes_per_sec
    }

    /// Expected disk-read time for a file of `bytes` — used to convert a
    /// target utilization into an arrival rate.
    pub fn mean_disk_read(&self, bytes: u64) -> f64 {
        self.position.mean() + bytes as f64 / self.disk_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_files_are_seek_dominated() {
        let p = DiskProfile::default();
        let mut rng = Rng::seed_from(1);
        let t = p.disk_read(4096, &mut rng);
        // 4 KB transfer adds only ~41 us to a multi-ms positioning time.
        assert!(t > 3.0e-3 && t < 14.0e-3, "t = {t}");
        let transfer_part = 4096.0 / p.disk_bytes_per_sec;
        assert!(transfer_part < 0.02 * p.mean_disk_read(4096));
    }

    #[test]
    fn large_files_pay_transfer() {
        let p = DiskProfile::default();
        // 400 KB at 100 MB/s = 4 ms of pure transfer.
        let extra = p.mean_disk_read(400 * 1024) - p.mean_disk_read(0);
        assert!((extra - 4.096e-3).abs() < 1e-4, "extra = {extra}");
    }

    #[test]
    fn cache_hits_are_orders_faster() {
        let p = DiskProfile::default();
        assert!(p.cache_read(4096) < 0.05 * p.mean_disk_read(4096));
    }

    #[test]
    fn mean_matches_samples() {
        let p = DiskProfile::default();
        let mut rng = Rng::seed_from(2);
        let n = 100_000;
        let avg: f64 = (0..n).map(|_| p.disk_read(4096, &mut rng)).sum::<f64>() / n as f64;
        assert!((avg - p.mean_disk_read(4096)).abs() < 1e-4);
    }
}
