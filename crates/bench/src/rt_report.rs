//! The `svc-rt` smoke experiment: the wall-clock service runtime
//! (`storesim::rt`) driven end-to-end over a scripted workload.
//!
//! Like `heavytail` and the ablations, `svc-rt` is intentionally **not**
//! in [`crate::ALL_IDS`]: its report contains measured wall-clock
//! latencies, which are real and therefore not byte-identical across
//! machines or runs. The *decision trace* is deterministic, and this
//! experiment asserts it in-run: the same script is served at 1, 4, and
//! 8 worker threads and every trace fingerprint must match before the
//! report is emitted.

use crate::util::{num, Report};
use crate::Effort;
use storesim::rt::{run, RtConfig};

/// Runs the scripted wall-clock service at several worker counts,
/// asserts the decision traces are identical, and reports the
/// deterministic trace statistics followed by the (non-deterministic)
/// wall-clock numbers.
///
/// # Panics
/// Panics if any worker count produces a different decision trace — that
/// would mean wall-clock state leaked into the planner inputs.
pub fn svc_rt(effort: Effort) -> String {
    let requests = effort.scale(100_000, 20_000);
    let worker_counts = [1usize, 4, 8];
    let runs: Vec<_> = worker_counts
        .iter()
        .map(|&w| run(&RtConfig::smoke(requests, w)))
        .collect();
    let base = &runs[0];
    for out in &runs[1..] {
        assert_eq!(
            out.trace_fingerprint, base.trace_fingerprint,
            "decision trace diverged across worker counts — wall-clock \
             state leaked into the planner inputs"
        );
    }

    let mut r = Report::new(
        "svc-rt: wall-clock service runtime, scripted smoke run",
        "ROADMAP wall-clock runtime (decision-trace determinism + real-thread cancellation)",
    );
    r.note("deterministic section (identical at any worker count, asserted in-run):");
    r.note(&format!(
        "trace fingerprint: {:016x} (workers {:?} all agree)",
        base.trace_fingerprint, worker_counts
    ));
    r.note(&format!(
        "requests: {} ({} replicated), offline threshold: {}",
        base.requests,
        base.decisions_k2,
        num(base.offline_threshold)
    ));
    match base.switch_off_load {
        Some(load) => r.note(&format!("planner switch-off load: {}", num(load))),
        None => r.note("planner switch-off load: none (never switched off)"),
    }
    r.header(&["offered_load", "k2_fraction"]);
    for &(load, frac) in &base.k2_fraction_by_bucket {
        r.row(&[num(load), num(frac)]);
    }
    r.blank();
    r.note("wall-clock section (real latencies — NOT byte-stable, excluded");
    r.note("from CI byte-diff trees; svc-rt is deliberately outside `repro all`):");
    r.header(&[
        "workers",
        "wall_s",
        "mean_latency_us",
        "p99_latency_us",
        "responses",
        "late",
        "purged",
        "aborted",
    ]);
    for out in &runs {
        r.row(&[
            out.workers.to_string(),
            format!("{:.3}", out.wall_secs),
            format!("{:.2}", out.mean_latency_s * 1e6),
            format!("{:.2}", out.p99_latency_s * 1e6),
            out.responses.to_string(),
            out.late.to_string(),
            out.purged.to_string(),
            out.aborted.to_string(),
        ]);
    }
    r.note("every dispatched copy is accounted: responses + late + purged + aborted");
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svc_rt_quick_renders_and_asserts_determinism() {
        let out = svc_rt(Effort::Quick);
        assert!(out.contains("trace fingerprint"));
        assert!(out.contains("planner switch-off load"));
    }
}
