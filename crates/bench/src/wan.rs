//! §3 reproductions: the TCP handshake table and Figures 15–17.

use crate::util::{ms, num, pct, Report};
use crate::Effort;
use simcore::runner::Runner;
use wansim::costbench::{incremental_rates, savings_ms_per_kb, BREAK_EVEN_MS_PER_KB};
use wansim::dns::{reduction_table, DnsExperiment, DnsPopulation, BYTES_PER_COPY};
use wansim::handshake::HandshakeModel;

/// §3.1: the handshake duplication numbers.
pub fn tcp_handshake(effort: Effort) -> String {
    let mut r = Report::new(
        "tcp: handshake completion under packet duplication",
        "Section 3.1",
    );
    let n = effort.scale(2_000_000, 200_000);
    let m = HandshakeModel::default();
    // The paired single/duplicated evaluations run in parallel.
    let (single, dup) = Runner::global().pair(
        || m.evaluate(false, n, 0x7C9),
        || m.evaluate(true, n, 0x7C9),
    );
    r.header(&["metric", "single", "duplicated"]);
    r.row(&[
        "expected completion (ms)".into(),
        ms(single.mean),
        ms(dup.mean),
    ]);
    let mut s1 = single.samples;
    let mut s2 = dup.samples;
    for (label, q) in [("p99 (ms)", 0.99), ("p99.5 (ms)", 0.995), ("p99.9 (ms)", 0.999)] {
        r.row(&[label.into(), ms(s1.quantile(q)), ms(s2.quantile(q))]);
    }
    r.row(&[
        "P(>= 1 timeout)".into(),
        num(m.timeout_cliff_probability(false)),
        num(m.timeout_cliff_probability(true)),
    ]);
    let savings = m.expected_savings();
    r.note(&format!(
        "mean savings {} ms  (paper: ~25 ms at RTT=100 ms)",
        ms(savings)
    ));
    r.note(&format!(
        "savings per KB: {:.1} ms/KB vs {} ms/KB break-even (paper: >= 170)",
        savings_ms_per_kb(savings * 1e3, m.extra_bytes()),
        BREAK_EVEN_MS_PER_KB
    ));
    r.note(&format!(
        "p99.5 improvement {} ms (the paper's '>= 880 ms in the tail' lives in this band: \
         duplication moves the 3 s timeout cliff from the ~98.6th to the ~99.8th percentile)",
        ms(s1.quantile(0.995) - s2.quantile(0.995))
    ));
    r.finish()
}

fn experiment(effort: Effort) -> DnsExperiment {
    let probes = effort.scale(20_000, 3_000);
    DnsExperiment::rank(DnsPopulation::paper_like(15), probes, 0xD45)
}

/// Fig 15: DNS response-time distribution for 1/2/5/10 servers.
pub fn fig15(effort: Effort) -> String {
    let mut r = Report::new("fig15: DNS response time distribution", "Figure 15");
    let exp = experiment(effort);
    let trials = effort.scale(1_000_000, 100_000);
    let mut sets = exp.run_all_k(trials, 0x515);
    for k in [1usize, 2, 5, 10] {
        r.ccdf(&format!("{k} server(s)"), &sets[k - 1].ccdf(60));
    }
    let mut one = sets[0].clone();
    let mut ten = sets[9].clone();
    r.note(&format!(
        "fraction later than 500 ms: 1 server {:.5}, 10 servers {:.5} ({}x)",
        one.tail_fraction(0.5),
        ten.tail_fraction(0.5),
        num(one.tail_fraction(0.5) / ten.tail_fraction(0.5).max(1e-9)),
    ));
    r.note(&format!(
        "fraction later than 1.5 s: 1 server {:.6}, 10 servers {:.6}",
        one.tail_fraction(1.5),
        ten.tail_fraction(1.5),
    ));
    r.note("paper: 6.5x at 500 ms, 50x at 1.5 s");
    r.finish()
}

/// Fig 16: % reduction vs number of copies, four metrics.
pub fn fig16(effort: Effort) -> String {
    let mut r = Report::new(
        "fig16: reduction in DNS response time vs copies",
        "Figure 16",
    );
    let exp = experiment(effort);
    let trials = effort.scale(500_000, 60_000);
    r.header(&["copies", "mean_pct", "median_pct", "p95_pct", "p99_pct"]);
    for row in reduction_table(&exp, trials, 0x516) {
        r.row(&[
            row.k.to_string(),
            pct(row.mean_pct),
            pct(row.median_pct),
            pct(row.p95_pct),
            pct(row.p99_pct),
        ]);
    }
    r.note("paper: 50-62% reduction across metrics at 10 servers");
    r.finish()
}

/// Fig 17: incremental ms/KB value of each extra server vs the 16 ms/KB
/// break-even.
pub fn fig17(effort: Effort) -> String {
    let mut r = Report::new(
        "fig17: incremental latency savings per KB of extra traffic",
        "Figure 17",
    );
    let exp = experiment(effort);
    let trials = effort.scale(1_000_000, 120_000);
    let mut sets = exp.run_all_k(trials, 0x517);
    let means: Vec<f64> = sets.iter().map(|s| s.mean() * 1e3).collect();
    let p99s: Vec<f64> = sets.iter_mut().map(|s| s.quantile(0.99) * 1e3).collect();
    let mean_rates = incremental_rates(&means, BYTES_PER_COPY);
    let p99_rates = incremental_rates(&p99s, BYTES_PER_COPY);
    r.header(&["servers", "incremental_mean_ms_per_kb", "incremental_p99_ms_per_kb"]);
    for (i, (m, p)) in mean_rates.iter().zip(&p99_rates).enumerate() {
        r.row(&[(i + 2).to_string(), num(*m), num(*p)]);
    }
    r.note(&format!("break-even: {BREAK_EVEN_MS_PER_KB} ms/KB"));
    let total_mean_savings = means[0] - means[9];
    r.note(&format!(
        "absolute mean savings with 10 copies: {:.1} ms over {} extra bytes = {:.1} ms/KB \
         (paper: ~23 ms/KB, still above break-even)",
        total_mean_savings,
        9.0 * BYTES_PER_COPY,
        savings_ms_per_kb(total_mean_savings, 9.0 * BYTES_PER_COPY)
    ));
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_table_contains_break_even_comparison() {
        let out = tcp_handshake(Effort::Quick);
        assert!(out.contains("ms/KB"));
        assert!(out.contains("break-even"));
    }

    #[test]
    fn fig16_has_ten_rows() {
        let out = fig16(Effort::Quick);
        let rows = out
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count();
        assert_eq!(rows, 10);
    }
}
