//! # repro-bench — regenerate every table and figure of the paper.
//!
//! Each public `fig*`/`tcp`/`thm1` function runs the corresponding
//! experiment end-to-end and returns the series as printable text (the same
//! rows the paper plots). The `repro` binary dispatches on experiment id;
//! `EXPERIMENTS.md` at the workspace root records paper-vs-measured values.
//!
//! Two effort levels: `Effort::Quick` (seconds per figure — used in CI and
//! the workspace integration tests) and `Effort::Full` (figure quality,
//! minutes for the packet-level sweeps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod network;
pub mod queueing;
pub mod rt_report;
pub mod store;
pub mod util;
pub mod wan;

pub use ablations::ABLATION_IDS;

/// How much compute to spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// CI-sized: every figure in seconds, shapes preserved, tails shallow.
    Quick,
    /// Figure-sized: the settings EXPERIMENTS.md records.
    Full,
}

impl Effort {
    /// Scales a "full" count down in quick mode.
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        match self {
            Effort::Full => full,
            Effort::Quick => quick,
        }
    }
}

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "thm1",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig-service",
    "fig-service-est",
    "fig-service-tail",
    "fig-service-skew",
    "fig-service-skew-aware",
    "fig-service-ps-est",
    "fig-service-scale",
    "fig-service-frontier",
    "fig-service-elastic",
    "fig14a",
    "fig14b",
    "fig14c",
    "tcp",
    "fig15",
    "fig16",
    "fig17",
];

/// Runs one experiment by id, returning its printable report.
///
/// # Panics
/// Panics on an unknown id (the binary validates first).
pub fn run_experiment(id: &str, effort: Effort) -> String {
    match id {
        "thm1" => queueing::thm1(effort),
        "fig1a" => queueing::fig1a(effort),
        "fig1b" => queueing::fig1b(effort),
        "fig1c" => queueing::fig1c(effort),
        "fig2a" => queueing::fig2a(effort),
        "fig2b" => queueing::fig2b(effort),
        "fig2c" => queueing::fig2c(effort),
        "fig3" => queueing::fig3(effort),
        "fig4" => queueing::fig4(effort),
        "fig5" => store::disk_figure(store::DiskFigure::Fig5, effort),
        "fig6" => store::disk_figure(store::DiskFigure::Fig6, effort),
        "fig7" => store::disk_figure(store::DiskFigure::Fig7, effort),
        "fig8" => store::disk_figure(store::DiskFigure::Fig8, effort),
        "fig9" => store::disk_figure(store::DiskFigure::Fig9, effort),
        "fig10" => store::disk_figure(store::DiskFigure::Fig10, effort),
        "fig11" => store::disk_figure(store::DiskFigure::Fig11, effort),
        "fig12" => store::fig12(effort),
        "fig13" => store::fig13(effort),
        "fig-service" => store::fig_service(effort),
        "fig-service-est" => store::fig_service_est(effort),
        "fig-service-tail" => store::fig_service_tail(effort),
        "fig-service-skew" => store::fig_service_skew(effort),
        "fig-service-skew-aware" => store::fig_service_skew_aware(effort),
        "fig-service-ps-est" => store::fig_service_ps_est(effort),
        "fig-service-scale" => store::fig_service_scale(effort),
        "fig-service-frontier" => store::fig_service_frontier(effort),
        "fig-service-elastic" => store::fig_service_elastic(effort),
        "fig14a" => network::fig14a(effort),
        "fig14b" => network::fig14b(effort),
        "fig14c" => network::fig14c(effort),
        "tcp" => wan::tcp_handshake(effort),
        "fig15" => wan::fig15(effort),
        "fig16" => wan::fig16(effort),
        "fig17" => wan::fig17(effort),
        "heavytail" => queueing::heavy_tail_table(),
        "svc-rt" => rt_report::svc_rt(effort),
        id if ABLATION_IDS.contains(&id) => ablations::run_ablation(id, effort),
        other => panic!("unknown experiment id: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_dispatch() {
        // Smoke: quick mode of the cheapest experiments end-to-end; the
        // expensive ones are covered by the workspace integration tests.
        for id in ["thm1", "tcp"] {
            let out = run_experiment(id, Effort::Quick);
            assert!(!out.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let _ = run_experiment("fig99", Effort::Quick);
    }
}
