//! §2.4 reproductions: Figure 14.

use crate::util::{ms, num, pct, Report};
use crate::Effort;
use netsim::experiments::{fig14a as sweep_a, fig14b as sweep_b, fig14c as sweep_c};

/// Fig 14(a): % improvement in median small-flow FCT vs load, three
/// bandwidth/delay combos.
pub fn fig14a(effort: Effort) -> String {
    let mut r = Report::new(
        "fig14a: median FCT improvement for flows < 10 KB",
        "Figure 14(a)",
    );
    let loads: Vec<f64> = match effort {
        Effort::Full => (1..=8).map(|i| i as f64 * 0.1).collect(),
        Effort::Quick => vec![0.2, 0.4, 0.6],
    };
    let flows = effort.scale(25_000, 4_000);
    r.header(&[
        "combo",
        "load",
        "median_norepl_ms",
        "median_repl_ms",
        "improvement_pct",
    ]);
    for row in sweep_a(&loads, flows, 0x14A) {
        r.row(&[
            row.combo.into(),
            num(row.load),
            ms(row.median_baseline),
            ms(row.median_replicated),
            pct(row.improvement_pct),
        ]);
    }
    r.note("expected shape: rises to a peak near 40% load, falls at the edges;");
    r.note("gain shrinks as the delay-bandwidth product grows");
    r.finish()
}

/// Fig 14(b): 99th-percentile FCT vs load — the timeout-avoidance spike.
pub fn fig14b(effort: Effort) -> String {
    let mut r = Report::new(
        "fig14b: 99th percentile FCT for flows < 10 KB (5 Gbps, 2 us)",
        "Figure 14(b)",
    );
    let loads: Vec<f64> = match effort {
        Effort::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85],
        Effort::Quick => vec![0.2, 0.5, 0.75],
    };
    let flows = effort.scale(60_000, 6_000);
    r.header(&[
        "load",
        "p99_norepl_ms",
        "p99_repl_ms",
        "timeouts_norepl",
        "timeouts_repl",
    ]);
    for row in sweep_b(&loads, flows, 0x14B) {
        r.row(&[
            num(row.load),
            ms(row.p99_baseline),
            ms(row.p99_replicated),
            row.timeouts.0.to_string(),
            row.timeouts.1.to_string(),
        ]);
    }
    r.note("watch for the unreplicated p99 crossing the 10 ms minRTO at high load");
    r.finish()
}

/// Fig 14(c): FCT CCDF at 40 % load.
pub fn fig14c(effort: Effort) -> String {
    let mut r = Report::new(
        "fig14c: FCT distribution for flows < 10 KB at load 0.4",
        "Figure 14(c)",
    );
    let flows = effort.scale(60_000, 6_000);
    let (base, repl) = sweep_c(0.4, flows, 60, 0x14C);
    r.ccdf("no replication", &base);
    r.ccdf("replication", &repl);
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14c_quick_renders_two_series() {
        let out = fig14c(Effort::Quick);
        assert_eq!(out.matches("# series:").count(), 2);
    }
}
