//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro <id>... [--quick] [--threads N] [--out DIR]    run specific experiments
//! repro all     [--quick] [--threads N] [--out DIR]    run everything, paper order
//! repro list                                           show available ids
//! repro list --figures                                 only the `all` set (CI coverage guard)
//! ```
//!
//! Output goes to stdout; with `--out DIR` each experiment is also written
//! to `DIR/<id>.txt`. `--threads N` sets the parallelism of every sweep
//! (default: the machine's available parallelism, or the `LLR_THREADS`
//! environment variable); results are bit-identical at any thread count.
//! `--frontend-shards N` caps how many engine shards the sharded service
//! experiments spread their frontend lanes over — like `--threads` a pure
//! execution knob, and CI byte-diffs it against the serial tree to prove
//! placement never leaks into the output.

#![forbid(unsafe_code)]

use repro_bench::{run_experiment, Effort, ABLATION_IDS, ALL_IDS};
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }

    let mut effort = Effort::Full;
    let mut out_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut figures_only = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--figures" => figures_only = true,
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => simcore::runner::set_global_threads(n),
                _ => {
                    eprintln!("--threads requires a positive integer");
                    std::process::exit(2);
                }
            },
            "--frontend-shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => storesim::sharded::set_default_frontend_shards(n),
                _ => {
                    eprintln!("--frontend-shards requires a positive integer");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir),
                None => {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            },
            "list" => list = true,
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            "ablations" => ids.extend(
                ABLATION_IDS
                    .iter()
                    .chain(&["heavytail"])
                    .map(|s| s.to_string()),
            ),
            "-h" | "--help" => {
                usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    if list {
        // `--figures` restricts to the `repro all` set — the ids CI's
        // serial-vs-parallel byte-diff must cover, machine-readably.
        if figures_only {
            for id in ALL_IDS {
                println!("{id}");
            }
        } else {
            for id in ALL_IDS
                .iter()
                .chain(ABLATION_IDS)
                .chain(&["heavytail", "svc-rt"])
            {
                println!("{id}");
            }
        }
        return;
    }
    if figures_only {
        eprintln!("--figures only applies to `repro list`");
        std::process::exit(2);
    }

    for id in &ids {
        let known = ALL_IDS.contains(&id.as_str())
            || ABLATION_IDS.contains(&id.as_str())
            || id == "heavytail"
            || id == "svc-rt";
        if !known {
            eprintln!("unknown experiment id '{id}'; try `repro list`");
            std::process::exit(2);
        }
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    let threads = simcore::runner::global_threads();
    let t_all = Instant::now();
    for id in &ids {
        let t0 = Instant::now();
        let report = run_experiment(id, effort);
        eprintln!("[{id}] done in {:.1?}", t0.elapsed());
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{id}.txt");
            let mut f = std::fs::File::create(&path).expect("create output file");
            f.write_all(report.as_bytes()).expect("write output file");
        }
    }
    if ids.len() > 1 {
        eprintln!(
            "[total] {} experiments in {:.1?} on {} thread(s)",
            ids.len(),
            t_all.elapsed(),
            threads
        );
    }
}

fn usage() {
    eprintln!(
        "usage: repro <id>...|all|ablations|list [--figures] [--quick] [--threads N] \
         [--frontend-shards N] [--out DIR]"
    );
    eprintln!("figures:   {}", ALL_IDS.join(" "));
    eprintln!("ablations: {} heavytail", ABLATION_IDS.join(" "));
    eprintln!("wall-clock: svc-rt (latencies are real; excluded from `all` and byte-diffs)");
}
