//! §2.2/§2.3 reproductions: Figures 5–13.

use crate::util::{ms, num, Report};
use crate::Effort;
use redundancy::policy::Policy;
use simcore::dist::{Distribution, DynDist, Exponential};
use simcore::runner::{global_threads, Runner};
use std::sync::Arc;
use std::time::Duration;
use storesim::experiments::{
    ccdf_at_load, run_load_sweep, run_service_ramp, ExperimentSpec, ServiceRampOutcome,
};
use storesim::memcached::{run as run_memcached, MemcachedConfig, MemcachedProfile};
use storesim::service::{
    bounded_pareto_with_mean, stored_load_shares, weibull_with_mean, zipf_popularity, Autoscale,
    DemandReport, Discipline, Frontend, LoadModel, MomentSource, ServiceConfig,
};
use storesim::sharded::{run_sharded, run_sharded_placed};

/// Which §2.2 figure.
#[derive(Clone, Copy, Debug)]
pub enum DiskFigure {
    /// Base configuration.
    Fig5,
    /// 0.04 KB files.
    Fig6,
    /// Pareto file sizes.
    Fig7,
    /// cache:disk = 0.01.
    Fig8,
    /// EC2-like interference.
    Fig9,
    /// 400 KB files.
    Fig10,
    /// cache:disk = 2 (all in RAM).
    Fig11,
}

impl DiskFigure {
    fn spec(&self) -> ExperimentSpec {
        match self {
            DiskFigure::Fig5 => ExperimentSpec::fig5_base(),
            DiskFigure::Fig6 => ExperimentSpec::fig6_tiny_files(),
            DiskFigure::Fig7 => ExperimentSpec::fig7_pareto_files(),
            DiskFigure::Fig8 => ExperimentSpec::fig8_cold_cache(),
            DiskFigure::Fig9 => ExperimentSpec::fig9_ec2(),
            DiskFigure::Fig10 => ExperimentSpec::fig10_large_files(),
            DiskFigure::Fig11 => ExperimentSpec::fig11_all_in_ram(),
        }
    }

    fn paper_ref(&self) -> &'static str {
        match self {
            DiskFigure::Fig5 => "Figure 5 (base: 4 KB files, cache:disk 0.1)",
            DiskFigure::Fig6 => "Figure 6 (0.04 KB files)",
            DiskFigure::Fig7 => "Figure 7 (Pareto file sizes)",
            DiskFigure::Fig8 => "Figure 8 (cache:disk 0.01)",
            DiskFigure::Fig9 => "Figure 9 (EC2)",
            DiskFigure::Fig10 => "Figure 10 (400 KB files)",
            DiskFigure::Fig11 => "Figure 11 (cache:disk 2)",
        }
    }
}

/// Runs one §2.2 figure: mean + 99.9th vs load, and the CCDF at 20 % load.
pub fn disk_figure(fig: DiskFigure, effort: Effort) -> String {
    let spec = fig.spec();
    let mut r = Report::new(
        &format!("{}: disk-backed store, 1 vs 2 copies", spec.name),
        fig.paper_ref(),
    );
    let requests = effort.scale(150_000, 25_000);
    let loads: Vec<f64> = match effort {
        Effort::Full => (1..=18).map(|i| i as f64 * 0.05).collect(),
        Effort::Quick => vec![0.1, 0.2, 0.3, 0.4, 0.6],
    };
    r.header(&[
        "load",
        "mean_1copy_ms",
        "mean_2copies_ms",
        "p999_1copy_ms",
        "p999_2copies_ms",
    ]);
    for row in run_load_sweep(&spec, &loads, requests, 0xD15C) {
        r.row(&[
            num(row.load),
            ms(row.mean_single),
            ms(row.mean_double),
            ms(row.p999_single),
            ms(row.p999_double),
        ]);
    }
    r.blank();
    let ccdf_requests = effort.scale(600_000, 50_000);
    let (single, double) = ccdf_at_load(&spec, 0.2, ccdf_requests, 60, 0xCCDF);
    r.ccdf("load 0.2, 1 copy", &single);
    r.ccdf("load 0.2, 2 copies", &double);
    r.finish()
}

/// Fig 12: memcached response times vs load, 1 vs 2 copies.
pub fn fig12(effort: Effort) -> String {
    let mut r = Report::new(
        "fig12-memcached: replication loses at every load",
        "Figure 12",
    );
    let requests = effort.scale(300_000, 40_000);
    let loads: Vec<f64> = match effort {
        Effort::Full => (1..=9).map(|i| i as f64 * 0.05).collect(),
        Effort::Quick => vec![0.1, 0.2, 0.4],
    };
    r.header(&[
        "load",
        "mean_1copy_ms",
        "mean_2copies_ms",
        "p999_1copy_ms",
        "p999_2copies_ms",
    ]);
    // One task per (load, copies) pair, in parallel on the global runner.
    // The right panel's CCDFs are taken at 20 % load, which both effort
    // levels already sweep — reuse those runs, only simulating a separate
    // pair if a future load grid drops 0.2.
    let ccdf_idx = loads.iter().position(|&l| (l - 0.2).abs() < 1e-9);
    let extra = if ccdf_idx.is_some() { 0 } else { 2 };
    let mut results = Runner::global().run(loads.len() * 2 + extra, |task| {
        let (load, copies) = if task < loads.len() * 2 {
            (loads[task / 2], 1 + task % 2)
        } else {
            (0.2, 1 + (task - loads.len() * 2))
        };
        let mut c = MemcachedConfig::paper_like(copies, load);
        c.requests = requests;
        run_memcached(&c)
    });
    let ccdf_base = match ccdf_idx {
        Some(i) => 2 * i,
        None => loads.len() * 2,
    };
    for (i, &load) in loads.iter().enumerate() {
        let one_mean = results[2 * i].response.mean();
        let one_p999 = results[2 * i].response.quantile(0.999);
        let two_mean = results[2 * i + 1].response.mean();
        let two_p999 = results[2 * i + 1].response.quantile(0.999);
        r.row(&[
            num(load),
            ms(one_mean),
            ms(two_mean),
            ms(one_p999),
            ms(two_p999),
        ]);
    }
    r.blank();
    // CCDF at 20% load, matching the figure's right panel.
    let one_ccdf = results[ccdf_base].response.ccdf(50);
    let two_ccdf = results[ccdf_base + 1].response.ccdf(50);
    r.ccdf("load 0.2, 1 copy", &one_ccdf);
    r.ccdf("load 0.2, 2 copies", &two_ccdf);
    r.finish()
}

/// The service-layer load ramp: a sharded store whose front-end consults
/// the planner per request, switching replication off live as the load
/// estimate crosses the §2.1 threshold. The headline is the switch-off
/// load vs. the offline threshold (exponential workload ⇒ 1/3).
pub fn fig_service(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service: sharded service, planner-driven replication on a load ramp",
        "Section 2.1 threshold, exercised online (no direct paper figure)",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.6);
    cfg.requests = effort.scale(200_000, 50_000);
    cfg.warmup = cfg.requests / 10;
    let reps = effort.scale(8, 4);
    let out = run_service_ramp(&cfg, reps);
    r.note(&format!(
        "{} servers, {} shards stored {}-way, FIFO service, exponential 1 ms workload, {} reps",
        cfg.servers, cfg.shards, cfg.stored_replicas, reps
    ));
    r.header(&["load", "frac_k2", "mean_ms", "p99_ms"]);
    for row in &out.rows {
        r.row(&[
            num(row.load),
            num(row.frac_k2),
            ms(row.mean_response),
            ms(row.p99),
        ]);
    }
    r.blank();
    r.note(&format!("planner switch-off load: {:.5}", out.switch_off));
    r.note(&format!("offline threshold: {:.5}", out.offline_threshold));
    r.note(&format!(
        "switch-off minus threshold: {:+.5} (band: +-0.05)",
        out.switch_off - out.offline_threshold
    ));
    r.finish()
}

/// `fig-service-est`: the self-calibration experiment. The same adaptive
/// load ramp runs twice — once with the planner's threshold computed from
/// the config's exact service moments (clairvoyant, the PR 3 mode) and
/// once with every input measured: arrival rate from the windowed gap
/// estimator, mean and SCV from a `MomentEstimator` over per-copy service
/// durations, threshold recalibrated online. The headline is how close the
/// estimated-mode switch-off lands to the clairvoyant threshold.
pub fn fig_service_est(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-est: self-calibrating planner, estimated vs clairvoyant service moments",
        "Section 2.1 threshold from live (rate, mean, SCV); no direct paper figure",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.6);
    cfg.requests = effort.scale(200_000, 40_000);
    cfg.warmup = cfg.requests / 10;
    let reps = effort.scale(8, 3);
    let clair = run_service_ramp(&cfg, reps);
    cfg.frontend = Frontend::Adaptive {
        window: 2048,
        moments: MomentSource::estimated(),
        load_model: LoadModel::Global,
    };
    let est = run_service_ramp(&cfg, reps);
    r.note(&format!(
        "{} servers, {} shards stored {}-way, FIFO, exponential 1 ms workload, {} reps per mode",
        cfg.servers, cfg.shards, cfg.stored_replicas, reps
    ));
    r.header(&[
        "load",
        "frac_k2_clairvoyant",
        "frac_k2_estimated",
        "mean_ms_estimated",
        "p99_ms_estimated",
    ]);
    for (c, e) in clair.rows.iter().zip(&est.rows) {
        r.row(&[
            num(c.load),
            num(c.frac_k2),
            num(e.frac_k2),
            ms(e.mean_response),
            ms(e.p99),
        ]);
    }
    r.blank();
    r.note(&format!(
        "clairvoyant switch-off load: {:.5}",
        clair.switch_off
    ));
    r.note(&format!("estimated switch-off load: {:.5}", est.switch_off));
    r.note(&format!("offline threshold: {:.5}", clair.offline_threshold));
    r.note(&format!(
        "estimated final mean service: {:.6} s (config 0.001000 s)",
        est.est_mean_service
    ));
    r.note(&format!(
        "estimated final scv: {:.3} (config 1.000)",
        est.est_scv
    ));
    r.note(&format!(
        "estimated live threshold: {:.5}",
        est.live_threshold
    ));
    r.note(&format!(
        "estimated minus clairvoyant switch-off: {:+.5}",
        est.switch_off - clair.switch_off
    ));
    r.note(&format!(
        "estimated minus offline threshold: {:+.5} (band: +-0.08)",
        est.switch_off - clair.offline_threshold
    ));
    r.finish()
}

/// One self-calibrating ramp for `fig-service-tail`.
fn tail_ramp(service: DynDist, requests: usize, reps: usize) -> ServiceRampOutcome {
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.55);
    cfg.requests = requests;
    cfg.warmup = requests / 10;
    cfg.frontend = Frontend::Adaptive {
        window: 2048,
        moments: MomentSource::estimated(),
        load_model: LoadModel::Global,
    };
    run_service_ramp(&cfg, reps)
}

/// `fig-service-tail`: the self-calibrating planner across service-time
/// shapes — light (Weibull shape 2), exponential, and heavy
/// (BoundedPareto α = 1.4 over three decades). The estimator must discover
/// each workload's SCV online; the planner's two-moment threshold is
/// maximal at scv = 1 and degrades toward its deterministic floor on both
/// sides (see `queuesim::analytic::two_moment`'s validity note), so both
/// the light- and heavy-tail switch-offs must land *below* the
/// exponential one.
pub fn fig_service_tail(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-tail: self-calibrating planner vs service-time shape",
        "Fig 2's SCV axis exercised online (two-moment planner regime)",
    );
    let requests = effort.scale(160_000, 40_000);
    let reps = effort.scale(6, 3);
    let workloads: [(&str, DynDist); 3] = [
        ("weibull-light", Arc::new(weibull_with_mean(2.0, 1.0e-3))),
        ("exponential", Arc::new(Exponential::with_mean(1.0e-3))),
        (
            "pareto-heavy",
            Arc::new(bounded_pareto_with_mean(1.4, 1000.0, 1.0e-3)),
        ),
    ];
    r.note(&format!(
        "adaptive frontend, estimated moments (window 8192), load ramp 0.05 -> 0.55, {reps} reps"
    ));
    r.header(&[
        "workload",
        "scv_true",
        "scv_estimated",
        "offline_threshold",
        "live_threshold",
        "switch_off",
        "switch_off_minus_threshold",
    ]);
    let mut measured = Vec::new();
    for (name, service) in &workloads {
        let scv_true = service.scv();
        let out = tail_ramp(service.clone(), requests, reps);
        r.row(&[
            (*name).to_string(),
            num(scv_true),
            num(out.est_scv),
            num(out.offline_threshold),
            num(out.live_threshold),
            num(out.switch_off),
            format!("{:+.5}", out.switch_off - out.offline_threshold),
        ]);
        measured.push(out);
    }
    r.blank();
    r.note(&format!(
        "light-tail switch-off load: {:.5}",
        measured[0].switch_off
    ));
    r.note(&format!(
        "exponential switch-off load: {:.5}",
        measured[1].switch_off
    ));
    r.note(&format!(
        "heavy-tail switch-off load: {:.5}",
        measured[2].switch_off
    ));
    r.note(&format!(
        "heavy minus exponential: {:+.5} (band: < 0; the two-moment planner's threshold peaks at scv = 1)",
        measured[2].switch_off - measured[1].switch_off
    ));
    r.finish()
}

/// `fig-service-skew`: mixed-key traffic. A Zipf(0.6) shard popularity
/// concentrates the ring's load on hot servers; the global-rate planner
/// still flips at the balanced-load threshold (its estimator is
/// load-shape blind — the measured point of the experiment), while the
/// hot servers' queueing shows up as tail inflation that a `Hedged`
/// policy riding the same ramp claws back for a small fired fraction.
pub fn fig_service_skew(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-skew: skewed shard popularity and hedging on the load ramp",
        "Hot-server contention under the Section 2.1 planner; no direct paper figure",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    // The ramp stops at 0.45: the hot server runs ~1.85x the fair share,
    // so 0.45 global keeps the k = 1 regime stable (hot util ~0.83) while
    // the k = 2 phase below the threshold still transiently saturates it
    // (hot util ~1.2) -- the contention hump the decision curve ignores.
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.45);
    cfg.requests = effort.scale(160_000, 30_000);
    cfg.warmup = cfg.requests / 10;
    cfg.frontend = Frontend::Adaptive {
        window: 2048,
        moments: MomentSource::estimated(),
        load_model: LoadModel::Global,
    };
    let reps = effort.scale(6, 3);

    let uniform = run_service_ramp(&cfg, reps);
    cfg.popularity = Some(zipf_popularity(cfg.shards, 0.6));
    let shares = stored_load_shares(&cfg);
    let hot_share = shares.iter().cloned().fold(0.0, f64::max);
    let skewed = run_service_ramp(&cfg, reps);

    let mut single_cfg = cfg.clone();
    single_cfg.frontend = Frontend::Fixed(Policy::Single);
    let single = run_service_ramp(&single_cfg, reps);
    let mut hedged_cfg = cfg.clone();
    hedged_cfg.frontend = Frontend::Fixed(Policy::Hedged {
        copies: 2,
        after: Duration::from_micros(8_000),
    });
    hedged_cfg.cancellation = true;
    let hedged = run_service_ramp(&hedged_cfg, reps);

    r.note(&format!(
        "{} servers, {} shards, Zipf(0.6) popularity, exponential 1 ms workload, {} reps per mode",
        cfg.servers, cfg.shards, reps
    ));
    r.header(&[
        "load",
        "frac_k2_uniform",
        "frac_k2_skewed",
        "p99_ms_single",
        "p99_ms_hedged",
        "frac_hedge_fired",
    ]);
    for i in 0..uniform.rows.len() {
        r.row(&[
            num(uniform.rows[i].load),
            num(uniform.rows[i].frac_k2),
            num(skewed.rows[i].frac_k2),
            ms(single.rows[i].p99),
            ms(hedged.rows[i].p99),
            num(hedged.rows[i].frac_k2),
        ]);
    }
    r.blank();
    let last = uniform.rows.len() - 1;
    r.note(&format!(
        "uniform switch-off load: {:.5}",
        uniform.switch_off
    ));
    r.note(&format!("skewed switch-off load: {:.5}", skewed.switch_off));
    r.note(&format!(
        "offline threshold: {:.5}",
        skewed.offline_threshold
    ));
    r.note(&format!(
        "hottest-server load share: {:.4} (fair share {:.4})",
        hot_share,
        1.0 / cfg.servers as f64
    ));
    r.note(&format!(
        "skewed single p99 at ramp end: {} ms (uniform-mix planner p99 {} ms)",
        ms(single.rows[last].p99),
        ms(uniform.rows[last].p99)
    ));
    r.note(&format!(
        "hedged p99 at ramp end: {} ms vs single {} ms (ratio {:.3})",
        ms(hedged.rows[last].p99),
        ms(single.rows[last].p99),
        hedged.rows[last].p99 / single.rows[last].p99
    ));
    r.note(&format!(
        "hedge fired fraction: {:.5}",
        hedged.overall_frac_k2()
    ));
    r.note(&format!(
        "hedge cancel fraction: {:.5}",
        hedged.cancel_fraction
    ));
    r.finish()
}

/// `fig-service-skew-aware`: the fix for the contention hump
/// `fig-service-skew` documented. The same Zipf(0.6) ramp runs twice —
/// once under the global-rate planner (load-shape blind, the PR 4
/// behavior) and once under the per-server planner (`EstimatorBank` +
/// `Planner::decide_for`): each request's decision compares the maximum
/// estimated utilization of its own stored pair against the threshold, so
/// pairs containing the hot server switch off early while cold pairs keep
/// replicating. Headlines: the hot server's peak busy fraction over the
/// ramp, the p99 hump it caused, and the per-temperature decision curves.
pub fn fig_service_skew_aware(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-skew-aware: per-server load planning under a Zipf key mix",
        "Skew-aware refinement of the Section 2.1 planner; no direct paper figure",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.45);
    cfg.requests = effort.scale(160_000, 30_000);
    cfg.warmup = cfg.requests / 10;
    cfg.popularity = Some(zipf_popularity(cfg.shards, 0.6));
    let reps = effort.scale(6, 3);
    let frontend = |load_model: LoadModel| Frontend::Adaptive {
        window: 512,
        moments: MomentSource::estimated(),
        load_model,
    };
    cfg.frontend = frontend(LoadModel::Global);
    let global = run_service_ramp(&cfg, reps);
    cfg.frontend = frontend(LoadModel::PerServer);
    let per = run_service_ramp(&cfg, reps);
    let shares = stored_load_shares(&cfg);
    let hot_share = shares.iter().cloned().fold(0.0, f64::max);

    r.note(&format!(
        "{} servers, {} shards, Zipf(0.6) popularity, exponential 1 ms workload, \
         estimated moments, {} reps per mode",
        cfg.servers, cfg.shards, reps
    ));
    r.header(&[
        "load",
        "frac_k2_global",
        "frac_k2_perserver",
        "frac_k2_hot_pairs",
        "frac_k2_cold_pairs",
        "peak_util_global",
        "peak_util_perserver",
        "p99_ms_global",
        "p99_ms_perserver",
    ]);
    for (g, p) in global.rows.iter().zip(&per.rows) {
        r.row(&[
            num(g.load),
            num(g.frac_k2),
            num(p.frac_k2),
            num(p.frac_k2_hot),
            num(p.frac_k2_cold),
            num(g.peak_utilization),
            num(p.peak_utilization),
            ms(g.p99),
            ms(p.p99),
        ]);
    }
    r.blank();
    let hump = |o: &ServiceRampOutcome| o.rows.iter().map(|x| x.p99).fold(f64::NAN, f64::max);
    r.note(&format!(
        "hottest-server load share: {:.4} (fair share {:.4})",
        hot_share,
        1.0 / cfg.servers as f64
    ));
    r.note(&format!("offline threshold: {:.5}", per.offline_threshold));
    r.note(&format!("global switch-off load: {:.5}", global.switch_off));
    r.note(&format!("per-server switch-off load: {:.5}", per.switch_off));
    r.note(&format!(
        "per-server hot-pair switch-off load: {:.5}",
        per.switch_off_hot
    ));
    r.note(&format!(
        "per-server cold-pair switch-off load: {:.5} (band: exceeds the hot-pair \
         switch-off by > 0.10 — cold keys keep replicating after hot keys \
         switched off; NaN = never crosses inside the ramp)",
        per.switch_off_cold
    ));
    let last = per.rows.last().expect("ramp has buckets");
    r.note(&format!(
        "hot-pair k2 fraction at ramp end: {:.5}",
        last.frac_k2_hot
    ));
    r.note(&format!(
        "cold-pair k2 fraction at ramp end: {:.5}",
        last.frac_k2_cold
    ));
    r.note(&format!(
        "global hot-server peak utilization: {:.5}",
        global.peak_utilization
    ));
    r.note(&format!(
        "per-server hot-server peak utilization: {:.5}",
        per.peak_utilization
    ));
    r.note(&format!(
        "peak utilization reduction: {:+.5} (band: per-server below global by > 0.05)",
        global.peak_utilization - per.peak_utilization
    ));
    r.note(&format!("global p99 hump: {} ms", ms(hump(&global))));
    r.note(&format!("per-server p99 hump: {} ms", ms(hump(&per))));
    r.note(&format!(
        "p99 hump ratio: {:.3} (band: < 0.9; the contention hump flattens)",
        hump(&per) / hump(&global)
    ));
    r.finish()
}

/// `fig-service-ps-est`: the previously rejected Estimated + PS +
/// cancellation combination, made legal by dispatch-time demand reporting.
/// PS cancellation kills the in-flight *loser* — systematically the
/// larger-demand copy — so completion-based moment estimation would
/// sample min(demands), roughly halve the estimated mean, and push the
/// observable switch-off far above the threshold. Reporting each copy's
/// demand at dispatch observes every issued copy exactly once, before
/// cancellation can censor it; the headline is the switch-off landing back
/// inside the ±0.08 band with unbiased (mean, SCV) estimates.
pub fn fig_service_ps_est(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-ps-est: dispatch-time demand reporting under PS cancellation",
        "Censoring-free self-calibration (lifts the PR 4 rejection); no direct paper figure",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.6);
    cfg.requests = effort.scale(200_000, 40_000);
    cfg.warmup = cfg.requests / 10;
    cfg.discipline = Discipline::Ps;
    cfg.cancellation = true;
    cfg.demand_report = DemandReport::Dispatch;
    cfg.frontend = Frontend::Adaptive {
        window: 2048,
        moments: MomentSource::estimated(),
        load_model: LoadModel::Global,
    };
    let reps = effort.scale(8, 3);
    let out = run_service_ramp(&cfg, reps);
    r.note(&format!(
        "{} servers, {} shards, PS service with cancellation, exponential 1 ms workload, \
         estimated moments reported at dispatch, {} reps",
        cfg.servers, cfg.shards, reps
    ));
    r.header(&["load", "frac_k2", "mean_ms", "p99_ms"]);
    for row in &out.rows {
        r.row(&[
            num(row.load),
            num(row.frac_k2),
            ms(row.mean_response),
            ms(row.p99),
        ]);
    }
    r.blank();
    r.note(&format!("planner switch-off load: {:.5}", out.switch_off));
    r.note(&format!("offline threshold: {:.5}", out.offline_threshold));
    r.note(&format!(
        "switch-off minus threshold: {:+.5} (band: +-0.08)",
        out.switch_off - out.offline_threshold
    ));
    r.note(&format!(
        "estimated final mean service: {:.6} s (config 0.001000 s; completion \
         reporting would have censored this toward ~0.0005)",
        out.est_mean_service
    ));
    r.note(&format!(
        "estimated final scv: {:.3} (config 1.000)",
        out.est_scv
    ));
    r.note(&format!(
        "estimated live threshold: {:.5}",
        out.live_threshold
    ));
    r.note(&format!("cancel fraction: {:.5}", out.cancel_fraction));
    r.finish()
}

/// Fig 13: stub vs real memcached at 0.1 % load — the client-side-cost
/// isolation experiment.
pub fn fig13(effort: Effort) -> String {
    let mut r = Report::new(
        "fig13-memcached-stub: client-side cost isolation at 0.1% load",
        "Figure 13",
    );
    let requests = effort.scale(400_000, 60_000);
    let prof = MemcachedProfile::default();
    let mut sets = Vec::new();
    for (label, copies, stub) in [
        ("1 copy real", 1, false),
        ("2 copies real", 2, false),
        ("1 copy stub", 1, true),
        ("2 copies stub", 2, true),
    ] {
        let mut c = MemcachedConfig::paper_like(copies, 0.001);
        c.requests = requests;
        if stub {
            c = c.stubbed();
        }
        let mut out = run_memcached(&c);
        r.note(&format!(
            "{label}: mean {} ms",
            ms(out.response.mean())
        ));
        sets.push((label, out.response.ccdf(50)));
    }
    for (label, c) in &sets {
        r.ccdf(label, c);
    }
    r.note(&format!(
        "stub overhead of replication should be >= 9% of the {} ms mean service time",
        ms(prof.mean_service)
    ));
    r.finish()
}

/// `fig-service-scale`: the headline experiment of the sharded parallel
/// engine — one adaptive ramp at a cluster scale (≥256 servers, ≥1M
/// requests in quick mode) the sequential engine cannot reach in CI. The
/// run executes on [`storesim::sharded::run_sharded`] with the process
/// thread budget (`repro --threads`); the §2.1 switch-off headline must
/// land on the offline threshold exactly as at small scale, and the report
/// is **byte-identical at every thread count** (CI diffs `--threads
/// 1/3/8` trees), so no wall-clock figures appear here — engine
/// throughput lives in `BENCH_engine.json`.
pub fn fig_service_scale(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-scale: large-cluster adaptive ramp on the sharded parallel engine",
        "Section 2.1 threshold at scale; engine-scaling headline (no direct paper figure)",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.6);
    cfg.servers = effort.scale(512, 256);
    cfg.shards = effort.scale(131_072, 65_536);
    cfg.vnodes = 16;
    cfg.cancellation = true;
    // Wide-area propagation doubles as the engine's lookahead window:
    // 200 µs keeps synchronization rounds fat (hundreds of events each).
    cfg.propagation = 200.0e-6;
    cfg.requests = effort.scale(4_000_000, 1_000_000);
    cfg.warmup = effort.scale(200_000, 50_000);
    if let Frontend::Adaptive { window, .. } = &mut cfg.frontend {
        *window = 8192;
    }
    let groups = effort.scale(16, 8);
    let out = run_sharded(&cfg, groups, global_threads());
    let res = &out.result;
    r.note(&format!(
        "{} servers in {} groups (+1 frontend shard), {} shards stored {}-way, FIFO, \
         cancellation on, exponential 1 ms workload, {} requests (+{} warmup), single ramp",
        cfg.servers, out.groups, cfg.shards, cfg.stored_replicas, cfg.requests, cfg.warmup
    ));
    r.header(&["load", "frac_k2", "mean_ms", "p99_ms"]);
    for b in &res.buckets {
        r.row(&[num(b.load), num(b.frac_k2()), ms(b.mean_response), ms(b.p99)]);
    }
    r.blank();
    r.note(&format!("planner switch-off load: {:.5}", res.switch_off));
    r.note(&format!("offline threshold: {:.5}", res.planner_threshold));
    r.note(&format!(
        "switch-off minus threshold: {:+.5} (band: +-0.05)",
        res.switch_off - res.planner_threshold
    ));
    r.note(&format!(
        "engine: {} events in {} rounds ({:.1} events/round), lookahead {} us",
        out.engine.events,
        out.engine.rounds,
        out.engine.events as f64 / out.engine.rounds.max(1) as f64,
        cfg.propagation * 1e6
    ));
    r.note(&format!(
        "simulated span: {:.3} s; copies issued {}, cancelled {}; mean utilization {:.4}",
        out.engine.end_time.as_secs(),
        res.copies_issued,
        res.copies_cancelled,
        res.mean_utilization
    ));
    r.note(&format!("completed: {} of {}", res.completed, cfg.requests));
    r.finish()
}

/// `fig-service-frontier`: the frontend-placement frontier of the sharded
/// engine. One large adaptive ramp is decomposed into 8 frontend lanes and
/// executed with the lanes placed on F ∈ {1, 2, 4, 8} engine shards —
/// the same simulation four times over. Placement is pure execution, so
/// the experiment *asserts* that all four placements produce bitwise
/// identical results (and that each lands the §2.1 switch-off on the
/// offline threshold); wall-clock requests/sec per F lives in
/// `BENCH_engine.json`, keeping this report byte-identical at every
/// thread count and placement like the rest of the suite.
pub fn fig_service_frontier(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-frontier: frontend placement sweep on the sharded parallel engine",
        "Section 2.1 threshold under a decomposed frontend; placement-invariance headline \
         (no direct paper figure)",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.6);
    cfg.servers = effort.scale(512, 256);
    cfg.shards = effort.scale(131_072, 65_536);
    cfg.vnodes = 16;
    cfg.cancellation = true;
    cfg.propagation = 200.0e-6;
    cfg.requests = effort.scale(4_000_000, 1_000_000);
    cfg.warmup = effort.scale(200_000, 50_000);
    cfg.frontend_lanes = 8;
    if let Frontend::Adaptive { window, .. } = &mut cfg.frontend {
        *window = 8192;
    }
    let groups = effort.scale(16, 8);
    r.note(&format!(
        "{} servers in {} groups, {} shards stored {}-way, FIFO, cancellation on, \
         exponential 1 ms workload, {} requests (+{} warmup), 8 frontend lanes, \
         single ramp repeated at F = 1/2/4/8 frontend shards",
        cfg.servers, groups, cfg.shards, cfg.stored_replicas, cfg.requests, cfg.warmup
    ));
    r.header(&[
        "frontends",
        "switch_off",
        "delta_vs_threshold",
        "summaries",
        "events",
        "rounds",
    ]);
    let mut reference: Option<Vec<u64>> = None;
    for frontends in [1usize, 2, 4, 8] {
        let out = run_sharded_placed(&cfg, groups, global_threads(), frontends);
        let res = &out.result;
        // Placement invariance is an assertion, not a statistic: every F
        // must reproduce F = 1 bit for bit.
        let mut fp = vec![
            res.response.mean().to_bits(),
            res.switch_off.to_bits(),
            res.live_threshold.to_bits(),
            res.mean_utilization.to_bits(),
            res.copies_issued,
            res.copies_cancelled,
            res.completed as u64,
            out.summaries,
            out.engine.events,
            out.engine.rounds,
        ];
        for b in &res.buckets {
            fp.push(b.requests as u64);
            fp.push(b.k2_requests as u64);
            fp.push(b.mean_response.to_bits());
            fp.push(b.p99.to_bits());
        }
        match &reference {
            None => reference = Some(fp),
            Some(rf) => assert_eq!(
                rf, &fp,
                "frontend placement F={frontends} changed the output"
            ),
        }
        let delta = res.switch_off - res.planner_threshold;
        assert!(
            delta.abs() <= 0.05,
            "switch-off {:.5} strays from threshold {:.5} at F={frontends}",
            res.switch_off,
            res.planner_threshold
        );
        r.row(&[
            format!("{frontends}"),
            num(res.switch_off),
            format!("{delta:+.5}"),
            format!("{}", out.summaries),
            format!("{}", out.engine.events),
            format!("{}", out.engine.rounds),
        ]);
    }
    r.blank();
    r.note("all four placements produced bitwise identical results (asserted)");
    r.note("wall-clock requests/sec per placement: see BENCH_engine.json (service_frontier)");
    r.finish()
}

/// `fig-service-elastic`: the elastic-scaling headline — a diurnal load
/// curve over a cluster that must resize 64 → 256 → 64 while traffic
/// flows. The lane-0 autoscaler reads the live utilization estimate,
/// servers join/leave the hash ring mid-run (successor-walk replicas, so
/// each step moves ~1/n of the keys), moving shards dual-dispatch to old
/// and new owners through a migration window, and the per-server
/// estimator state churns per index. The report's ramp buckets bin by
/// **instantaneous per-live-server load**, so the planner switch-off
/// landing on the offline threshold demonstrates the ISSUE's claim: the
/// threshold tracks *current* capacity, not the configured fleet. The
/// diurnal peak (1.84× the baseline capacity) is deliberately chosen so
/// the controller cannot stop short of the 256-server ceiling
/// (1.84 · 64/224 > 0.5 = scale-out trigger) yet the full fleet absorbs
/// it inside the hysteresis band (1.84 · 64/256 = 0.46 ≤ 0.5). Like the
/// other sharded headlines, the report is byte-identical at every thread
/// count and frontend placement (CI diffs `--threads 1/3/8` trees).
pub fn fig_service_elastic(effort: Effort) -> String {
    let mut r = Report::new(
        "fig-service-elastic: diurnal autoscaling ramp on the sharded parallel engine",
        "elastic capacity tracking of the Section 2.1 threshold (no direct paper figure)",
    );
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    // `load_start`/`load_end` are the per-live-server bucket axis; the
    // cluster-level arrival curve is the diurnal half-sine up to
    // `peak_load` relative to the 64-server baseline.
    let mut cfg = ServiceConfig::ramp(service, 0.08, 0.6);
    cfg.servers = 64;
    cfg.shards = effort.scale(131_072, 65_536);
    cfg.vnodes = 16;
    cfg.cancellation = true;
    cfg.propagation = 200.0e-6;
    cfg.requests = effort.scale(4_000_000, 1_000_000);
    cfg.warmup = effort.scale(100_000, 20_000);
    cfg.frontend_lanes = 4;
    if let Frontend::Adaptive { window, .. } = &mut cfg.frontend {
        *window = 8192;
    }
    cfg.autoscale = Some(Autoscale {
        max_servers: 256,
        step: 32,
        scale_out: 0.50,
        scale_in: 0.30,
        period: 5.0e-3,
        migration: 2.0e-3,
        peak_load: 1.84,
    });
    let groups = 8;
    let out = run_sharded(&cfg, groups, global_threads());
    let res = &out.result;
    let a = cfg.autoscale.unwrap();
    r.note(&format!(
        "{}..{} servers (step {}) in {} groups, {} shards stored {}-way, FIFO, \
         cancellation on, exponential 1 ms workload, diurnal peak {}x baseline, \
         {} requests (+{} warmup), 4 frontend lanes",
        cfg.servers,
        a.max_servers,
        a.step,
        out.groups,
        cfg.shards,
        cfg.stored_replicas,
        a.peak_load,
        cfg.requests,
        cfg.warmup
    ));
    r.header(&["rho_live", "frac_k2", "mean_ms", "p99_ms"]);
    for b in &res.buckets {
        r.row(&[num(b.load), num(b.frac_k2()), ms(b.mean_response), ms(b.p99)]);
    }
    r.blank();
    r.header(&["t_s", "servers", "rho_at_decision"]);
    for e in &out.scale_log {
        r.row(&[format!("{:.4}", e.at), format!("{}", e.servers), num(e.rho)]);
    }
    r.blank();
    // The headline claims, asserted in-run and gated again by
    // check_headlines.sh from the printed notes.
    assert_eq!(
        out.peak_live, a.max_servers,
        "fleet never reached the ceiling: {:?}",
        out.scale_log
    );
    assert_eq!(
        out.final_live, cfg.servers,
        "fleet did not return to the floor: {:?}",
        out.scale_log
    );
    let delta = res.switch_off - res.planner_threshold;
    assert!(
        delta.abs() <= 0.06,
        "switch-off {:.5} strays from threshold {:.5} through the resizes",
        res.switch_off,
        res.planner_threshold
    );
    let ups = out.scale_log.windows(2).filter(|w| w[1].servers > w[0].servers).count()
        + usize::from(out.scale_log.first().is_some_and(|e| e.servers > cfg.servers));
    let downs = out.scale_log.len() - ups;
    r.note(&format!(
        "planner switch-off load (per live server): {:.5}",
        res.switch_off
    ));
    r.note(&format!("offline threshold: {:.5}", res.planner_threshold));
    r.note(&format!(
        "switch-off minus threshold: {:+.5} (band: +-0.06)",
        delta
    ));
    r.note(&format!(
        "peak live servers: {} (ceiling {}); final live servers: {} (floor {})",
        out.peak_live, a.max_servers, out.final_live, cfg.servers
    ));
    r.note(&format!(
        "scale events: {} ({} out, {} in); migration window {} ms",
        out.scale_log.len(),
        ups,
        downs,
        a.migration * 1e3
    ));
    r.note(&format!(
        "engine: {} events in {} rounds ({:.1} events/round), lookahead {} us",
        out.engine.events,
        out.engine.rounds,
        out.engine.events as f64 / out.engine.rounds.max(1) as f64,
        cfg.propagation * 1e6
    ));
    r.note(&format!(
        "simulated span: {:.3} s; copies issued {}, cancelled {}; provisioned mean utilization {:.4}",
        out.engine.end_time.as_secs(),
        res.copies_issued,
        res.copies_cancelled,
        res.mean_utilization
    ));
    r.note(&format!("completed: {} of {}", res.completed, cfg.requests));
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_report_shows_no_win() {
        let out = disk_figure(DiskFigure::Fig11, Effort::Quick);
        // Parse the 0.2-load row: mean_2copies >= ~mean_1copy.
        let row: Vec<f64> = out
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(|l| {
                l.split('\t')
                    .map(|c| c.parse::<f64>().unwrap())
                    .collect::<Vec<_>>()
            })
            .find(|cells| (cells[0] - 0.2).abs() < 1e-9)
            .unwrap();
        assert!(row[2] > row[1] * 0.9, "{row:?}");
    }
}
