//! Ablations: design choices the paper fixes, swept.
//!
//! * `abl-cancel` — what if losers could be cancelled (tied requests)?
//!   The paper's model never cancels; Dean & Barroso's systems do. The
//!   sweep shows cancellation extends the profitable load range well past
//!   the 1/3 threshold.
//! * `abl-copies` — why k = 2? Threshold load versus replication factor
//!   (Theorem 1 generalizes to `1/(k+1)`: more copies help *less* of the
//!   load range, even before client costs).
//! * `abl-depth` — why replicate only the *first 8* packets? Median
//!   small-flow improvement versus the replication depth J, including the
//!   replicate-everything extreme the paper argues against.
//! * `abl-spacing` — footnote 3: spacing the duplicated handshake packets
//!   to decorrelate losses.
//! * `abl-warming` — §3.2's closing remark: the caching side-benefit of
//!   racing multiple resolvers, quantified.

use crate::util::{ms, num, pct, Report};
use crate::Effort;
use netsim::experiments::{run_pair, NetConfig};
use queuesim::analytic::mm1;
use queuesim::model::{run as run_queue, Config};
use simcore::dist::Exponential;
use simcore::runner::Runner;
use wansim::dns::{DnsExperiment, DnsPopulation};
use wansim::dns_caching::{run_warming, WarmingConfig};
use wansim::handshake::HandshakeModel;

/// Ablation experiment ids.
pub const ABLATION_IDS: &[&str] = &[
    "abl-cancel",
    "abl-copies",
    "abl-depth",
    "abl-spacing",
    "abl-warming",
];

/// Dispatches an ablation id.
pub fn run_ablation(id: &str, effort: Effort) -> String {
    match id {
        "abl-cancel" => cancellation(effort),
        "abl-copies" => copies(effort),
        "abl-depth" => depth(effort),
        "abl-spacing" => spacing(effort),
        "abl-warming" => warming(effort),
        other => panic!("unknown ablation id: {other}"),
    }
}

fn cancellation(effort: Effort) -> String {
    let mut r = Report::new(
        "abl-cancel: tied requests vs the paper's no-cancellation model",
        "Section 4 discussion of Dean & Barroso",
    );
    let requests = effort.scale(300_000, 60_000);
    r.header(&[
        "load",
        "mean_1copy",
        "mean_2copies",
        "mean_2copies_tied",
        "tied_utilization",
    ]);
    let loads = [0.1, 0.2, 0.3, 0.4, 0.45];
    // One task per (load, variant) triple, parallel on the global runner.
    let results = Runner::global().run(loads.len() * 3, |task| {
        let load = loads[task / 3];
        let base = Config::new(Exponential::unit(), load).with_requests(requests, requests / 10);
        let cfg = match task % 3 {
            0 => base.with_copies(1),
            1 => base.with_copies(2),
            _ => base.with_copies(2).with_cancellation(true),
        };
        run_queue(&cfg, 77)
    });
    for (i, &load) in loads.iter().enumerate() {
        let (single, plain, tied) = (&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]);
        r.row(&[
            num(load),
            num(single.moments.mean()),
            num(plain.moments.mean()),
            num(tied.moments.mean()),
            num(tied.achieved_utilization),
        ]);
    }
    r.note("tied requests shed queued siblings: the win region extends past 1/3");
    r.finish()
}

fn copies(effort: Effort) -> String {
    let mut r = Report::new(
        "abl-copies: threshold load vs replication factor k",
        "Theorem 1 generalized",
    );
    let requests = effort.scale(200_000, 40_000);
    r.header(&["k", "threshold_theory_1_over_k_plus_1", "mean_at_10pct_load_sim"]);
    let ks: Vec<u32> = (2..=6).collect();
    let outs = Runner::global().map(&ks, |_i, &k| {
        let cfg = Config::new(Exponential::unit(), 0.10)
            .with_copies(k as usize)
            .with_servers(30)
            .with_requests(requests, requests / 10);
        run_queue(&cfg, 5)
    });
    for (k, out) in ks.iter().zip(&outs) {
        r.row(&[
            k.to_string(),
            num(mm1::threshold(*k)),
            num(out.moments.mean()),
        ]);
    }
    r.note("more copies shrink the profitable load range (1/(k+1)) even as");
    r.note("they shrink low-load latency (min of k exponentials)");
    r.finish()
}

fn depth(effort: Effort) -> String {
    let mut r = Report::new(
        "abl-depth: median small-flow FCT improvement vs packets replicated",
        "Section 2.4's choice of 8 packets",
    );
    let flows = effort.scale(20_000, 4_000);
    r.header(&["replicate_first_J", "improvement_pct_at_load_0.4"]);
    let depths = [1u32, 2, 4, 8, 16, 64, 10_000];
    let improvements = Runner::global().map(&depths, |_i, &depth| {
        let cfg = NetConfig {
            load: 0.4,
            flows,
            replicate_first: depth,
            ..NetConfig::default()
        };
        run_pair(&cfg, 9).median_improvement_pct()
    });
    for (&depth, &imp) in depths.iter().zip(&improvements) {
        let label = if depth == 10_000 {
            "everything".to_string()
        } else {
            depth.to_string()
        };
        r.row(&[label, pct(imp)]);
    }
    r.note("diminishing returns past the first handful of packets: short flows");
    r.note("are covered, and extra replicas only queue against each other");
    r.finish()
}

fn spacing(effort: Effort) -> String {
    let _ = effort; // analytic, effort-independent
    let mut r = Report::new(
        "abl-spacing: spaced duplicated handshake packets (footnote 3)",
        "Section 3.1, footnote 3",
    );
    let m = HandshakeModel::default();
    let tau = 10.0e-3;
    r.header(&["spacing_ms", "pair_loss_prob", "expected_completion_ms"]);
    for delta_ms in [0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 200.0] {
        let d = delta_ms * 1e-3;
        r.row(&[
            num(delta_ms),
            format!("{:.2e}", m.pair_loss_with_spacing(d, tau)),
            ms(m.expected_completion_spaced(d, tau)),
        ]);
    }
    r.note(&format!(
        "back-to-back duplication: {} ms; single copy: {} ms",
        ms(m.expected_completion(true)),
        ms(m.expected_completion(false))
    ));
    r.note("a few ms of spacing buys most of the decorrelation at negligible cost");
    r.finish()
}

fn warming(effort: Effort) -> String {
    let mut r = Report::new(
        "abl-warming: the caching side-benefit of replicated DNS queries",
        "Section 3.2 closing remark",
    );
    let exp = DnsExperiment::rank(DnsPopulation::paper_like(15), effort.scale(20_000, 3_000), 3);
    let queries = effort.scale(400_000, 80_000);
    r.header(&["copies", "mean_ms", "overall_hit_rate", "secondary_slot_hit_rate"]);
    for k in [1usize, 2, 3] {
        let out = run_warming(
            &exp,
            &WarmingConfig {
                copies: k,
                queries,
                ..Default::default()
            },
        );
        let secondary = if k >= 2 {
            num(out.per_slot_hit_rate[1])
        } else {
            "-".into()
        };
        r.row(&[
            k.to_string(),
            ms(out.response.mean()),
            num(out.hit_rate),
            secondary,
        ]);
    }
    r.note("replication keeps every raced cache warm (free failover), but hits");
    r.note("become correlated across servers, so the race dodges fewer misses");
    r.note("than independent-cache models predict");
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_table_is_monotone_then_rises() {
        let out = spacing(Effort::Quick);
        assert!(out.contains("back-to-back"));
    }

    #[test]
    fn ablation_dispatch() {
        for id in ABLATION_IDS {
            // Only the cheap analytic one end-to-end here; others covered
            // by their crates' tests.
            if *id == "abl-spacing" {
                let out = run_ablation(id, Effort::Quick);
                assert!(!out.is_empty());
            }
        }
    }
}
