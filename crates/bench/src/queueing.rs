//! §2.1 reproductions: Figures 1–4 and Theorem 1.

use crate::util::{num, Report};
use crate::Effort;
use queuesim::analytic::{heavy_tail, mm1, two_moment};
use queuesim::sweeps;
use queuesim::threshold::{threshold_load, ThresholdOptions};
use simcore::dist::{Deterministic, Distribution, Exponential, Pareto};
use simcore::runner::Runner;

fn opts(effort: Effort) -> ThresholdOptions {
    match effort {
        Effort::Full => ThresholdOptions::default(),
        Effort::Quick => ThresholdOptions::fast(),
    }
}

/// Theorem 1: exponential service ⇒ threshold exactly 1/3, checked by
/// simulation, the two-moment model, and the closed form.
pub fn thm1(effort: Effort) -> String {
    let mut r = Report::new(
        "Theorem 1: threshold load for exponential service",
        "Section 2.1, Theorem 1",
    );
    r.header(&["method", "threshold"]);
    r.row(&["closed-form 1/(k+1), k=2".into(), num(mm1::threshold(2))]);
    r.row(&[
        "two-moment model".into(),
        num(two_moment::threshold_for_scv(1.0)),
    ]);
    let sim = threshold_load(&Exponential::unit(), &opts(effort));
    r.row(&["simulation".into(), num(sim)]);
    r.note("all three should agree at 0.3333");
    r.finish()
}

/// Fig 1(a): mean response vs load, deterministic service.
pub fn fig1a(effort: Effort) -> String {
    mean_vs_load_figure(
        "Fig 1(a): mean response time vs load, deterministic service",
        &Deterministic::unit(),
        effort,
    )
}

/// Fig 1(b): mean response vs load, Pareto(2.1) service.
pub fn fig1b(effort: Effort) -> String {
    mean_vs_load_figure(
        "Fig 1(b): mean response time vs load, Pareto (alpha=2.1) service",
        &Pareto::unit_mean(2.1),
        effort,
    )
}

fn mean_vs_load_figure<D: simcore::dist::Distribution + Clone>(
    title: &str,
    dist: &D,
    effort: Effort,
) -> String {
    let mut r = Report::new(title, "Figure 1");
    let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.025).collect();
    let requests = effort.scale(400_000, 50_000);
    let pts = sweeps::mean_vs_load(dist, &loads, requests, 0x5161A);
    r.header(&["load", "mean_1copy_s", "mean_2copies_s", "p999_1copy_s", "p999_2copies_s"]);
    for p in pts {
        r.row(&[
            num(p.load),
            num(p.mean_single),
            num(p.mean_double),
            num(p.p999_single),
            num(p.p999_double),
        ]);
    }
    r.finish()
}

/// Fig 1(c): response-time CCDF at load 0.2 under Pareto(2.1) service.
pub fn fig1c(effort: Effort) -> String {
    let mut r = Report::new(
        "Fig 1(c): response time CCDF at load 0.2, Pareto service",
        "Figure 1(c)",
    );
    let requests = effort.scale(3_000_000, 150_000);
    let (single, double) = sweeps::ccdf_at_load(&Pareto::unit_mean(2.1), 0.2, requests, 60, 0x5161C);
    r.ccdf("1 copy", &single);
    r.ccdf("2 copies", &double);
    r.finish()
}

/// Fig 2(a): threshold load across the unit-mean Weibull family.
pub fn fig2a(effort: Effort) -> String {
    let mut r = Report::new(
        "Fig 2(a): threshold load vs Weibull inverse shape",
        "Figure 2(a)",
    );
    let gammas: Vec<f64> = match effort {
        Effort::Full => (1..=18).map(|i| i as f64).chain([0.5]).collect(),
        Effort::Quick => vec![0.5, 1.0, 4.0, 10.0],
    };
    let mut gs = gammas;
    gs.sort_by(f64::total_cmp);
    r.header(&["inverse_shape_gamma", "threshold_load"]);
    for (g, t) in sweeps::weibull_family(&gs, &opts(effort)) {
        r.row(&[num(g), num(t)]);
    }
    r.finish()
}

/// Fig 2(b): threshold load across the unit-mean Pareto family.
pub fn fig2b(effort: Effort) -> String {
    let mut r = Report::new(
        "Fig 2(b): threshold load vs Pareto inverse scale",
        "Figure 2(b)",
    );
    let betas: Vec<f64> = match effort {
        Effort::Full => {
            let mut v: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
            v.push(0.98); // alpha -> 2: the variance blow-up corner
            v
        }
        Effort::Quick => vec![0.1, 0.4, 0.7, 0.9],
    };
    r.header(&["inverse_scale_beta", "threshold_load"]);
    for (b, t) in sweeps::pareto_family(&betas, &opts(effort)) {
        r.row(&[num(b), num(t)]);
    }
    r.finish()
}

/// Fig 2(c): threshold load across the two-point family.
pub fn fig2c(effort: Effort) -> String {
    let mut r = Report::new(
        "Fig 2(c): threshold load vs two-point parameter p",
        "Figure 2(c)",
    );
    let ps: Vec<f64> = match effort {
        Effort::Full => {
            let mut v: Vec<f64> = (0..=19).map(|i| i as f64 * 0.05).collect();
            // The paper's right edge: variance explodes only as p -> 1
            // (var(0.95) is a modest 4.75; var(0.99) = 24).
            v.extend([0.98, 0.99]);
            v
        }
        Effort::Quick => vec![0.0, 0.3, 0.6, 0.9],
    };
    r.header(&["p", "threshold_load"]);
    for (p, t) in sweeps::two_point_family(&ps, &opts(effort)) {
        r.row(&[num(p), num(t)]);
    }
    r.note("left edge (~0.258) is the deterministic worst case; the rise with p");
    r.note("is modest: two-point giants overlap at doubled utilization, so this");
    r.note("family (unlike Weibull/Pareto, the ones the paper cites for the");
    r.note("->50% limit) plateaus in the low 0.3s");
    r.finish()
}

/// Fig 3: random unit-mean discrete distributions — min/max threshold by
/// support size, for uniform-simplex and Dirichlet(0.1) sampling.
pub fn fig3(effort: Effort) -> String {
    let mut r = Report::new(
        "Fig 3: threshold spread over random service distributions",
        "Figure 3",
    );
    let supports: Vec<usize> = match effort {
        Effort::Full => vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
        Effort::Quick => vec![2, 16, 128],
    };
    let samples = effort.scale(25, 4);
    let mut o = opts(effort);
    // Per-threshold effort trimmed: this figure runs hundreds of
    // thresholds (the paper used 1000 draws per point).
    o.requests = effort.scale(60_000, 25_000);
    o.replications = 3;
    o.tolerance = 0.008;
    r.header(&["support", "sampler", "min_threshold", "max_threshold"]);
    for (label, alpha) in [("uniform", 1.0), ("dirichlet(0.1)", 0.1)] {
        for row in sweeps::random_distributions(&supports, samples, alpha, &o) {
            r.row(&[
                row.support.to_string(),
                label.into(),
                num(row.min_threshold),
                num(row.max_threshold),
            ]);
        }
        r.blank();
    }
    r.note("conjectured lower bound: 0.2582 (deterministic)");
    r.finish()
}

/// Fig 4: client-side overhead vs threshold load, three service laws.
pub fn fig4(effort: Effort) -> String {
    let mut r = Report::new(
        "Fig 4: threshold load vs client-side overhead",
        "Figure 4",
    );
    let overheads: Vec<f64> = match effort {
        Effort::Full => (0..=10).map(|i| i as f64 * 0.1).collect(),
        Effort::Quick => vec![0.0, 0.25, 0.5, 1.0],
    };
    r.header(&["overhead_frac_of_mean_service", "distribution", "threshold_load"]);
    let o = opts(effort);
    // The three service laws sweep in parallel (each sweep is itself
    // parallel over overhead points).
    let dists: Vec<(&str, Box<dyn Distribution>)> = vec![
        ("pareto(2.1)", Box::new(Pareto::unit_mean(2.1))),
        ("exponential", Box::new(Exponential::unit())),
        ("deterministic", Box::new(Deterministic::unit())),
    ];
    let series = Runner::global().map(&dists, |_i, (label, d)| {
        (*label, sweeps::overhead_sweep(&d.as_ref(), &overheads, &o))
    });
    for (label, rows) in series {
        for (frac, t) in rows {
            r.row(&[num(frac), label.into(), num(t)]);
        }
        r.blank();
    }
    r.finish()
}

/// Bonus table (analysis layers): thresholds from the heavy-tail
/// approximation across tail indices — Theorem 3's regime.
pub fn heavy_tail_table() -> String {
    let mut r = Report::new(
        "Heavy-tail approximation thresholds (Theorem 3 regime)",
        "Section 2.1, Theorem 3",
    );
    r.header(&["alpha", "threshold_load"]);
    for alpha in [1.6, 1.8, 2.0, 2.1, 2.2, 2.3, 2.41, 2.8, 3.5] {
        r.row(&[num(alpha), num(heavy_tail::threshold_pareto(alpha))]);
    }
    r.note("alpha < 1+sqrt(2) = 2.414 implies threshold > 30% (Theorem 3)");
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm1_quick_agrees() {
        let out = thm1(Effort::Quick);
        // Extract the three threshold numbers and check the band.
        let vals: Vec<f64> = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| l.split('\t').nth(1)?.parse().ok())
            .collect();
        assert_eq!(vals.len(), 3);
        for v in vals {
            assert!((v - 1.0 / 3.0).abs() < 0.04, "threshold {v}");
        }
    }

    #[test]
    fn heavy_tail_table_renders() {
        let t = heavy_tail_table();
        assert!(t.contains("2.41"));
    }
}
