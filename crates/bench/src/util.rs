//! Report formatting shared by the experiment runners.

use simcore::stats::Ccdf;
use std::fmt::Write as _;

/// Builds a report with a titled header and aligned columns.
pub struct Report {
    buf: String,
}

impl Report {
    /// Starts a report for one figure/table.
    pub fn new(title: &str, paper_ref: &str) -> Self {
        let mut buf = String::new();
        let _ = writeln!(buf, "# {title}");
        let _ = writeln!(buf, "# paper: {paper_ref}");
        Report { buf }
    }

    /// Adds a comment line.
    pub fn note(&mut self, s: &str) {
        let _ = writeln!(self.buf, "# {s}");
    }

    /// Adds a column-header line.
    pub fn header(&mut self, cols: &[&str]) {
        let _ = writeln!(self.buf, "# {}", cols.join("\t"));
    }

    /// Adds one data row.
    pub fn row(&mut self, cells: &[String]) {
        let _ = writeln!(self.buf, "{}", cells.join("\t"));
    }

    /// Adds a blank separator (between series in one file).
    pub fn blank(&mut self) {
        let _ = writeln!(self.buf);
    }

    /// Emits a named CCDF block (gnuplot "index" style).
    pub fn ccdf(&mut self, name: &str, c: &Ccdf) {
        let _ = writeln!(self.buf, "# series: {name}");
        self.buf.push_str(&c.to_text());
        self.blank();
    }

    /// Finishes the report.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Formats seconds as milliseconds with sensible precision.
pub fn ms(x: f64) -> String {
    format!("{:.4}", x * 1e3)
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float compactly.
pub fn num(x: f64) -> String {
    format!("{x:.5}")
}

/// Finds the byte span of the top-level `"key": { ... }` *value* (from
/// its opening brace to the matching close, inclusive) in a JSON
/// document shaped like the bench outputs.
///
/// This is a brace-balancing scan with string-literal awareness, not a
/// JSON parser — enough for the flat two-level documents the `engine`
/// and `hotpath` benches exchange through `BENCH_engine.json`.
fn json_object_span(doc: &str, key: &str) -> Option<(usize, usize)> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)?;
    let rel = doc[at + needle.len()..].find('{')?;
    let start = at + needle.len() + rel;
    let bytes = doc.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the top-level `"key": { ... }` object (braces included) from
/// a bench JSON document, or `None` if the key is absent.
pub fn json_extract_object(doc: &str, key: &str) -> Option<String> {
    json_object_span(doc, key).map(|(s, e)| doc[s..e].to_string())
}

/// Returns `doc` with the top-level `"key"` object replaced by `object`
/// (which must include its braces), or appended as the last member when
/// the key is absent. Lets the `engine` and `hotpath` benches each own
/// a section of `BENCH_engine.json` without clobbering the other's.
pub fn json_with_object(doc: &str, key: &str, object: &str) -> String {
    match json_object_span(doc, key) {
        Some((s, e)) => format!("{}{}{}", &doc[..s], object, &doc[e..]),
        None => {
            let close = doc.rfind('}').expect("JSON document closing brace");
            let head = doc[..close].trim_end();
            format!("{head},\n  \"{key}\": {object}\n}}\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let mut r = Report::new("t", "Fig 0");
        r.header(&["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        let s = r.finish();
        assert!(s.starts_with("# t\n# paper: Fig 0\n# a\tb\n1\t2\n"));
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(0.0123456), "12.3456");
        assert_eq!(pct(38.129), "38.13");
    }

    const DOC: &str = "{\n  \"generated_by\": \"x {y}\",\n  \
                       \"decision\": {\n    \"ns\": 58.1,\n    \
                       \"inner\": { \"a\": 1 }\n  },\n  \
                       \"ping\": { \"b\": 2 }\n}\n";

    #[test]
    fn extract_handles_nesting_and_braces_in_strings() {
        let d = json_extract_object(DOC, "decision").unwrap();
        assert!(d.starts_with('{') && d.ends_with('}'));
        assert!(d.contains("\"inner\": { \"a\": 1 }"));
        assert_eq!(json_extract_object(DOC, "hotpath"), None);
        assert_eq!(json_extract_object(DOC, "ping").unwrap(), "{ \"b\": 2 }");
    }

    #[test]
    fn with_object_replaces_in_place() {
        let out = json_with_object(DOC, "ping", "{ \"b\": 3 }");
        assert!(out.contains("\"ping\": { \"b\": 3 }"));
        assert!(!out.contains("\"b\": 2"));
        assert!(out.contains("\"decision\""), "other sections survive");
    }

    #[test]
    fn with_object_appends_when_missing() {
        let out = json_with_object(DOC, "hotpath", "{ \"ns\": 1.0 }");
        assert!(out.trim_end().ends_with("\"hotpath\": { \"ns\": 1.0 }\n}"));
        // Round-trips: the appended section extracts and replaces cleanly.
        assert_eq!(
            json_extract_object(&out, "hotpath").unwrap(),
            "{ \"ns\": 1.0 }"
        );
        let again = json_with_object(&out, "hotpath", "{ \"ns\": 2.0 }");
        assert_eq!(
            json_extract_object(&again, "hotpath").unwrap(),
            "{ \"ns\": 2.0 }"
        );
    }
}
