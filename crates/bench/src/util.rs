//! Report formatting shared by the experiment runners.

use simcore::stats::Ccdf;
use std::fmt::Write as _;

/// Builds a report with a titled header and aligned columns.
pub struct Report {
    buf: String,
}

impl Report {
    /// Starts a report for one figure/table.
    pub fn new(title: &str, paper_ref: &str) -> Self {
        let mut buf = String::new();
        let _ = writeln!(buf, "# {title}");
        let _ = writeln!(buf, "# paper: {paper_ref}");
        Report { buf }
    }

    /// Adds a comment line.
    pub fn note(&mut self, s: &str) {
        let _ = writeln!(self.buf, "# {s}");
    }

    /// Adds a column-header line.
    pub fn header(&mut self, cols: &[&str]) {
        let _ = writeln!(self.buf, "# {}", cols.join("\t"));
    }

    /// Adds one data row.
    pub fn row(&mut self, cells: &[String]) {
        let _ = writeln!(self.buf, "{}", cells.join("\t"));
    }

    /// Adds a blank separator (between series in one file).
    pub fn blank(&mut self) {
        let _ = writeln!(self.buf);
    }

    /// Emits a named CCDF block (gnuplot "index" style).
    pub fn ccdf(&mut self, name: &str, c: &Ccdf) {
        let _ = writeln!(self.buf, "# series: {name}");
        self.buf.push_str(&c.to_text());
        self.blank();
    }

    /// Finishes the report.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Formats seconds as milliseconds with sensible precision.
pub fn ms(x: f64) -> String {
    format!("{:.4}", x * 1e3)
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float compactly.
pub fn num(x: f64) -> String {
    format!("{x:.5}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let mut r = Report::new("t", "Fig 0");
        r.header(&["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        let s = r.finish();
        assert!(s.starts_with("# t\n# paper: Fig 0\n# a\tb\n1\t2\n"));
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(0.0123456), "12.3456");
        assert_eq!(pct(38.129), "38.13");
    }
}
