//! Engine benchmarks (`cargo bench -p repro-bench --bench engine`).
//!
//! Measures the event-engine hot paths the sharded parallel engine was
//! built to accelerate, and emits the numbers as JSON (default
//! `BENCH_engine.json`; relative paths resolve against the workspace
//! root, not the package directory `cargo bench` runs in, so the
//! committed copy updates in place. `--out PATH` overrides; `--quick`
//! shrinks the workloads to CI size):
//!
//! * `event_queue` — push/pop ns/iter through [`EventQueue`], default
//!   growth vs `with_capacity` pre-sizing, plus the `std::collections::
//!   BinaryHeap` baseline the queue's 4-ary heap replaced (the delta is
//!   the regression guard for that swap);
//! * `decision` — the frontend's per-request decision hot path in
//!   isolation: one `EstimatorBank` arrival observation, one
//!   `Planner::decide_for` through the (read-mostly) `ThresholdCache`,
//!   and one cancel-token issue, against a ~1 µs/request budget;
//! * `ping` — a synthetic token-passing workload executed twice over the
//!   *same* event multiset: once on a single sequential [`EventQueue`],
//!   once on the [`ShardEngine`] at 1 worker and at every available
//!   core. This is the apples-to-apples events/sec comparison between
//!   the sequential and sharded engines;
//! * `service` — the real `fig-service-scale` workload: sequential
//!   [`storesim::service::run`] wall time vs [`run_sharded`] at 1 and N
//!   workers, with the engine's deterministic event count;
//! * `service_frontier` — the 8-lane decomposed frontend placed on
//!   F ∈ {1, 2, 4, 8} frontend shards at full parallelism: requests/sec
//!   per placement (the output is bit-identical across F — only this
//!   wall-clock frontier moves).
//!
//! `within_run_speedup` > 1 needs more than one core; on a single-core
//! host the JSON records the (still meaningful) absolute throughputs and
//! a speedup of ~1. `--assert-speedup` turns the service speedup into a
//! hard failure when the host has more than one core (the CI gate).
//!
//! The harness is self-contained (`harness = false`, no external
//! dependencies).

#![forbid(unsafe_code)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use redundancy::cancel::CancelToken;
use redundancy::estimator::EstimatorBank;
use redundancy::planner::ThresholdCache;
use simcore::dist::{DynDist, Exponential};
use simcore::event::EventQueue;
use simcore::shard::{EngineStats, ShardCtx, ShardEngine, ShardLogic};
use simcore::time::SimTime;
use storesim::service::{self, Frontend, ServiceConfig};
use storesim::sharded::{run_sharded, run_sharded_placed};

/// Best-of-3 [`time_ns`]: the minimum over three measurement windows.
/// The ns-scale queue and decision stages sit well inside scheduler
/// noise on a shared runner; the minimum is the standard noise-robust
/// estimator there (interference only ever adds time).
fn best_ns(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| time_ns(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Times `f` and returns ns/iter over a ~100 ms window (20 ms warm-up).
fn time_ns(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    let mut warm_iters = 0u64;
    while t0.elapsed() < Duration::from_millis(20) {
        f();
        warm_iters += 1;
    }
    let est = t0.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
    let iters = ((100.0e6 / est.max(1.0)) as u64).clamp(10, 50_000_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t1.elapsed().as_nanos() as f64 / iters as f64
}

/// Wall-clock seconds of the fastest of three runs of `f` (reduces
/// scheduler noise without a full statistics pass).
fn best_of_3_secs(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

// ---------------------------------------------------------------------------
// Synthetic token-passing workload.
//
// `jobs` tokens start on each of `shards` shards; every handled hop
// reschedules the token after a deterministic pseudo-random gap, and every
// fourth hop crosses to the next shard with a delay that lands exactly on
// the lookahead floor (the engine's hardest case). Total events are exactly
// shards * jobs * (hops + 1) on both engines.
// ---------------------------------------------------------------------------

const PING_LOOKAHEAD_SECS: f64 = 100.0e-6;

#[derive(Clone, Copy)]
struct Token {
    id: u32,
    hops: u32,
}

/// Deterministic per-hop gap in (0, 1] ms — a hash, not an RNG, so the
/// sequential and sharded runs process identical timestamps.
fn gap_secs(id: u32, hops: u32) -> f64 {
    let h = (id.wrapping_mul(2_654_435_761) ^ hops.wrapping_mul(0x9E37_79B9)) % 1000;
    (h + 1) as f64 * 1.0e-6
}

struct PingShard {
    shards: usize,
    handled: u64,
}

impl ShardLogic for PingShard {
    type Event = Token;

    fn handle(&mut self, _now: SimTime, ev: Token, ctx: &mut ShardCtx<'_, Token>) {
        self.handled += 1;
        if ev.hops == 0 {
            return;
        }
        let next = Token {
            id: ev.id,
            hops: ev.hops - 1,
        };
        let gap = SimTime::from_secs(gap_secs(ev.id, ev.hops));
        if ev.hops.is_multiple_of(4) && self.shards > 1 {
            let to = (ctx.shard() + 1) % self.shards;
            ctx.send(to, SimTime::from_secs(PING_LOOKAHEAD_SECS) + gap, next);
        } else {
            ctx.schedule_after(gap, next);
        }
    }
}

/// The same workload on one sequential [`EventQueue`] (events carry their
/// shard id; state is the per-shard handled counter).
fn ping_sequential(shards: usize, jobs: u32, hops: u32) -> u64 {
    let mut q: EventQueue<(usize, Token)> = EventQueue::with_capacity((shards * jobs as usize) * 2);
    for s in 0..shards {
        for j in 0..jobs {
            let id = (s as u32) << 16 | j;
            q.push(SimTime::ZERO, (s, Token { id, hops }));
        }
    }
    let mut handled = 0u64;
    while let Some((now, (s, ev))) = q.pop() {
        handled += 1;
        if ev.hops == 0 {
            continue;
        }
        let next = Token {
            id: ev.id,
            hops: ev.hops - 1,
        };
        let gap = SimTime::from_secs(gap_secs(ev.id, ev.hops));
        if ev.hops.is_multiple_of(4) && shards > 1 {
            let at = now + SimTime::from_secs(PING_LOOKAHEAD_SECS) + gap;
            q.push(at, ((s + 1) % shards, next));
        } else {
            q.push(now + gap, (s, next));
        }
    }
    black_box(handled)
}

fn ping_sharded(shards: usize, jobs: u32, hops: u32, workers: usize) -> EngineStats {
    let states = (0..shards)
        .map(|_| PingShard { shards, handled: 0 })
        .collect();
    let mut engine = ShardEngine::new(states, SimTime::from_secs(PING_LOOKAHEAD_SECS));
    for s in 0..shards {
        engine.reserve(s, jobs as usize * 2);
        for j in 0..jobs {
            let id = (s as u32) << 16 | j;
            engine.schedule(s, SimTime::ZERO, Token { id, hops });
        }
    }
    black_box(engine.run_with(workers))
}

/// The `fig-service-scale` workload at benchmark size.
fn service_config(quick: bool) -> ServiceConfig {
    let service: DynDist = Arc::new(Exponential::with_mean(1.0e-3));
    let mut cfg = ServiceConfig::ramp(service, 0.05, 0.6);
    cfg.servers = if quick { 64 } else { 256 };
    cfg.shards = if quick { 16_384 } else { 65_536 };
    cfg.vnodes = 16;
    cfg.cancellation = true;
    cfg.propagation = 200.0e-6;
    cfg.requests = if quick { 200_000 } else { 1_000_000 };
    cfg.warmup = if quick { 10_000 } else { 50_000 };
    if let Frontend::Adaptive { window, .. } = &mut cfg.frontend {
        *window = 8192;
    }
    cfg
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let assert_speedup = args.iter().any(|a| a == "--assert-speedup");
    let out_arg = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    // `cargo bench` runs with the package dir as CWD; anchor relative
    // paths at the workspace root so the committed JSON updates in place.
    let out_path = if std::path::Path::new(&out_arg).is_absolute() {
        out_arg
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&out_arg)
            .to_string_lossy()
            .into_owned()
    };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- event queue push/pop: std BinaryHeap baseline vs the 4-ary heap ---
    // The baseline reproduces the queue EventQueue ran on before the 4-ary
    // swap: a std binary heap over the same reversed (time, seq) keys.
    let qlen = 4096usize;
    let push_pop_binary_heap_ns = best_ns(|| {
        let mut q: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        for i in 0..qlen {
            q.push(Reverse((SimTime::from_secs((i % 97) as f64), i as u64, i as u32)));
        }
        while let Some(ev) = q.pop() {
            black_box(ev);
        }
    }) / qlen as f64;
    let push_pop_default_ns = best_ns(|| {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..qlen {
            q.push(SimTime::from_secs((i % 97) as f64), i as u32);
        }
        while let Some(ev) = q.pop() {
            black_box(ev);
        }
    }) / qlen as f64;
    let push_pop_presized_ns = best_ns(|| {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(qlen);
        for i in 0..qlen {
            q.push(SimTime::from_secs((i % 97) as f64), i as u32);
        }
        while let Some(ev) = q.pop() {
            black_box(ev);
        }
    }) / qlen as f64;
    let heap_delta_ns = push_pop_default_ns - push_pop_binary_heap_ns;
    println!("event_queue_push_pop_binheap   {push_pop_binary_heap_ns:>10.2} ns/event (pre-swap baseline)");
    println!("event_queue_push_pop_default   {push_pop_default_ns:>10.2} ns/event");
    println!("event_queue_push_pop_presized  {push_pop_presized_ns:>10.2} ns/event");
    println!("event_queue_heap4_delta        {heap_delta_ns:>10.2} ns/event (negative = 4-ary faster)");

    // --- the per-request decision hot path, in isolation ---
    // One routed arrival into the EstimatorBank, one planner decision
    // through the shared threshold cache (read-mostly after warm-up), one
    // cancel-token issue — the work `arrive` adds on top of raw event
    // dispatch, against a ~1 us/request budget.
    let decision_budget_ns = 1000.0;
    let cfg_probe = service_config(true);
    let dec_planner = cfg_probe.planner();
    let dec_mean = 1.0e-3;
    let mut dec_bank = EstimatorBank::new(cfg_probe.servers, 2048);
    let mut dec_cache = ThresholdCache::new();
    let mut dec_t = 0.0f64;
    let mut dec_s = 0usize;
    for i in 0..cfg_probe.servers * 8 {
        dec_bank.observe_arrival(i % cfg_probe.servers, dec_t);
        dec_t += 1.0e-5;
    }
    let decision_ns = best_ns(|| {
        dec_s = (dec_s + 1) % cfg_probe.servers;
        dec_t += 2.0e-5;
        dec_bank.observe_arrival(dec_s, dec_t);
        let rho = dec_bank.utilization(dec_s, dec_mean, 2);
        let d = dec_planner.decide_for(&mut dec_cache, &[rho]);
        let token = CancelToken::new();
        black_box((d.replicate, token.is_cancelled()));
    });
    println!(
        "decision_hot_path              {decision_ns:>10.2} ns/iter (budget {decision_budget_ns:.0})"
    );

    // --- synthetic ping: sequential EventQueue vs ShardEngine ---
    let (shards, jobs, hops) = if quick { (8, 64, 200) } else { (16, 128, 1000) };
    let ping_events = (shards as u64) * (jobs as u64) * (hops as u64 + 1);
    let seq_secs = best_of_3_secs(|| {
        assert_eq!(ping_sequential(shards, jobs, hops), ping_events);
    });
    let t1_secs = best_of_3_secs(|| {
        assert_eq!(ping_sharded(shards, jobs, hops, 1).events, ping_events);
    });
    let mut ping_workers = 1usize;
    let tn_secs = best_of_3_secs(|| {
        let stats = ping_sharded(shards, jobs, hops, host_threads);
        assert_eq!(stats.events, ping_events);
        ping_workers = stats.threads;
    });
    let seq_eps = ping_events as f64 / seq_secs;
    let t1_eps = ping_events as f64 / t1_secs;
    let tn_eps = ping_events as f64 / tn_secs;
    println!("ping_sequential_eventqueue     {seq_eps:>12.0} events/sec");
    println!("ping_sharded_1_worker          {t1_eps:>12.0} events/sec");
    println!("ping_sharded_multi             {tn_eps:>12.0} events/sec ({ping_workers} workers)");
    println!("ping_within_run_speedup        {:>12.2} x", tn_eps / t1_eps);

    // --- the real service workload ---
    let cfg = service_config(quick);
    let seq_svc_secs = best_of_3_secs(|| {
        black_box(service::run(&cfg).completed);
    });
    let groups = 8usize;
    let mut svc_events = 0u64;
    let svc_t1_secs = best_of_3_secs(|| {
        let out = run_sharded(&cfg, groups, 1);
        svc_events = out.engine.events;
        black_box(out.result.completed);
    });
    let mut svc_workers = 1usize;
    let svc_tn_secs = best_of_3_secs(|| {
        // Bypass the process thread budget (capacity 1 under `cargo
        // bench`) the same way the engine tests do: set it explicitly.
        simcore::runner::set_global_threads(host_threads);
        let out = run_sharded(&cfg, groups, host_threads);
        svc_workers = out.engine.threads;
        black_box(out.result.completed);
    });
    let svc_seq_rps = cfg.requests as f64 / seq_svc_secs;
    let svc_t1_eps = svc_events as f64 / svc_t1_secs;
    let svc_tn_eps = svc_events as f64 / svc_tn_secs;
    let svc_speedup = svc_tn_eps / svc_t1_eps;
    println!("service_sequential_run         {svc_seq_rps:>12.0} requests/sec");
    println!("service_sharded_1_worker       {svc_t1_eps:>12.0} events/sec");
    println!("service_sharded_multi          {svc_tn_eps:>12.0} events/sec ({svc_workers} workers)");
    println!("service_within_run_speedup     {svc_speedup:>12.2} x");

    // --- the frontend placement frontier (8 lanes on F shards) ---
    // Output is bit-identical across F (the fig-service-frontier
    // experiment asserts it); this measures the wall-clock those
    // placements buy at full parallelism.
    let mut cfg_lanes = service_config(quick);
    cfg_lanes.frontend_lanes = 8;
    let frontier_fs = [1usize, 2, 4, 8];
    let mut frontier_rps = Vec::with_capacity(frontier_fs.len());
    for &f in &frontier_fs {
        let secs = best_of_3_secs(|| {
            simcore::runner::set_global_threads(host_threads);
            let out = run_sharded_placed(&cfg_lanes, groups, host_threads, f);
            black_box(out.result.completed);
        });
        let rps = cfg_lanes.requests as f64 / secs;
        println!("service_frontier_f{f}           {rps:>12.0} requests/sec");
        frontier_rps.push(rps);
    }

    let frontier_json = frontier_fs
        .iter()
        .zip(&frontier_rps)
        .map(|(f, rps)| format!("    \"f{}_requests_per_sec\": {}", f, json_f(*rps)))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"generated_by\": \"cargo bench -p repro-bench --bench engine{}\",\n  \
         \"mode\": \"{}\",\n  \"host_threads\": {},\n  \
         \"event_queue\": {{\n    \"push_pop_binary_heap_ns_per_event\": {},\n    \
         \"push_pop_default_ns_per_event\": {},\n    \
         \"push_pop_presized_ns_per_event\": {},\n    \
         \"heap4_minus_binary_heap_ns_per_event\": {}\n  }},\n  \
         \"decision\": {{\n    \"servers\": {},\n    \"ns_per_decision\": {},\n    \
         \"budget_ns\": {}\n  }},\n  \
         \"ping\": {{\n    \"shards\": {}, \"events\": {},\n    \
         \"sequential_eventqueue_events_per_sec\": {},\n    \
         \"sharded_1_worker_events_per_sec\": {},\n    \
         \"workers\": {},\n    \
         \"sharded_multi_worker_events_per_sec\": {},\n    \
         \"within_run_speedup\": {:.3}\n  }},\n  \
         \"service\": {{\n    \"servers\": {}, \"requests\": {}, \"groups\": {}, \"engine_events\": {},\n    \
         \"sequential_run_requests_per_sec\": {},\n    \
         \"sharded_1_worker_events_per_sec\": {},\n    \
         \"workers\": {},\n    \
         \"sharded_multi_worker_events_per_sec\": {},\n    \
         \"within_run_speedup\": {:.3}\n  }},\n  \
         \"service_frontier\": {{\n    \"frontend_lanes\": 8, \"workers\": {},\n{}\n  }}\n}}\n",
        if quick { " -- --quick" } else { "" },
        if quick { "quick" } else { "full" },
        host_threads,
        json_f(push_pop_binary_heap_ns),
        json_f(push_pop_default_ns),
        json_f(push_pop_presized_ns),
        json_f(heap_delta_ns),
        cfg_probe.servers,
        json_f(decision_ns),
        decision_budget_ns as u64,
        shards,
        ping_events,
        json_f(seq_eps),
        json_f(t1_eps),
        ping_workers,
        json_f(tn_eps),
        tn_eps / t1_eps,
        cfg.servers,
        cfg.requests,
        groups,
        svc_events,
        json_f(svc_seq_rps),
        json_f(svc_t1_eps),
        svc_workers,
        json_f(svc_tn_eps),
        svc_speedup,
        svc_workers,
        frontier_json,
    );
    // The hotpath bench owns the "hotpath" section of this file; carry an
    // existing one over so the two benches can run in either order.
    let json = match std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|old| repro_bench::util::json_extract_object(&old, "hotpath"))
    {
        Some(hp) => repro_bench::util::json_with_object(&json, "hotpath", &hp),
        None => json,
    };
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");

    if assert_speedup && host_threads > 1 {
        assert!(
            svc_speedup > 1.0,
            "service within_run_speedup {svc_speedup:.3} <= 1.0 on a {host_threads}-core host"
        );
        println!("asserted service within_run_speedup {svc_speedup:.3} > 1.0");
    }
}
