//! Wall-clock frontend hot-path probes
//! (`cargo bench -p repro-bench --bench hotpath`).
//!
//! Measures the per-request work `storesim::rt`'s frontend does between
//! pulling a request off the script and handing copies to the workers,
//! in isolation and as the combined sequence, against the < 1 µs budget
//! that makes per-request planning viable at all (Shah/Lee/Ramchandran's
//! point: past some per-decision overhead, redundancy flips negative):
//!
//! * `estimator_ingest` — two routed `EstimatorBank` arrival
//!   observations plus the two utilization reads the planner consumes;
//! * `planner_decision` — one `Planner::decide_for` through a warm
//!   `ThresholdCache`;
//! * `cancel_issue` — the cancellation lifecycle the frontend drives per
//!   request: token issue, the clone handed to each copy, the cancel on
//!   first response, and the loser's observation of it;
//! * `combined` — the stages chained exactly as `rt::run`'s dispatch
//!   loop chains them (ingest, decide, trace-fingerprint, per-copy
//!   moment ingest, token issue). `--assert-budget` turns the < 1000 ns
//!   budget into a hard failure — the CI gate;
//! * `race` — one `sync_exec::race` (two thread-spawned replicas) vs,
//!   under `--features tokio-exec`, one `tokio_exec::race_async` (two
//!   futures on the built-in single-thread executor), both over trivial
//!   bodies so the numbers isolate executor dispatch + first-response
//!   cancellation, not the work being raced.
//!
//! Results print as text and merge into the `"hotpath"` section of
//! `BENCH_engine.json` (default; `--out PATH` overrides; relative paths
//! resolve against the workspace root). Other sections of an existing
//! file are preserved — the `engine` bench owns those.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

use redundancy::cancel::CancelToken;
use redundancy::estimator::{EstimatorBank, MomentEstimator};
use redundancy::planner::{Planner, ThresholdCache, WorkloadProfile};
use redundancy::sync_exec::{race, replica};
use repro_bench::util::{json_extract_object, json_with_object};

/// Best-of-3 [`time_ns`] (the minimum; interference only adds time).
fn best_ns(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| time_ns(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Times `f` and returns ns/iter over a ~100 ms window (20 ms warm-up).
fn time_ns(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    let mut warm_iters = 0u64;
    while t0.elapsed() < Duration::from_millis(20) {
        f();
        warm_iters += 1;
    }
    let est = t0.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
    let iters = ((100.0e6 / est.max(1.0)) as u64).clamp(10, 50_000_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t1.elapsed().as_nanos() as f64 / iters as f64
}

/// The FNV-1a step `rt::run` folds each trace entry through.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01B3);
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let assert_budget = args.iter().any(|a| a == "--assert-budget");
    let out_arg = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let out_path = if std::path::Path::new(&out_arg).is_absolute() {
        out_arg
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&out_arg)
            .to_string_lossy()
            .into_owned()
    };
    // Quick mode keeps the same measurement window but takes one sample
    // instead of best-of-3 — the stages are ns-scale, so even one window
    // is tens of millions of iterations.
    let measure = |f: &mut dyn FnMut()| if quick { time_ns(f) } else { best_ns(f) };

    // Mirror RtConfig::smoke's planner inputs: 8 servers, exponential
    // service (scv 1), client overhead well under the paper's 9 % flip.
    let servers = 8usize;
    let mean_service = 5.0e-6;
    let planner = Planner::new(WorkloadProfile {
        mean_service,
        scv: 1.0,
        client_overhead: 0.02 * mean_service,
    });
    let budget_ns = 1000.0;

    // --- estimator ingest: two routed arrivals + two utilization reads ---
    let mut bank = EstimatorBank::new(servers, 512);
    let mut t = 0.0f64;
    let mut s = 0usize;
    for i in 0..servers * 8 {
        bank.observe_arrival(i % servers, t);
        t += 1.0e-5;
    }
    let ingest_ns = measure(&mut || {
        s = (s + 1) % servers;
        let pair = [s, (s + 3) % servers];
        t += 2.0e-5;
        bank.observe_arrival(pair[0], t);
        bank.observe_arrival(pair[1], t);
        let loads = [
            bank.utilization(pair[0], mean_service, 2),
            bank.utilization(pair[1], mean_service, 2),
        ];
        black_box(loads);
    });
    println!("estimator_ingest               {ingest_ns:>10.2} ns/iter");

    // --- planner decision through a warm threshold cache ---
    let mut cache = ThresholdCache::new();
    let mut flip = 0u32;
    let _ = planner.decide_for(&mut cache, &[0.1]);
    let decision_ns = measure(&mut || {
        flip = flip.wrapping_add(1);
        // Alternate under/over the threshold so both branches stay hot.
        let load = if flip & 1 == 0 { 0.1 } else { 0.9 };
        let d = planner.decide_for(&mut cache, &[load, load * 0.5]);
        black_box(d.replicate);
    });
    println!("planner_decision               {decision_ns:>10.2} ns/iter");

    // --- cancel issue: token, per-copy clones, cancel, loser observes ---
    let cancel_ns = measure(&mut || {
        let token = CancelToken::new();
        let c0 = token.clone();
        let c1 = token.clone();
        token.cancel();
        black_box((c0.is_cancelled(), c1.is_cancelled()));
    });
    println!("cancel_issue                   {cancel_ns:>10.2} ns/iter");

    // --- the combined per-request sequence, as rt::run chains it ---
    let mut cbank = EstimatorBank::new(servers, 512);
    let mut ccache = ThresholdCache::new();
    let mut moments = MomentEstimator::new(4096);
    let mut fingerprint = 0xCBF2_9CE4_8422_2325u64;
    let mut ct = 0.0f64;
    let mut cs = 0usize;
    for i in 0..servers * 8 {
        cbank.observe_arrival(i % servers, ct);
        ct += 1.0e-5;
    }
    let combined_ns = measure(&mut || {
        cs = (cs + 1) % servers;
        let pair = [cs, (cs + 3) % servers];
        ct += 2.0e-5;
        cbank.observe_arrival(pair[0], ct);
        cbank.observe_arrival(pair[1], ct);
        let loads = [
            cbank.utilization(pair[0], mean_service, 2),
            cbank.utilization(pair[1], mean_service, 2),
        ];
        let d = planner.decide_for(&mut ccache, &loads);
        let k: u8 = if d.replicate { 2 } else { 1 };
        fnv1a(&mut fingerprint, &[k]);
        for _ in 0..k {
            moments.observe(mean_service);
        }
        let token = CancelToken::new();
        black_box((fingerprint, token.is_cancelled()));
    });
    println!(
        "combined_hot_path              {combined_ns:>10.2} ns/iter (budget {budget_ns:.0})"
    );

    // --- thread racer vs async racer over trivial bodies ---
    let thread_race_ns = measure(&mut || {
        let out = race(vec![
            replica(|_t: &CancelToken| 1u32),
            replica(|_t: &CancelToken| 2u32),
        ])
        .unwrap();
        black_box((out.value, out.winner));
    });
    println!(
        "race_thread_executor           {thread_race_ns:>10.2} ns/race (2 copies, sync_exec::race)"
    );
    #[cfg(feature = "tokio-exec")]
    let async_race_ns = {
        use redundancy::tokio_exec::{block_on, race_async};
        let ns = measure(&mut || {
            let futs: Vec<_> = (1u32..=2).map(|i| async move { i }).collect();
            let out = block_on(race_async(futs)).unwrap();
            black_box(out);
        });
        println!(
            "race_async_executor            {ns:>10.2} ns/race (2 copies, tokio_exec::race_async)"
        );
        println!(
            "race_thread_over_async         {:>10.2} x (thread-spawn cost per race)",
            thread_race_ns / ns
        );
        Some(ns)
    };
    #[cfg(not(feature = "tokio-exec"))]
    let async_race_ns: Option<f64> = {
        println!("race_async_executor            skipped (build with --features tokio-exec)");
        None
    };

    let hotpath = format!(
        "{{\n    \"mode\": \"{}\",\n    \"servers\": {},\n    \
         \"estimator_ingest_ns\": {},\n    \
         \"planner_decision_ns\": {},\n    \
         \"cancel_issue_ns\": {},\n    \
         \"combined_ns\": {},\n    \
         \"budget_ns\": {},\n    \
         \"race_thread_executor_ns\": {},\n    \
         \"race_async_executor_ns\": {}\n  }}",
        if quick { "quick" } else { "full" },
        servers,
        json_f(ingest_ns),
        json_f(decision_ns),
        json_f(cancel_ns),
        json_f(combined_ns),
        budget_ns as u64,
        json_f(thread_race_ns),
        async_race_ns.map_or("null".to_string(), json_f),
    );
    let doc = match std::fs::read_to_string(&out_path) {
        Ok(old) => json_with_object(&old, "hotpath", &hotpath),
        // No engine run yet (fresh checkout / CI job workspace): a
        // minimal document holding just this bench's section.
        Err(_) => format!(
            "{{\n  \"generated_by\": \"cargo bench -p repro-bench --bench hotpath\",\n  \
             \"hotpath\": {hotpath}\n}}\n"
        ),
    };
    debug_assert!(json_extract_object(&doc, "hotpath").is_some());
    std::fs::write(&out_path, &doc).expect("write BENCH_engine.json");
    println!("wrote {out_path} (hotpath section)");

    if assert_budget {
        assert!(
            combined_ns < budget_ns,
            "combined hot path {combined_ns:.1} ns/iter exceeds the {budget_ns:.0} ns budget"
        );
        println!("asserted combined hot path {combined_ns:.1} ns < {budget_ns:.0} ns budget");
    }
}
