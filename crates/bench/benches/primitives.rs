//! Criterion micro-benchmarks of the substrate hot paths.
//!
//! These guard the performance assumptions the figure harness relies on
//! (tens of millions of events per second through the kernel; O(1)
//! sampling, cache and ring operations). The figure *reproductions*
//! themselves live in the `repro` binary — they are simulations whose
//! output is data, not wall time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use netsim::topology::FatTree;
use queuesim::model::{run as run_queue, Config};
use simcore::dist::{Distribution, Exponential, Pareto};
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::time::SimTime;
use storesim::hashring::HashRing;
use storesim::lru::LruCache;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = Rng::seed_from(1);
        b.iter_batched(
            || {
                let mut q = EventQueue::with_capacity(1024);
                for _ in 0..1024 {
                    q.push(SimTime::from_secs(rng.f64()), 0u32);
                }
                q
            },
            |mut q| {
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng_and_dists(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = Rng::seed_from(2);
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("sample_exponential", |b| {
        let mut rng = Rng::seed_from(3);
        let d = Exponential::unit();
        b.iter(|| black_box(d.sample(&mut rng)))
    });
    c.bench_function("sample_pareto", |b| {
        let mut rng = Rng::seed_from(4);
        let d = Pareto::unit_mean(2.1);
        b.iter(|| black_box(d.sample(&mut rng)))
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_access_hit", |b| {
        let mut cache = LruCache::new(1 << 20);
        for k in 0..1000u64 {
            cache.insert(k, 1000);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1000;
            black_box(cache.access(i))
        })
    });
    c.bench_function("lru_insert_evict", |b| {
        let mut cache = LruCache::new(100_000);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(cache.insert(k, 999))
        })
    });
}

fn bench_hash_ring(c: &mut Criterion) {
    let ring = HashRing::new(16, 128);
    c.bench_function("hashring_primary", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(ring.primary(k))
        })
    });
}

fn bench_fat_tree_routing(c: &mut Criterion) {
    let topo = FatTree::new(6);
    c.bench_function("fattree_candidates", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 54;
            let edge = 54 + (i % 18);
            black_box(topo.candidates(edge, (i * 7) % 54))
        })
    });
}

fn bench_queue_model(c: &mut Criterion) {
    // One full (small) replicated-queue simulation per iteration: this is
    // the unit of work the threshold bisection repeats thousands of times.
    c.bench_function("queuesim_10k_requests_k2", |b| {
        let cfg = Config::new(Exponential::unit(), 0.2)
            .with_copies(2)
            .with_requests(10_000, 1_000);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_queue(&cfg, seed).moments.mean())
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng_and_dists,
    bench_lru,
    bench_hash_ring,
    bench_fat_tree_routing,
    bench_queue_model
);
criterion_main!(benches);
