//! Micro-benchmarks of the substrate hot paths (`cargo bench -p repro-bench`).
//!
//! These guard the performance assumptions the figure harness relies on
//! (tens of millions of events per second through the kernel; O(1)
//! sampling, cache and ring operations). The figure *reproductions*
//! themselves live in the `repro` binary — they are simulations whose
//! output is data, not wall time.
//!
//! The harness is self-contained (`harness = false`, no external
//! dependencies): each benchmark is warmed up, then timed over enough
//! iterations to fill a ~100 ms window, reporting ns/iter. Pass a substring
//! as the first argument to filter benchmarks by name.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

use netsim::topology::FatTree;
use queuesim::model::{run as run_queue, Config};
use simcore::dist::{Distribution, Exponential, Pareto};
use simcore::event::EventQueue;
use simcore::rng::Rng;
use simcore::time::SimTime;
use storesim::hashring::HashRing;
use storesim::lru::LruCache;

/// Times `f` and prints a criterion-style `name ... ns/iter` line.
fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    // Warm up and estimate a per-iteration cost.
    let t0 = Instant::now();
    let mut warm_iters = 0u64;
    while t0.elapsed() < Duration::from_millis(20) {
        f();
        warm_iters += 1;
    }
    let est = t0.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
    // Aim for a ~100 ms measurement window.
    let iters = ((100.0e6 / est.max(1.0)) as u64).clamp(10, 50_000_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<32} {per_iter:>12.1} ns/iter   ({iters} iters)");
}

fn main() {
    // First non-flag argument is the filter (`cargo bench` injects a
    // `--bench` flag before user arguments; skip anything flag-shaped).
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();

    // --- event queue ---
    {
        let mut rng = Rng::seed_from(1);
        bench(&filter, "event_queue_push_pop_1k", || {
            let mut q = EventQueue::with_capacity(1024);
            for _ in 0..1024 {
                q.push(SimTime::from_secs(rng.f64()), 0u32);
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        });
    }

    // --- rng + distributions ---
    {
        let mut rng = Rng::seed_from(2);
        bench(&filter, "rng_next_u64", || {
            black_box(rng.next_u64());
        });
        let mut rng = Rng::seed_from(3);
        let d = Exponential::unit();
        bench(&filter, "sample_exponential", || {
            black_box(d.sample(&mut rng));
        });
        let mut rng = Rng::seed_from(4);
        let d = Pareto::unit_mean(2.1);
        bench(&filter, "sample_pareto", || {
            black_box(d.sample(&mut rng));
        });
    }

    // --- LRU ---
    {
        let mut cache = LruCache::new(1 << 20);
        for k in 0..1000u64 {
            cache.insert(k, 1000);
        }
        let mut i = 0u64;
        bench(&filter, "lru_access_hit", || {
            i = (i + 7) % 1000;
            black_box(cache.access(i));
        });
        let mut cache = LruCache::new(100_000);
        let mut k = 0u64;
        bench(&filter, "lru_insert_evict", || {
            k += 1;
            cache.insert(k, 999);
        });
    }

    // --- hash ring ---
    {
        let ring = HashRing::new(16, 128);
        let mut k = 0u64;
        bench(&filter, "hashring_primary", || {
            k += 1;
            black_box(ring.primary(k));
        });
    }

    // --- fat-tree routing ---
    {
        let topo = FatTree::new(6);
        let mut i = 0u32;
        bench(&filter, "fattree_candidates", || {
            i = (i + 1) % 54;
            let edge = 54 + (i % 18);
            black_box(topo.candidates(edge, (i * 7) % 54));
        });
    }

    // --- one full (small) queue simulation per iteration ---
    {
        let cfg = Config::new(Exponential::unit(), 0.2)
            .with_copies(2)
            .with_requests(10_000, 1_000);
        let mut seed = 0u64;
        bench(&filter, "queuesim_10k_requests_k2", || {
            seed += 1;
            black_box(run_queue(&cfg, seed).moments.mean());
        });
    }
}
