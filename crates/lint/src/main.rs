//! CLI driver for the determinism lint. See the crate docs for the
//! rules; see `--list-rules` for the live table.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: lint [--root PATH] [--fix-check] [--list-rules]

Walks the workspace and enforces the determinism rules (see
crates/lint/src/rules.rs). Violations print as `path:line: [rule] msg`.

  --root PATH   workspace root to scan (default: the workspace this
                binary was built from, else the current directory)
  --fix-check   same scan, but frames the report as a fix worklist
                (one violation per line, no summary banner)
  --list-rules  print the rule table and exit

exit status: 0 clean, 1 violations found, 2 usage or IO error";

fn default_root() -> PathBuf {
    // When run via `cargo run -p lint`, cargo sets CARGO_MANIFEST_DIR to
    // crates/lint; the workspace root is two levels up. As a plain
    // binary, fall back to the current directory.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(dir);
        if let Some(root) = manifest.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lint: --root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fix-check" => fix_check = true,
            "--list-rules" => {
                for rule in lint::RULES {
                    println!("{:<22} {}", rule.id, rule.summary);
                    for (path, reason) in rule.allows {
                        println!("{:<22}   allowed in {path}: {reason}", "");
                    }
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    match lint::check_workspace(&root) {
        Ok((violations, files)) => {
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                if !fix_check {
                    println!(
                        "lint: clean — {files} files, {} rules, 0 violations",
                        lint::RULES.len()
                    );
                }
                ExitCode::SUCCESS
            } else {
                if !fix_check {
                    eprintln!(
                        "lint: {} violation(s) across {files} files scanned",
                        violations.len()
                    );
                }
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::from(2)
        }
    }
}
