//! A minimal, dependency-free Rust lexer for the determinism lint.
//!
//! The rules in [`crate::rules`] match *token* patterns, never raw text,
//! so a `HashMap` mention inside a doc comment, a `partial_cmp` inside a
//! string literal, or a `//` inside a char literal can never fire a rule.
//! That requires getting Rust's lexical grammar right where it is tricky:
//!
//! * line (`//`, `///`, `//!`) and **nested** block (`/* /* */ */`)
//!   comments;
//! * string literals with escapes, byte strings, and **raw** strings with
//!   arbitrary `#` fences (`r#"…"#`, `br##"…"##`) where `\` and `"` are
//!   ordinary characters;
//! * char literals vs lifetimes (`'a'` is a literal, `'a` in `<'a>` is
//!   not), including chars that would otherwise open a comment or string
//!   (`'"'`, `'/'`, `'\''`) and byte chars (`b'x'`);
//! * raw identifiers (`r#type`).
//!
//! The output is a flat token list with line numbers, plus a per-line
//! "contains a comment" map used by the `#[allow]`-justification rule.
//! Everything not an identifier or literal is a single-character
//! punctuation token; the rules only ever look at identifiers and a
//! handful of punctuation, so multi-character operators need no special
//! casing.

/// Token class. Literals (string/char/number) are deliberately opaque:
/// no rule looks inside them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// One character of punctuation/operator.
    Punct,
    /// String, raw string, byte string, char, or number literal.
    Lit,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: Kind,
    /// Source text for `Ident` (raw-ident prefix stripped) and `Punct`;
    /// empty for `Lit`.
    pub text: String,
}

impl Tok {
    /// `true` if this is the identifier `name`.
    #[inline]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == Kind::Ident && self.text == name
    }

    /// `true` if this is the punctuation character `c`.
    #[inline]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A lexed source file: tokens plus the comment-line map.
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    comment_lines: Vec<bool>,
}

impl Lexed {
    /// `true` if 1-based `line` contains (part of) a comment.
    pub fn has_comment_on(&self, line: u32) -> bool {
        self.comment_lines.get(line as usize).copied().unwrap_or(false)
    }
}

#[inline]
fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

#[inline]
fn ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `src` into tokens. Unterminated literals/comments end at EOF
/// rather than erroring: the lint must degrade gracefully on code that
/// rustc itself would reject.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let len = b.len();
    let line_count = src.bytes().filter(|&c| c == b'\n').count() + 2;
    let mut comment_lines = vec![false; line_count + 1];
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    while i < len {
        let c = b[i];

        // Whitespace and newlines.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == b'/' && i + 1 < len && b[i + 1] == b'/' {
            comment_lines[line as usize] = true;
            while i < len && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < len && b[i + 1] == b'*' {
            // Block comment — Rust nests these.
            comment_lines[line as usize] = true;
            let mut depth = 1usize;
            i += 2;
            while i < len && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    comment_lines[line as usize] = true;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < len && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < len && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }

        // Plain string literal.
        if c == b'"' {
            let start = line;
            let (ni, nl) = scan_string(b, i, line);
            i = ni;
            line = nl;
            toks.push(lit(start));
            continue;
        }

        // Char literal or lifetime.
        if c == b'\'' {
            let start = line;
            let (ni, nl, is_literal) = scan_char_or_lifetime(b, i, line);
            i = ni;
            line = nl;
            if is_literal {
                toks.push(lit(start));
            }
            continue;
        }

        // Byte-char literal b'x'.
        if c == b'b' && i + 1 < len && b[i + 1] == b'\'' {
            let start = line;
            let (ni, nl, _) = scan_char_or_lifetime(b, i + 1, line);
            i = ni;
            line = nl;
            toks.push(lit(start));
            continue;
        }

        // String-literal prefixes: r"…", r#"…"#, b"…", br"…", br##"…"##.
        if c == b'r' || c == b'b' {
            if let Some((hashes, quote_at, raw)) = string_prefix(b, i) {
                let start = line;
                if raw {
                    // Raw (byte) string: ends at `"` + `hashes` fence
                    // chars; `\` and `"` are ordinary inside.
                    let mut j = quote_at + 1;
                    loop {
                        if j >= len {
                            i = len;
                            break;
                        }
                        if b[j] == b'\n' {
                            line += 1;
                            j += 1;
                        } else if b[j] == b'"'
                            && b.len() - (j + 1) >= hashes
                            && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
                        {
                            i = j + 1 + hashes;
                            break;
                        } else {
                            j += 1;
                        }
                    }
                } else {
                    // Byte string b"…": ordinary escapes.
                    let (ni, nl) = scan_string(b, quote_at, line);
                    i = ni;
                    line = nl;
                }
                toks.push(lit(start));
                continue;
            }
        }

        // Raw identifier r#type → plain name, so rules see `type`.
        if c == b'r' && i + 2 < len && b[i + 1] == b'#' && ident_start(b[i + 2]) {
            let mut j = i + 2;
            while j < len && ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok {
                line,
                kind: Kind::Ident,
                text: String::from_utf8_lossy(&b[i + 2..j]).into_owned(),
            });
            i = j;
            continue;
        }

        // Identifier / keyword.
        if ident_start(c) {
            let mut j = i + 1;
            while j < len && ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok {
                line,
                kind: Kind::Ident,
                text: String::from_utf8_lossy(&b[i..j]).into_owned(),
            });
            i = j;
            continue;
        }

        // Number literal; greedy over digits, `_`, type suffixes, and
        // hex/exponent letters, taking `.` only when a digit follows (so
        // `0..5` and `1.max(2)` split correctly).
        if c.is_ascii_digit() {
            let start = line;
            let mut j = i + 1;
            while j < len {
                if ident_continue(b[j]) {
                    j += 1;
                } else if b[j] == b'.' && j + 1 < len && b[j + 1].is_ascii_digit() {
                    j += 2;
                } else {
                    break;
                }
            }
            i = j;
            toks.push(lit(start));
            continue;
        }

        // Everything else: one punctuation character.
        toks.push(Tok {
            line,
            kind: Kind::Punct,
            text: (c as char).to_string(),
        });
        i += 1;
    }

    Lexed {
        toks,
        comment_lines,
    }
}

#[inline]
fn lit(line: u32) -> Tok {
    Tok {
        line,
        kind: Kind::Lit,
        text: String::new(),
    }
}

/// Scans a `"…"`-delimited string with escapes starting at the opening
/// quote; returns (index past the closing quote, updated line).
fn scan_string(b: &[u8], open: usize, mut line: u32) -> (usize, u32) {
    let len = b.len();
    let mut i = open + 1;
    while i < len {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, line),
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (len, line)
}

/// Disambiguates a `'` at `open`: returns (index past the construct,
/// updated line, `true` if it was a char literal / `false` for a
/// lifetime). Lifetimes produce no token.
fn scan_char_or_lifetime(b: &[u8], open: usize, mut line: u32) -> (usize, u32, bool) {
    let len = b.len();
    if open + 1 >= len {
        return (len, line, false);
    }
    if b[open + 1] == b'\\' {
        // Escaped char literal: '\n', '\'', '\\', '\u{..}'. Start at the
        // backslash so each escape pair is consumed whole — otherwise
        // '\'' would close on its own escaped quote.
        let mut i = open + 1;
        while i < len {
            if b[i] == b'\\' {
                i += 2;
            } else if b[i] == b'\'' {
                return (i + 1, line, true);
            } else {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
        }
        return (len, line, true);
    }
    if ident_continue(b[open + 1]) {
        // Identifier-ish run: lifetime ('a, 'static, '_) unless a closing
        // quote follows immediately, as in 'a' or 'é'.
        let mut j = open + 1;
        while j < len && ident_continue(b[j]) {
            j += 1;
        }
        if j < len && b[j] == b'\'' {
            return (j + 1, line, true);
        }
        return (j, line, false);
    }
    // Char literal holding one non-identifier char: '"', '/', '{', ' '.
    let mut j = open + 1;
    while j < len && b[j] != b'\'' {
        if b[j] == b'\n' {
            line += 1;
        }
        j += 1;
    }
    ((j + 1).min(len), line, true)
}

/// If position `i` starts a (raw/byte) *string* prefix — `r"`, `r#…#"`,
/// `b"`, `br"`, `br#…#"` — returns `(fence_hash_count, quote_index,
/// is_raw)`. Byte-char literals (`b'`) and raw identifiers (`r#ident`)
/// return `None`; the caller handles those separately.
fn string_prefix(b: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    let len = b.len();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let mut raw = false;
    if j < len && b[j] == b'r' {
        j += 1;
        raw = true;
    }
    if j == i {
        return None;
    }
    let fence_start = j;
    if raw {
        while j < len && b[j] == b'#' {
            j += 1;
        }
    }
    let hashes = j - fence_start;
    if j < len && b[j] == b'"' {
        Some((hashes, j, raw))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "a /* x /* HashMap */ still comment */ b";
        assert_eq!(idents(src), ["a", "b"]);
        assert!(lex(src).has_comment_on(1));
    }

    #[test]
    fn raw_strings_with_fences_hide_contents() {
        let src = r####"let s = r#"HashMap "quoted" // not a comment"#; t"####;
        assert_eq!(idents(src), ["let", "s", "t"]);
        assert!(!lex(src).has_comment_on(1));
    }

    #[test]
    fn char_literals_with_quote_and_slashes() {
        let src = "let a = '\"'; let b = '/'; let c = '\\''; after";
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c", "after"]);
        assert!(!lex(src).has_comment_on(1));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        // Lifetimes emit no token at all, so no stray `a` idents appear.
        assert_eq!(idents(src), ["fn", "f", "x", "str", "str", "x"]);
    }

    #[test]
    fn doc_comment_mentions_do_not_tokenize() {
        let src = "/// uses HashMap internally\n//! and SystemTime\nstruct S;";
        assert_eq!(idents(src), ["struct", "S"]);
        let l = lex(src);
        assert!(l.has_comment_on(1) && l.has_comment_on(2) && !l.has_comment_on(3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let src = "for i in 0..5 { x.0.max(1.5e-3) }";
        assert_eq!(idents(src), ["for", "i", "in", "x", "max"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let x = b\"bytes \\\" here\"; let y = br#\"raw \" bytes\"#; let z = b'q'; w";
        assert_eq!(idents(src), ["let", "x", "let", "y", "let", "z", "w"]);
    }

    #[test]
    fn raw_identifiers_strip_their_prefix() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"line\none\";\nafter";
        let l = lex(src);
        let after = l.toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn attributes_tokenize_for_the_allow_rule() {
        let src = "#[allow(dead_code)]\nfn f() {}";
        let l = lex(src);
        assert!(l.toks[0].is_punct('#'));
        assert!(l.toks[1].is_punct('['));
        assert!(l.toks[2].is_ident("allow"));
    }
}
