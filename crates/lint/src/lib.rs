//! Determinism lint: static analysis enforcing the workspace's
//! reproducibility invariants.
//!
//! The repo's signature guarantee — bit-identical simulation output at
//! any `(workers, frontend-shards)` configuration — survives only as
//! long as no code path consults a source of nondeterminism: HashMap
//! iteration order, wall clocks, IEEE partial comparisons, data races,
//! or placement-dependent scheduling keys. CI byte-diffs catch a breach
//! *after* it lands in an experiment; this crate catches the code
//! pattern itself, at the source level, before anything runs.
//!
//! Structure:
//!
//! * [`lexer`] — a hand-rolled, comment/string/raw-string/char-literal
//!   aware Rust lexer (no dependencies, by workspace policy);
//! * [`rules`] — the checked-in rule table ([`rules::RULES`]) with
//!   per-path scopes and allowlists, and the token-pattern matchers.
//!
//! Run it with `cargo run -p lint` (exit 0 = clean, 1 = violations,
//! 2 = usage/IO error). The dynamic counterpart is
//! `simcore::shard::check` (shardcheck), which *executes* small sharded
//! workloads under every worker assignment and wake order and asserts
//! trace identity; together they turn "observed deterministic" into
//! "enforced deterministic".

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{check_file, check_workspace, Rule, Violation, CRATE_ROOTS, RULES};
