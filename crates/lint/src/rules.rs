//! The determinism rule table and its token-pattern matchers.
//!
//! Every rule exists to protect one invariant: **simulation output is a
//! pure function of the simulation**, never of thread interleaving, hash
//! seeds, or wall clocks. The rules are declared in [`RULES`] — a
//! checked-in table with per-path scopes and allowlists, so an exemption
//! is a reviewed diff to this file, not an inline escape hatch.
//!
//! | id | protects against |
//! |----|------------------|
//! | `map-iteration` | `HashMap`/`HashSet` traversal in simulation crates: iteration order is randomized per process, so any traversal that feeds results (or even log lines) is nondeterminism. Keyed lookups are fine; traversals belong on `BTreeMap` or a sorted drain. |
//! | `wall-clock` | `Instant::now` / `SystemTime` outside the real-time executors and the bench crate: simulated time must come from the event clock. |
//! | `float-total-order` | `.partial_cmp(..)` on floats (usually inside `sort_by`/`min_by`): IEEE partial order makes comparators panic or misbehave on NaN; `f64::total_cmp` is the project norm. |
//! | `forbid-unsafe` | a crate root missing `#![forbid(unsafe_code)]`: data races are the other way scheduling leaks into results. |
//! | `keyed-scheduling` | raw (non-`_keyed`) `push`/`send`/`schedule*` calls in the sharded frontend/lane code, which must stay placement-invariant. |
//! | `allow-justification` | `#[allow(..)]` without a same-line-or-above justification comment: every suppressed diagnostic carries its reason. |
//!
//! Matching is heuristic by design — a hand-rolled lexer cannot resolve
//! types — but tuned so the workspace's real patterns are caught and the
//! false-positive rate is zero on the current tree (enforced by the
//! `workspace_is_clean` test). The walker skips `target/`, `.git/`, and
//! any path containing a `fixtures/` segment, so the lint's own negative
//! fixtures don't fail the gate.

use crate::lexer::{lex, Kind, Lexed};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation, reported as `path:line: [rule] message`.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// A rule's declaration: scope and allowlist live here, in review-able
/// data, not in matcher code.
pub struct Rule {
    /// Stable id, shown in reports and used by tests.
    pub id: &'static str,
    /// One-line description for `--list-rules` and the README table.
    pub summary: &'static str,
    /// Path scopes the rule applies to (prefix for entries ending in
    /// `/`, exact match otherwise). Empty ⇒ the whole workspace.
    pub applies: &'static [&'static str],
    /// `(path scope, reason)` exemptions, same matching as `applies`.
    pub allows: &'static [(&'static str, &'static str)],
}

/// Crates whose results are simulation output: HashMap traversal here is
/// nondeterminism. `crates/bench` (reports wall-clock measurements) and
/// `crates/lint` itself are out of scope.
const SIM_SCOPES: &[&str] = &[
    "src/",
    "tests/",
    "examples/",
    "crates/simcore/",
    "crates/core/",
    "crates/queuesim/",
    "crates/storesim/",
    "crates/netsim/",
    "crates/wansim/",
];

/// Every crate root in the workspace: library roots, binary roots,
/// benches, examples, and integration-test roots. Rule `forbid-unsafe`
/// requires the attribute in each; keeping the list explicit means
/// adding a crate root is a reviewed change to the determinism policy.
pub const CRATE_ROOTS: &[&str] = &[
    "src/lib.rs",
    "crates/simcore/src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/queuesim/src/lib.rs",
    "crates/storesim/src/lib.rs",
    "crates/netsim/src/lib.rs",
    "crates/wansim/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/bench/src/bin/repro.rs",
    "crates/bench/benches/engine.rs",
    "crates/bench/benches/hotpath.rs",
    "crates/bench/benches/primitives.rs",
    "crates/lint/src/lib.rs",
    "crates/lint/src/main.rs",
    "examples/capacity_planner.rs",
    "examples/dns_race.rs",
    "examples/fat_tree_flows.rs",
    "examples/quickstart.rs",
    "examples/replicated_store.rs",
    "tests/properties.rs",
    "tests/paper_claims.rs",
];

/// The determinism rule table. See the module docs for the rationale
/// behind each rule.
pub const RULES: &[Rule] = &[
    Rule {
        id: "map-iteration",
        summary: "no HashMap/HashSet traversal (iter/keys/values/drain/for-in) in simulation crates",
        applies: SIM_SCOPES,
        allows: &[],
    },
    Rule {
        id: "wall-clock",
        summary: "no Instant::now / SystemTime outside the executor and bench allowlist",
        applies: &[],
        allows: &[
            (
                "crates/core/src/sync_exec.rs",
                "the thread-backed racer executes in real time by definition",
            ),
            (
                "crates/core/src/tokio_exec.rs",
                "the async racer executes in real time by definition",
            ),
            (
                "crates/bench/",
                "benchmarks measure wall-clock; that is their output, not simulation state",
            ),
            (
                "crates/storesim/src/rt.rs",
                "the wall-clock runtime module executes on real threads; Instant is its \
                 data plane, and every estimator/planner input there is script time by \
                 construction (see the module docs) — no other storesim module is exempt",
            ),
        ],
    },
    Rule {
        id: "float-total-order",
        summary: "no .partial_cmp() calls; float comparators use f64::total_cmp",
        applies: &[],
        allows: &[],
    },
    Rule {
        id: "forbid-unsafe",
        summary: "#![forbid(unsafe_code)] present in every crate root",
        applies: CRATE_ROOTS,
        allows: &[],
    },
    Rule {
        id: "keyed-scheduling",
        summary: "raw (non-_keyed) ctx/engine push/send/schedule calls banned in placement-invariant sharded-service code",
        applies: &["crates/storesim/src/sharded.rs"],
        allows: &[],
    },
    Rule {
        id: "allow-justification",
        summary: "every #[allow(..)] carries a justification comment on the same line or the line above",
        applies: &[],
        allows: &[],
    },
];

/// `true` if `path` falls under `scope` (directory prefix if the scope
/// ends in `/`, exact file path otherwise).
fn in_scope(path: &str, scope: &str) -> bool {
    if let Some(dir) = scope.strip_suffix('/') {
        path.strip_prefix(dir)
            .is_some_and(|rest| rest.starts_with('/'))
    } else {
        path == scope
    }
}

fn rule_applies(rule: &Rule, path: &str) -> bool {
    let applies = rule.applies.is_empty() || rule.applies.iter().any(|s| in_scope(path, s));
    applies && !rule.allows.iter().any(|(s, _)| in_scope(path, s))
}

/// Map methods whose results depend on iteration order.
const ORDER_DEPENDENT_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Scheduling methods with `_keyed` counterparts; the raw forms bake the
/// physical shard id into the merge key and break placement invariance.
const RAW_SCHEDULING_METHODS: &[&str] = &[
    "push",
    "push_after",
    "push_at",
    "send",
    "schedule",
    "schedule_at",
    "schedule_after",
];

/// Checks one file's source against every applicable rule. `path` is the
/// workspace-relative path with `/` separators; it selects which rules
/// and allowlists apply.
pub fn check_file(path: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let mut out = Vec::new();
    for rule in RULES {
        if !rule_applies(rule, path) {
            continue;
        }
        match rule.id {
            "map-iteration" => check_map_iteration(path, &lexed, &mut out),
            "wall-clock" => check_wall_clock(path, &lexed, &mut out),
            "float-total-order" => check_float_total_order(path, &lexed, &mut out),
            "forbid-unsafe" => check_forbid_unsafe(path, &lexed, &mut out),
            "keyed-scheduling" => check_keyed_scheduling(path, &lexed, &mut out),
            "allow-justification" => check_allow_justification(path, &lexed, &mut out),
            other => unreachable!("rule {other} has no matcher"),
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Names bound to a `HashMap`/`HashSet` in this file, collected from
/// `let [mut] NAME = Hash…`, `NAME: Hash…` (field, param, or annotated
/// let), including through `std::collections::` paths.
fn hash_bound_names(lexed: &Lexed) -> BTreeSet<String> {
    let toks = &lexed.toks;
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `::`-separated path prefix.
        let mut k = i;
        while k >= 3
            && toks[k - 1].is_punct(':')
            && toks[k - 2].is_punct(':')
            && toks[k - 3].kind == Kind::Ident
        {
            k -= 3;
        }
        // Skip reference sigils in type position: `m: &HashMap`,
        // `m: &mut HashMap`, `m: &&HashMap`.
        while k >= 1 && (toks[k - 1].is_punct('&') || toks[k - 1].is_ident("mut")) {
            k -= 1;
        }
        if k < 2 {
            continue;
        }
        let before = &toks[k - 1];
        let name = &toks[k - 2];
        if name.kind != Kind::Ident {
            continue;
        }
        // `name: HashMap<..>` (field/param/let-annotation) — make sure it
        // is a single `:`; a path's `::` was consumed above.
        let single_colon = before.is_punct(':') && (k < 3 || !toks[k - 3].is_punct(':'));
        let assignment = before.is_punct('=');
        if single_colon || assignment {
            names.insert(name.text.clone());
        }
    }
    names
}

fn check_map_iteration(path: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let names = hash_bound_names(lexed);
    if names.is_empty() {
        return;
    }
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        // `NAME.iter()` / `self.NAME.keys()` / `NAME.drain()` …
        if t.kind == Kind::Ident && names.contains(&t.text) {
            if let (Some(dot), Some(method), Some(paren)) =
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
            {
                if dot.is_punct('.')
                    && method.kind == Kind::Ident
                    && ORDER_DEPENDENT_METHODS.contains(&method.text.as_str())
                    && paren.is_punct('(')
                {
                    out.push(Violation {
                        path: path.to_string(),
                        line: method.line,
                        rule: "map-iteration",
                        msg: format!(
                            "`{}.{}()` traverses a HashMap/HashSet in iteration order; \
                             use BTreeMap or collect-and-sort",
                            t.text, method.text
                        ),
                    });
                }
            }
        }
        // `for pat in [&mut] [self.]NAME {`
        if t.is_ident("for") {
            let Some(in_at) = (i + 1..(i + 14).min(toks.len()))
                .find(|&j| toks[j].is_ident("in"))
            else {
                continue;
            };
            let mut k = in_at + 1;
            while toks.get(k).is_some_and(|x| x.is_punct('&') || x.is_ident("mut")) {
                k += 1;
            }
            // Skip a field-access chain (`self.counts`, `state.counts`):
            // the map name is the last segment.
            while toks.get(k).is_some_and(|x| x.kind == Kind::Ident)
                && toks.get(k + 1).is_some_and(|x| x.is_punct('.'))
                && toks.get(k + 2).is_some_and(|x| x.kind == Kind::Ident)
            {
                k += 2;
            }
            let Some(name) = toks.get(k) else { continue };
            if name.kind == Kind::Ident
                && names.contains(&name.text)
                && toks.get(k + 1).is_some_and(|x| x.is_punct('{'))
            {
                out.push(Violation {
                    path: path.to_string(),
                    line: name.line,
                    rule: "map-iteration",
                    msg: format!(
                        "`for .. in {}` traverses a HashMap/HashSet in iteration order; \
                         use BTreeMap or collect-and-sort",
                        name.text
                    ),
                });
            }
        }
    }
}

fn check_wall_clock(path: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push(Violation {
                path: path.to_string(),
                line: t.line,
                rule: "wall-clock",
                msg: "SystemTime in simulation code; time must come from the event clock"
                    .to_string(),
            });
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 3).is_some_and(|x| x.is_ident("now"))
        {
            out.push(Violation {
                path: path.to_string(),
                line: t.line,
                rule: "wall-clock",
                msg: "Instant::now in simulation code; time must come from the event clock"
                    .to_string(),
            });
        }
    }
}

fn check_float_total_order(path: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        // A *call* `.partial_cmp(` — a `fn partial_cmp` definition (the
        // canonical `Some(self.cmp(other))` impl) has no preceding dot.
        if t.is_ident("partial_cmp")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            out.push(Violation {
                path: path.to_string(),
                line: t.line,
                rule: "float-total-order",
                msg: ".partial_cmp() is a partial order (panics or lies on NaN); \
                      use f64::total_cmp"
                    .to_string(),
            });
        }
    }
}

fn check_forbid_unsafe(path: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    let found = toks.windows(6).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
    });
    if !found {
        out.push(Violation {
            path: path.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            msg: "crate root missing #![forbid(unsafe_code)]".to_string(),
        });
    }
}

fn check_keyed_scheduling(path: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("ctx") || t.is_ident("engine")) {
            continue;
        }
        if let (Some(dot), Some(method), Some(paren)) =
            (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
        {
            if dot.is_punct('.')
                && method.kind == Kind::Ident
                && RAW_SCHEDULING_METHODS.contains(&method.text.as_str())
                && paren.is_punct('(')
            {
                out.push(Violation {
                    path: path.to_string(),
                    line: method.line,
                    rule: "keyed-scheduling",
                    msg: format!(
                        "`{}.{}()` stamps the physical shard's merge key; this file must \
                         stay placement-invariant — use the `_keyed` variant",
                        t.text, method.text
                    ),
                });
            }
        }
    }
}

fn check_allow_justification(path: &str, lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('#') {
            continue;
        }
        let mut k = i + 1;
        if toks.get(k).is_some_and(|x| x.is_punct('!')) {
            k += 1;
        }
        if !(toks.get(k).is_some_and(|x| x.is_punct('['))
            && toks.get(k + 1).is_some_and(|x| x.is_ident("allow"))
            && toks.get(k + 2).is_some_and(|x| x.is_punct('(')))
        {
            continue;
        }
        let line = t.line;
        if !(lexed.has_comment_on(line) || (line > 1 && lexed.has_comment_on(line - 1))) {
            out.push(Violation {
                path: path.to_string(),
                line,
                rule: "allow-justification",
                msg: "#[allow(..)] without a justification comment on the same line \
                      or the line above"
                    .to_string(),
            });
        }
    }
}

/// Recursively collects `.rs` files under `root` in sorted order,
/// skipping `target/`, `.git/`, hidden directories, and any `fixtures/`
/// segment (the lint's own negative fixtures are violations on purpose).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root`. Returns the violations (sorted
/// by path, then line) and the number of files scanned.
///
/// # Errors
/// Propagates IO errors; also errors if `root` has no `Cargo.toml`, to
/// catch running the gate against the wrong directory.
pub fn check_workspace(root: &Path) -> io::Result<(Vec<Violation>, usize)> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no Cargo.toml; pass the workspace root", root.display()),
        ));
    }
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(file)?;
        violations.extend(check_file(&rel, &src));
    }
    violations.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok((violations, files.len()))
}
