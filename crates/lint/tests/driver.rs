//! Fixture-based negative tests: every rule must catch its bad fixture,
//! respect its scope and allowlist, and stay silent on the clean and
//! lexer-stress fixtures. The real workspace is linted at the end — the
//! same check `cargo run -p lint` performs in CI.

#![forbid(unsafe_code)]

use lint::{check_file, check_workspace, Violation, CRATE_ROOTS, RULES};
use std::path::PathBuf;

fn fired(path: &str, src: &str) -> Vec<Violation> {
    check_file(path, src)
}

fn lines_of(violations: &[Violation], rule: &str) -> Vec<u32> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn rule_table_is_well_formed() {
    assert_eq!(RULES.len(), 6);
    let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 6, "duplicate rule ids");
}

#[test]
fn crate_root_table_matches_the_tree() {
    let root = workspace_root();
    for path in CRATE_ROOTS {
        assert!(
            root.join(path).is_file(),
            "CRATE_ROOTS lists {path}, which does not exist — update the table"
        );
    }
}

#[test]
fn map_iteration_fixture_fails() {
    let src = include_str!("fixtures/map_iteration_bad.rs");
    let v = fired("crates/simcore/src/fixture.rs", src);
    let lines = lines_of(&v, "map-iteration");
    assert_eq!(
        lines.len(),
        6,
        "expected the 6 marked traversals, got {v:#?}"
    );
    assert!(v.iter().all(|x| x.rule == "map-iteration"), "{v:#?}");
    // Out of scope (bench crate): the same source must pass.
    assert!(fired("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn wall_clock_fixture_fails() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let v = fired("crates/netsim/src/fixture.rs", src);
    let lines = lines_of(&v, "wall-clock");
    // The import line, Instant::now, and the SystemTime::now call.
    assert_eq!(lines.len(), 3, "{v:#?}");
    // Allowlisted paths: executors, the bench crate, and the one
    // wall-clock storesim module (the rt runtime).
    assert!(fired("crates/core/src/sync_exec.rs", src).is_empty());
    assert!(fired("crates/core/src/tokio_exec.rs", src).is_empty());
    assert!(fired("crates/bench/src/fixture.rs", src).is_empty());
    assert!(fired("crates/storesim/src/rt.rs", src).is_empty());
    // The rt allowlist entry is for that file alone: every *other*
    // storesim module — the simulated-time side — still fires.
    for other in [
        "crates/storesim/src/service.rs",
        "crates/storesim/src/sharded.rs",
        "crates/storesim/src/cluster.rs",
    ] {
        assert_eq!(
            lines_of(&fired(other, src), "wall-clock").len(),
            3,
            "{other} must not inherit rt's wall-clock exemption"
        );
    }
}

#[test]
fn float_total_order_fixture_fails() {
    let src = include_str!("fixtures/float_total_order_bad.rs");
    let v = fired("crates/queuesim/src/fixture.rs", src);
    let lines = lines_of(&v, "float-total-order");
    assert_eq!(lines.len(), 2, "the two marked comparators: {v:#?}");
    assert!(v.iter().all(|x| x.rule == "float-total-order"), "{v:#?}");
}

#[test]
fn forbid_unsafe_fixture_fails() {
    let src = include_str!("fixtures/forbid_unsafe_bad.rs");
    // Checked as a crate root: must fire.
    let v = fired("src/lib.rs", src);
    assert_eq!(lines_of(&v, "forbid-unsafe"), vec![1], "{v:#?}");
    // The same content as a non-root module: the rule does not apply.
    assert!(fired("crates/simcore/src/some_module.rs", src).is_empty());
}

#[test]
fn keyed_scheduling_fixture_fails() {
    let src = include_str!("fixtures/keyed_scheduling_bad.rs");
    let v = fired("crates/storesim/src/sharded.rs", src);
    let lines = lines_of(&v, "keyed-scheduling");
    assert_eq!(lines.len(), 4, "the four raw calls: {v:#?}");
    assert!(v.iter().all(|x| x.rule == "keyed-scheduling"), "{v:#?}");
    // The rule is scoped to the sharded-service file only.
    assert!(fired("crates/storesim/src/service.rs", src).is_empty());
}

#[test]
fn allow_justification_fixture_fails() {
    let src = include_str!("fixtures/allow_justification_bad.rs");
    let v = fired("crates/wansim/src/fixture.rs", src);
    assert_eq!(
        lines_of(&v, "allow-justification"),
        vec![10, 17],
        "exactly the two unjustified attributes: {v:#?}"
    );
}

#[test]
fn clean_fixture_passes() {
    let src = include_str!("fixtures/clean.rs");
    let v = fired("crates/simcore/src/clean.rs", src);
    assert!(v.is_empty(), "clean fixture must not fire: {v:#?}");
}

#[test]
fn lexer_stress_fixture_passes() {
    let src = include_str!("fixtures/lexer_edges.rs");
    let v = fired("crates/queuesim/src/edges.rs", src);
    assert!(v.is_empty(), "lexer stress fixture must not fire: {v:#?}");
}

/// The gate itself: the real workspace must be violation-free. This is
/// the same scan `cargo run -p lint` performs, so a regression fails
/// root `cargo test` even before CI's dedicated lint job runs.
#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    let (violations, files) = check_workspace(&root).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "determinism lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(files > 40, "suspiciously few files scanned: {files}");
}
