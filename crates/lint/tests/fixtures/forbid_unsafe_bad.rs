//! Fixture: a crate root with no `#![forbid(unsafe_code)]` — checked
//! under a crate-root path, this must fire the `forbid-unsafe` rule.
//! (A `forbid(unsafe_code)` spelled only in comments doesn't count.)

pub fn noop() {}
