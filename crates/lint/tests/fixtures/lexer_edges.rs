//! Fixture: lexer stress — nested block comments, raw strings with `#`
//! fences, char literals containing `"` and `//`, and a HashMap mention
//! in this doc comment (must NOT fire any rule). Checked under a
//! simulation-crate path, this file must produce zero violations.

fn nested_comments() {
    /* level 1 /* level 2: for k in &map { } /* level 3: SystemTime */ */
       still inside level 1: Instant::now() */
    let _after = 1;
}

fn raw_fences() -> (&'static str, &'static str, &'static [u8]) {
    let one = r#"fence one: "quoted" // not a comment, HashMap.iter()"#;
    let two = r##"fence two: "#  almost-closers  "# then really"##;
    let bytes = br#"byte raw: SystemTime and ctx.send(0, d, e)"#;
    (one, two, bytes)
}

fn tricky_chars() -> (char, char, char, char) {
    let dquote = '"'; // a literal double quote — no string starts here
    let slash = '/'; // with another: // would look like a comment
    let escaped = '\'';
    let newline = '\n';
    (dquote, slash, escaped, newline)
}

fn lifetimes<'a>(x: &'a str) -> &'a str {
    // 'a above must not open a char literal that swallows code.
    x
}
