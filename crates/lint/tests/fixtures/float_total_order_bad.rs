//! Fixture: IEEE partial comparison in a comparator — must fire the
//! `float-total-order` rule. A `partial_cmp` inside this comment or a
//! string must NOT fire.

fn pick(xs: &[(f64, f64)], target: f64) -> (f64, f64) {
    *xs.iter()
        .min_by(|a, b| {
            (a.0 - target)
                .abs()
                .partial_cmp(&(b.0 - target).abs()) // BAD
                .unwrap()
        })
        .unwrap()
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // BAD
    v
}

fn fine(mut v: Vec<f64>) -> Vec<f64> {
    // The project norm — must NOT fire.
    v.sort_by(f64::total_cmp);
    let _s = "docs may say partial_cmp without firing";
    v
}
