//! Fixture: HashMap traversal in a simulation crate — every marked line
//! must fire the `map-iteration` rule.

use std::collections::{HashMap, HashSet};

struct State {
    counts: HashMap<u64, u32>,
}

fn traversals(state: &State) {
    let mut local: HashMap<u64, u32> = HashMap::new();
    local.insert(1, 2);
    for (k, v) in &state.counts {
        // BAD: iteration order leaks
        let _ = (k, v);
    }
    let _sum: u32 = local.values().sum(); // BAD
    let _keys: Vec<_> = local.keys().collect(); // BAD
    let inferred = HashMap::<u64, u32>::new();
    for pair in &inferred {
        // BAD
        let _ = pair;
    }
    let seen: HashSet<u64> = HashSet::new();
    let _v: Vec<_> = seen.iter().collect(); // BAD
}

fn by_reference_param(table: &std::collections::HashMap<u64, f64>) -> f64 {
    // BAD: the `&`-qualified fully-pathed param is still a HashMap.
    table.values().sum()
}

fn keyed_lookups_are_fine(state: &State) -> Option<u32> {
    // These must NOT fire: keyed access has no order to leak.
    let mut m: HashMap<u64, u32> = HashMap::new();
    m.insert(7, 1);
    let _ = m.contains_key(&7);
    let _ = m.len();
    state.counts.get(&7).copied()
}
