//! Fixture: wall-clock reads in simulation code — both must fire the
//! `wall-clock` rule. The mentions in this doc comment (Instant::now,
//! SystemTime) must NOT fire: comments don't tokenize.

use std::time::{Instant, SystemTime};

fn measure() -> f64 {
    let start = Instant::now(); // BAD
    let _epoch = SystemTime::now(); // BAD (SystemTime alone fires)
    start.elapsed().as_secs_f64()
}
