//! Fixture: `#[allow(..)]` attributes with and without justification.

// Published constants, kept digit-for-digit.
#[allow(clippy::excessive_precision)]
const FINE_COMMENT_ABOVE: f64 = 1.234_567_890_123_456_789;

#[allow(dead_code)] // retained for the next milestone's API
fn fine_same_line() {}

#[allow(dead_code)]
fn bad_no_comment() {} // BAD: the attribute line and the line above are bare

fn spacer() {}

// A comment two lines above does not count.

#[allow(unused_variables)]
fn bad_comment_too_far(x: u32) {} // BAD
