//! Fixture: determinism-clean simulation code exercising every rule's
//! *negative* space — checked under a simulation-crate path, this file
//! must produce zero violations.
//!
//! Doc-comment mentions that must not fire: HashMap iteration, a
//! HashSet, Instant::now, SystemTime, partial_cmp, ctx.send.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

struct Cache {
    // Keyed-only HashMap: fine.
    by_key: HashMap<u64, f64>,
    // Traversal happens here instead: ordered.
    sorted: BTreeMap<u64, f64>,
}

impl Cache {
    fn lookup(&self, k: u64) -> Option<f64> {
        self.by_key.get(&k).copied()
    }

    fn drain_ordered(&self) -> Vec<(u64, f64)> {
        // BTreeMap traversal: deterministic, allowed.
        self.sorted.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

fn comparator(xs: &mut [f64]) {
    // The project norm for float ordering.
    xs.sort_by(f64::total_cmp);
}

fn strings_and_chars() -> (char, char, &'static str, &'static str) {
    // Rule tokens inside literals must not fire:
    let quote = '"';
    let slash = '/';
    let s = "HashMap::iter() and Instant::now() and SystemTime here";
    let raw = r#"ctx.send(1, d, ev) and a.partial_cmp(b) stay inert"#;
    (quote, slash, s, raw)
}

/* A block comment /* nested, as Rust allows */ mentioning
   for x in &map { } and SystemTime — must not fire. */
fn tail() {}
