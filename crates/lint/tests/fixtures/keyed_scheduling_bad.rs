//! Fixture: raw scheduling calls in placement-invariant frontend/lane
//! code — each marked line must fire the `keyed-scheduling` rule when
//! this file is checked under the sharded-service path.

fn frontend_lane(ctx: &mut Ctx, engine: &mut Engine) {
    ctx.send(1, DELAY, Event::Probe); // BAD: merge key = physical shard
    ctx.schedule_at(T0, Event::Tick); // BAD
    ctx.schedule_after(DELAY, Event::Tick); // BAD
    engine.schedule(0, T0, Event::Seed); // BAD
    ctx.send_keyed(1, DELAY, LANE, seq, Event::Probe); // fine: logical key
    ctx.schedule_at_keyed(T0, LANE, seq, Event::Tick); // fine
    engine.schedule_keyed(0, T0, LANE, seq, Event::Seed); // fine
    jobs.push(Event::Tick); // fine: Vec push, receiver isn't ctx/engine
}
