//! Random probability vectors — the generator behind the paper's Figure 3.
//!
//! Fig 3 samples "the space of all unit-mean discrete probability
//! distributions with support {1, 2, …, N}" in two ways: uniformly at random
//! (i.e. uniform on the probability simplex, which is Dirichlet(1,…,1)), and
//! from a symmetric Dirichlet with concentration 0.1 (spikier vectors, hence
//! a wider spread of shapes). The resulting distribution is then rescaled to
//! unit mean, and the min/max observed threshold load over many draws is
//! plotted against N.

use crate::dist::DiscreteEmpirical;
use crate::rng::Rng;

/// Draws a probability vector of length `n` uniformly from the simplex
/// (equivalently Dirichlet(1, …, 1)), via normalized exponentials.
pub fn uniform_simplex(rng: &mut Rng, n: usize) -> Vec<f64> {
    dirichlet(rng, n, 1.0)
}

/// Draws from a symmetric Dirichlet with concentration `alpha` by
/// normalizing independent Gamma(α, 1) variates.
///
/// # Panics
/// Panics if `n == 0` or `alpha ≤ 0`.
pub fn dirichlet(rng: &mut Rng, n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0 && alpha > 0.0);
    loop {
        let draws: Vec<f64> = (0..n).map(|_| rng.gamma(alpha, 1.0)).collect();
        let total: f64 = draws.iter().sum();
        // For very small alpha, all gammas can underflow to ~0; redraw.
        if total > 0.0 && total.is_finite() {
            return draws.iter().map(|g| g / total).collect();
        }
    }
}

/// A random unit-mean discrete distribution on support `{1, …, n}` with
/// probabilities drawn from a symmetric Dirichlet(α) — the exact object
/// Fig 3 sweeps (α = 1 reproduces the "Uniform" series, α = 0.1 the
/// "Dirichlet" series).
pub fn random_unit_mean_discrete(rng: &mut Rng, n: usize, alpha: f64) -> DiscreteEmpirical {
    let probs = dirichlet(rng, n, alpha);
    let pairs: Vec<(f64, f64)> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| ((i + 1) as f64, p))
        .collect();
    DiscreteEmpirical::new(&pairs).scaled_to_unit_mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;

    #[test]
    fn simplex_sums_to_one() {
        let mut rng = Rng::seed_from(99);
        for n in [1usize, 2, 7, 64] {
            let v = uniform_simplex(&mut rng, n);
            assert_eq!(v.len(), n);
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "sum {s}");
            assert!(v.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn dirichlet_concentration_controls_spread() {
        // Small alpha → spiky vectors (high max component on average).
        let mut rng = Rng::seed_from(123);
        let n = 16;
        let trials = 500;
        let avg_max = |rng: &mut Rng, alpha: f64| -> f64 {
            (0..trials)
                .map(|_| {
                    dirichlet(rng, n, alpha)
                        .into_iter()
                        .fold(0.0f64, f64::max)
                })
                .sum::<f64>()
                / trials as f64
        };
        let spiky = avg_max(&mut rng, 0.1);
        let flat = avg_max(&mut rng, 10.0);
        assert!(
            spiky > flat + 0.2,
            "expected alpha=0.1 spikier: {spiky} vs {flat}"
        );
    }

    #[test]
    fn dirichlet_marginal_mean() {
        // Each component of a symmetric Dirichlet has mean 1/n.
        let mut rng = Rng::seed_from(7);
        let n = 8;
        let trials = 2_000;
        let mut acc = vec![0.0f64; n];
        for _ in 0..trials {
            for (a, p) in acc.iter_mut().zip(dirichlet(&mut rng, n, 0.5)) {
                *a += p;
            }
        }
        for a in acc {
            let m = a / trials as f64;
            assert!((m - 1.0 / n as f64).abs() < 0.015, "marginal mean {m}");
        }
    }

    #[test]
    fn random_discrete_has_unit_mean() {
        let mut rng = Rng::seed_from(42);
        for n in [2usize, 4, 32, 256] {
            for alpha in [0.1, 1.0] {
                let d = random_unit_mean_discrete(&mut rng, n, alpha);
                assert!(
                    (d.mean() - 1.0).abs() < 1e-9,
                    "n={n} alpha={alpha} mean={}",
                    d.mean()
                );
            }
        }
    }
}
