//! # simcore — discrete-event simulation kernel
//!
//! This crate is the foundation for every simulator in the
//! *Low Latency via Redundancy* reproduction (Vulimiri et al., CoNEXT 2013).
//! It provides the four ingredients shared by the queueing model (§2.1), the
//! disk-backed storage cluster (§2.2), the memcached model (§2.3), the
//! packet-level fat-tree simulator (§2.4), and the WAN models (§3):
//!
//! * [`time::SimTime`] — a total-ordered simulated clock (seconds, `f64`
//!   resolution) usable both as an instant and as a duration;
//! * [`event::EventQueue`] — a monotonic future-event list with stable FIFO
//!   ordering for simultaneous events;
//! * [`rng::Rng`] — a from-scratch, bit-reproducible xoshiro256++ generator
//!   with the transforms the paper's workloads need (exponential, normal,
//!   gamma, Pareto, Weibull, Dirichlet, …);
//! * [`dist`] — unit-mean service-time distribution families used throughout
//!   the paper's §2.1 analysis, plus empirical/discrete distributions for the
//!   §2.4 flow-size workload;
//! * [`stats`] — streaming moments, exact quantiles, log-binned histograms
//!   and CCDF extraction matching the paper's "fraction later than
//!   threshold" plots;
//! * [`runner::Runner`] — a dependency-free scoped-thread executor for the
//!   embarrassingly-parallel run-many-simulations shape every figure has,
//!   with deterministic (task-order) results so output is bit-identical at
//!   any thread count;
//! * [`shard::ShardEngine`] — a sharded, conservatively-synchronized
//!   parallel event engine for parallelism *within* one long simulation,
//!   with a deterministic `(time, shard, sequence)` merge rule preserving
//!   the bit-identical-at-any-thread-count invariant.
//!
//! Everything here is deterministic given a seed: two runs of any experiment
//! in this workspace produce byte-identical output, which is what makes the
//! threshold-load bisection in `queuesim` (a variance-reduced paired
//! comparison) statistically stable.
//!
//! ## Example
//!
//! ```
//! use simcore::prelude::*;
//!
//! // An M/M/1 queue in a few lines: exponential interarrivals + service.
//! let mut rng = Rng::seed_from(7);
//! let arrivals = Exponential::with_rate(0.5);
//! let service = Exponential::with_rate(1.0);
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO, ());
//! let mut clock = SimTime::ZERO;
//! let mut busy_until = SimTime::ZERO;
//! let mut stats = Welford::new();
//! for _ in 0..10_000 {
//!     let (now, ()) = q.pop().unwrap();
//!     clock = now;
//!     let start = clock.max(busy_until);
//!     let done = start + SimTime::from_secs(service.sample(&mut rng));
//!     busy_until = done;
//!     stats.push((done - clock).as_secs());
//!     q.push(clock + SimTime::from_secs(arrivals.sample(&mut rng)), ());
//! }
//! // M/M/1 with rho = 0.5: mean response time = 1/(mu - lambda) = 2.0.
//! assert!((stats.mean() - 2.0).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod heap;
pub mod rng;
pub mod runner;
pub mod shard;
pub mod simplex;
pub mod special;
pub mod stats;
pub mod time;

/// Convenient glob-import of the types used by every simulator in the
/// workspace.
pub mod prelude {
    pub use crate::dist::{
        BoundedPareto, Deterministic, DiscreteEmpirical, Distribution, Erlang, Exponential,
        HyperExponential, LogNormal, Mixture, Pareto, Shifted, TwoPoint, Uniform, Weibull,
    };
    pub use crate::event::EventQueue;
    pub use crate::rng::Rng;
    pub use crate::runner::Runner;
    pub use crate::shard::{EngineStats, ShardCtx, ShardEngine, ShardLogic, ShardQueue};
    pub use crate::stats::{Ccdf, SampleSet, Summary, Welford};
    pub use crate::time::SimTime;
}
