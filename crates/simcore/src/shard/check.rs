//! Shardcheck: exhaustive schedule exploration for the sharded engine.
//!
//! The engine's determinism argument (see the [`shard`](super) module
//! docs) is that per-shard pop order is a total order on the
//! `(time, origin, seq)` merge key, so output is a pure function of the
//! simulation — never of which worker ran which shard, which worker woke
//! first in a round, or the order cross-shard messages drained out of the
//! channels. CI checks that claim *dynamically* by byte-diffing a handful
//! of thread counts; this module checks it the way loom checks a lock-free
//! algorithm: by *enumerating* the schedule space of small workloads and
//! asserting every schedule produces the identical event trace.
//!
//! A [`Schedule`] fixes every free choice the parallel runtime makes:
//!
//! * **worker-to-shard assignment** — any function `shard → worker`, a
//!   strict superset of the `id % workers` round-robin the real engine
//!   uses (so a future placement policy is already covered);
//! * **per-round wake order** — the order workers run their windows
//!   within a round, either a fixed permutation or rotating each round;
//! * **local order** — the order a worker visits its own shards, forward
//!   or reversed;
//! * **delivery order** — the order routed wires are merged into
//!   destination queues at the round boundary, forward or reversed.
//!   Reversal is *more* adversarial than the real mpsc channels can
//!   produce (they at least preserve each sender's FIFO order), so
//!   passing here is strictly stronger than what the runtime needs.
//!
//! [`explore_schedules`] runs a workload under every combination,
//! recording each shard's popped `(time, origin, seq)` keys, and asserts
//! the traces are identical to the 1-worker identity schedule — which is
//! verified on the spot against the production serial path
//! ([`ShardEngine::run_with`]`(1)`) via its event/round counters. Within a
//! round, serializing concurrent workers in *any* order is a valid
//! linearization of the real execution because windows share no state;
//! wires only move at the round boundary. A workload whose behaviour
//! leaks execution order (say, through a process-global counter) is
//! caught: some wake order reorders the leak, the traces diverge, and the
//! panic names the offending schedule.

use super::{Cell, Entry, ShardCtx, ShardEngine, ShardLogic, Wire};
use crate::time::SimTime;

/// One popped event, keyed exactly as the engine merges it: the time's
/// IEEE bit pattern (so `-0.0` vs `+0.0` or a stray NaN cannot alias),
/// the origin shard, and the origin's sequence number.
pub type TraceKey = (u64, u32, u64);

/// The order workers run their windows within a round.
#[derive(Clone, Debug)]
pub enum Wake {
    /// The same permutation of worker ids every round.
    Static(Vec<usize>),
    /// Round `r` starts at worker `(offset + r) % workers` and wraps —
    /// models one worker persistently winning or losing the barrier race.
    Rotating(usize),
}

/// A fully determined execution schedule for one engine run.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Number of workers (some may own no shards).
    pub workers: usize,
    /// `assignment[shard] = worker` owning that shard.
    pub assignment: Vec<usize>,
    /// Within-round worker order.
    pub wake: Wake,
    /// Visit each worker's shards in reverse id order.
    pub reverse_local: bool,
    /// Merge the round's routed wires in reverse emission order.
    pub reverse_delivery: bool,
}

impl Schedule {
    /// The 1-worker forward-order schedule: exactly the serial engine.
    pub fn identity(shards: usize) -> Self {
        Schedule {
            workers: 1,
            assignment: vec![0; shards],
            wake: Wake::Static(vec![0]),
            reverse_local: false,
            reverse_delivery: false,
        }
    }

    fn wake_order(&self, round: u64) -> Vec<usize> {
        match &self.wake {
            Wake::Static(perm) => perm.clone(),
            Wake::Rotating(offset) => (0..self.workers)
                .map(|i| (offset + round as usize + i) % self.workers)
                .collect(),
        }
    }
}

/// What one exploration proved, for logging and for pinning in docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Shard count of the workload.
    pub shards: usize,
    /// Largest worker count explored.
    pub max_workers: usize,
    /// Distinct schedules executed and compared (excludes the reference).
    pub schedules: usize,
    /// Events handled per run (identical across all schedules, by proof).
    pub events: u64,
    /// Synchronization rounds per run (identical across all schedules).
    pub rounds: u64,
}

/// [`super::run_window`] with the popped merge keys appended to `trace`.
fn run_window_traced<S: ShardLogic>(
    cell: &mut Cell<S>,
    bound: SimTime,
    lookahead: SimTime,
    outbox: &mut Vec<Wire<S::Event>>,
    trace: &mut Vec<TraceKey>,
) -> u64 {
    let mut handled = 0;
    while cell.queue.peek_time().is_some_and(|t| t < bound) {
        let entry: Entry<S::Event> = cell.queue.pop_entry().expect("peeked entry vanished");
        trace.push((entry.time.as_secs().to_bits(), entry.origin, entry.seq));
        let now = entry.time;
        let mut ctx = ShardCtx {
            now,
            shard: cell.id,
            lookahead,
            queue: &mut cell.queue,
            outbox,
        };
        cell.state.handle(now, entry.event, &mut ctx);
        handled += 1;
    }
    handled
}

/// Drains `engine` under `sched`, returning per-shard traces plus the
/// event and round counts. The round protocol mirrors
/// [`super::ShardEngine::run_parallel`]: global minimum, window
/// `[T, T + lookahead)`, then wires merge at the round boundary.
pub fn run_traced<S: ShardLogic>(
    engine: &mut ShardEngine<S>,
    sched: &Schedule,
) -> (Vec<Vec<TraceKey>>, u64, u64) {
    let shards = engine.cells.len();
    assert_eq!(
        sched.assignment.len(),
        shards,
        "schedule assigns {} shards, engine has {shards}",
        sched.assignment.len()
    );
    assert!(
        sched.assignment.iter().all(|&w| w < sched.workers),
        "assignment names a worker >= workers: {sched:?}"
    );
    let lookahead = engine.lookahead;
    let mut traces: Vec<Vec<TraceKey>> = vec![Vec::new(); shards];
    let mut wires: Vec<Wire<S::Event>> = Vec::new();
    let mut events = 0u64;
    let mut rounds = 0u64;
    while let Some(t_min) = engine.cells.iter().filter_map(|c| c.queue.peek_time()).min() {
        let bound = t_min + lookahead;
        let order = sched.wake_order(rounds);
        rounds += 1;
        for &worker in &order {
            let mut owned: Vec<usize> = (0..shards)
                .filter(|&s| sched.assignment[s] == worker)
                .collect();
            if sched.reverse_local {
                owned.reverse();
            }
            for s in owned {
                let cell = &mut engine.cells[s];
                events += run_window_traced(cell, bound, lookahead, &mut wires, &mut traces[s]);
            }
        }
        if sched.reverse_delivery {
            wires.reverse();
        }
        for wire in wires.drain(..) {
            engine.cells[wire.to as usize].queue.insert_wire(wire);
        }
    }
    (traces, events, rounds)
}

/// All permutations of `0..n`, in a deterministic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn recurse(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            recurse(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    recurse(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

/// All `workers^shards` shard-to-worker assignments.
fn assignments(shards: usize, workers: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![0; shards]];
    for s in 0..shards {
        out = out
            .into_iter()
            .flat_map(|base| {
                (0..workers).map(move |w| {
                    let mut a = base.clone();
                    a[s] = w;
                    a
                })
            })
            .collect();
    }
    out
}

/// Locates the first divergence between two trace sets and panics with a
/// message naming the shard, position, keys, and the offending schedule.
fn assert_traces_equal(reference: &[Vec<TraceKey>], got: &[Vec<TraceKey>], sched: &Schedule) {
    if reference == got {
        return;
    }
    for (shard, (r, g)) in reference.iter().zip(got).enumerate() {
        if r == g {
            continue;
        }
        let at = r.iter().zip(g).position(|(a, b)| a != b).unwrap_or(r.len().min(g.len()));
        panic!(
            "schedule diverged from the serial engine: shard {shard}, pop #{at}: \
             expected {:?}, got {:?} (lengths {} vs {}) under {sched:?}",
            r.get(at),
            g.get(at),
            r.len(),
            g.len(),
        );
    }
    panic!("schedule diverged from the serial engine (shard count) under {sched:?}");
}

/// Runs the workload produced by `build` under **every** schedule up to
/// `max_workers` workers — all shard-to-worker assignments × all wake
/// orders (every static permutation plus every rotation offset) × forward
/// and reversed local order × forward and reversed delivery order — and
/// asserts every trace equals the identity schedule's, which is itself
/// anchored to the production serial path by event/round counts.
///
/// `build` must return a freshly seeded engine each call; all runs must
/// start from the same initial state or the comparison is meaningless.
///
/// # Panics
/// Panics if any schedule's trace diverges, if the identity schedule
/// disagrees with [`ShardEngine::run_with`]`(1)`, if the workload is
/// empty, or if the schedule space would be infeasibly large (shards or
/// `max_workers` above 4).
pub fn explore_schedules<S, F>(build: F, max_workers: usize) -> Report
where
    S: ShardLogic,
    F: Fn() -> ShardEngine<S>,
{
    let shards = build().cells.len();
    assert!(
        (1..=4).contains(&shards) && (1..=4).contains(&max_workers),
        "exhaustive exploration is exponential; keep shards and max_workers <= 4 \
         (got {shards} shards, {max_workers} workers)"
    );

    // Anchor: the traced identity schedule must agree with the production
    // serial engine on what it did, so "identical to the identity trace"
    // below means "identical to the serial engine".
    let mut anchor = build();
    let serial = anchor.run_with(1);
    assert!(serial.events > 0, "workload schedules no events");
    let mut reference_engine = build();
    let (reference, ref_events, ref_rounds) =
        run_traced(&mut reference_engine, &Schedule::identity(shards));
    assert_eq!(
        (ref_events, ref_rounds),
        (serial.events, serial.rounds),
        "traced identity schedule disagrees with the production serial engine"
    );

    let mut schedules = 0usize;
    for workers in 1..=max_workers {
        let mut wakes: Vec<Wake> = permutations(workers).into_iter().map(Wake::Static).collect();
        wakes.extend((0..workers).map(Wake::Rotating));
        for assignment in assignments(shards, workers) {
            for wake in &wakes {
                for reverse_local in [false, true] {
                    for reverse_delivery in [false, true] {
                        let sched = Schedule {
                            workers,
                            assignment: assignment.clone(),
                            wake: wake.clone(),
                            reverse_local,
                            reverse_delivery,
                        };
                        let mut engine = build();
                        let (traces, events, rounds) = run_traced(&mut engine, &sched);
                        assert_traces_equal(&reference, &traces, &sched);
                        assert_eq!(
                            (events, rounds),
                            (ref_events, ref_rounds),
                            "schedule diverged from the serial engine (counters) under {sched:?}"
                        );
                        schedules += 1;
                    }
                }
            }
        }
    }
    Report {
        shards,
        max_workers,
        schedules,
        events: ref_events,
        rounds: ref_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Expected schedule count: Σ_{w=1..max} wᵈ · (w! + w) · 4, for d
    /// shards — assignments × (static perms + rotation offsets) × local
    /// reversal × delivery reversal.
    fn expected_schedules(shards: usize, max_workers: usize) -> usize {
        let factorial = |n: usize| (1..=n).product::<usize>();
        (1..=max_workers)
            .map(|w| w.pow(shards as u32) * (factorial(w) + w) * 4)
            .sum()
    }

    /// Workload A — *horizon-boundary ties*. Every event at `t` broadcasts
    /// to both other shards with delay exactly `lookahead`, so arrivals
    /// land precisely on the horizon boundary `t + L`; each shard also
    /// self-schedules at that same instant, manufacturing three-way
    /// same-timestamp ties (two remote origins + one local) at every
    /// boundary. Seeds at `0` and `L` add first-round ties on top.
    struct Boundary {
        hops: u32,
    }

    impl ShardLogic for Boundary {
        type Event = u32;
        fn handle(&mut self, now: SimTime, hops: u32, ctx: &mut ShardCtx<'_, u32>) {
            self.hops = self.hops.max(hops);
            if hops == 0 {
                return;
            }
            let lookahead = ctx.lookahead();
            let me = ctx.shard();
            for other in 0..3 {
                if other != me {
                    // Exactly the lookahead: the arrival timestamp equals
                    // the bound of the round that opened at `now`.
                    ctx.send(other, lookahead, hops - 1);
                }
            }
            ctx.schedule_at(now + lookahead, hops - 1);
        }
    }

    fn boundary_engine() -> ShardEngine<Boundary> {
        let lookahead = SimTime::from_micros(50.0);
        let states = (0..3).map(|_| Boundary { hops: 0 }).collect();
        let mut engine = ShardEngine::new(states, lookahead);
        for shard in 0..3 {
            engine.schedule(shard, SimTime::ZERO, 3);
            engine.schedule(shard, lookahead, 2);
        }
        engine
    }

    #[test]
    fn shardcheck_boundary_ties() {
        let report = explore_schedules(boundary_engine, 3);
        assert_eq!(report.schedules, expected_schedules(3, 3));
        assert_eq!(report.schedules, 1108);
        assert!(report.events > 100, "workload too small: {report:?}");
        assert!(report.rounds >= 4, "{report:?}");
    }

    /// Workload B — *tie-heavy discrete grid*. Two shards, every
    /// timestamp an integer multiple of the lookahead. Events fork a
    /// same-instant local cascade (`schedule_at(now)`) and ping-pong
    /// cross-shard at 1× and 2× the lookahead depending on payload
    /// parity, so rounds are fat with intra-window same-time pops.
    struct Grid;

    impl ShardLogic for Grid {
        type Event = (u32, bool);
        fn handle(&mut self, now: SimTime, (hops, fork): (u32, bool), ctx: &mut ShardCtx<'_, (u32, bool)>) {
            if hops == 0 {
                return;
            }
            let lookahead = ctx.lookahead();
            if fork {
                // Same-instant cascade: pops later in the same window.
                ctx.schedule_at(now, (hops - 1, false));
            }
            let delay = if hops % 2 == 0 { lookahead } else { lookahead * 2.0 };
            ctx.send(1 - ctx.shard(), delay, (hops - 1, true));
        }
    }

    fn grid_engine() -> ShardEngine<Grid> {
        let lookahead = SimTime::from_micros(100.0);
        let mut engine = ShardEngine::new(vec![Grid, Grid], lookahead);
        for shard in 0..2 {
            for k in 0..3u32 {
                engine.schedule(shard, lookahead * k as f64, (4, true));
            }
        }
        engine
    }

    #[test]
    fn shardcheck_tie_heavy_grid() {
        let report = explore_schedules(grid_engine, 2);
        assert_eq!(report.schedules, expected_schedules(2, 2));
        assert_eq!(report.schedules, 72);
        assert!(report.events > 40, "workload too small: {report:?}");
    }

    /// Workload C — *hot-shard ping-pong*. Shard 0 is seeded an order of
    /// magnitude hotter than shards 1–2 and exchanges messages with both;
    /// follow-ups land off-grid inside the window (`now + L/2`), so
    /// windows interleave local and remote pops asymmetrically across
    /// shards — the shape the real service (frontend + server shards)
    /// produces.
    struct HotSpot {
        handled: u64,
    }

    impl ShardLogic for HotSpot {
        type Event = u32;
        fn handle(&mut self, now: SimTime, hops: u32, ctx: &mut ShardCtx<'_, u32>) {
            self.handled += 1;
            if hops == 0 {
                return;
            }
            let lookahead = ctx.lookahead();
            let me = ctx.shard();
            if me == 0 {
                // Fan out to a server shard chosen by the hop counter.
                ctx.send(1 + (hops as usize % 2), lookahead, hops - 1);
                ctx.schedule_at(now + lookahead * 0.5, hops.saturating_sub(2));
            } else {
                // Reply to the frontend.
                ctx.send(0, lookahead, hops - 1);
            }
        }
    }

    fn hotspot_engine() -> ShardEngine<HotSpot> {
        let lookahead = SimTime::from_micros(50.0);
        let states = (0..3).map(|_| HotSpot { handled: 0 }).collect();
        let mut engine = ShardEngine::new(states, lookahead);
        for k in 0..10u32 {
            engine.schedule(0, SimTime::from_micros(k as f64 * 5.0), 4);
        }
        engine.schedule(1, SimTime::ZERO, 2);
        engine.schedule(2, lookahead, 2);
        engine
    }

    #[test]
    fn shardcheck_hot_shard_pingpong() {
        let report = explore_schedules(hotspot_engine, 3);
        assert_eq!(report.schedules, expected_schedules(3, 3));
        assert!(report.events > 60, "workload too small: {report:?}");
    }

    /// Meta-test: the checker must *discriminate*, not just pass. This
    /// logic leaks execution order through a counter shared across shards
    /// (the exact bug class the engine's design forbids): the counter's
    /// interleaving depends on which shard's window runs first, and the
    /// leak feeds back into event *timing*. Some explored wake order must
    /// therefore produce a different trace and panic.
    struct OrderLeak {
        shared: Arc<AtomicU64>,
    }

    impl ShardLogic for OrderLeak {
        type Event = u32;
        fn handle(&mut self, now: SimTime, hops: u32, ctx: &mut ShardCtx<'_, u32>) {
            let stamp = self.shared.fetch_add(1, Ordering::SeqCst);
            if hops == 0 {
                return;
            }
            let lookahead = ctx.lookahead();
            // The follow-up's timestamp depends on the global interleaving.
            let jitter = lookahead * (0.1 * (stamp % 4) as f64);
            ctx.schedule_at(now + lookahead + jitter, hops - 1);
            ctx.send(1 - ctx.shard(), lookahead, hops - 1);
        }
    }

    #[test]
    #[should_panic(expected = "schedule diverged")]
    fn shardcheck_catches_execution_order_leak() {
        let build = || {
            let shared = Arc::new(AtomicU64::new(0));
            let states = (0..2)
                .map(|_| OrderLeak {
                    shared: Arc::clone(&shared),
                })
                .collect();
            let mut engine = ShardEngine::new(states, SimTime::from_micros(50.0));
            engine.schedule(0, SimTime::ZERO, 4);
            engine.schedule(1, SimTime::ZERO, 4);
            engine
        };
        explore_schedules(build, 2);
    }

    #[test]
    fn permutations_and_assignments_are_exhaustive() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(1), vec![vec![0]]);
        let a = assignments(2, 3);
        assert_eq!(a.len(), 9);
        assert!(a.contains(&vec![2, 0]));
        assert_eq!(expected_schedules(3, 3), 1108);
    }
}
